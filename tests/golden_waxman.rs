//! Golden regression for Phase 2 on a mid-size Waxman mesh.
//!
//! The tree fixture (`golden_pipeline.rs`) pins the batch pipeline on
//! the paper's single-beacon topology; this fixture pins the
//! **congested-set output of Phase 2 on a multi-beacon mesh** — the
//! regime the sparse dispatch exists for — so the sparse-first routing
//! refactor (and any future factorisation change) cannot silently move
//! the diagnosis. A second test drives the dense (oracle) and sparse
//! dispatch paths over the same system and requires identical column
//! selections and congested sets.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_waxman
//! ```

use losstomo::core::Phase2Dispatch;
use losstomo::prelude::*;
use losstomo::topology::gen::waxman::{self, WaxmanParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_waxman.json"
);

/// What the fixture pins: the measurement-system shape and the exact
/// Phase-2 diagnosis.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenWaxman {
    paths: usize,
    links: usize,
    kept_count: usize,
    congested: Vec<usize>,
}

/// The prepared mesh: measurement system, learnt variances, and the
/// evaluation snapshot's log measurements.
struct Prepared {
    red: ReducedTopology,
    variances: Vec<f64>,
    y_eval: Vec<f64>,
}

fn prepared() -> &'static Prepared {
    static PREP: OnceLock<Prepared> = OnceLock::new();
    PREP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(77);
        let topo = waxman::generate(
            WaxmanParams {
                nodes: 300,
                hosts: 24,
                ..WaxmanParams::default()
            },
            &mut rng,
        );
        let setup = losstomo::experiment_setup(&topo.graph, &topo.beacons, &topo.destinations);
        let m = 30;
        let mut scenario = CongestionScenario::draw(
            setup.red.num_links(),
            0.1,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let probe = ProbeConfig {
            probes_per_snapshot: 400,
            ..ProbeConfig::default()
        };
        let ms = simulate_run(&setup.red, &mut scenario, &probe, m + 1, &mut rng);
        let train = MeasurementSet {
            snapshots: ms.snapshots[..m].to_vec(),
        };
        let centered = CenteredMeasurements::new(&train);
        let est = estimate_variances(&setup.red, &setup.aug, &centered, &VarianceConfig::default())
            .expect("phase 1 on the golden mesh");
        Prepared {
            red: setup.red,
            variances: est.v,
            y_eval: ms.snapshots[m].log_rates(),
        }
    })
}

fn phase2(dispatch: Phase2Dispatch) -> LinkRateEstimate {
    let prep = prepared();
    let cfg = LiaConfig {
        dispatch,
        ..LiaConfig::default()
    };
    infer_link_rates(&prep.red, &prep.variances, &prep.y_eval, &cfg)
        .expect("phase 2 on the golden mesh")
}

#[test]
fn golden_waxman_congested_set_matches_fixture() {
    let prep = prepared();
    let est = phase2(Phase2Dispatch::Auto);
    let actual = GoldenWaxman {
        paths: prep.red.num_paths(),
        links: prep.red.num_links(),
        kept_count: est.kept_count,
        congested: est.congested_links(losstomo::netsim::DEFAULT_LOSS_THRESHOLD),
    };

    if std::env::var("GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&actual).unwrap();
        std::fs::write(FIXTURE_PATH, json + "\n").expect("write fixture");
        return;
    }

    let fixture: GoldenWaxman = serde_json::from_str(
        &std::fs::read_to_string(FIXTURE_PATH)
            .expect("fixture missing — run with GOLDEN_REGEN=1"),
    )
    .expect("fixture must parse");
    assert_eq!(actual, fixture, "golden Waxman Phase-2 output drifted");
}

/// The dense pivoted QR stays available as the dispatchable oracle:
/// forced-dense and forced-sparse Phase 2 must select the same columns
/// and diagnose the same congested set, with rates agreeing far below
/// the congestion threshold.
#[test]
fn dense_and_sparse_dispatch_agree() {
    let dense = phase2(Phase2Dispatch::Dense);
    let sparse = phase2(Phase2Dispatch::Sparse);
    assert_eq!(dense.kept, sparse.kept, "kept column sets diverged");
    assert_eq!(
        dense.congested_links(losstomo::netsim::DEFAULT_LOSS_THRESHOLD),
        sparse.congested_links(losstomo::netsim::DEFAULT_LOSS_THRESHOLD),
        "congested sets diverged"
    );
    for (d, s) in dense.transmission.iter().zip(sparse.transmission.iter()) {
        assert!((d - s).abs() < 1e-9, "rates diverged: {d} vs {s}");
    }
}
