//! Smoke test: the `quickstart` example must run end to end.
//!
//! CI builds every example; this test additionally *executes* the
//! quickstart walkthrough on a quick-scale topology so a regression in
//! the example's pipeline (not just its compilation) fails the suite.

use std::process::Command;

#[test]
fn quickstart_example_runs_end_to_end() {
    let output = Command::new(env!("CARGO"))
        .args([
            "run",
            "--release",
            "--example",
            "quickstart",
            "--",
            "--nodes",
            "80",
            "--snapshots",
            "12",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    assert!(
        stdout.contains("measurement system:"),
        "missing topology report in output:\n{stdout}"
    );
    assert!(
        stdout.contains("detection rate"),
        "missing accuracy report in output:\n{stdout}"
    );
}
