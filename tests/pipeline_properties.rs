//! Property-based integration tests over the whole pipeline.

use losstomo::core::AugmentedSystem;
use losstomo::prelude::*;
use losstomo::topology::gen::tree::{self, TreeParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_tree(seed: u64, nodes: usize, branching: usize) -> ReducedTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = tree::generate(
        TreeParams {
            nodes,
            max_branching: branching,
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    reduce(&topo.graph, &paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 1, property-tested: every random tree yields a
    /// full-column-rank augmented matrix.
    #[test]
    fn augmented_matrix_always_full_rank(seed in 0u64..5000, nodes in 20usize..80,
                                         branching in 2usize..8) {
        let red = random_tree(seed, nodes, branching);
        let aug = AugmentedSystem::build(&red);
        prop_assert!(aug.is_identifiable());
    }

    /// Phase 2 with oracle variances and noise-free measurements
    /// recovers the loss rates of the variance-flagged links exactly,
    /// for arbitrary loss assignments.
    #[test]
    fn oracle_phase2_is_exact(seed in 0u64..5000,
                              congested in proptest::collection::vec(0.02f64..0.3, 1..5)) {
        let red = random_tree(seed, 40, 4);
        let nc = red.num_links();
        // Assign losses to `congested.len()` random-ish links.
        let mut phi = vec![1.0; nc];
        let mut variances = vec![0.0; nc];
        for (i, &loss) in congested.iter().enumerate() {
            let k = (seed as usize + i * 7919) % nc;
            phi[k] = 1.0 - loss;
            variances[k] = loss; // any monotone proxy works
        }
        let x: Vec<f64> = phi.iter().map(|p| p.ln()).collect();
        let y = red.matrix.to_dense().matvec(&x).unwrap();
        let est = infer_link_rates(&red, &variances, &y, &LiaConfig::default()).unwrap();
        for (k, (&est_phi, &true_phi)) in est.transmission.iter().zip(phi.iter()).enumerate() {
            prop_assert!(
                (est_phi - true_phi).abs() < 1e-8,
                "link {k} est {est_phi} true {true_phi}"
            );
        }
    }

    /// The kept column set is always linearly independent and spans at
    /// most rank(R) columns, for any variance vector.
    #[test]
    fn kept_columns_always_independent(seed in 0u64..5000,
                                       vs in proptest::collection::vec(0.0f64..1.0, 30)) {
        let red = random_tree(seed, 30, 4);
        let nc = red.num_links();
        let variances: Vec<f64> = (0..nc).map(|k| vs[k % vs.len()]).collect();
        for strategy in [EliminationStrategy::PaperOrder, EliminationStrategy::GreedyMatroid] {
            let kept = losstomo::core::select_full_rank_columns(&red, &variances, strategy);
            let dense = red.matrix.to_dense();
            let sub = dense.select_columns(&kept);
            prop_assert_eq!(losstomo::linalg::rank(&sub), kept.len());
            prop_assert!(kept.len() <= losstomo::linalg::rank(&dense));
        }
    }

    /// The greedy strategy never keeps fewer columns than the paper's.
    #[test]
    fn greedy_keeps_superset_cardinality(seed in 0u64..5000) {
        let red = random_tree(seed, 35, 5);
        let nc = red.num_links();
        let variances: Vec<f64> = (0..nc).map(|k| ((k * 37 + 11) % 101) as f64 / 101.0).collect();
        let paper = losstomo::core::select_full_rank_columns(
            &red, &variances, EliminationStrategy::PaperOrder);
        let greedy = losstomo::core::select_full_rank_columns(
            &red, &variances, EliminationStrategy::GreedyMatroid);
        prop_assert!(greedy.len() >= paper.len());
    }

    /// Probe accounting: received counts never exceed S, and the
    /// per-link arrival counts are consistent with path traversal.
    #[test]
    fn probe_engine_conservation(seed in 0u64..5000, p in 0.0f64..0.5) {
        let red = random_tree(seed, 25, 4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let scenario = CongestionScenario::draw(
            red.num_links(), p, CongestionDynamics::Fixed, &mut rng);
        let cfg = ProbeConfig { probes_per_snapshot: 50, ..ProbeConfig::default() };
        let snap = simulate_snapshot(&red, &scenario, &cfg, &mut rng);
        for &r in &snap.path_received {
            prop_assert!(r <= 50);
        }
        for t in &snap.link_truth {
            prop_assert!(t.drops <= t.arrivals);
        }
        // First links of paths see exactly S arrivals per traversing path.
        let per_link = red.paths_per_link();
        for (k, t) in snap.link_truth.iter().enumerate() {
            prop_assert!(t.arrivals <= 50 * per_link[k].len() as u64);
        }
    }
}
