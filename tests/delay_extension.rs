//! Integration test for the Section-8 delay-tomography extension.

use losstomo::core::AugmentedSystem;
use losstomo::netsim::delay::{simulate_delay_run, DelayConfig, DelayNetwork};
use losstomo::prelude::*;
use losstomo::topology::gen::planetlab::{self, PlanetLabParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The full delay pipeline on a mesh: identifiability carries over and
/// high-queue links are located.
#[test]
fn delay_pipeline_on_mesh() {
    let mut rng = StdRng::seed_from_u64(500);
    let topo = planetlab::generate(
        PlanetLabParams {
            sites: 12,
            core_routers: 5,
            ..PlanetLabParams::default()
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);
    let aug = AugmentedSystem::build(&red);
    assert!(aug.is_identifiable(), "Theorem 1 applies to delays too");

    let cfg = DelayConfig::default();
    let net = DelayNetwork::draw(&red, &cfg, &mut rng);
    let mut scenario = CongestionScenario::draw(
        red.num_links(),
        0.1,
        CongestionDynamics::Markov {
            stay_congested: 0.7,
        },
        &mut rng,
    );
    let m = 40;
    let snaps = simulate_delay_run(&red, &net, &mut scenario, &cfg, m + 1, &mut rng);
    let v = estimate_delay_variances(&red, &aug, &snaps[..m], &VarianceConfig::default())
        .expect("delay phase 1");
    let est = infer_link_delays(&red, &v.v, &snaps[..m], &snaps[m], &LiaConfig::default())
        .expect("delay phase 2");

    // Detectable = congested now and congested in ≥ m/4 window snapshots.
    let detectable: Vec<usize> = (0..red.num_links())
        .filter(|&k| {
            snaps[m].congested[k]
                && snaps[..m].iter().filter(|s| s.congested[k]).count() >= m / 4
        })
        .collect();
    let detected = est.congested_links(2.0);
    let missed = detectable
        .iter()
        .filter(|k| !detected.contains(k))
        .count();
    assert!(
        missed * 3 <= detectable.len().max(1),
        "missed {missed} of {} detectable high-delay links",
        detectable.len()
    );
}

/// Delay estimates are non-negative and finite, whatever the inputs.
#[test]
fn delay_estimates_are_physical() {
    let mut rng = StdRng::seed_from_u64(600);
    let topo = planetlab::generate(
        PlanetLabParams {
            sites: 8,
            core_routers: 4,
            ..PlanetLabParams::default()
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);
    let aug = AugmentedSystem::build(&red);
    let cfg = DelayConfig {
        probes_per_snapshot: 50, // noisy
        ..DelayConfig::default()
    };
    let net = DelayNetwork::draw(&red, &cfg, &mut rng);
    let mut scenario = CongestionScenario::draw(
        red.num_links(),
        0.3,
        CongestionDynamics::Redraw, // hostile dynamics
        &mut rng,
    );
    let snaps = simulate_delay_run(&red, &net, &mut scenario, &cfg, 11, &mut rng);
    let v = estimate_delay_variances(&red, &aug, &snaps[..10], &VarianceConfig::default())
        .expect("phase 1");
    let est = infer_link_delays(&red, &v.v, &snaps[..10], &snaps[10], &LiaConfig::default())
        .expect("phase 2");
    assert!(est.queue_delay.iter().all(|d| d.is_finite() && *d >= 0.0));
}
