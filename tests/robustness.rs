//! Integration tests: robustness to measurement imperfections
//! (Section 7's methodology concerns).

use losstomo::prelude::*;
use losstomo::topology::gen::planetlab::{self, PlanetLabParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planetlab(seed: u64) -> (losstomo::topology::GeneratedTopology, PathSet, ReducedTopology) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = planetlab::generate(
        PlanetLabParams {
            sites: 14,
            core_routers: 6,
            ..PlanetLabParams::default()
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);
    (topo, paths, red)
}

/// Cross-validation must hold up when the inference topology comes from
/// an error-laden traceroute while losses happen on the true network —
/// the paper's "despite the potential errors in network topology, our
/// algorithm is still very accurate".
#[test]
fn lia_survives_traceroute_errors() {
    let (topo, paths, true_red) = planetlab(50);
    let mut rng = StdRng::seed_from_u64(51);
    // Exaggerated error rates so the observed topology reliably differs
    // from the truth on a ~20-router network.
    let cfg = TracerouteConfig {
        no_response_prob: 0.3,
        multi_interface_prob: 0.3,
        alias_resolution_prob: 0.2,
        ..TracerouteConfig::default()
    };
    let obs = losstomo::netsim::observe(&topo.graph, &paths, &cfg, &mut rng);
    let obs_red = reduce(&obs.graph, &obs.paths);
    // Observed topology differs from the truth…
    assert!(obs.anonymous_nodes + obs.interface_nodes > 0);

    let mut scenario = CongestionScenario::draw(
        true_red.num_links(),
        0.1,
        CongestionDynamics::Fixed,
        &mut rng,
    );
    let ms = simulate_run(
        &true_red,
        &mut scenario,
        &ProbeConfig::default(),
        41,
        &mut rng,
    );
    // …but inference with the observed routing matrix still validates.
    let res = cross_validate(&obs_red, &ms, &CrossValidationConfig::default(), &mut rng)
        .unwrap();
    assert!(
        res.percent_consistent() >= 70.0,
        "only {:.1}% consistent under traceroute errors",
        res.percent_consistent()
    );
}

/// The same data validated on the true topology must do at least as
/// well as a heavily corrupted observation (sanity direction check).
#[test]
fn clean_topology_validates_better_than_fully_anonymous() {
    let (topo, paths, true_red) = planetlab(60);
    let mut rng = StdRng::seed_from_u64(61);
    let anonymous_cfg = TracerouteConfig {
        no_response_prob: 0.9,
        ..TracerouteConfig::default()
    };
    let obs = losstomo::netsim::observe(&topo.graph, &paths, &anonymous_cfg, &mut rng);
    let obs_red = reduce(&obs.graph, &obs.paths);

    let mut scenario = CongestionScenario::draw(
        true_red.num_links(),
        0.1,
        CongestionDynamics::Fixed,
        &mut rng,
    );
    let ms = simulate_run(
        &true_red,
        &mut scenario,
        &ProbeConfig::default(),
        31,
        &mut rng,
    );
    let mut rng_a = StdRng::seed_from_u64(62);
    let mut rng_b = StdRng::seed_from_u64(62);
    let clean = cross_validate(&true_red, &ms, &CrossValidationConfig::default(), &mut rng_a)
        .unwrap();
    let dirty = cross_validate(&obs_red, &ms, &CrossValidationConfig::default(), &mut rng_b)
        .unwrap();
    assert!(
        clean.percent_consistent() + 15.0 >= dirty.percent_consistent(),
        "clean {:.1}% vs anonymised {:.1}%",
        clean.percent_consistent(),
        dirty.percent_consistent()
    );
}

/// Short snapshots (small S) still produce a working pipeline — Figure
/// 8(b)'s claim that the impact of S is mild.
#[test]
fn small_probe_counts_degrade_gracefully() {
    let (_, _, red) = planetlab(70);
    let dr_of = |s: u32| {
        let cfg = ExperimentConfig {
            snapshots: 30,
            probe: ProbeConfig {
                probes_per_snapshot: s,
                ..ProbeConfig::default()
            },
            seed: 71,
            ..ExperimentConfig::default()
        };
        let results = run_many(&red, &cfg, 3);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / ok.len() as f64
    };
    let dr_small = dr_of(200);
    let dr_large = dr_of(1000);
    assert!(dr_small >= 0.6, "S=200 DR collapsed to {dr_small}");
    assert!(dr_large >= dr_small - 0.15);
}

/// Zero-received paths (floored measurements) must not break inference.
#[test]
fn total_loss_paths_are_handled() {
    let (_, _, red) = planetlab(80);
    let cfg = ExperimentConfig {
        snapshots: 20,
        p_congested: 0.5, // heavy congestion: some paths lose everything
        probe: ProbeConfig {
            loss_model: LossModel::Llrd2, // rates up to 1.0
            ..ProbeConfig::default()
        },
        seed: 81,
        ..ExperimentConfig::default()
    };
    let res = run_experiment(&red, &cfg).unwrap();
    assert!(res.est_loss.iter().all(|l| l.is_finite()));
    assert!(res.est_loss.iter().all(|&l| (0.0..=1.0).contains(&l)));
}
