//! Golden regression test for the two-phase pipeline.
//!
//! Runs `run_experiment` with a fixed seed on a small tree topology and
//! compares the headline outputs (DR, FPR, kept-column count,
//! congested-link count, dropped covariance rows) against a committed
//! JSON fixture. Any behavioural change to Phase 1 (variance learning
//! `Σ* = A v`), Phase 2 (column elimination + reduced solve) or the
//! probe engine's deterministic RNG stream shows up here immediately.
//!
//! To regenerate the fixture after an *intentional* change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_pipeline
//! ```

use std::collections::BTreeMap;
use std::sync::OnceLock;

use losstomo::prelude::*;
use losstomo::topology::gen::tree::{self, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_tree.json"
);

/// Runs the golden experiment once per test binary; both tests below
/// share the result.
fn golden_result() -> &'static losstomo::core::ExperimentResult {
    static RESULT: OnceLock<losstomo::core::ExperimentResult> = OnceLock::new();
    RESULT.get_or_init(run_golden_experiment)
}

fn run_golden_experiment() -> losstomo::core::ExperimentResult {
    let mut rng = StdRng::seed_from_u64(123);
    let topo = tree::generate(
        TreeParams {
            nodes: 60,
            max_branching: 4,
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);
    let cfg = ExperimentConfig {
        snapshots: 30,
        seed: 9,
        ..ExperimentConfig::default()
    };
    run_experiment(&red, &cfg).expect("golden experiment must succeed")
}

fn summarize(res: &losstomo::core::ExperimentResult) -> BTreeMap<String, f64> {
    BTreeMap::from([
        ("detection_rate".to_string(), res.location.detection_rate),
        (
            "false_positive_rate".to_string(),
            res.location.false_positive_rate,
        ),
        ("kept_count".to_string(), res.kept_count as f64),
        ("congested_count".to_string(), res.congested_count as f64),
        ("dropped_rows".to_string(), res.dropped_rows as f64),
    ])
}

#[test]
fn golden_tree_pipeline_matches_fixture() {
    let actual = summarize(golden_result());

    if std::env::var("GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&actual).unwrap();
        std::fs::write(FIXTURE_PATH, json + "\n").expect("write fixture");
        return;
    }

    let fixture: BTreeMap<String, f64> = serde_json::from_str(
        &std::fs::read_to_string(FIXTURE_PATH).expect("fixture missing — run with GOLDEN_REGEN=1"),
    )
    .expect("fixture must parse");

    assert_eq!(
        fixture.keys().collect::<Vec<_>>(),
        actual.keys().collect::<Vec<_>>(),
        "fixture fields drifted from the test's summary"
    );
    for (key, expected) in &fixture {
        let got = actual[key];
        assert!(
            (got - expected).abs() < 1e-9,
            "golden drift on `{key}`: fixture {expected}, got {got}"
        );
    }
}

/// The counts in the fixture must stay internally consistent: every
/// congested link fits in the kept column set (the Figure-7 invariant
/// the golden scenario is designed to exercise).
#[test]
fn golden_scenario_respects_figure7_invariant() {
    let res = golden_result();
    assert!(res.kept_count > 0, "Phase 2 kept no columns");
    assert!(res.congested_to_kept_ratio() <= 1.0);
}
