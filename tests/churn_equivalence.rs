//! Workspace gate for live topology churn: estimators survive routing
//! changes mid-stream, and once the covariance window flushes its
//! pre-churn history the churned estimator is **bit-identical** to a
//! fresh one built on the new topology — the robustness analogue of the
//! streaming exactness contract. Also pins that churning one fleet
//! tenant never perturbs its neighbours.

use losstomo::prelude::*;
use losstomo::topology::gen::tree::{self, TreeParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tree(seed: u64) -> ReducedTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = tree::generate(
        TreeParams {
            nodes: 30,
            max_branching: 4,
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    reduce(&topo.graph, &paths)
}

/// A synthetic log-rate row for the current path count: finite,
/// negative (rates in (0.5, 1.0)), seeded.
fn random_row(rng: &mut StdRng, np: usize) -> Vec<f64> {
    (0..np).map(|_| rng.gen_range(0.5f64..1.0).ln()).collect()
}

/// A valid random delta against a topology with `np` paths and `nc`
/// link columns: 1–3 edits mixing adds, removals, reroutes, and link
/// remaps, tracking the running path count so every edit is in range.
fn random_delta(rng: &mut StdRng, np: usize, nc: usize) -> TopologyDelta {
    let mut delta = TopologyDelta::new();
    let mut cur_np = np;
    for _ in 0..rng.gen_range(1..=3usize) {
        match rng.gen_range(0..4u8) {
            0 => {
                let k = rng.gen_range(1..=3usize.min(nc));
                delta = delta.add_path((0..k).map(|_| rng.gen_range(0..nc)).collect());
                cur_np += 1;
            }
            1 if cur_np > 3 => {
                delta = delta.remove_path(PathId(rng.gen_range(0..cur_np) as u32));
                cur_np -= 1;
            }
            2 => {
                let p = rng.gen_range(0..cur_np);
                let k = rng.gen_range(1..=3usize.min(nc));
                delta = delta
                    .reroute_path(PathId(p as u32), (0..k).map(|_| rng.gen_range(0..nc)).collect());
            }
            _ => {
                delta = delta.remap_link(rng.gen_range(0..nc), rng.gen_range(0..nc));
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random delta sequences (add/remove/reroute/remap interleaved
    /// with snapshots) on random trees: after the sliding window
    /// flushes, the churned estimator's refresh outcome, variances,
    /// Phase-2 estimates, and kept columns are bitwise equal to a
    /// fresh estimator on the new topology fed the same window.
    #[test]
    fn churned_estimator_is_bit_identical_to_fresh_after_flush(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
        let mut red = random_tree(seed);
        let nc = red.num_links();
        let w = 8usize;
        let cfg = OnlineConfig {
            window: WindowMode::Sliding(w),
            ..OnlineConfig::default()
        };
        let mut online = OnlineEstimator::new(&red, cfg);
        for round in 0..3 {
            for _ in 0..rng.gen_range(2..6usize) {
                let row = random_row(&mut rng, red.num_paths());
                let _ = online.ingest_log_rates(&row);
            }
            if round < 2 {
                let delta = random_delta(&mut rng, red.num_paths(), nc);
                red.apply_delta(&delta).expect("generated delta is valid");
                let report = online.apply_delta(&delta).expect("estimator accepts valid delta");
                // The estimator tracks the mirror topology exactly.
                prop_assert!(online.topology().matrix == red.matrix);
                prop_assert_eq!(
                    report.carried_pairs + report.recomputed_pairs,
                    online.augmented().num_rows()
                );
            }
        }
        // Flush the window: w post-churn rows, retained verbatim.
        let mut tail: Vec<Vec<f64>> = Vec::new();
        for _ in 0..w {
            let row = random_row(&mut rng, red.num_paths());
            let _ = online.ingest_log_rates(&row);
            tail.push(row);
        }
        prop_assert!(online.covariance().is_churn_free());
        prop_assert!(online.staleness().is_flushed());
        prop_assert_eq!(online.staleness().warming_pairs, 0);
        // The robustness gate: bit-identical to a fresh estimator fed
        // the same window, including the failure mode (both succeed or
        // both report the same unsolvable system).
        let mut fresh = OnlineEstimator::new(&red, cfg);
        for row in &tail {
            let _ = fresh.ingest_log_rates(row);
        }
        let a = online.refresh();
        let b = fresh.refresh();
        prop_assert!(
            a.is_ok() == b.is_ok(),
            "refresh outcome diverged: {:?} vs {:?}",
            a,
            b
        );
        if a.is_ok() {
            prop_assert_eq!(&online.variances().unwrap().v, &fresh.variances().unwrap().v);
            prop_assert_eq!(online.kept_columns(), fresh.kept_columns());
            let y = tail.last().unwrap();
            prop_assert_eq!(
                online.estimate(y).unwrap().transmission,
                fresh.estimate(y).unwrap().transmission
            );
        }
    }
}

/// Fleet isolation: applying a topology delta to one tenant leaves a
/// neighbouring tenant's event stream and estimator state bitwise
/// unchanged relative to a control fleet that never churned.
#[test]
fn churning_one_tenant_never_perturbs_another() {
    let red_a = random_tree(77);
    let red_b = random_tree(78);
    let mut rng = StdRng::seed_from_u64(79);
    let mut scenario_a = CongestionScenario::draw(
        red_a.num_links(),
        0.3,
        CongestionDynamics::Markov {
            stay_congested: 0.8,
        },
        &mut rng,
    );
    let mut scenario_b = CongestionScenario::draw(
        red_b.num_links(),
        0.3,
        CongestionDynamics::Markov {
            stay_congested: 0.8,
        },
        &mut rng,
    );
    let probe = ProbeConfig {
        probes_per_snapshot: 120,
        ..ProbeConfig::default()
    };
    let ms_a = simulate_run(&red_a, &mut scenario_a, &probe, 24, &mut rng);
    let ms_b = simulate_run(&red_b, &mut scenario_b, &probe, 24, &mut rng);

    let cfg = OnlineConfig {
        window: WindowMode::Sliding(8),
        ..OnlineConfig::default()
    };
    let mut churned = Fleet::new(FleetConfig::default());
    let a = churned.add_tenant("a", &red_a, cfg);
    let b = churned.add_tenant("b", &red_b, cfg);
    let mut control = Fleet::new(FleetConfig::default());
    let cb = control.add_tenant("b", &red_b, cfg);

    let mut churned_b_events: Vec<String> = Vec::new();
    let mut control_b_events: Vec<String> = Vec::new();
    let nc_a = red_a.num_links();
    let mut red_a2 = red_a.clone();
    for (i, (sa, sb)) in ms_a.snapshots.iter().zip(ms_b.snapshots.iter()).enumerate() {
        // Half-way through, tenant a's routing churns mid-stream.
        if i == 12 {
            let delta = TopologyDelta::new()
                .reroute_path(PathId(0), vec![0, nc_a - 1])
                .add_path(vec![0, 1]);
            red_a2.apply_delta(&delta).unwrap();
            let events = churned.update_topology(a, &delta).unwrap();
            assert!(events
                .iter()
                .all(|e| e.tenant == a), "admin events stay on the churned tenant");
        }
        // Tenant a's feed follows its current topology.
        if i < 12 {
            churned.enqueue(a, sa.clone()).unwrap();
        } else {
            let mut sc2 = CongestionScenario::draw(
                red_a2.num_links(),
                0.3,
                CongestionDynamics::Fixed,
                &mut rng,
            );
            let sa2 = simulate_run(&red_a2, &mut sc2, &probe, 1, &mut rng);
            churned.enqueue(a, sa2.snapshots[0].clone()).unwrap();
        }
        churned.enqueue(b, sb.clone()).unwrap();
        control.enqueue(cb, sb.clone()).unwrap();
        for e in churned.drain() {
            if e.tenant == b {
                churned_b_events.push(format!("{}:{:?}", e.seq, e.kind));
            }
        }
        for e in control.drain() {
            control_b_events.push(format!("{}:{:?}", e.seq, e.kind));
        }
    }
    assert_eq!(churned_b_events, control_b_events, "neighbour events diverged");
    assert_eq!(
        churned.estimator(b).variances().unwrap().v,
        control.estimator(cb).variances().unwrap().v
    );
    assert_eq!(
        churned.estimator(b).congested_links(),
        control.estimator(cb).congested_links()
    );
}
