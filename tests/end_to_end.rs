//! Integration tests: the full pipeline across all four crates.

use losstomo::prelude::*;
use losstomo::topology::fixtures;
use losstomo::topology::gen::tree::{self, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Noise-free sanity check on the Figure-1 fixture: with oracle
/// variances, Phase 2 recovers the exact loss rates of the congested
/// links and assigns zero to the rest.
#[test]
fn noiseless_phase2_recovers_exact_rates() {
    let red = fixtures::reduced(&fixtures::figure1());
    let phi = [0.85_f64, 1.0, 0.92, 1.0, 1.0];
    let x: Vec<f64> = phi.iter().map(|p| p.ln()).collect();
    let y = red.matrix.to_dense().matvec(&x).unwrap();
    let variances = [0.4, 0.0, 0.2, 0.0, 0.0];
    let est = infer_link_rates(&red, &variances, &y, &LiaConfig::default()).unwrap();
    for (k, (&est_phi, &true_phi)) in est.transmission.iter().zip(phi.iter()).enumerate() {
        assert!(
            (est_phi - true_phi).abs() < 1e-9,
            "link {k}: {est_phi} vs {true_phi}"
        );
    }
}

/// The headline result, end to end: simulate a tree with bursty losses,
/// learn variances, infer rates, and verify detection quality plus the
/// Figure-7 invariant.
#[test]
fn full_pipeline_on_simulated_tree() {
    let mut rng = StdRng::seed_from_u64(42);
    let topo = tree::generate(
        TreeParams {
            nodes: 150,
            max_branching: 6,
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);

    let cfg = ExperimentConfig {
        snapshots: 40,
        seed: 7,
        run_scfs: true,
        ..ExperimentConfig::default()
    };
    let res = run_experiment(&red, &cfg).unwrap();
    assert!(
        res.location.detection_rate >= 0.85,
        "DR = {}",
        res.location.detection_rate
    );
    // Figure-7 invariant: all congested links fit in R*.
    assert!(res.congested_to_kept_ratio() <= 1.0);
    // LIA beats single-snapshot SCFS on detection.
    let scfs = res.scfs_location.unwrap();
    assert!(
        res.location.detection_rate >= scfs.detection_rate,
        "LIA {} vs SCFS {}",
        res.location.detection_rate,
        scfs.detection_rate
    );
}

/// Learning variances from more snapshots must not hurt — DR at m = 60
/// is at least as good as m = 5 minus slack (Figure 5's trend).
#[test]
fn more_snapshots_do_not_hurt() {
    let mut rng = StdRng::seed_from_u64(3);
    let topo = tree::generate(
        TreeParams {
            nodes: 120,
            max_branching: 5,
        },
        &mut rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);
    let dr = |m: usize| {
        let cfg = ExperimentConfig {
            snapshots: m,
            seed: 11,
            ..ExperimentConfig::default()
        };
        let results = run_many(&red, &cfg, 3);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / ok.len() as f64
    };
    let dr_small = dr(5);
    let dr_large = dr(60);
    assert!(
        dr_large + 0.10 >= dr_small,
        "m=60 DR {dr_large} much worse than m=5 DR {dr_small}"
    );
}

/// The measurement side and inference side agree on dimensions for
/// every mesh generator.
#[test]
fn all_generators_feed_the_pipeline() {
    use losstomo::topology::gen::{
        barabasi::{self, BarabasiParams},
        dimes::{self, DimesParams},
        hierarchical::{self, HierMode, HierParams},
        planetlab::{self, PlanetLabParams},
        waxman::{self, WaxmanParams},
    };
    let mut rng = StdRng::seed_from_u64(9);
    let topos = vec![
        waxman::generate(
            WaxmanParams {
                nodes: 80,
                hosts: 8,
                ..WaxmanParams::default()
            },
            &mut rng,
        ),
        barabasi::generate(
            BarabasiParams {
                nodes: 80,
                hosts: 8,
                ..BarabasiParams::default()
            },
            &mut rng,
        ),
        hierarchical::generate(
            HierParams {
                as_count: 4,
                routers_per_as: 15,
                hosts: 8,
                mode: HierMode::TopDown,
            },
            &mut rng,
        ),
        planetlab::generate(
            PlanetLabParams {
                sites: 8,
                core_routers: 4,
                ..PlanetLabParams::default()
            },
            &mut rng,
        ),
        dimes::generate(
            DimesParams {
                as_count: 12,
                hosts: 8,
                ..DimesParams::default()
            },
            &mut rng,
        ),
    ];
    for topo in topos {
        let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
        let red = reduce(&topo.graph, &paths);
        let cfg = ExperimentConfig {
            snapshots: 10,
            seed: 5,
            ..ExperimentConfig::default()
        };
        let res = run_experiment(&red, &cfg).unwrap();
        assert_eq!(res.est_loss.len(), red.num_links());
        assert_eq!(res.true_loss.len(), red.num_links());
    }
}

/// Serde round-trip of experiment results (operators persist these).
#[test]
fn experiment_results_serialize() {
    let red = fixtures::reduced(&fixtures::figure1());
    let cfg = ExperimentConfig {
        snapshots: 10,
        seed: 2,
        ..ExperimentConfig::default()
    };
    let res = run_experiment(&red, &cfg).unwrap();
    let json = serde_json::to_string(&res).unwrap();
    let back: losstomo::core::ExperimentResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.kept_count, res.kept_count);
    assert_eq!(back.est_loss, res.est_loss);
}
