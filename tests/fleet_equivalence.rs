//! Fleet ≡ standalone equivalence: a multi-tenant [`Fleet`] must
//! produce, for every tenant, **bit-identical** Phase-1 variances,
//! Phase-2 estimates, congested sets, and congested-set change events
//! to driving that tenant's `OnlineEstimator` alone — at any worker
//! count, any queue capacity, and either scratch mode.
//!
//! This is the fleet layer's core invariant (see `losstomo-fleet`'s
//! crate docs): the fleet adds scheduling, never arithmetic.

use losstomo::prelude::*;
use losstomo::topology::gen::tree::{self, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One recorded congested-set change: `(seq, appeared, cleared)`.
type Change = (u64, Vec<usize>, Vec<usize>);

const TENANTS: usize = 16;
const ROUNDS: usize = 18;

/// One tenant's independent world: topology + deterministic snapshot
/// feed (regenerable from its seed).
fn tenant_topology(t: usize) -> ReducedTopology {
    let mut rng = StdRng::seed_from_u64(300 + t as u64);
    // Heterogeneous fleet: tenants differ in size and shape.
    let topo = tree::generate(
        TreeParams {
            nodes: 40 + 7 * (t % 5),
            max_branching: 3 + t % 3,
        },
        &mut rng,
    );
    let setup = losstomo::experiment_setup(&topo.graph, &topo.beacons, &topo.destinations);
    setup.red
}

fn tenant_snapshots(red: &ReducedTopology, t: usize) -> Vec<Snapshot> {
    let mut rng = StdRng::seed_from_u64(8800 + t as u64);
    let scenario = CongestionScenario::draw(
        red.num_links(),
        0.25,
        CongestionDynamics::Markov {
            stay_congested: 0.7,
        },
        &mut rng,
    );
    let probe = ProbeConfig {
        probes_per_snapshot: 150,
        ..ProbeConfig::default()
    };
    simulate_stream(red, scenario, &probe, rng)
        .take(ROUNDS)
        .collect::<MeasurementSet>()
        .snapshots
}

/// The standalone reference: per-tenant online runs, recording every
/// update (the exact facts the fleet must reproduce).
struct Reference {
    variances: Vec<Vec<f64>>,
    congested: Vec<Vec<usize>>,
    transmission: Vec<Vec<f64>>,
    /// Per tenant: one [`Change`] per snapshot that changed the
    /// congested set.
    changes: Vec<Vec<Change>>,
}

fn standalone_reference(
    topologies: &[ReducedTopology],
    feeds: &[Vec<Snapshot>],
    online: OnlineConfig,
) -> Reference {
    let mut reference = Reference {
        variances: Vec::new(),
        congested: Vec::new(),
        transmission: Vec::new(),
        changes: Vec::new(),
    };
    for (red, feed) in topologies.iter().zip(feeds.iter()) {
        let mut est = OnlineEstimator::new(red, online);
        let mut changes = Vec::new();
        for (i, snap) in feed.iter().enumerate() {
            let update = est.ingest(snap).expect("standalone ingest");
            if !update.appeared.is_empty() || !update.cleared.is_empty() {
                changes.push((i as u64 + 1, update.appeared, update.cleared));
            }
            if i + 1 == feed.len() {
                reference.transmission.push(
                    update
                        .estimate
                        .expect("warm after full feed")
                        .transmission,
                );
            }
        }
        reference
            .variances
            .push(est.variances().expect("warm").v.clone());
        reference.congested.push(est.congested_links().to_vec());
        reference.changes.push(changes);
    }
    reference
}

fn run_fleet(
    topologies: &[ReducedTopology],
    feeds: &[Vec<Snapshot>],
    online: OnlineConfig,
    workers: Option<usize>,
    queue_capacity: usize,
) -> (Fleet, Vec<TenantId>, Vec<FleetEvent>) {
    let mut fleet = Fleet::new(FleetConfig {
        queue_capacity,
        workers,
        ..FleetConfig::default()
    });
    let ids: Vec<TenantId> = topologies
        .iter()
        .enumerate()
        .map(|(t, red)| fleet.add_tenant(format!("net-{t}"), red, online))
        .collect();
    // Interleave all feeds round-robin (the fan-in arrival order a
    // shared collector would see).
    let mut batch = Vec::new();
    for round in 0..ROUNDS {
        for (t, feed) in feeds.iter().enumerate() {
            batch.push((ids[t], feed[round].clone()));
        }
    }
    let events = fleet.ingest_batch(batch).expect("fleet ingest");
    (fleet, ids, events)
}

fn assert_fleet_matches_reference(
    topologies: &[ReducedTopology],
    feeds: &[Vec<Snapshot>],
    online: OnlineConfig,
    workers: Option<usize>,
    queue_capacity: usize,
    reference: &Reference,
) {
    let (fleet, ids, events) = run_fleet(topologies, feeds, online, workers, queue_capacity);
    for (t, &id) in ids.iter().enumerate() {
        let est = fleet.estimator(id);
        assert_eq!(
            est.variances().expect("warm tenant").v,
            reference.variances[t],
            "tenant {t}: Phase-1 variances drifted (workers {workers:?})"
        );
        assert_eq!(
            est.congested_links(),
            reference.congested[t],
            "tenant {t}: congested set drifted"
        );
        // Scoring the final snapshot through the fleet's memoized
        // Phase-2 factor must reproduce the standalone estimate.
        let final_est = est
            .estimate(&feeds[t][ROUNDS - 1].log_rates())
            .expect("estimate");
        assert_eq!(
            final_est.transmission, reference.transmission[t],
            "tenant {t}: Phase-2 transmission rates drifted"
        );
        // Event stream = standalone congested-set diffs, in order.
        let tenant_events: Vec<Change> = events
            .iter()
            .filter(|e| e.tenant == id)
            .map(|e| match &e.kind {
                FleetEventKind::CongestionChanged {
                    appeared, cleared, ..
                } => (e.seq, appeared.clone(), cleared.clone()),
                FleetEventKind::EstimatorError { message }
                | FleetEventKind::TenantQuarantined { message } => {
                    panic!("tenant {t}: unexpected estimator error: {message}")
                }
                other @ (FleetEventKind::TopologyChurned { .. }
                | FleetEventKind::TenantRevived) => {
                    panic!("tenant {t}: unexpected admin event: {other:?}")
                }
            })
            .collect();
        assert_eq!(
            tenant_events, reference.changes[t],
            "tenant {t}: event stream drifted"
        );
        let stats = fleet.stats(id);
        assert_eq!(stats.ingested, ROUNDS as u64);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.errors, 0);
    }
}

#[test]
fn sixteen_tenant_fleet_is_bit_identical_to_standalone_at_any_worker_count() {
    let topologies: Vec<ReducedTopology> = (0..TENANTS).map(tenant_topology).collect();
    let feeds: Vec<Vec<Snapshot>> = topologies
        .iter()
        .enumerate()
        .map(|(t, red)| tenant_snapshots(red, t))
        .collect();
    let online = OnlineConfig::default();
    let reference = standalone_reference(&topologies, &feeds, online);
    // Serial, few-threads, one-shard-per-tenant, and the
    // LOSSTOMO_THREADS-governed default must all agree bitwise.
    for workers in [Some(1), Some(3), Some(TENANTS), None] {
        assert_fleet_matches_reference(&topologies, &feeds, online, workers, 64, &reference);
    }
    // Tight queues (forcing mid-batch backpressure drains) must not
    // change anything either.
    assert_fleet_matches_reference(&topologies, &feeds, online, Some(4), 2, &reference);
}

#[test]
fn fleet_matches_standalone_under_alloc_per_refresh_scratch() {
    // The scratch knob trades allocations, never bits: a fleet running
    // the reallocating baseline must match the same standalone runs.
    let n = 6;
    let topologies: Vec<ReducedTopology> = (0..n).map(tenant_topology).collect();
    let feeds: Vec<Vec<Snapshot>> = topologies
        .iter()
        .enumerate()
        .map(|(t, red)| tenant_snapshots(red, t))
        .collect();
    let reuse = OnlineConfig::default();
    let alloc = OnlineConfig {
        scratch: ScratchMode::AllocPerRefresh,
        ..OnlineConfig::default()
    };
    let reference = standalone_reference(&topologies, &feeds, reuse);
    assert_fleet_matches_reference(&topologies, &feeds, alloc, Some(2), 16, &reference);
}

#[test]
fn sliding_window_tenants_match_standalone() {
    // A bounded-memory fleet (sliding windows, slow refresh cadence)
    // keeps the same invariant.
    let n = 5;
    let topologies: Vec<ReducedTopology> = (0..n).map(tenant_topology).collect();
    let feeds: Vec<Vec<Snapshot>> = topologies
        .iter()
        .enumerate()
        .map(|(t, red)| tenant_snapshots(red, t))
        .collect();
    let online = OnlineConfig {
        window: WindowMode::Sliding(8),
        refresh_every: 3,
        ..OnlineConfig::default()
    };
    let reference = standalone_reference(&topologies, &feeds, online);
    for workers in [Some(1), Some(n)] {
        assert_fleet_matches_reference(&topologies, &feeds, online, workers, 64, &reference);
    }
}
