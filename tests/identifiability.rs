//! Integration tests for Theorem 1 across topology families.

use losstomo::core::{check_identifiability, AugmentedSystem};
use losstomo::prelude::*;
use losstomo::topology::flutter;
use losstomo::topology::gen::{
    barabasi::{self, BarabasiParams},
    planetlab::{self, PlanetLabParams},
    tree::{self, TreeParams},
    waxman::{self, WaxmanParams},
    GeneratedTopology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reduced_flutter_free(topo: &GeneratedTopology) -> ReducedTopology {
    let mut paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    flutter::remove_fluttering_paths(&mut paths);
    reduce(&topo.graph, &paths)
}

/// Theorem 1 on random trees of several sizes: rank(A) = n_c always.
#[test]
fn theorem1_on_trees() {
    for seed in 0..4 {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = tree::generate(
            TreeParams {
                nodes: 60 + 40 * seed as usize,
                max_branching: 4 + seed as usize,
            },
            &mut rng,
        );
        let red = reduced_flutter_free(&topo);
        let aug = AugmentedSystem::build(&red);
        assert!(
            aug.is_identifiable(),
            "tree seed {seed}: rank(A) < n_c = {}",
            red.num_links()
        );
    }
}

/// Theorem 1 on mesh topologies (multi-beacon, flutter-filtered).
#[test]
fn theorem1_on_meshes() {
    let mut rng = StdRng::seed_from_u64(17);
    let topos: Vec<(&str, GeneratedTopology)> = vec![
        (
            "waxman",
            waxman::generate(
                WaxmanParams {
                    nodes: 90,
                    hosts: 10,
                    ..WaxmanParams::default()
                },
                &mut rng,
            ),
        ),
        (
            "barabasi",
            barabasi::generate(
                BarabasiParams {
                    nodes: 90,
                    hosts: 10,
                    ..BarabasiParams::default()
                },
                &mut rng,
            ),
        ),
        (
            "planetlab",
            planetlab::generate(
                PlanetLabParams {
                    sites: 10,
                    core_routers: 5,
                    ..PlanetLabParams::default()
                },
                &mut rng,
            ),
        ),
    ];
    for (name, topo) in topos {
        let red = reduced_flutter_free(&topo);
        let report = check_identifiability(&red);
        assert!(
            report.variances_identifiable,
            "{name}: rank(A) < n_c = {}",
            report.num_links
        );
        // And the motivating premise: first moments are NOT identifiable.
        assert!(
            !report.first_moment_identifiable,
            "{name}: R unexpectedly full rank — the tomography problem would be trivial"
        );
    }
}

/// Removing fluttering paths is what buys T.2; check the filter output
/// on meshes (there may be zero flutters, but never any left over).
#[test]
fn flutter_filter_leaves_clean_path_sets() {
    for seed in 0..3 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let topo = waxman::generate(
            WaxmanParams {
                nodes: 70,
                hosts: 8,
                ..WaxmanParams::default()
            },
            &mut rng,
        );
        let mut paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
        flutter::remove_fluttering_paths(&mut paths);
        assert!(flutter::find_fluttering_pairs(&paths).is_empty());
    }
}

/// The paper's Figure-2 property on our fixture: the variance system is
/// identifiable with multiple beacons even where `R` is rank deficient.
#[test]
fn figure2_identifiability() {
    let topo = losstomo::topology::fixtures::figure2();
    let red = reduced_flutter_free(&topo);
    let report = check_identifiability(&red);
    assert!(report.variances_identifiable);
    assert!(!report.first_moment_identifiable);
    assert!(report.r_rank < report.num_links);
}
