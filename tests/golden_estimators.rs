//! Golden regression test for the estimator zoo.
//!
//! Runs every [`EstimatorKind`] backend on one fixed seeded tree
//! scenario — same centred measurements, same evaluation snapshot — and
//! pins each backend's headline numbers (congested-link count, Phase-1
//! row usage, mean transmission rate, mean learned variance) against a
//! committed JSON fixture. A behavioural change to *any* backend, or to
//! the shared simulation stream feeding them, shows up as drift here.
//!
//! To regenerate the fixture after an *intentional* change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_estimators
//! ```

use std::collections::BTreeMap;
use std::sync::OnceLock;

use losstomo::core::budget::PairBudget;
use losstomo::prelude::*;
use losstomo::topology::gen::tree::{self, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_estimators.json"
);

const THRESHOLD: f64 = losstomo::netsim::DEFAULT_LOSS_THRESHOLD;

fn golden_summary() -> &'static BTreeMap<String, f64> {
    static SUMMARY: OnceLock<BTreeMap<String, f64>> = OnceLock::new();
    SUMMARY.get_or_init(run_golden_backends)
}

fn run_golden_backends() -> BTreeMap<String, f64> {
    // Same scenario family as golden_pipeline: a 60-node tree, 30
    // training snapshots, sim seed 9 — but here every backend consumes
    // the identical measurements.
    let mut trng = StdRng::seed_from_u64(123);
    let topo = tree::generate(
        TreeParams {
            nodes: 60,
            max_branching: 4,
        },
        &mut trng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);

    let m = 30;
    let mut rng = StdRng::seed_from_u64(9);
    let mut scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let ms = simulate_run(&red, &mut scenario, &ProbeConfig::default(), m + 1, &mut rng);
    let train = MeasurementSet {
        snapshots: ms.snapshots[..m].to_vec(),
    };
    let centered = CenteredMeasurements::new(&train);
    let y = ms.snapshots[m].log_rates();

    let mut summary = BTreeMap::new();
    for kind in EstimatorKind::all() {
        let backend = build_estimator(
            kind,
            LiaConfig::default(),
            VarianceConfig::default(),
            PairBudget::Full,
        );
        let out = backend
            .estimate(&red, &centered, &y)
            .expect("every backend supports the golden tree");
        let n = red.num_links() as f64;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
        let name = kind.name();
        summary.insert(
            format!("{name}.congested_count"),
            out.congested_links(THRESHOLD).len() as f64,
        );
        summary.insert(
            format!("{name}.rows_used"),
            out.diagnostics.rows_used as f64,
        );
        summary.insert(
            format!("{name}.dropped_rows"),
            out.diagnostics.dropped_rows as f64,
        );
        summary.insert(
            format!("{name}.transmission_mean"),
            mean(&out.estimate.transmission),
        );
        summary.insert(
            format!("{name}.variance_mean"),
            mean(&out.diagnostics.variances),
        );
    }
    summary
}

#[test]
fn golden_estimators_match_fixture() {
    let actual = golden_summary();

    if std::env::var("GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&actual).unwrap();
        std::fs::write(FIXTURE_PATH, json + "\n").expect("write fixture");
        return;
    }

    let fixture: BTreeMap<String, f64> = serde_json::from_str(
        &std::fs::read_to_string(FIXTURE_PATH).expect("fixture missing — run with GOLDEN_REGEN=1"),
    )
    .expect("fixture must parse");

    assert_eq!(
        fixture.keys().collect::<Vec<_>>(),
        actual.keys().collect::<Vec<_>>(),
        "fixture fields drifted from the test's summary"
    );
    for (key, expected) in &fixture {
        let got = actual[key];
        assert!(
            (got - expected).abs() < 1e-9,
            "golden drift on `{key}`: fixture {expected}, got {got}"
        );
    }
}

/// The fixture's internal cross-backend invariants, independent of the
/// JSON numbers: every backend finds congestion on the golden tree, the
/// variance-learning backends stay inside physical transmission bounds
/// (first-moment is deliberately unclamped and may drift just past 1),
/// and the first-moment baseline uses no Phase-1 rows at all.
#[test]
fn golden_backends_cross_invariants() {
    let s = golden_summary();
    assert_eq!(s["first-moment.rows_used"], 0.0);
    assert!(s["zhu-mle.rows_used"] >= s["lia.rows_used"]);
    for kind in EstimatorKind::all() {
        let name = kind.name();
        assert!(s[&format!("{name}.congested_count")] > 0.0, "{name} found nothing");
        let mean = s[&format!("{name}.transmission_mean")];
        if name == "first-moment" {
            assert!((0.0..=1.05).contains(&mean), "first-moment mean {mean} far outside [0, 1]");
        } else {
            assert!((0.0..=1.0).contains(&mean), "{name} transmission mean {mean} outside [0, 1]");
        }
    }
}
