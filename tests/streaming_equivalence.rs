//! Streaming ↔ batch equivalence on the golden scenario.
//!
//! Replays the exact experiment pinned by `tests/fixtures/golden_tree.json`
//! (same topology generator seed, same measurement RNG stream) through
//! the streaming path — `simulate_stream` feeding an `OnlineEstimator`
//! one snapshot at a time — and asserts that:
//!
//! 1. the online Phase-1 variances are **bit-for-bit** the batch
//!    `estimate_variances` output,
//! 2. the online Phase-2 link rates on the evaluation snapshot are
//!    bit-for-bit the batch `infer_link_rates` output, and
//! 3. the summary statistics derived from the streaming run match the
//!    committed golden fixture.
//!
//! Any divergence between the incremental machinery (gram cache,
//! memoized QR, covariance replay) and the batch pipeline shows up here
//! immediately.

use std::collections::BTreeMap;

use losstomo::core::location_accuracy;
use losstomo::prelude::*;
use losstomo::topology::gen::tree::{self, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_tree.json"
);

/// The golden scenario's topology and measurements, reproduced exactly
/// as `run_experiment` draws them in `tests/golden_pipeline.rs` (same
/// generator seed 123, same experiment seed 9, 30 + 1 snapshots).
fn golden_measurements() -> (ReducedTopology, MeasurementSet, usize) {
    let mut topo_rng = StdRng::seed_from_u64(123);
    let topo = tree::generate(
        TreeParams {
            nodes: 60,
            max_branching: 4,
        },
        &mut topo_rng,
    );
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = reduce(&topo.graph, &paths);
    let m = 30;
    let mut rng = StdRng::seed_from_u64(9);
    let scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    // Stream the m + 1 snapshots (bit-identical to the batch
    // `simulate_run` inside `run_experiment`).
    let ms: MeasurementSet = simulate_stream(&red, scenario, &ProbeConfig::default(), rng)
        .take(m + 1)
        .collect();
    (red, ms, m)
}

#[test]
fn online_estimator_reproduces_golden_batch_bitwise() {
    let (red, ms, m) = golden_measurements();

    // Batch reference: Phase 1 on the first m snapshots, Phase 2 on the
    // evaluation snapshot — the exact `run_experiment` pipeline.
    let aug = AugmentedSystem::build(&red);
    let train = MeasurementSet {
        snapshots: ms.snapshots[..m].to_vec(),
    };
    let centered = CenteredMeasurements::new(&train);
    let batch_v = estimate_variances(&red, &aug, &centered, &VarianceConfig::default())
        .expect("golden Phase 1 must solve");
    let eval = &ms.snapshots[m];
    let y_eval = eval.log_rates();
    let batch_p2 = infer_link_rates(&red, &batch_v.v, &y_eval, &LiaConfig::default())
        .expect("golden Phase 2 must solve");

    // Streaming: ingest the training snapshots one at a time.
    let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
    for snap in &ms.snapshots[..m] {
        online.ingest(snap).expect("online ingest");
    }
    let online_v = online.variances().expect("warm after 30 snapshots");
    assert_eq!(online_v.v, batch_v.v, "Phase-1 variances must be bit-identical");
    assert_eq!(online_v.dropped_rows, batch_v.dropped_rows);
    assert_eq!(online_v.used_rows, batch_v.used_rows);

    let online_p2 = online.estimate(&y_eval).expect("online Phase 2");
    assert_eq!(
        online_p2.transmission, batch_p2.transmission,
        "Phase-2 link rates must be bit-identical"
    );
    assert_eq!(online_p2.kept, batch_p2.kept);
    assert_eq!(online_p2.kept_count, batch_p2.kept_count);

    // The streaming run must land on the committed golden summary.
    let threshold = ProbeConfig::default().loss_model.threshold();
    let truth_flags: Vec<bool> = eval.link_truth.iter().map(|t| t.congested).collect();
    let est_flags: Vec<bool> = online_p2
        .loss_rates()
        .iter()
        .map(|&l| l > threshold)
        .collect();
    let location = location_accuracy(&truth_flags, &est_flags);
    let actual = BTreeMap::from([
        ("congested_count", truth_flags.iter().filter(|&&c| c).count() as f64),
        ("detection_rate", location.detection_rate),
        ("dropped_rows", online_v.dropped_rows as f64),
        ("false_positive_rate", location.false_positive_rate),
        ("kept_count", online_p2.kept_count as f64),
    ]);
    let fixture: BTreeMap<String, f64> = serde_json::from_str(
        &std::fs::read_to_string(FIXTURE_PATH).expect("golden fixture present"),
    )
    .expect("fixture parses");
    for (key, expected) in &fixture {
        let got = actual[key.as_str()];
        assert!(
            (got - expected).abs() < 1e-9,
            "streaming drifted from golden fixture on `{key}`: fixture {expected}, got {got}"
        );
    }
}

/// A refresh cadence > 1 must not change what a forced refresh produces:
/// ingest on a sparse cadence, force the final refresh, and land on the
/// same bits as the per-snapshot run.
#[test]
fn sparse_cadence_with_forced_refresh_matches_dense_cadence() {
    let (red, ms, m) = golden_measurements();
    let mut dense = OnlineEstimator::new(&red, OnlineConfig::default());
    let mut sparse = OnlineEstimator::new(
        &red,
        OnlineConfig {
            refresh_every: 7,
            ..OnlineConfig::default()
        },
    );
    for snap in &ms.snapshots[..m] {
        dense.ingest(snap).expect("dense ingest");
        sparse.ingest(snap).expect("sparse ingest");
    }
    sparse.refresh().expect("forced refresh");
    assert_eq!(
        dense.variances().unwrap().v,
        sparse.variances().unwrap().v,
        "cadence must not change the refreshed model"
    );
    let y = ms.snapshots[m].log_rates();
    assert_eq!(
        dense.estimate(&y).unwrap().transmission,
        sparse.estimate(&y).unwrap().transmission
    );
}
