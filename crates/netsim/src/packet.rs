//! Probe packet wire format.
//!
//! Section 7.1: "Each probe is a UDP packet of 40 bytes. The probing
//! packets consist of a 20-byte IP header, an 8-byte UDP header, and a
//! payload of 12 bytes that contains the probing packet sequence
//! number." This module reproduces that format exactly, so the examples
//! and the loopback tests can exercise a realistic encode → lossy
//! channel → decode pipeline. The hot simulation loop works on logical
//! packets instead; see [`crate::engine`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Total probe size on the wire (paper: 40 bytes).
pub const PROBE_WIRE_SIZE: usize = 40;
/// IPv4 header length (no options).
pub const IP_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;
/// Payload length (sequence number + measurement ids).
pub const PAYLOAD_LEN: usize = 12;

/// UDP port used by the probing tool (arbitrary registered-range port,
/// fixed so that flow-identification-based load balancing sees one flow
/// per path — Section 3.1's argument for why T.2 holds under ECMP).
pub const PROBE_PORT: u16 = 33_434;

/// A decoded probe packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePacket {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// Sequence number within the snapshot (0-based).
    pub seq: u32,
    /// Snapshot index the probe belongs to.
    pub snapshot: u32,
    /// Path id, so the collector can bin replies without a lookup.
    pub path: u32,
}

impl ProbePacket {
    /// Encodes the probe into its 40-byte wire representation.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(PROBE_WIRE_SIZE);
        // --- IPv4 header (20 bytes, checksum left zero: computed by
        // the OS / NIC offload in a real deployment) ---
        b.put_u8(0x45); // version 4, IHL 5
        b.put_u8(0); // DSCP/ECN
        b.put_u16(PROBE_WIRE_SIZE as u16); // total length
        b.put_u16(0); // identification
        b.put_u16(0x4000); // flags: don't fragment
        b.put_u8(64); // TTL
        b.put_u8(17); // protocol: UDP
        b.put_u16(0); // header checksum (offloaded)
        b.put_u32(self.src_ip);
        b.put_u32(self.dst_ip);
        // --- UDP header (8 bytes) ---
        b.put_u16(PROBE_PORT); // source port
        b.put_u16(PROBE_PORT); // destination port
        b.put_u16((UDP_HEADER_LEN + PAYLOAD_LEN) as u16);
        b.put_u16(0); // UDP checksum (optional for IPv4)
        // --- payload (12 bytes) ---
        b.put_u32(self.seq);
        b.put_u32(self.snapshot);
        b.put_u32(self.path);
        debug_assert_eq!(b.len(), PROBE_WIRE_SIZE);
        b.freeze()
    }

    /// Decodes a probe from its wire representation.
    ///
    /// Returns `None` when the buffer is not a well-formed probe (wrong
    /// size, version, protocol, or port).
    pub fn decode(mut buf: Bytes) -> Option<Self> {
        if buf.len() != PROBE_WIRE_SIZE {
            return None;
        }
        let ver_ihl = buf.get_u8();
        if ver_ihl != 0x45 {
            return None;
        }
        buf.advance(1); // DSCP
        let total_len = buf.get_u16();
        if total_len as usize != PROBE_WIRE_SIZE {
            return None;
        }
        buf.advance(4); // id + flags
        buf.advance(1); // TTL
        let proto = buf.get_u8();
        if proto != 17 {
            return None;
        }
        buf.advance(2); // checksum
        let src_ip = buf.get_u32();
        let dst_ip = buf.get_u32();
        let sport = buf.get_u16();
        let dport = buf.get_u16();
        if sport != PROBE_PORT || dport != PROBE_PORT {
            return None;
        }
        buf.advance(4); // UDP length + checksum
        let seq = buf.get_u32();
        let snapshot = buf.get_u32();
        let path = buf.get_u32();
        Some(ProbePacket {
            src_ip,
            dst_ip,
            seq,
            snapshot,
            path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProbePacket {
        ProbePacket {
            src_ip: 0xC0A8_0001,
            dst_ip: 0x0A00_0002,
            seq: 123_456,
            snapshot: 42,
            path: 7,
        }
    }

    #[test]
    fn wire_size_is_forty_bytes() {
        assert_eq!(sample().encode().len(), 40);
        assert_eq!(IP_HEADER_LEN + UDP_HEADER_LEN + PAYLOAD_LEN, 40);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        let decoded = ProbePacket::decode(p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn decode_rejects_wrong_size() {
        let mut short = sample().encode().to_vec();
        short.pop();
        assert!(ProbePacket::decode(Bytes::from(short)).is_none());
    }

    #[test]
    fn decode_rejects_non_udp() {
        let mut raw = sample().encode().to_vec();
        raw[9] = 6; // TCP
        assert!(ProbePacket::decode(Bytes::from(raw)).is_none());
    }

    #[test]
    fn decode_rejects_foreign_port() {
        let mut raw = sample().encode().to_vec();
        raw[20] = 0;
        raw[21] = 80;
        assert!(ProbePacket::decode(Bytes::from(raw)).is_none());
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut raw = sample().encode().to_vec();
        raw[0] = 0x60; // IPv6-ish
        assert!(ProbePacket::decode(Bytes::from(raw)).is_none());
    }
}
