//! Bridge from the simulator's snapshot streams to the service-edge
//! wire format (`losstomo-wire`).
//!
//! The simulator produces owned [`Snapshot`]s; the service edge speaks
//! framed batches of raw log-rate rows. This module is the glue for
//! loadgen and tests: it pulls rounds from a [`SnapshotFanIn`], tracks
//! the per-tenant sequence numbers the fleet will assign on ingest,
//! and materializes the same rows as either a binary wire batch or the
//! JSON fallback — so every codec under benchmark carries *identical*
//! row content.
//!
//! The row-level encode path is allocation-free per snapshot:
//! [`encode_stream_frame`] streams `Snapshot::log_rates_into` through
//! one caller-owned scratch row straight into a [`BatchEncoder`].

use crate::fanin::SnapshotFanIn;
use crate::snapshot::Snapshot;
use bytes::Bytes;
use losstomo_wire::{BatchEncoder, JsonBatch, JsonFrame, WireEncodeOptions};
use rand::Rng;

/// Appends one frame to `enc`: a run of snapshots for one tenant,
/// starting at sequence `base_seq`, converted row by row through the
/// caller's `scratch` buffer (no per-snapshot allocation).
///
/// # Panics
/// Panics (in the encoder) when `snaps` is empty or snapshots disagree
/// on path count.
pub fn encode_stream_frame(
    enc: &mut BatchEncoder,
    tenant: u32,
    base_seq: u64,
    snaps: &[Snapshot],
    scratch: &mut Vec<f64>,
) {
    let first = snaps.first().expect("frame needs at least one snapshot");
    let paths = u32::try_from(first.path_received.len()).expect("path count fits u32");
    enc.begin_frame(tenant, base_seq, paths);
    for snap in snaps {
        snap.log_rates_into(scratch);
        enc.push_row(scratch);
    }
    enc.end_frame();
}

/// Collects fan-in rounds into codec-agnostic frames and tracks the
/// monotone per-tenant sequence numbers across batches.
#[derive(Debug)]
pub struct SnapshotBridge {
    next_seq: Vec<u64>,
    scratch: Vec<f64>,
}

impl SnapshotBridge {
    /// A bridge for `tenants` streams, all starting at sequence 0.
    pub fn new(tenants: usize) -> SnapshotBridge {
        SnapshotBridge {
            next_seq: vec![0; tenants],
            scratch: Vec::new(),
        }
    }

    /// Sequence number the next collected snapshot of `tenant` will
    /// carry.
    pub fn next_seq(&self, tenant: usize) -> u64 {
        self.next_seq[tenant]
    }

    /// Pulls `rounds` snapshots per tenant from the fan-in and groups
    /// them into one frame per tenant (in tenant order), advancing the
    /// per-tenant sequence counters. The returned [`JsonBatch`] is the
    /// codec-agnostic row content: feed it to [`batch_to_wire`] for
    /// the binary format or [`JsonBatch::encode`] for the fallback.
    pub fn collect_rounds<R: Rng>(
        &mut self,
        mux: &mut SnapshotFanIn<'_, R>,
        rounds: usize,
    ) -> JsonBatch {
        let tenants = self.next_seq.len();
        assert_eq!(mux.tenants(), tenants, "bridge/fan-in tenant mismatch");
        let mut frames: Vec<JsonFrame> = (0..tenants)
            .map(|t| JsonFrame {
                tenant: u32::try_from(t).expect("tenant fits u32"),
                base_seq: self.next_seq[t],
                rows: Vec::with_capacity(rounds),
            })
            .collect();
        for _ in 0..rounds {
            for _ in 0..tenants {
                let (t, snap) = mux.next().expect("snapshot streams are unbounded");
                snap.log_rates_into(&mut self.scratch);
                frames[t].rows.push(self.scratch.clone());
            }
        }
        for (t, seq) in self.next_seq.iter_mut().enumerate() {
            *seq += frames[t].rows.len() as u64;
        }
        JsonBatch { frames }
    }
}

/// Encodes collected frames as one binary wire batch. Row `f64` bit
/// patterns pass through unchanged, which is what keeps wire ingest
/// bit-identical to direct enqueue of the same snapshots.
pub fn batch_to_wire(batch: &JsonBatch, opts: WireEncodeOptions) -> Bytes {
    let payload: usize = batch
        .frames
        .iter()
        .map(|f| {
            BatchEncoder::frame_wire_size(
                opts,
                f.rows.len(),
                f.rows.first().map_or(0, Vec::len),
            )
        })
        .sum();
    let mut enc = BatchEncoder::with_capacity(opts, 16 + payload);
    for frame in &batch.frames {
        enc.push_frame(frame.tenant, frame.base_seq, &frame.rows);
    }
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_stream, ProbeConfig};
    use crate::fanin::fan_in;
    use crate::scenario::{CongestionDynamics, CongestionScenario};
    use losstomo_topology::fixtures;
    use losstomo_wire::WireBatch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mux(n_tenants: usize) -> SnapshotFanIn<'static, StdRng> {
        let red = Box::leak(Box::new(fixtures::reduced(&fixtures::figure1())));
        let cfg = ProbeConfig {
            probes_per_snapshot: 50,
            ..ProbeConfig::default()
        };
        let streams: Vec<_> = (0..n_tenants)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(7 + t as u64);
                let sc = CongestionScenario::draw(
                    red.num_links(),
                    0.3,
                    CongestionDynamics::Redraw,
                    &mut rng,
                );
                simulate_stream(red, sc, &cfg, rng)
            })
            .collect();
        fan_in(streams)
    }

    #[test]
    fn collected_rows_roundtrip_bit_identical_through_wire() {
        let mut m = mux(3);
        let mut bridge = SnapshotBridge::new(3);
        let collected = bridge.collect_rounds(&mut m, 4);
        assert_eq!(collected.frames.len(), 3);
        assert_eq!(bridge.next_seq(0), 4);

        let wire = batch_to_wire(&collected, WireEncodeOptions { crc: true });
        let parsed = WireBatch::parse(wire).expect("bridge output is valid");
        assert_eq!(parsed.frame_count(), 3);
        for (frame, want) in parsed.frames().zip(&collected.frames) {
            assert_eq!(frame.tenant(), want.tenant);
            assert_eq!(frame.base_seq(), want.base_seq);
            assert_eq!(frame.row_count(), want.rows.len());
            for (row, want_row) in frame.rows().zip(&want.rows) {
                for (p, w) in want_row.iter().enumerate() {
                    assert_eq!(row.get(p).to_bits(), w.to_bits());
                }
            }
        }
    }

    #[test]
    fn sequences_continue_across_batches() {
        let mut m = mux(2);
        let mut bridge = SnapshotBridge::new(2);
        let first = bridge.collect_rounds(&mut m, 3);
        let second = bridge.collect_rounds(&mut m, 2);
        assert_eq!(first.frames[1].base_seq, 0);
        assert_eq!(second.frames[1].base_seq, 3);
        assert_eq!(bridge.next_seq(1), 5);
    }

    #[test]
    fn stream_frame_matches_collected_rows() {
        let mut m = mux(1);
        let snaps: Vec<Snapshot> = (&mut m).take(3).map(|(_, s)| s).collect();
        let mut enc = BatchEncoder::new(WireEncodeOptions::default());
        let mut scratch = Vec::new();
        encode_stream_frame(&mut enc, 0, 10, &snaps, &mut scratch);
        let parsed = WireBatch::parse(enc.finish()).expect("valid");
        let frame = parsed.frame(0);
        assert_eq!(frame.base_seq(), 10);
        for (row, snap) in frame.rows().zip(&snaps) {
            let want = snap.log_rates();
            for (p, w) in want.iter().enumerate() {
                assert_eq!(row.get(p).to_bits(), w.to_bits());
            }
        }
    }
}
