//! Congestion scenarios: which links are congested, and how the
//! congested set evolves across snapshots.
//!
//! The paper fixes the *proportion* `p` of congested links for a
//! simulation run and learns variances over `m` snapshots; Phase 2 can
//! only discriminate links if the congested set is stable over the
//! learning window (Assumption S.3 ties a link's variance to its mean
//! congestion level). We therefore default to [`CongestionDynamics::Fixed`].
//! The Internet experiment of Section 7.2.2, however, observes congested
//! sets changing every few snapshots; [`CongestionDynamics::Markov`]
//! models that regime (and `Redraw` is the fully-iid extreme) for the
//! duration analysis and the persistence ablation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the set of congested links evolves across snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CongestionDynamics {
    /// The congested set is drawn once and stays fixed for the whole
    /// measurement period (the regime of the paper's simulations).
    #[default]
    Fixed,
    /// Each snapshot draws a fresh congested set (iid across snapshots).
    Redraw,
    /// Per-link two-state Markov chain across snapshots: a congested
    /// link stays congested with probability `stay_congested`, a good
    /// link becomes congested so that the stationary congested fraction
    /// equals `p`.
    Markov {
        /// P(congested → congested) between consecutive snapshots.
        stay_congested: f64,
    },
}

/// The evolving congestion state of every (virtual) link.
#[derive(Debug, Clone)]
pub struct CongestionScenario {
    /// Fraction of links congested (the paper's `p`).
    pub p: f64,
    /// Evolution model.
    pub dynamics: CongestionDynamics,
    /// Current congestion status per link.
    congested: Vec<bool>,
}

impl CongestionScenario {
    /// Draws the initial congested set: each of the `n_links` links is
    /// congested independently with probability `p`.
    pub fn draw<R: Rng>(n_links: usize, p: f64, dynamics: CongestionDynamics, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let congested = (0..n_links).map(|_| rng.gen::<f64>() < p).collect();
        CongestionScenario {
            p,
            dynamics,
            congested,
        }
    }

    /// Builds a scenario with explicit initial statuses (used by
    /// experiments that need non-uniform congestion probabilities, e.g.
    /// the Table-3 study where inter-AS links congest more often).
    /// `p` is still used as the stationary fraction by the Markov and
    /// redraw dynamics.
    pub fn with_statuses(p: f64, dynamics: CongestionDynamics, statuses: Vec<bool>) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        CongestionScenario {
            p,
            dynamics,
            congested: statuses,
        }
    }

    /// Number of links tracked.
    pub fn len(&self) -> usize {
        self.congested.len()
    }

    /// `true` if no links are tracked.
    pub fn is_empty(&self) -> bool {
        self.congested.is_empty()
    }

    /// Congestion status of link `k` in the current snapshot.
    pub fn is_congested(&self, k: usize) -> bool {
        self.congested[k]
    }

    /// Status slice for the current snapshot.
    pub fn statuses(&self) -> &[bool] {
        &self.congested
    }

    /// Number of currently congested links.
    pub fn congested_count(&self) -> usize {
        self.congested.iter().filter(|&&c| c).count()
    }

    /// Advances the scenario to the next snapshot according to the
    /// dynamics.
    pub fn advance<R: Rng>(&mut self, rng: &mut R) {
        match self.dynamics {
            CongestionDynamics::Fixed => {}
            CongestionDynamics::Redraw => {
                for c in self.congested.iter_mut() {
                    *c = rng.gen::<f64>() < self.p;
                }
            }
            CongestionDynamics::Markov { stay_congested } => {
                // Stationarity: p = p·stay + (1−p)·become
                // ⇒ become = p(1 − stay)/(1 − p).
                let become_congested = if self.p >= 1.0 {
                    1.0
                } else {
                    (self.p * (1.0 - stay_congested) / (1.0 - self.p)).min(1.0)
                };
                for c in self.congested.iter_mut() {
                    let u = rng.gen::<f64>();
                    *c = if *c { u < stay_congested } else { u < become_congested };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_draw_matches_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = CongestionScenario::draw(10_000, 0.1, CongestionDynamics::Fixed, &mut rng);
        let frac = s.congested_count() as f64 / s.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn fixed_dynamics_never_change() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = CongestionScenario::draw(100, 0.2, CongestionDynamics::Fixed, &mut rng);
        let before = s.statuses().to_vec();
        for _ in 0..10 {
            s.advance(&mut rng);
        }
        assert_eq!(before, s.statuses());
    }

    #[test]
    fn redraw_changes_the_set() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = CongestionScenario::draw(1000, 0.3, CongestionDynamics::Redraw, &mut rng);
        let before = s.statuses().to_vec();
        s.advance(&mut rng);
        assert_ne!(before, s.statuses());
    }

    #[test]
    fn markov_preserves_stationary_fraction() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = CongestionScenario::draw(
            20_000,
            0.1,
            CongestionDynamics::Markov {
                stay_congested: 0.5,
            },
            &mut rng,
        );
        let mut fracs = Vec::new();
        for _ in 0..20 {
            s.advance(&mut rng);
            fracs.push(s.congested_count() as f64 / s.len() as f64);
        }
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!((mean - 0.1).abs() < 0.01, "stationary fraction {mean}");
    }

    #[test]
    fn markov_with_full_persistence_is_fixed() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = CongestionScenario::draw(
            500,
            0.15,
            CongestionDynamics::Markov {
                stay_congested: 1.0,
            },
            &mut rng,
        );
        let before = s.statuses().to_vec();
        for _ in 0..5 {
            s.advance(&mut rng);
        }
        // stay = 1 keeps congested links congested; become = 0 keeps
        // good links good.
        assert_eq!(before, s.statuses());
    }

    #[test]
    fn with_statuses_sets_exact_state() {
        let s = CongestionScenario::with_statuses(
            0.5,
            CongestionDynamics::Fixed,
            vec![true, false, true],
        );
        assert_eq!(s.statuses(), &[true, false, true]);
        assert_eq!(s.congested_count(), 2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_p() {
        let mut rng = StdRng::seed_from_u64(6);
        CongestionScenario::draw(10, 1.5, CongestionDynamics::Fixed, &mut rng);
    }
}
