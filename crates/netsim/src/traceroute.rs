//! Simulated traceroute topology discovery, with realistic errors.
//!
//! Section 7.1 of the paper reports two traceroute artefacts on
//! PlanetLab:
//!
//! * 5–10 % of routers do not answer ICMP queries at all — their hop is
//!   anonymous, and topology assemblers must treat each such hop as a
//!   distinct placeholder node;
//! * ~16 % of routers expose multiple interfaces and answer different
//!   traceroutes with different IP addresses; the `sr-ally` tool merges
//!   most (but not all) of them back into one router.
//!
//! [`observe`] replays these artefacts over ground-truth paths: the
//! result is an *observed* graph and path set that differ from the truth
//! exactly the way a real traceroute-built topology does. Feeding the
//! observed routing matrix (and truth-driven measurements) to LIA
//! reproduces the paper's robustness experiment.

use losstomo_topology::graph::{Graph, LinkId, NodeId, NodeKind};
use losstomo_topology::path::{Path, PathSet};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the traceroute error model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TracerouteConfig {
    /// Probability that a router never answers ICMP (anonymous hops).
    pub no_response_prob: f64,
    /// Probability that a router exposes multiple interfaces.
    pub multi_interface_prob: f64,
    /// Number of interfaces a multi-interface router exposes (≥ 2).
    pub interfaces: usize,
    /// Probability that `sr-ally` successfully merges a multi-interface
    /// router's addresses back into one node.
    pub alias_resolution_prob: f64,
}

impl Default for TracerouteConfig {
    /// The paper's measured rates: 7.5 % non-responders (midpoint of
    /// 5–10 %), 16 % multi-interface, imperfect resolution.
    fn default() -> Self {
        TracerouteConfig {
            no_response_prob: 0.075,
            multi_interface_prob: 0.16,
            interfaces: 3,
            alias_resolution_prob: 0.8,
        }
    }
}

/// Identity of a node as seen by traceroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ObservedKey {
    /// A responding router/host observed under its canonical address.
    Canonical(NodeId),
    /// An unresolved interface `iface` of a multi-interface router.
    Interface(NodeId, u8),
    /// An anonymous hop, identified by the *sandwich-merge* heuristic
    /// topology assemblers use: two `*` hops are the same node when
    /// they follow the same observed predecessor and hide the same
    /// router (in practice inferred from the identical successor; we
    /// use the true node id as a simulation shortcut with the same
    /// outcome on loop-free routes).
    Anonymous(NodeId, NodeId),
}

/// The traceroute-observed topology.
#[derive(Debug, Clone)]
pub struct ObservedTopology {
    /// Observed graph (placeholder and interface nodes included).
    pub graph: Graph,
    /// Observed paths, aligned index-for-index with the input paths.
    pub paths: PathSet,
    /// For each observed link: the underlying true physical link.
    pub true_link_of: Vec<LinkId>,
    /// Number of anonymous placeholder nodes created.
    pub anonymous_nodes: usize,
    /// Number of unresolved interface nodes created.
    pub interface_nodes: usize,
}

/// Replays traceroute over the true paths with the given error model.
///
/// Hosts (path endpoints) always respond — they are the measurement
/// system's own machines. Interface selection is deterministic per
/// (beacon, router), so all paths from one beacon see a router under the
/// same address and per-beacon routes remain trees.
pub fn observe<R: Rng>(
    true_graph: &Graph,
    true_paths: &PathSet,
    cfg: &TracerouteConfig,
    rng: &mut R,
) -> ObservedTopology {
    assert!(cfg.interfaces >= 2, "multi-interface routers need >= 2 interfaces");
    // Per-router behaviour, drawn once.
    #[derive(Clone, Copy)]
    enum Behaviour {
        Responds,
        Anonymous,
        /// Unresolved multi-interface router.
        MultiInterface,
    }
    let mut behaviour = Vec::with_capacity(true_graph.node_count());
    for node in true_graph.nodes() {
        let b = if node.kind == NodeKind::Host {
            Behaviour::Responds
        } else if rng.gen::<f64>() < cfg.no_response_prob {
            Behaviour::Anonymous
        } else if rng.gen::<f64>() < cfg.multi_interface_prob
            && rng.gen::<f64>() >= cfg.alias_resolution_prob
        {
            Behaviour::MultiInterface
        } else {
            Behaviour::Responds
        };
        behaviour.push(b);
    }

    let mut graph = Graph::new();
    let mut node_of: HashMap<ObservedKey, NodeId> = HashMap::new();
    let mut link_of: HashMap<(NodeId, NodeId), LinkId> = HashMap::new();
    let mut true_link_of: Vec<LinkId> = Vec::new();
    let mut anonymous_nodes = 0usize;
    let mut interface_nodes = 0usize;
    let mut paths = PathSet::new();

    for (_pid, p) in true_paths.iter() {
        // The observed node sequence of this path.
        let mut observed_nodes: Vec<NodeId> = Vec::with_capacity(p.len() + 1);
        let mut true_links: Vec<LinkId> = Vec::with_capacity(p.len());
        // Node sequence of the true path: src, intermediate..., dst.
        let mut seq: Vec<NodeId> = vec![p.src];
        for &l in &p.links {
            seq.push(true_graph.link(l).dst);
            true_links.push(l);
        }
        for &true_node in seq.iter() {
            let key = match behaviour[true_node.index()] {
                Behaviour::Responds => ObservedKey::Canonical(true_node),
                Behaviour::Anonymous => {
                    // Hop 0 is the beacon (always responds), so hop ≥ 1
                    // here and a predecessor exists.
                    let prev = *observed_nodes
                        .last()
                        .expect("anonymous hop cannot be the path source");
                    ObservedKey::Anonymous(prev, true_node)
                }
                Behaviour::MultiInterface => {
                    // Deterministic per (beacon, router).
                    let iface =
                        ((p.src.0 as u64 * 2_654_435_761 + true_node.0 as u64) % cfg.interfaces as u64) as u8;
                    ObservedKey::Interface(true_node, iface)
                }
            };
            let obs = *node_of.entry(key).or_insert_with(|| {
                match key {
                    ObservedKey::Anonymous(..) => anonymous_nodes += 1,
                    ObservedKey::Interface(..) => interface_nodes += 1,
                    ObservedKey::Canonical(_) => {}
                }
                graph.add_node(true_graph.node(true_node).kind)
            });
            observed_nodes.push(obs);
        }
        // Materialise observed links.
        let mut obs_links = Vec::with_capacity(p.len());
        for (i, &tl) in true_links.iter().enumerate() {
            let (a, b) = (observed_nodes[i], observed_nodes[i + 1]);
            let lid = *link_of.entry((a, b)).or_insert_with(|| {
                let lid = graph.add_link(a, b);
                true_link_of.push(tl);
                lid
            });
            obs_links.push(lid);
        }
        paths.push(Path {
            src: observed_nodes[0],
            dst: *observed_nodes.last().expect("path has at least src"),
            links: obs_links,
        });
    }

    ObservedTopology {
        graph,
        paths,
        true_link_of,
        anonymous_nodes,
        interface_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_topology::gen::{tree, GeneratedTopology};
    use losstomo_topology::routing::compute_paths;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_topo(seed: u64) -> (GeneratedTopology, PathSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tree::generate(
            tree::TreeParams {
                nodes: 120,
                max_branching: 5,
            },
            &mut rng,
        );
        let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
        (t, paths)
    }

    #[test]
    fn perfect_traceroute_reproduces_topology() {
        let (t, paths) = sample_topo(1);
        let cfg = TracerouteConfig {
            no_response_prob: 0.0,
            multi_interface_prob: 0.0,
            ..TracerouteConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let obs = observe(&t.graph, &paths, &cfg, &mut rng);
        assert_eq!(obs.paths.len(), paths.len());
        assert_eq!(obs.anonymous_nodes, 0);
        assert_eq!(obs.interface_nodes, 0);
        // Same link-level structure: each observed path has the true
        // path's length.
        for (pid, p) in paths.iter() {
            assert_eq!(obs.paths.path(pid).len(), p.len());
        }
        // Observed links biject with covered true links.
        assert_eq!(obs.true_link_of.len(), paths.covered_links().len());
    }

    #[test]
    fn observed_paths_are_valid() {
        let (t, paths) = sample_topo(3);
        let mut rng = StdRng::seed_from_u64(4);
        let obs = observe(&t.graph, &paths, &TracerouteConfig::default(), &mut rng);
        for (_, p) in obs.paths.iter() {
            assert!(p.validate(&obs.graph), "observed path invalid: {p:?}");
        }
    }

    #[test]
    fn anonymous_routers_create_placeholders() {
        let (t, paths) = sample_topo(5);
        let cfg = TracerouteConfig {
            no_response_prob: 1.0,
            multi_interface_prob: 0.0,
            ..TracerouteConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let obs = observe(&t.graph, &paths, &cfg, &mut rng);
        assert!(obs.anonymous_nodes > 0);
        // All interior nodes anonymous → observed topology has more
        // links than the truth (no sharing of interior links).
        assert!(obs.true_link_of.len() >= paths.covered_links().len());
    }

    #[test]
    fn endpoints_always_respond() {
        let (t, paths) = sample_topo(7);
        let cfg = TracerouteConfig {
            no_response_prob: 1.0,
            multi_interface_prob: 0.0,
            ..TracerouteConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let obs = observe(&t.graph, &paths, &cfg, &mut rng);
        // Paths from the same beacon share their observed source node.
        let firsts: std::collections::HashSet<NodeId> =
            obs.paths.iter().map(|(_, p)| p.src).collect();
        let true_firsts: std::collections::HashSet<NodeId> =
            paths.iter().map(|(_, p)| p.src).collect();
        assert_eq!(firsts.len(), true_firsts.len());
    }

    #[test]
    fn true_link_mapping_is_consistent() {
        let (t, paths) = sample_topo(9);
        let mut rng = StdRng::seed_from_u64(10);
        let obs = observe(&t.graph, &paths, &TracerouteConfig::default(), &mut rng);
        // Every observed path's observed links map back to the true
        // path's links, in order.
        for (pid, p) in paths.iter() {
            let op = obs.paths.path(pid);
            assert_eq!(op.len(), p.len());
            for (ol, tl) in op.links.iter().zip(p.links.iter()) {
                assert_eq!(obs.true_link_of[ol.index()], *tl);
            }
        }
    }

    #[test]
    fn unresolved_interfaces_split_routers() {
        let (t, paths) = sample_topo(11);
        let cfg = TracerouteConfig {
            no_response_prob: 0.0,
            multi_interface_prob: 1.0,
            interfaces: 3,
            alias_resolution_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(12);
        let obs = observe(&t.graph, &paths, &cfg, &mut rng);
        // A single-beacon tree sees each router under one deterministic
        // interface, so the observed structure is still a tree with the
        // same path lengths.
        assert!(obs.interface_nodes > 0);
        for (pid, p) in paths.iter() {
            assert_eq!(obs.paths.path(pid).len(), p.len());
        }
    }
}
