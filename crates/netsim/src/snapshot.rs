//! Snapshot data types: what one measurement period produces.
//!
//! A *snapshot* (Section 3.3) is the collection of measurements obtained
//! by sending `S` probes from each beacon to each destination in one
//! time slot. For simulations we also carry per-link ground truth so the
//! evaluation can compute detection rates and error factors.

use serde::{Deserialize, Serialize};

/// Ground truth for one (virtual) link in one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkTruth {
    /// The loss rate assigned by the LLRD model for this snapshot.
    pub assigned_loss_rate: f64,
    /// Whether the scenario marked the link congested.
    pub congested: bool,
    /// Probe packets that arrived at this link.
    pub arrivals: u64,
    /// Probe packets dropped by this link.
    pub drops: u64,
}

impl LinkTruth {
    /// The empirically realised loss rate, if any packet arrived.
    pub fn empirical_loss_rate(&self) -> Option<f64> {
        if self.arrivals == 0 {
            None
        } else {
            Some(self.drops as f64 / self.arrivals as f64)
        }
    }

    /// The best available notion of the link's true loss rate in this
    /// snapshot: the realised rate when observable, otherwise the
    /// assigned rate.
    pub fn true_loss_rate(&self) -> f64 {
        self.empirical_loss_rate()
            .unwrap_or(self.assigned_loss_rate)
    }

    /// True transmission rate `φ_e` of the link.
    pub fn true_transmission_rate(&self) -> f64 {
        1.0 - self.true_loss_rate()
    }
}

/// All measurements and ground truth of one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Probes sent per path in this snapshot (the paper's `S`).
    pub probes: u32,
    /// Per path: how many of the `S` probes reached the destination.
    pub path_received: Vec<u32>,
    /// Per virtual link: ground truth (simulation only; empty when the
    /// snapshot comes from real measurements).
    pub link_truth: Vec<LinkTruth>,
}

impl Snapshot {
    /// Estimated end-to-end transmission rates `φ̂_i = received / S`,
    /// floored at `0.5 / S` (continuity correction) so the logarithm is
    /// finite even when every probe of a path is lost.
    pub fn path_transmission_rates(&self) -> Vec<f64> {
        let s = self.probes as f64;
        let floor = 0.5 / s;
        self.path_received
            .iter()
            .map(|&r| (r as f64 / s).max(floor))
            .collect()
    }

    /// Log measurements `Y_i = log φ̂_i` (natural log), the left-hand
    /// side of the paper's equation (3).
    pub fn log_rates(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.log_rates_into(&mut out);
        out
    }

    /// Allocation-free [`Snapshot::log_rates`]: clears `out` and fills
    /// it in place, so ingest loops and wire encoders can reuse one
    /// scratch row across snapshots. Produces bit-identical values to
    /// `log_rates()`.
    pub fn log_rates_into(&self, out: &mut Vec<f64>) {
        let s = self.probes as f64;
        let floor = 0.5 / s;
        out.clear();
        out.extend(
            self.path_received
                .iter()
                .map(|&r| (r as f64 / s).max(floor).ln()),
        );
    }

    /// End-to-end loss rate per path (`1 − φ̂_i`, without flooring).
    pub fn path_loss_rates(&self) -> Vec<f64> {
        let s = self.probes as f64;
        self.path_received
            .iter()
            .map(|&r| 1.0 - r as f64 / s)
            .collect()
    }
}

/// A sequence of snapshots over the same reduced topology — the input to
/// variance learning (Phase 1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementSet {
    /// Snapshots in chronological order.
    pub snapshots: Vec<Snapshot>,
}

impl MeasurementSet {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when no snapshot was collected.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The matrix of log measurements: one row per snapshot, one column
    /// per path (`Y^(l)` for `l = 1..m`).
    pub fn log_rate_rows(&self) -> Vec<Vec<f64>> {
        self.snapshots.iter().map(|s| s.log_rates()).collect()
    }
}

impl FromIterator<Snapshot> for MeasurementSet {
    /// Collects a snapshot stream (e.g. [`crate::simulate_stream`])
    /// into a measurement set, preserving order.
    fn from_iter<I: IntoIterator<Item = Snapshot>>(iter: I) -> Self {
        MeasurementSet {
            snapshots: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        Snapshot {
            probes: 1000,
            path_received: vec![1000, 900, 0],
            link_truth: vec![],
        }
    }

    #[test]
    fn transmission_rates_with_floor() {
        let s = snap();
        let rates = s.path_transmission_rates();
        assert_eq!(rates[0], 1.0);
        assert!((rates[1] - 0.9).abs() < 1e-12);
        assert_eq!(rates[2], 0.0005); // floored, not zero
    }

    #[test]
    fn log_rates_finite() {
        let s = snap();
        assert!(s.log_rates().iter().all(|y| y.is_finite()));
        assert_eq!(s.log_rates()[0], 0.0);
    }

    #[test]
    fn log_rates_into_matches_allocating_path() {
        let s = snap();
        let mut scratch = vec![42.0; 17]; // stale contents must be cleared
        s.log_rates_into(&mut scratch);
        let alloc = s.log_rates();
        assert_eq!(scratch.len(), alloc.len());
        for (a, b) in scratch.iter().zip(&alloc) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn loss_rates_complement() {
        let s = snap();
        let loss = s.path_loss_rates();
        assert_eq!(loss[0], 0.0);
        assert!((loss[1] - 0.1).abs() < 1e-12);
        assert_eq!(loss[2], 1.0);
    }

    #[test]
    fn link_truth_empirical() {
        let t = LinkTruth {
            assigned_loss_rate: 0.1,
            congested: true,
            arrivals: 100,
            drops: 12,
        };
        assert_eq!(t.empirical_loss_rate(), Some(0.12));
        assert!((t.true_loss_rate() - 0.12).abs() < 1e-12);
        assert!((t.true_transmission_rate() - 0.88).abs() < 1e-12);
    }

    #[test]
    fn link_truth_falls_back_to_assigned() {
        let t = LinkTruth {
            assigned_loss_rate: 0.07,
            congested: true,
            arrivals: 0,
            drops: 0,
        };
        assert_eq!(t.empirical_loss_rate(), None);
        assert_eq!(t.true_loss_rate(), 0.07);
    }

    #[test]
    fn measurement_set_rows() {
        let ms = MeasurementSet {
            snapshots: vec![snap(), snap()],
        };
        let rows = ms.log_rate_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 3);
        assert!(!ms.is_empty());
    }
}
