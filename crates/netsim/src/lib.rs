//! Packet-level network loss simulator for `losstomo`.
//!
//! Everything Section 6 (simulation) and Section 7 (PlanetLab
//! methodology) of Nguyen & Thiran (IMC 2007) need from the measurement
//! side, built as a substitute for the real testbed (see DESIGN.md):
//!
//! * [`loss`] — per-link Gilbert (bursty) and Bernoulli loss processes;
//! * [`flowlet`] — heavy-tailed flowlet-arrival burst losses, the
//!   non-i.i.d. trace workload for estimator benchmarking;
//! * [`models`] — the LLRD1/LLRD2 loss-rate assignment models with the
//!   `t_l = 0.002` good/congested threshold;
//! * [`scenario`] — congested-set evolution across snapshots (fixed,
//!   iid redraw, or Markov persistence);
//! * [`engine`] — the probe engine: `S` periodic probes per path per
//!   snapshot, per-link chains advanced per arriving packet;
//! * [`fanin`] — round-robin fan-in of many per-tenant snapshot
//!   streams, for one process driving a fleet of simulated networks;
//! * [`snapshot`] — measurement containers and ground truth;
//! * [`packet`] — the 40-byte UDP probe wire format of Section 7.1;
//! * [`traceroute`] — topology discovery with anonymous routers and
//!   unresolved interface aliases;
//! * [`wirebridge`] — glue from snapshot streams to the service-edge
//!   batch wire format (`losstomo-wire`), with per-tenant sequence
//!   tracking for loadgen.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod engine;
pub mod fanin;
pub mod flowlet;
pub mod loss;
pub mod models;
pub mod packet;
pub mod scenario;
pub mod snapshot;
pub mod traceroute;
pub mod wirebridge;

pub use engine::{
    simulate_run, simulate_run_batch, simulate_snapshot, simulate_stream, ChainAdvance,
    ProbeConfig, SnapshotStream,
};
pub use fanin::{fan_in, SnapshotFanIn};
pub use flowlet::{FlowletParams, FlowletProcess};
pub use loss::{BernoulliProcess, GilbertProcess, LossProcess, LossProcessKind};
pub use models::{LossModel, DEFAULT_LOSS_THRESHOLD};
pub use scenario::{CongestionDynamics, CongestionScenario};
pub use snapshot::{LinkTruth, MeasurementSet, Snapshot};
pub use traceroute::{observe, ObservedTopology, TracerouteConfig};
