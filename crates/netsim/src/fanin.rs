//! Fan-in of many per-tenant snapshot streams into one feed.
//!
//! A fleet-scale monitor (see the `losstomo-fleet` crate) watches
//! hundreds of independent networks from one process. Each network has
//! its own [`SnapshotStream`]; this module multiplexes them
//! round-robin into a single iterator of `(tenant index, snapshot)`
//! pairs — the shape a fleet's batch-ingest API wants.
//!
//! Every underlying stream keeps its own RNG and congestion scenario,
//! so the fan-in is a pure interleaving: the subsequence of snapshots
//! for tenant `t` is **bit-identical** to driving tenant `t`'s stream
//! alone, regardless of how many tenants share the fan-in or in which
//! order the caller consumes it.

use crate::engine::SnapshotStream;
use crate::snapshot::Snapshot;
use rand::Rng;

/// Round-robin multiplexer over per-tenant [`SnapshotStream`]s.
///
/// Yields `(tenant_index, snapshot)` with tenant indices cycling
/// `0, 1, …, n−1, 0, …`; one full cycle produces exactly one snapshot
/// per tenant ("round"). The iterator is as unbounded as its inputs —
/// bound it with [`Iterator::take`] (`n_tenants × rounds` items).
#[derive(Debug)]
pub struct SnapshotFanIn<'a, R: Rng> {
    streams: Vec<SnapshotStream<'a, R>>,
    next: usize,
}

impl<'a, R: Rng> SnapshotFanIn<'a, R> {
    /// Number of multiplexed tenant streams.
    pub fn tenants(&self) -> usize {
        self.streams.len()
    }

    /// Completed rounds (cycles in which every tenant produced one
    /// snapshot).
    pub fn rounds(&self) -> usize {
        self.streams.last().map_or(0, |s| s.produced())
    }

    /// The underlying stream of one tenant (its scenario and produced
    /// count are observable through it).
    pub fn stream(&self, tenant: usize) -> &SnapshotStream<'a, R> {
        &self.streams[tenant]
    }
}

impl<'a, R: Rng> Iterator for SnapshotFanIn<'a, R> {
    type Item = (usize, Snapshot);

    fn next(&mut self) -> Option<(usize, Snapshot)> {
        if self.streams.is_empty() {
            return None;
        }
        let tenant = self.next;
        self.next = (self.next + 1) % self.streams.len();
        let snapshot = self.streams[tenant]
            .next()
            .expect("snapshot streams are unbounded");
        Some((tenant, snapshot))
    }
}

/// Multiplexes per-tenant snapshot streams round-robin — the
/// measurement-side fan-in for one process driving many simulated
/// networks. See [`SnapshotFanIn`] for the interleaving guarantees.
pub fn fan_in<R: Rng>(streams: Vec<SnapshotStream<'_, R>>) -> SnapshotFanIn<'_, R> {
    SnapshotFanIn { streams, next: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_run, simulate_stream, ProbeConfig};
    use crate::scenario::{CongestionDynamics, CongestionScenario};
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fan_in_matches_standalone_streams_bitwise() {
        let red = fixtures::reduced(&fixtures::figure1());
        let cfg = ProbeConfig {
            probes_per_snapshot: 20,
            ..ProbeConfig::default()
        };
        let n_tenants = 5;
        let rounds = 4;
        let make_scenario = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let sc = CongestionScenario::draw(
                red.num_links(),
                0.4,
                CongestionDynamics::Redraw,
                &mut rng,
            );
            (sc, rng)
        };
        let streams: Vec<_> = (0..n_tenants)
            .map(|t| {
                let (sc, rng) = make_scenario(100 + t as u64);
                simulate_stream(&red, sc, &cfg, rng)
            })
            .collect();
        let mut mux = fan_in(streams);
        let mut per_tenant: Vec<Vec<crate::Snapshot>> = vec![Vec::new(); n_tenants];
        for _ in 0..n_tenants * rounds {
            let (t, snap) = mux.next().unwrap();
            per_tenant[t].push(snap);
        }
        assert_eq!(mux.tenants(), n_tenants);
        assert_eq!(mux.rounds(), rounds);
        // Each tenant's subsequence equals its standalone run.
        for (t, got) in per_tenant.iter().enumerate() {
            let (mut sc, mut rng) = make_scenario(100 + t as u64);
            let solo = simulate_run(&red, &mut sc, &cfg, rounds, &mut rng);
            assert_eq!(got.len(), solo.snapshots.len());
            for (a, b) in got.iter().zip(solo.snapshots.iter()) {
                assert_eq!(a.path_received, b.path_received, "tenant {t}");
            }
        }
    }

    #[test]
    fn round_robin_order_is_cyclic() {
        let red = fixtures::reduced(&fixtures::figure1());
        let cfg = ProbeConfig {
            probes_per_snapshot: 1,
            ..ProbeConfig::default()
        };
        let streams: Vec<_> = (0..3)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(t);
                let sc = CongestionScenario::draw(
                    red.num_links(),
                    0.0,
                    CongestionDynamics::Fixed,
                    &mut rng,
                );
                simulate_stream(&red, sc, &cfg, rng)
            })
            .collect();
        let order: Vec<usize> = fan_in(streams).take(7).map(|(t, _)| t).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn empty_fan_in_is_exhausted() {
        let mut mux = fan_in::<StdRng>(Vec::new());
        assert_eq!(mux.tenants(), 0);
        assert!(mux.next().is_none());
    }
}
