//! The packet-level probe engine.
//!
//! Reproduces the simulation methodology of Section 6: per snapshot, each
//! link is given a loss rate by the LLRD model according to its
//! congestion status, losses are realised by a per-link Gilbert (or
//! Bernoulli) process, and `S` periodic probes are sent down every path.
//! "When a packet on path `P_i` arrives at link `e_k` the link state is
//! decided according to the state transition probabilities" — so each
//! link's chain advances once per *arriving* packet, and a packet dropped
//! upstream never reaches (nor advances) downstream links.
//!
//! Probe rounds interleave paths round-robin, modelling beacons that
//! probe all destinations concurrently with constant inter-arrival times
//! (Section 7.1). All paths therefore sample a shared link's loss process
//! in the same period, which is what makes Assumption S.1 (identical
//! sampled rates) a good approximation.

use crate::loss::{AnyLossProcess, LossProcess, LossProcessKind};
use crate::models::LossModel;
use crate::scenario::CongestionScenario;
use crate::snapshot::{LinkTruth, MeasurementSet, Snapshot};
use losstomo_topology::ReducedTopology;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// When a link's loss chain transitions.
///
/// The paper's Assumption S.1 states that all paths crossing a link in
/// the same slot sample the *same* loss fraction (`φ̂_{i,e_k} = φ̂_{e_k}`
/// almost surely). That models loss bursts that live in wall-clock time:
/// every packet that hits the link while it is congested is dropped,
/// regardless of which flow it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChainAdvance {
    /// The chain advances once per probe *round* (≈ the 10 ms
    /// inter-probe interval of Section 7.1); every packet of that round
    /// sees the same link state. Makes Assumption S.1 exact — default.
    #[default]
    PerRound,
    /// The chain advances on every packet *arrival* (the literal reading
    /// of Section 6's "when a packet on path P_i arrives at link e_k the
    /// link state is decided"). Paths then sample nearly independent
    /// loss events, so S.1 holds only through the law of large numbers.
    /// Kept for the `ablation_chain_advance` study.
    PerArrival,
}

/// Probe-engine configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Probes per path per snapshot (the paper's `S`, default 1000).
    pub probes_per_snapshot: u32,
    /// Loss-rate assignment model (default LLRD1).
    pub loss_model: LossModel,
    /// Loss process family (default Gilbert).
    pub process: LossProcessKind,
    /// Chain-advance semantics (default per-round; see [`ChainAdvance`]).
    pub advance: ChainAdvance,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            probes_per_snapshot: 1000,
            loss_model: LossModel::Llrd1,
            process: LossProcessKind::Gilbert,
            advance: ChainAdvance::PerRound,
        }
    }
}

/// Simulates one snapshot on the reduced topology.
///
/// The scenario supplies each link's congestion status; this function
/// draws the per-snapshot loss rates, runs the probes, and returns both
/// the end-to-end measurements and the per-link ground truth.
pub fn simulate_snapshot<R: Rng>(
    red: &ReducedTopology,
    scenario: &CongestionScenario,
    cfg: &ProbeConfig,
    rng: &mut R,
) -> Snapshot {
    let n_links = red.num_links();
    assert_eq!(
        scenario.len(),
        n_links,
        "scenario tracks {} links but topology has {}",
        scenario.len(),
        n_links
    );
    // Per-snapshot loss rates and processes.
    let mut processes: Vec<AnyLossProcess> = Vec::with_capacity(n_links);
    let mut truth: Vec<LinkTruth> = Vec::with_capacity(n_links);
    for k in 0..n_links {
        let congested = scenario.is_congested(k);
        let rate = if congested {
            cfg.loss_model.draw_congested(rng)
        } else {
            cfg.loss_model.draw_good(rng)
        };
        processes.push(AnyLossProcess::new(cfg.process, rate));
        truth.push(LinkTruth {
            assigned_loss_rate: rate,
            congested,
            arrivals: 0,
            drops: 0,
        });
    }

    let n_paths = red.num_paths();
    let mut path_received = vec![0u32; n_paths];
    // The shared `RoutingMatrix` *is* the flat CSR path→links table the
    // per-round walk wants: each row is a contiguous slice of one
    // shared buffer, so streaming `routing.iter()` touches the same
    // sequential memory the engine used to copy into its own table.
    let routing = &red.matrix;
    match cfg.advance {
        ChainAdvance::PerRound => {
            // One transition per link per round; every packet of the
            // round observes the same state, so all paths through a link
            // sample identical loss fractions (Assumption S.1, exact).
            //
            // Lossless fast path: when every link survives the round
            // (the common case at the paper's ~0.1 % good-link loss
            // rates), the per-path walk is skipped entirely — every
            // path delivers its probe and link `k` sees exactly one
            // arrival per traversing path.
            let mut arrivals_per_round = vec![0u64; n_links];
            for &k in routing.links_flat() {
                arrivals_per_round[k] += 1;
            }
            let mut good = vec![true; n_links];
            for _round in 0..cfg.probes_per_snapshot {
                let mut all_good = true;
                for (g, proc_) in good.iter_mut().zip(processes.iter_mut()) {
                    *g = proc_.packet_survives(rng);
                    all_good &= *g;
                }
                if all_good {
                    for received in path_received.iter_mut() {
                        *received += 1;
                    }
                    for (t, &a) in truth.iter_mut().zip(arrivals_per_round.iter()) {
                        t.arrivals += a;
                    }
                    continue;
                }
                for (links, received) in routing.iter().zip(path_received.iter_mut()) {
                    let mut survived = true;
                    for &k in links {
                        truth[k].arrivals += 1;
                        if !good[k] {
                            truth[k].drops += 1;
                            survived = false;
                            break; // dropped packets never reach downstream
                        }
                    }
                    if survived {
                        *received += 1;
                    }
                }
            }
        }
        ChainAdvance::PerArrival => {
            // Round-robin probe rounds: round s sends the s-th probe of
            // every path back-to-back; the chain transitions on every
            // arrival (no lossless fast path: every arrival must
            // advance its link's chain).
            for _round in 0..cfg.probes_per_snapshot {
                for (links, received) in routing.iter().zip(path_received.iter_mut()) {
                    let mut survived = true;
                    for &k in links {
                        truth[k].arrivals += 1;
                        if !processes[k].packet_survives(rng) {
                            truth[k].drops += 1;
                            survived = false;
                            break; // dropped packets never reach downstream
                        }
                    }
                    if survived {
                        *received += 1;
                    }
                }
            }
        }
    }

    Snapshot {
        probes: cfg.probes_per_snapshot,
        path_received,
        link_truth: truth,
    }
}

/// Simulates a run of `n_snapshots` consecutive snapshots, advancing the
/// congestion scenario between them. Returns the measurements; the final
/// scenario state remains in `scenario`.
pub fn simulate_run<R: Rng>(
    red: &ReducedTopology,
    scenario: &mut CongestionScenario,
    cfg: &ProbeConfig,
    n_snapshots: usize,
    rng: &mut R,
) -> MeasurementSet {
    let mut snapshots = Vec::with_capacity(n_snapshots);
    for t in 0..n_snapshots {
        if t > 0 {
            scenario.advance(rng);
        }
        snapshots.push(simulate_snapshot(red, scenario, cfg, rng));
    }
    MeasurementSet { snapshots }
}

/// An iterator of consecutive snapshots over one evolving congestion
/// scenario — the streaming counterpart of [`simulate_run`].
///
/// Snapshots are produced lazily, one `next()` at a time, so the
/// measurement side never materialises the full measurement matrix:
/// each snapshot can be ingested (e.g. by
/// `losstomo_core::streaming::OnlineEstimator`, whose own retention is
/// governed by its window mode) and dropped. The RNG
/// stream is identical to [`simulate_run`]'s — taking the first `m`
/// items of [`simulate_stream`] yields bit-identical snapshots to a
/// batch run of `m` snapshots from the same seed.
#[derive(Debug)]
pub struct SnapshotStream<'a, R: Rng> {
    red: &'a ReducedTopology,
    scenario: CongestionScenario,
    cfg: ProbeConfig,
    rng: R,
    produced: usize,
}

impl<'a, R: Rng> SnapshotStream<'a, R> {
    /// Number of snapshots produced so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// The current congestion state (after the last produced snapshot).
    pub fn scenario(&self) -> &CongestionScenario {
        &self.scenario
    }
}

impl<'a, R: Rng> Iterator for SnapshotStream<'a, R> {
    type Item = Snapshot;

    fn next(&mut self) -> Option<Snapshot> {
        if self.produced > 0 {
            self.scenario.advance(&mut self.rng);
        }
        self.produced += 1;
        Some(simulate_snapshot(
            self.red,
            &self.scenario,
            &self.cfg,
            &mut self.rng,
        ))
    }
}

/// Creates an unbounded snapshot stream over `red`, consuming the
/// scenario and RNG.
///
/// The stream is infinite — bound it with [`Iterator::take`] or drive
/// it from a monitoring loop. `simulate_stream(...).take(m).collect()`
/// into a [`MeasurementSet`] is bit-identical to
/// [`simulate_run`] with `m` snapshots from the same starting state.
pub fn simulate_stream<'a, R: Rng>(
    red: &'a ReducedTopology,
    scenario: CongestionScenario,
    cfg: &ProbeConfig,
    rng: R,
) -> SnapshotStream<'a, R> {
    assert_eq!(
        scenario.len(),
        red.num_links(),
        "scenario tracks {} links but topology has {}",
        scenario.len(),
        red.num_links()
    );
    SnapshotStream {
        red,
        scenario,
        cfg: *cfg,
        rng,
        produced: 0,
    }
}

/// Simulates independent runs — one per seed, each starting from a
/// clone of `scenario` with its own `StdRng` — in parallel across
/// threads.
///
/// Results are returned in seed order and are bit-identical to calling
/// [`simulate_run`] serially with the same seeds: each run's RNG stream
/// is derived only from its seed, so the thread schedule cannot leak
/// into the measurements. Worker count follows the workspace-wide
/// policy in [`losstomo_linalg::parallel`] (available parallelism,
/// capped by the `LOSSTOMO_THREADS` environment variable).
pub fn simulate_run_batch(
    red: &ReducedTopology,
    scenario: &CongestionScenario,
    cfg: &ProbeConfig,
    n_snapshots: usize,
    seeds: &[u64],
) -> Vec<MeasurementSet> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let run_one = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = scenario.clone();
        simulate_run(red, &mut scenario, cfg, n_snapshots, &mut rng)
    };
    let threads = losstomo_linalg::parallel::num_threads().min(seeds.len().max(1));
    if threads <= 1 {
        return seeds.iter().map(|&s| run_one(s)).collect();
    }
    let mut out: Vec<Option<MeasurementSet>> = Vec::new();
    out.resize_with(seeds.len(), || None);
    let chunk = seeds.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for (seed_chunk, out_chunk) in seeds.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (slot, &seed) in out_chunk.iter_mut().zip(seed_chunk) {
                    *slot = Some(run_one(seed));
                }
            });
        }
    })
    .expect("simulation worker panicked");
    out.into_iter()
        .map(|ms| ms.expect("all slots filled by workers"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CongestionDynamics;
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1_reduced() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    #[test]
    fn lossless_network_delivers_everything() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(1);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            0.0,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        // Good links can still lose up to 0.2%, so use Bernoulli with
        // LLRD1 and check we receive nearly everything.
        let cfg = ProbeConfig {
            probes_per_snapshot: 1000,
            ..ProbeConfig::default()
        };
        let snap = simulate_snapshot(&red, &scenario, &cfg, &mut rng);
        for &r in &snap.path_received {
            assert!(r >= 980, "received only {r}/1000 on a good path");
        }
    }

    #[test]
    fn congested_link_reduces_path_rate() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(2);
        // Congest everything.
        let scenario = CongestionScenario::draw(
            red.num_links(),
            1.0,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let cfg = ProbeConfig::default();
        let snap = simulate_snapshot(&red, &scenario, &cfg, &mut rng);
        // Each path has ≥2 congested links at ≥5% loss each.
        for &r in &snap.path_received {
            assert!(r < 950, "path unexpectedly clean: {r}/1000");
        }
    }

    #[test]
    fn truth_arrival_counting_respects_upstream_drops() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(3);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            1.0,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let cfg = ProbeConfig::default();
        let snap = simulate_snapshot(&red, &scenario, &cfg, &mut rng);
        let total_sent = (snap.probes as u64) * red.num_paths() as u64;
        // First-hop arrivals equal all probes (the shared root link of
        // the Figure-1 tree carries all 3 paths).
        let max_arrivals = snap
            .link_truth
            .iter()
            .map(|t| t.arrivals)
            .max()
            .unwrap();
        assert_eq!(max_arrivals, total_sent);
        // Downstream links see fewer arrivals than upstream drops allow.
        for t in &snap.link_truth {
            assert!(t.drops <= t.arrivals);
        }
    }

    #[test]
    fn empirical_rates_track_assigned_rates() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(4);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            1.0,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 5000,
            ..ProbeConfig::default()
        };
        let snap = simulate_snapshot(&red, &scenario, &cfg, &mut rng);
        for t in &snap.link_truth {
            if t.arrivals > 2000 {
                let emp = t.empirical_loss_rate().unwrap();
                assert!(
                    (emp - t.assigned_loss_rate).abs() < 0.05,
                    "assigned {} vs empirical {emp}",
                    t.assigned_loss_rate
                );
            }
        }
    }

    #[test]
    fn run_advances_scenario_between_snapshots() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(5);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.5,
            CongestionDynamics::Redraw,
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 10,
            ..ProbeConfig::default()
        };
        let ms = simulate_run(&red, &mut scenario, &cfg, 5, &mut rng);
        assert_eq!(ms.len(), 5);
        // With Redraw dynamics, congestion statuses should differ across
        // snapshots somewhere.
        let statuses: Vec<Vec<bool>> = ms
            .snapshots
            .iter()
            .map(|s| s.link_truth.iter().map(|t| t.congested).collect())
            .collect();
        assert!(statuses.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn deterministic_given_seed() {
        let red = fig1_reduced();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut scenario = CongestionScenario::draw(
                red.num_links(),
                0.3,
                CongestionDynamics::Fixed,
                &mut rng,
            );
            simulate_run(&red, &mut scenario, &ProbeConfig::default(), 3, &mut rng)
                .snapshots
                .iter()
                .map(|s| s.path_received.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn per_round_losses_are_shared_across_paths() {
        // B → r → {d1, d2}: the shared first link drops either both
        // packets of a round or neither, so its drop count is even.
        use losstomo_topology::{compute_paths, reduce, NodeKind};
        let mut g = losstomo_topology::Graph::new();
        let b = g.add_node(NodeKind::Host);
        let r = g.add_node(NodeKind::Router);
        let d1 = g.add_node(NodeKind::Host);
        let d2 = g.add_node(NodeKind::Host);
        let shared = g.add_link(b, r);
        g.add_link(r, d1);
        g.add_link(r, d2);
        let paths = compute_paths(&g, &[b], &[d1, d2]);
        let red = reduce(&g, &paths);
        let shared_col = red.link_to_virtual[&shared].index();
        let mut rng = StdRng::seed_from_u64(11);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            1.0,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let snap = simulate_snapshot(&red, &scenario, &ProbeConfig::default(), &mut rng);
        let t = &snap.link_truth[shared_col];
        assert!(t.drops > 0, "congested link never dropped");
        assert_eq!(t.drops % 2, 0, "per-round semantics share loss events");
    }

    #[test]
    fn per_arrival_mode_still_supported() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(12);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            1.0,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let cfg = ProbeConfig {
            advance: ChainAdvance::PerArrival,
            ..ProbeConfig::default()
        };
        let snap = simulate_snapshot(&red, &scenario, &cfg, &mut rng);
        assert!(snap.path_received.iter().any(|&r| r < 1000));
    }

    #[test]
    fn batch_matches_serial_runs() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(21);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            0.4,
            CongestionDynamics::Redraw,
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 50,
            ..ProbeConfig::default()
        };
        let seeds: Vec<u64> = (100..107).collect();
        let batch = simulate_run_batch(&red, &scenario, &cfg, 4, &seeds);
        for (&seed, ms) in seeds.iter().zip(batch.iter()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sc = scenario.clone();
            let serial = simulate_run(&red, &mut sc, &cfg, 4, &mut rng);
            assert_eq!(serial.len(), ms.len());
            for (a, b) in serial.snapshots.iter().zip(ms.snapshots.iter()) {
                assert_eq!(a.path_received, b.path_received, "seed {seed}");
            }
        }
    }

    #[test]
    fn fast_path_preserves_conservation_laws() {
        // Mostly-lossless run (good links at ≤0.2 % loss): the bulk
        // update for all-good rounds must keep the exact accounting
        // identities that the per-path walk maintains.
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(30);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            0.0,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 2000,
            ..ProbeConfig::default()
        };
        let snap = simulate_snapshot(&red, &scenario, &cfg, &mut rng);
        let probes = cfg.probes_per_snapshot as u64;
        let n_paths = red.num_paths() as u64;
        // Every dropped probe removes exactly one delivery.
        let received: u64 = snap.path_received.iter().map(|&r| r as u64).sum();
        let drops: u64 = snap.link_truth.iter().map(|t| t.drops).sum();
        assert_eq!(received + drops, probes * n_paths);
        // The shared root link carries every probe of every path.
        let ppl = red.paths_per_link();
        let root = (0..red.num_links())
            .find(|&k| ppl[k].len() == red.num_paths())
            .expect("figure-1 tree has a shared root link");
        assert_eq!(snap.link_truth[root].arrivals, probes * n_paths);
        // No link sees more arrivals than probes × traversing paths.
        for (k, t) in snap.link_truth.iter().enumerate() {
            assert!(t.arrivals <= probes * ppl[k].len() as u64);
        }
    }

    #[test]
    fn stream_matches_batch_run_bitwise() {
        let red = fig1_reduced();
        let cfg = ProbeConfig {
            probes_per_snapshot: 40,
            ..ProbeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(77);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            0.4,
            CongestionDynamics::Markov {
                stay_congested: 0.7,
            },
            &mut rng,
        );
        // Batch run from the post-draw RNG state…
        let mut batch_rng = rng.clone();
        let mut batch_scenario = scenario.clone();
        let batch = simulate_run(&red, &mut batch_scenario, &cfg, 6, &mut batch_rng);
        // …vs streaming the same state through the iterator.
        let streamed: MeasurementSet =
            simulate_stream(&red, scenario, &cfg, rng).take(6).collect();
        assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.snapshots.iter().zip(batch.snapshots.iter()) {
            assert_eq!(s.path_received, b.path_received);
            for (st, bt) in s.link_truth.iter().zip(b.link_truth.iter()) {
                assert_eq!(st.arrivals, bt.arrivals);
                assert_eq!(st.drops, bt.drops);
                assert_eq!(st.assigned_loss_rate, bt.assigned_loss_rate);
                assert_eq!(st.congested, bt.congested);
            }
        }
    }

    #[test]
    fn stream_tracks_scenario_and_count() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(78);
        let scenario = CongestionScenario::draw(
            red.num_links(),
            0.5,
            CongestionDynamics::Redraw,
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 5,
            ..ProbeConfig::default()
        };
        let mut stream = simulate_stream(&red, scenario, &cfg, rng);
        assert_eq!(stream.produced(), 0);
        let _ = stream.next();
        let _ = stream.next();
        assert_eq!(stream.produced(), 2);
        assert_eq!(stream.scenario().len(), red.num_links());
    }

    #[test]
    #[should_panic(expected = "scenario tracks")]
    fn stream_checks_scenario_size() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(79);
        let scenario =
            CongestionScenario::draw(2, 0.0, CongestionDynamics::Fixed, &mut rng);
        let _ = simulate_stream(&red, scenario, &ProbeConfig::default(), rng);
    }

    #[test]
    #[should_panic(expected = "scenario tracks")]
    fn scenario_size_mismatch_panics() {
        let red = fig1_reduced();
        let mut rng = StdRng::seed_from_u64(6);
        let scenario =
            CongestionScenario::draw(1, 0.0, CongestionDynamics::Fixed, &mut rng);
        simulate_snapshot(&red, &scenario, &ProbeConfig::default(), &mut rng);
    }
}
