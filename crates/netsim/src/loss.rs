//! Per-link packet-loss processes.
//!
//! Section 6 of the paper drives each link with a **Gilbert** two-state
//! process ("the link fluctuates between good and congested states. When
//! in a good state, the link does not drop any packet, when in a
//! congested state the link drops all packets"), with the probability of
//! *remaining* in the bad state fixed to 0.35 after [Paxson 1997]. A
//! Bernoulli process is also evaluated ("the differences are
//! insignificant") and provided here for the ablation bench.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-link loss process: consumes one RNG draw per arriving packet
/// and reports whether the packet survives the link.
pub trait LossProcess {
    /// Advances the process by one packet arrival; returns `true` if the
    /// packet survives.
    fn packet_survives<R: Rng>(&mut self, rng: &mut R) -> bool;

    /// The long-run loss rate this process was configured for.
    fn target_loss_rate(&self) -> f64;
}

/// Which loss process family to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LossProcessKind {
    /// Bursty two-state Gilbert process (the paper's default).
    #[default]
    Gilbert,
    /// Independent per-packet drops.
    Bernoulli,
    /// Heavy-tailed flowlet-arrival bursts (see [`crate::flowlet`]).
    Flowlet,
}

/// The paper's probability of remaining in the bad state
/// (`P(bad → bad)`), taken from the Gilbert-model fit in [Paxson 1997]
/// and reused by [Padmanabhan et al. 2003] and [Zhao et al. 2006].
pub const GILBERT_STAY_BAD: f64 = 0.35;

/// Two-state Gilbert loss process.
///
/// In the *good* state no packet is dropped; in the *bad* state every
/// packet is dropped. The chain transitions on each packet arrival. The
/// good→bad probability is chosen so that the stationary probability of
/// the bad state equals the configured loss rate:
///
/// `π_bad = p_gb / (p_gb + p_bg)  ⇒  p_gb = π_bad · p_bg / (1 − π_bad)`.
#[derive(Debug, Clone)]
pub struct GilbertProcess {
    /// P(good → bad) per packet.
    p_gb: f64,
    /// P(bad → good) per packet (= 1 − [`GILBERT_STAY_BAD`] by default).
    p_bg: f64,
    /// Current state: `true` = bad (dropping).
    bad: bool,
    target: f64,
}

impl GilbertProcess {
    /// Creates a process with stationary loss rate `loss_rate ∈ [0, 1]`
    /// and the paper's `P(bad→bad) = 0.35`.
    ///
    /// Rates ≥ 1 saturate to "always bad"; rate 0 is "never bad".
    pub fn from_loss_rate(loss_rate: f64) -> Self {
        Self::with_stay_bad(loss_rate, GILBERT_STAY_BAD)
    }

    /// Creates a process with an explicit `P(bad→bad)`.
    ///
    /// High loss rates cannot be reached with the default escape
    /// probability (`p_gb ≤ 1` caps the stationary rate at
    /// `1/(2 − stay_bad)`); beyond that point the process pins
    /// `p_gb = 1` and lowers the escape probability instead, which keeps
    /// the stationary rate exact and makes bursts even longer.
    pub fn with_stay_bad(loss_rate: f64, stay_bad: f64) -> Self {
        assert!((0.0..1.0).contains(&stay_bad), "stay_bad must be in [0,1)");
        let rate = loss_rate.clamp(0.0, 1.0);
        let p_bg_default = 1.0 - stay_bad;
        let (p_gb, p_bg) = if rate >= 1.0 {
            (1.0, 0.0)
        } else if rate <= 0.0 {
            (0.0, p_bg_default)
        } else {
            let wanted = rate * p_bg_default / (1.0 - rate);
            if wanted <= 1.0 {
                (wanted, p_bg_default)
            } else {
                (1.0, (1.0 - rate) / rate)
            }
        };
        GilbertProcess {
            p_gb,
            p_bg,
            bad: false,
            target: rate,
        }
    }

    /// Whether the process is currently in the bad (dropping) state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }
}

impl LossProcess for GilbertProcess {
    fn packet_survives<R: Rng>(&mut self, rng: &mut R) -> bool {
        // Transition on arrival, then drop iff bad.
        if self.bad {
            if rng.gen::<f64>() < self.p_bg {
                self.bad = false;
            }
        } else if rng.gen::<f64>() < self.p_gb {
            self.bad = true;
        }
        !self.bad
    }

    fn target_loss_rate(&self) -> f64 {
        self.target
    }
}

/// Independent (memoryless) per-packet loss.
#[derive(Debug, Clone)]
pub struct BernoulliProcess {
    rate: f64,
}

impl BernoulliProcess {
    /// Creates a process dropping each packet independently with
    /// probability `loss_rate`.
    pub fn from_loss_rate(loss_rate: f64) -> Self {
        BernoulliProcess {
            rate: loss_rate.clamp(0.0, 1.0),
        }
    }
}

impl LossProcess for BernoulliProcess {
    fn packet_survives<R: Rng>(&mut self, rng: &mut R) -> bool {
        rng.gen::<f64>() >= self.rate
    }

    fn target_loss_rate(&self) -> f64 {
        self.rate
    }
}

/// A dynamically-dispatched loss process, so the engine can mix
/// families per link.
#[derive(Debug, Clone)]
pub enum AnyLossProcess {
    /// Gilbert process.
    Gilbert(GilbertProcess),
    /// Bernoulli process.
    Bernoulli(BernoulliProcess),
    /// Flowlet-arrival bursty process.
    Flowlet(crate::flowlet::FlowletProcess),
}

impl AnyLossProcess {
    /// Creates a process of the given kind and loss rate.
    pub fn new(kind: LossProcessKind, loss_rate: f64) -> Self {
        match kind {
            LossProcessKind::Gilbert => {
                AnyLossProcess::Gilbert(GilbertProcess::from_loss_rate(loss_rate))
            }
            LossProcessKind::Bernoulli => {
                AnyLossProcess::Bernoulli(BernoulliProcess::from_loss_rate(loss_rate))
            }
            LossProcessKind::Flowlet => {
                AnyLossProcess::Flowlet(crate::flowlet::FlowletProcess::from_loss_rate(loss_rate))
            }
        }
    }
}

impl LossProcess for AnyLossProcess {
    #[inline]
    fn packet_survives<R: Rng>(&mut self, rng: &mut R) -> bool {
        match self {
            AnyLossProcess::Gilbert(p) => p.packet_survives(rng),
            AnyLossProcess::Bernoulli(p) => p.packet_survives(rng),
            AnyLossProcess::Flowlet(p) => p.packet_survives(rng),
        }
    }

    fn target_loss_rate(&self) -> f64 {
        match self {
            AnyLossProcess::Gilbert(p) => p.target_loss_rate(),
            AnyLossProcess::Bernoulli(p) => p.target_loss_rate(),
            AnyLossProcess::Flowlet(p) => p.target_loss_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_rate<P: LossProcess>(p: &mut P, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut drops = 0;
        for _ in 0..n {
            if !p.packet_survives(&mut rng) {
                drops += 1;
            }
        }
        drops as f64 / n as f64
    }

    #[test]
    fn gilbert_matches_target_rate() {
        for &target in &[0.01, 0.05, 0.1, 0.2, 0.7, 0.95] {
            let mut p = GilbertProcess::from_loss_rate(target);
            let emp = empirical_rate(&mut p, 200_000, 1);
            assert!(
                (emp - target).abs() < 0.01,
                "target {target}, empirical {emp}"
            );
        }
    }

    #[test]
    fn gilbert_losses_are_bursty() {
        // Measure run lengths of consecutive drops: mean run length for
        // Gilbert with stay=0.35 is 1/(1-0.35) ≈ 1.54, but observed runs
        // must exceed Bernoulli's at equal rate (≈ 1/(1-rate) ≈ 1.11).
        let rate = 0.1;
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = GilbertProcess::from_loss_rate(rate);
        let mut runs = Vec::new();
        let mut current = 0usize;
        for _ in 0..200_000 {
            if !g.packet_survives(&mut rng) {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(
            (mean_run - 1.0 / (1.0 - GILBERT_STAY_BAD)).abs() < 0.1,
            "mean drop-burst length {mean_run}"
        );
    }

    #[test]
    fn gilbert_extremes() {
        let mut always = GilbertProcess::from_loss_rate(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !always.packet_survives(&mut rng)));
        let mut never = GilbertProcess::from_loss_rate(0.0);
        assert!((0..100).all(|_| never.packet_survives(&mut rng)));
    }

    #[test]
    fn bernoulli_matches_target_rate() {
        let mut p = BernoulliProcess::from_loss_rate(0.07);
        let emp = empirical_rate(&mut p, 200_000, 4);
        assert!((emp - 0.07).abs() < 0.005, "empirical {emp}");
    }

    #[test]
    fn bernoulli_is_memoryless() {
        // Burst lengths should match the geometric expectation 1/(1-r).
        let rate = 0.2;
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = BernoulliProcess::from_loss_rate(rate);
        let mut runs = Vec::new();
        let mut current = 0usize;
        for _ in 0..300_000 {
            if !p.packet_survives(&mut rng) {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!((mean_run - 1.0 / (1.0 - rate)).abs() < 0.05);
    }

    #[test]
    fn any_process_dispatches() {
        let mut g = AnyLossProcess::new(LossProcessKind::Gilbert, 0.5);
        let mut b = AnyLossProcess::new(LossProcessKind::Bernoulli, 0.5);
        assert_eq!(g.target_loss_rate(), 0.5);
        assert_eq!(b.target_loss_rate(), 0.5);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = g.packet_survives(&mut rng);
        let _ = b.packet_survives(&mut rng);
    }

    #[test]
    fn rates_clamped() {
        assert_eq!(GilbertProcess::from_loss_rate(-0.5).target_loss_rate(), 0.0);
        assert_eq!(BernoulliProcess::from_loss_rate(7.0).target_loss_rate(), 1.0);
    }
}
