//! Link loss-rate assignment models (LLRD1 / LLRD2).
//!
//! From Section 6: "We use the loss rate model LLRD1 of [Padmanabhan et
//! al. 2003] where congested links have loss rates uniformly distributed
//! in [0.05, 0.2] and good links have loss rates in [0, 0.002]. We also
//! evaluate our method with the loss rate model LLRD2 ..., where loss
//! rates of congested links vary over a wider range of [0.002, 1]. In
//! both models, there is a loss rate threshold t_l = 0.002 that separates
//! good and congested links."

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The loss-rate threshold `t_l` separating good and congested links in
/// both LLRD models.
pub const DEFAULT_LOSS_THRESHOLD: f64 = 0.002;

/// Which loss-rate model assigns per-snapshot rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// Congested links: `U[0.05, 0.2]`; good links: `U[0, 0.002]`.
    #[default]
    Llrd1,
    /// Congested links: `U[0.002, 1]`; good links: `U[0, 0.002]`.
    Llrd2,
}

impl LossModel {
    /// The threshold `t_l` classifying links as good/congested.
    pub fn threshold(self) -> f64 {
        DEFAULT_LOSS_THRESHOLD
    }

    /// Draws a loss rate for a congested link.
    pub fn draw_congested<R: Rng>(self, rng: &mut R) -> f64 {
        match self {
            LossModel::Llrd1 => rng.gen_range(0.05..0.2),
            LossModel::Llrd2 => rng.gen_range(DEFAULT_LOSS_THRESHOLD..1.0),
        }
    }

    /// Draws a loss rate for a good (un-congested) link.
    pub fn draw_good<R: Rng>(self, rng: &mut R) -> f64 {
        match self {
            LossModel::Llrd1 | LossModel::Llrd2 => rng.gen_range(0.0..DEFAULT_LOSS_THRESHOLD),
        }
    }

    /// Classifies a loss rate against the threshold.
    pub fn is_congested_rate(self, rate: f64) -> bool {
        rate > self.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn llrd1_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = LossModel::Llrd1.draw_congested(&mut rng);
            assert!((0.05..0.2).contains(&c));
            let g = LossModel::Llrd1.draw_good(&mut rng);
            assert!((0.0..DEFAULT_LOSS_THRESHOLD).contains(&g));
        }
    }

    #[test]
    fn llrd2_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let c = LossModel::Llrd2.draw_congested(&mut rng);
            assert!((DEFAULT_LOSS_THRESHOLD..1.0).contains(&c));
        }
    }

    #[test]
    fn congested_rates_exceed_good_rates() {
        let mut rng = StdRng::seed_from_u64(3);
        for model in [LossModel::Llrd1, LossModel::Llrd2] {
            let c = model.draw_congested(&mut rng);
            let g = model.draw_good(&mut rng);
            assert!(c > g);
            assert!(model.is_congested_rate(c));
            assert!(!model.is_congested_rate(g));
        }
    }

    #[test]
    fn threshold_is_paper_value() {
        assert_eq!(LossModel::Llrd1.threshold(), 0.002);
        assert_eq!(LossModel::Llrd2.threshold(), 0.002);
    }
}
