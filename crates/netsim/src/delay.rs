//! Per-link delay simulation — the substrate for the paper's first
//! proposed extension (Section 8): "A first immediate extension is to
//! compute link delays. Congested links usually have high delay
//! variations."
//!
//! Each link has a fixed propagation delay plus a queueing component:
//! negligible jitter on un-congested links, and a per-snapshot mean
//! queueing delay with per-packet jitter on congested links. Path delay
//! is the sum of link delays, so the measurement model is linear without
//! any log transform, and the identifiability theory of Section 4
//! carries over verbatim (the augmented matrix `A` is the same).

use crate::scenario::CongestionScenario;
use losstomo_topology::ReducedTopology;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Delay-model configuration (all values in milliseconds).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DelayConfig {
    /// Probes per path per snapshot (averaged into one path-delay
    /// sample, like the loss engine's `S`).
    pub probes_per_snapshot: u32,
    /// Propagation delay per link drawn once from `U[min, max)`.
    pub propagation_range: (f64, f64),
    /// Mean queueing delay of a congested link, re-drawn per snapshot
    /// from `U[min, max)`.
    pub congested_queue_range: (f64, f64),
    /// Mean queueing delay of a good link per snapshot, `U[0, max)`.
    pub good_queue_max: f64,
}

impl Default for DelayConfig {
    fn default() -> Self {
        DelayConfig {
            probes_per_snapshot: 1000,
            propagation_range: (1.0, 10.0),
            congested_queue_range: (5.0, 40.0),
            good_queue_max: 0.2,
        }
    }
}

/// Fixed per-run delay state: propagation delays, drawn once (T.1).
#[derive(Debug, Clone)]
pub struct DelayNetwork {
    /// Propagation delay per virtual link.
    pub propagation: Vec<f64>,
}

impl DelayNetwork {
    /// Draws propagation delays for every link of the topology.
    pub fn draw<R: Rng>(red: &ReducedTopology, cfg: &DelayConfig, rng: &mut R) -> Self {
        let (lo, hi) = cfg.propagation_range;
        assert!(lo < hi, "propagation range must be non-empty");
        DelayNetwork {
            propagation: (0..red.num_links()).map(|_| rng.gen_range(lo..hi)).collect(),
        }
    }
}

/// One delay snapshot: average path delays plus ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelaySnapshot {
    /// Average end-to-end delay per path (ms), over `S` probes.
    pub path_delay: Vec<f64>,
    /// Ground truth: mean queueing delay per link in this snapshot.
    pub link_queue_delay: Vec<f64>,
    /// Ground truth: congestion status per link.
    pub congested: Vec<bool>,
}

/// Simulates one delay snapshot.
///
/// Every congested link draws a snapshot-mean queueing delay; each
/// probe's per-link delay is `propagation + Exp(mean queue)`; the path
/// sample is the average over `S` probes. Averaging keeps the
/// measurement noise `O(mean/√S)`, so path delays are effectively the
/// sum of per-link snapshot means — the linear model `Y = R X`.
pub fn simulate_delay_snapshot<R: Rng>(
    red: &ReducedTopology,
    net: &DelayNetwork,
    scenario: &CongestionScenario,
    cfg: &DelayConfig,
    rng: &mut R,
) -> DelaySnapshot {
    let n_links = red.num_links();
    assert_eq!(scenario.len(), n_links, "scenario/topology size mismatch");
    let (qlo, qhi) = cfg.congested_queue_range;
    // Per-snapshot mean queueing delay per link.
    let queue_mean: Vec<f64> = (0..n_links)
        .map(|k| {
            if scenario.is_congested(k) {
                rng.gen_range(qlo..qhi)
            } else {
                rng.gen_range(0.0..cfg.good_queue_max)
            }
        })
        .collect();
    // Per-path averages over S probes; exponential jitter around the
    // per-link mean (inverse-CDF sampling).
    let s = cfg.probes_per_snapshot.max(1);
    let mut path_delay = vec![0.0; red.num_paths()];
    for (i, delay_out) in path_delay.iter_mut().enumerate() {
        let links = red.path_links(losstomo_topology::PathId(i as u32));
        let mut acc = 0.0;
        for _ in 0..s {
            for &k in links {
                let jitter = -queue_mean[k] * (1.0 - rng.gen::<f64>()).ln();
                acc += net.propagation[k] + jitter;
            }
        }
        *delay_out = acc / s as f64;
    }
    DelaySnapshot {
        path_delay,
        link_queue_delay: queue_mean,
        congested: scenario.statuses().to_vec(),
    }
}

/// Simulates a run of consecutive delay snapshots, advancing the
/// congestion scenario between them.
pub fn simulate_delay_run<R: Rng>(
    red: &ReducedTopology,
    net: &DelayNetwork,
    scenario: &mut CongestionScenario,
    cfg: &DelayConfig,
    n_snapshots: usize,
    rng: &mut R,
) -> Vec<DelaySnapshot> {
    let mut out = Vec::with_capacity(n_snapshots);
    for t in 0..n_snapshots {
        if t > 0 {
            scenario.advance(rng);
        }
        out.push(simulate_delay_snapshot(red, net, scenario, cfg, rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CongestionDynamics;
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(p: f64, seed: u64) -> (ReducedTopology, DelayNetwork, CongestionScenario, StdRng) {
        let red = fixtures::reduced(&fixtures::figure1());
        let mut rng = StdRng::seed_from_u64(seed);
        let net = DelayNetwork::draw(&red, &DelayConfig::default(), &mut rng);
        let scenario =
            CongestionScenario::draw(red.num_links(), p, CongestionDynamics::Fixed, &mut rng);
        (red, net, scenario, rng)
    }

    #[test]
    fn path_delay_close_to_sum_of_link_means() {
        let (red, net, scenario, mut rng) = setup(1.0, 1);
        let cfg = DelayConfig::default();
        let snap = simulate_delay_snapshot(&red, &net, &scenario, &cfg, &mut rng);
        for (i, &d) in snap.path_delay.iter().enumerate() {
            let links = red.path_links(losstomo_topology::PathId(i as u32));
            let expected: f64 = links
                .iter()
                .map(|&k| net.propagation[k] + snap.link_queue_delay[k])
                .sum();
            // Averaged over 1000 probes: within a few percent.
            assert!(
                (d - expected).abs() < 0.15 * expected,
                "path {i}: {d} vs {expected}"
            );
        }
    }

    #[test]
    fn congested_links_have_larger_queues() {
        let (red, net, _, mut rng) = setup(0.0, 2);
        let cfg = DelayConfig::default();
        let all_good =
            CongestionScenario::with_statuses(0.0, CongestionDynamics::Fixed, vec![false; red.num_links()]);
        let all_bad =
            CongestionScenario::with_statuses(1.0, CongestionDynamics::Fixed, vec![true; red.num_links()]);
        let good = simulate_delay_snapshot(&red, &net, &all_good, &cfg, &mut rng);
        let bad = simulate_delay_snapshot(&red, &net, &all_bad, &cfg, &mut rng);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&bad.link_queue_delay) > 10.0 * avg(&good.link_queue_delay));
    }

    #[test]
    fn run_advances_scenario() {
        let (red, net, mut scenario, mut rng) = setup(0.5, 3);
        scenario.dynamics = CongestionDynamics::Redraw;
        let snaps = simulate_delay_run(
            &red,
            &net,
            &mut scenario,
            &DelayConfig::default(),
            4,
            &mut rng,
        );
        assert_eq!(snaps.len(), 4);
        assert!(snaps.windows(2).any(|w| w[0].congested != w[1].congested));
    }

    #[test]
    fn propagation_delays_in_range() {
        let (_, net, _, _) = setup(0.1, 4);
        assert!(net
            .propagation
            .iter()
            .all(|&d| (1.0..10.0).contains(&d)));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn scenario_mismatch_panics() {
        let (red, net, _, mut rng) = setup(0.1, 5);
        let tiny = CongestionScenario::with_statuses(
            0.1,
            CongestionDynamics::Fixed,
            vec![false],
        );
        simulate_delay_snapshot(&red, &net, &tiny, &DelayConfig::default(), &mut rng);
    }
}
