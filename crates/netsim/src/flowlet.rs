//! Flowlet bursty-arrival loss traces.
//!
//! The Gilbert chain produces geometric burst lengths — short-tailed,
//! memoryless beyond one packet. Measured Internet loss episodes are
//! heavier-tailed: congestion events triggered by flowlet arrivals drop
//! *runs* of packets whose lengths follow a power law. This module
//! models that workload directly: loss bursts arrive as a renewal
//! process and each burst drops `L` consecutive packets with
//! `P(L = ℓ) ∝ ℓ^{-α}` (a discrete Pareto/Zipf law truncated at
//! [`FlowletParams::max_burst`]).
//!
//! The per-packet burst-start probability `q` is calibrated so the
//! *stationary* loss rate equals the configured `p`: a renewal cycle
//! consists of a geometric run of delivered packets (mean `(1 − q)/q`)
//! followed by one burst (mean `μ`), so
//!
//! `p = μ / (μ + (1 − q)/q)  ⇒  q = p / (p + μ(1 − p))`.
//!
//! Like every [`LossProcess`], the chain consumes RNG draws only
//! through `packet_survives`, so runs are bit-reproducible from the
//! seed and the `simulate_stream` contract (stream ≡ batch) holds
//! unchanged.

use crate::loss::LossProcess;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape parameters of the flowlet burst-length law.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowletParams {
    /// Pareto/Zipf shape `α` of the burst-length pmf `ℓ^{-α}`
    /// (smaller ⇒ heavier tail). Default 1.7, in the range fitted to
    /// measured flowlet inter-arrivals.
    pub shape: f64,
    /// Truncation `B` of the burst length (bursts are `1..=B` packets).
    pub max_burst: u32,
}

impl Default for FlowletParams {
    fn default() -> Self {
        FlowletParams {
            shape: 1.7,
            max_burst: 64,
        }
    }
}

/// A bursty flowlet-arrival loss process with stationary loss rate `p`.
#[derive(Debug, Clone)]
pub struct FlowletProcess {
    /// Cumulative burst-length distribution, `cdf[ℓ-1] = P(L ≤ ℓ)`.
    cdf: Vec<f64>,
    /// Analytic mean burst length `μ = E[L]`.
    mean_burst: f64,
    /// Per-packet burst-start probability while idle.
    q: f64,
    /// Packets left to drop in the current burst.
    remaining: u32,
    target: f64,
}

impl FlowletProcess {
    /// Creates a process with stationary loss rate `loss_rate ∈ [0, 1]`
    /// and the default burst-length law.
    pub fn from_loss_rate(loss_rate: f64) -> Self {
        Self::with_params(loss_rate, FlowletParams::default())
    }

    /// Creates a process with an explicit burst-length law.
    ///
    /// # Panics
    /// Panics if `max_burst == 0` or `shape` is not finite.
    pub fn with_params(loss_rate: f64, params: FlowletParams) -> Self {
        assert!(params.max_burst > 0, "max_burst must be positive");
        assert!(params.shape.is_finite(), "shape must be finite");
        let p = loss_rate.clamp(0.0, 1.0);
        let b = params.max_burst as usize;
        let weights: Vec<f64> = (1..=b)
            .map(|l| (l as f64).powf(-params.shape))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(b);
        let mut acc = 0.0;
        let mut mean = 0.0;
        for (i, w) in weights.iter().enumerate() {
            let prob = w / total;
            acc += prob;
            mean += (i + 1) as f64 * prob;
            cdf.push(acc);
        }
        // Guard against rounding: the last CDF entry must catch every
        // uniform draw.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        // Renewal-reward calibration (see the module docs). p = 1 pins
        // q = 1: every idle packet immediately starts a new burst.
        let q = if p >= 1.0 {
            1.0
        } else {
            p / (p + mean * (1.0 - p))
        };
        FlowletProcess {
            cdf,
            mean_burst: mean,
            q,
            remaining: 0,
            target: p,
        }
    }

    /// Analytic mean burst length `μ` of the configured law.
    pub fn mean_burst(&self) -> f64 {
        self.mean_burst
    }

    /// The calibrated per-packet burst-start probability.
    pub fn burst_start_probability(&self) -> f64 {
        self.q
    }

    /// Whether the process is mid-burst (dropping).
    pub fn in_burst(&self) -> bool {
        self.remaining > 0
    }

    /// Draws one burst length from the truncated power-law pmf.
    fn draw_burst_len<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // First ℓ with CDF(ℓ) ≥ u; partition_point counts entries < u.
        (self.cdf.partition_point(|&c| c < u) + 1) as u32
    }
}

impl LossProcess for FlowletProcess {
    fn packet_survives<R: Rng>(&mut self, rng: &mut R) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            return false;
        }
        if self.q > 0.0 && rng.gen::<f64>() < self.q {
            // This packet is the first drop of a fresh burst.
            self.remaining = self.draw_burst_len(rng) - 1;
            return false;
        }
        true
    }

    fn target_loss_rate(&self) -> f64 {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalised_and_monotone() {
        let p = FlowletProcess::with_params(
            0.1,
            FlowletParams {
                shape: 1.7,
                max_burst: 32,
            },
        );
        assert_eq!(p.cdf.len(), 32);
        assert!(p.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*p.cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn mean_burst_matches_direct_sum() {
        let params = FlowletParams {
            shape: 2.0,
            max_burst: 16,
        };
        let p = FlowletProcess::with_params(0.05, params);
        let total: f64 = (1..=16).map(|l| (l as f64).powf(-2.0)).sum();
        let mean: f64 = (1..=16)
            .map(|l| l as f64 * (l as f64).powf(-2.0) / total)
            .sum();
        assert!((p.mean_burst() - mean).abs() < 1e-12);
    }

    #[test]
    fn calibration_solves_renewal_equation() {
        for &rate in &[0.01, 0.05, 0.1, 0.5, 0.9] {
            let p = FlowletProcess::from_loss_rate(rate);
            let q = p.burst_start_probability();
            let mu = p.mean_burst();
            let stationary = mu / (mu + (1.0 - q) / q);
            assert!(
                (stationary - rate).abs() < 1e-12,
                "rate {rate}: stationary {stationary}"
            );
        }
    }

    #[test]
    fn extremes_never_and_always_drop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut never = FlowletProcess::from_loss_rate(0.0);
        assert!((0..200).all(|_| never.packet_survives(&mut rng)));
        let mut always = FlowletProcess::from_loss_rate(1.0);
        assert!((0..200).all(|_| !always.packet_survives(&mut rng)));
    }

    #[test]
    fn burst_draws_stay_within_cap_and_cover_range() {
        let params = FlowletParams {
            shape: 1.2,
            max_burst: 8,
        };
        let p = FlowletProcess::with_params(0.3, params);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..100_000 {
            let l = p.draw_burst_len(&mut rng);
            assert!((1..=8).contains(&l), "burst length {l} out of range");
            seen[(l - 1) as usize] = true;
        }
        // With shape 1.2 every length has probability > 1e-2: all hit.
        assert!(seen.iter().all(|&s| s), "some lengths never drawn: {seen:?}");
    }

    #[test]
    fn rates_clamped() {
        assert_eq!(FlowletProcess::from_loss_rate(-1.0).target_loss_rate(), 0.0);
        assert_eq!(FlowletProcess::from_loss_rate(2.0).target_loss_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "max_burst")]
    fn zero_cap_rejected() {
        let _ = FlowletProcess::with_params(
            0.1,
            FlowletParams {
                shape: 1.7,
                max_burst: 0,
            },
        );
    }
}
