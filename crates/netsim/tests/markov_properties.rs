//! Property-based tests for [`CongestionDynamics::Markov`].
//!
//! The Markov dynamics promise two things (scenario.rs):
//!
//! * **stationarity** — the chain's `become_congested` probability is
//!   derived so the long-run congested fraction equals the configured
//!   `p`, for *any* `stay_congested`;
//! * **sojourn control** — a congested link stays congested with
//!   probability `stay_congested` per step, so completed congestion
//!   episodes are geometric with mean `1 / (1 − stay_congested)`.
//!
//! Both are checked over randomly drawn `(p, stay_congested, seed)`
//! configurations with enough links × steps that the sample statistics
//! concentrate.

use losstomo_netsim::{CongestionDynamics, CongestionScenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulates `steps` transitions of `n_links` independent per-link
/// chains and returns (per-step congested fractions, completed
/// congested-episode lengths).
fn run_chain(
    n_links: usize,
    p: f64,
    stay: f64,
    steps: usize,
    seed: u64,
) -> (Vec<f64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scenario = CongestionScenario::draw(
        n_links,
        p,
        CongestionDynamics::Markov {
            stay_congested: stay,
        },
        &mut rng,
    );
    let mut fractions = Vec::with_capacity(steps);
    // Per-link length of the episode in progress; only episodes that
    // *start* during the run count (an unbiased geometric sample —
    // initially-congested links are length-biased), and episodes still
    // open at the end are discarded.
    let mut in_progress: Vec<Option<u64>> = vec![None; n_links];
    let mut episodes: Vec<u64> = Vec::new();
    let mut prev: Vec<bool> = scenario.statuses().to_vec();
    for _ in 0..steps {
        scenario.advance(&mut rng);
        fractions.push(scenario.congested_count() as f64 / n_links as f64);
        for (k, (&was, &now)) in prev.iter().zip(scenario.statuses().iter()).enumerate() {
            match (was, now) {
                (false, true) => in_progress[k] = Some(1),
                (true, true) => {
                    if let Some(len) = in_progress[k].as_mut() {
                        *len += 1;
                    }
                }
                (true, false) => {
                    if let Some(len) = in_progress[k].take() {
                        episodes.push(len);
                    }
                }
                (false, false) => {}
            }
        }
        prev.copy_from_slice(scenario.statuses());
    }
    (fractions, episodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The long-run congested fraction converges to the configured `p`
    /// for any persistence level.
    #[test]
    fn markov_long_run_fraction_converges_to_p(
        p in 0.05f64..0.35,
        stay in 0.2f64..0.95,
        seed in 0u64..1000,
    ) {
        let (fractions, _) = run_chain(4000, p, stay, 250, seed);
        // Skip a burn-in so the initial draw does not dominate.
        let tail = &fractions[50..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let tol = (0.15 * p).max(0.015);
        prop_assert!(
            (mean - p).abs() < tol,
            "stationary fraction {mean:.4} vs configured p {p:.4} (stay {stay:.2})"
        );
    }

    /// `stay_congested` controls the measured sojourn lengths:
    /// completed congestion episodes are geometric with mean
    /// `1 / (1 − stay_congested)`.
    #[test]
    fn markov_sojourn_lengths_follow_stay_probability(
        p in 0.05f64..0.3,
        stay in 0.2f64..0.9,
        seed in 0u64..1000,
    ) {
        let (_, episodes) = run_chain(4000, p, stay, 300, seed);
        prop_assert!(
            episodes.len() > 200,
            "too few completed episodes ({}) to estimate sojourns",
            episodes.len()
        );
        let mean = episodes.iter().sum::<u64>() as f64 / episodes.len() as f64;
        let expected = 1.0 / (1.0 - stay);
        prop_assert!(
            (mean - expected).abs() < 0.15 * expected + 0.1,
            "mean sojourn {mean:.3} vs geometric mean {expected:.3} (stay {stay:.2})"
        );
    }
}

/// Deterministic spot-check that longer persistence yields longer
/// measured sojourns (the knob is monotone end to end).
#[test]
fn higher_stay_means_longer_sojourns() {
    let (_, short) = run_chain(3000, 0.1, 0.3, 300, 42);
    let (_, long) = run_chain(3000, 0.1, 0.9, 300, 42);
    let mean = |e: &[u64]| e.iter().sum::<u64>() as f64 / e.len() as f64;
    assert!(
        mean(&long) > 2.0 * mean(&short),
        "stay=0.9 mean {:.2} should dwarf stay=0.3 mean {:.2}",
        mean(&long),
        mean(&short)
    );
}
