//! Property-based tests for the flowlet bursty-loss workload
//! ([`losstomo_netsim::flowlet`]).
//!
//! The flowlet process promises three things:
//!
//! * **calibrated marginal** — the long-run per-packet loss rate equals
//!   the configured `p` for any burst-length law (renewal-reward
//!   calibration of the burst-start probability `q`);
//! * **burst-length control** — a maximal run of consecutive drops is a
//!   geometric number of back-to-back bursts, so its mean is exactly
//!   `μ / (1 − q)` with `μ` the analytic mean burst length;
//! * **determinism** — all randomness flows through the caller's RNG,
//!   so the same seed yields a bit-identical drop sequence and the
//!   engine's `simulate_stream ≡ simulate_run` contract carries over
//!   unchanged to [`LossProcessKind::Flowlet`].

use losstomo_netsim::flowlet::{FlowletParams, FlowletProcess};
use losstomo_netsim::{
    simulate_run, simulate_stream, CongestionDynamics, CongestionScenario, LossProcess,
    LossProcessKind, MeasurementSet, ProbeConfig,
};
use losstomo_topology::gen::tree::{self, TreeParams};
use losstomo_topology::{compute_paths, reduce};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `n` packets and returns (drop fraction, completed drop-run
/// lengths). Runs still open at the end are discarded so the sample is
/// unbiased.
fn run_process(p: &mut FlowletProcess, n: usize, seed: u64) -> (f64, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut drops = 0usize;
    let mut runs: Vec<u64> = Vec::new();
    let mut current = 0u64;
    for _ in 0..n {
        if !p.packet_survives(&mut rng) {
            drops += 1;
            current += 1;
        } else {
            if current > 0 {
                runs.push(current);
            }
            current = 0;
        }
    }
    (drops as f64 / n as f64, runs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The long-run marginal loss rate converges to the configured `p`
    /// for any shape/truncation of the burst law.
    #[test]
    fn marginal_rate_converges_to_p(
        rate in 0.02f64..0.3,
        shape in 1.2f64..2.5,
        max_burst in 8u32..64,
        seed in 0u64..1000,
    ) {
        let mut p = FlowletProcess::with_params(rate, FlowletParams { shape, max_burst });
        let (emp, _) = run_process(&mut p, 400_000, seed);
        let tol = (0.06 * rate).max(0.004);
        prop_assert!(
            (emp - rate).abs() < tol,
            "configured {rate:.4}, empirical {emp:.4} (shape {shape:.2}, cap {max_burst})"
        );
    }

    /// Measured drop-run lengths match the configured burst law: a run
    /// is a geometric number of chained bursts, mean `μ / (1 − q)`.
    #[test]
    fn burst_lengths_match_flowlet_parameter(
        rate in 0.05f64..0.25,
        shape in 1.3f64..2.2,
        seed in 0u64..1000,
    ) {
        let params = FlowletParams { shape, max_burst: 32 };
        let mut p = FlowletProcess::with_params(rate, params);
        let mu = p.mean_burst();
        let q = p.burst_start_probability();
        let expected = mu / (1.0 - q);
        let (_, runs) = run_process(&mut p, 600_000, seed);
        prop_assert!(runs.len() > 500, "too few completed runs ({})", runs.len());
        let mean = runs.iter().sum::<u64>() as f64 / runs.len() as f64;
        prop_assert!(
            (mean - expected).abs() < 0.12 * expected + 0.05,
            "mean run {mean:.3} vs analytic {expected:.3} (shape {shape:.2}, rate {rate:.3})"
        );
    }

    /// Same seed ⇒ bit-identical drop sequence.
    #[test]
    fn same_seed_same_drop_sequence(
        rate in 0.01f64..0.5,
        seed in 0u64..1000,
    ) {
        let trace = |s: u64| {
            let mut p = FlowletProcess::from_loss_rate(rate);
            let mut rng = StdRng::seed_from_u64(s);
            (0..2000).map(|_| p.packet_survives(&mut rng)).collect::<Vec<bool>>()
        };
        prop_assert_eq!(trace(seed), trace(seed));
    }
}

/// Heavier tails (smaller shape) give longer bursts at equal loss rate
/// — the knob is monotone end to end.
#[test]
fn heavier_tail_means_longer_bursts() {
    let mk = |shape: f64| {
        let mut p = FlowletProcess::with_params(0.1, FlowletParams { shape, max_burst: 64 });
        let (_, runs) = run_process(&mut p, 500_000, 77);
        runs.iter().sum::<u64>() as f64 / runs.len() as f64
    };
    let heavy = mk(1.2);
    let light = mk(2.5);
    assert!(
        heavy > 1.5 * light,
        "shape 1.2 mean run {heavy:.2} should dwarf shape 2.5 mean run {light:.2}"
    );
}

/// The engine contract: with [`LossProcessKind::Flowlet`],
/// `simulate_stream` yields a bit-identical snapshot sequence to
/// `simulate_run` from the same seed.
#[test]
fn stream_equals_batch_under_flowlet_loss() {
    let mut trng = StdRng::seed_from_u64(5);
    let t = tree::generate(
        TreeParams {
            nodes: 80,
            max_branching: 4,
        },
        &mut trng,
    );
    let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
    let red = reduce(&t.graph, &paths);
    let cfg = ProbeConfig {
        process: LossProcessKind::Flowlet,
        ..ProbeConfig::default()
    };
    let draw = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng)
    };
    let n = 12usize;

    let mut batch_rng = StdRng::seed_from_u64(99);
    let mut batch_scenario = draw(98);
    let batch = simulate_run(&red, &mut batch_scenario, &cfg, n, &mut batch_rng);

    let stream_rng = StdRng::seed_from_u64(99);
    let stream_scenario = draw(98);
    let streamed: MeasurementSet = simulate_stream(&red, stream_scenario, &cfg, stream_rng)
        .take(n)
        .collect();

    assert_eq!(batch.snapshots.len(), streamed.snapshots.len());
    for (a, b) in batch.snapshots.iter().zip(streamed.snapshots.iter()) {
        for (x, y) in a.log_rates().iter().zip(b.log_rates().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Flowlet losses are *burstier* than Bernoulli at equal marginal rate
/// — the reason the workload exists.
#[test]
fn flowlet_burstier_than_bernoulli_at_equal_rate() {
    let rate = 0.1;
    let mut fp = FlowletProcess::from_loss_rate(rate);
    let (_, flowlet_runs) = run_process(&mut fp, 400_000, 11);
    let flowlet_mean =
        flowlet_runs.iter().sum::<u64>() as f64 / flowlet_runs.len() as f64;
    // Bernoulli mean run at rate r is 1/(1-r) ≈ 1.11.
    assert!(
        flowlet_mean > 2.0,
        "flowlet mean drop-run {flowlet_mean:.2} should exceed Bernoulli's ~1.11"
    );
}
