//! # losstomo-fleet — multi-tenant online loss inference
//!
//! The paper's estimator monitors *one* network; a production monitor
//! watches **many** — one topology and measurement feed per customer
//! network, point of presence, or overlay. This crate is that layer: a
//! [`Fleet`] owns an independent tenant per monitored network (its
//! [`ReducedTopology`] plus a warm
//! [`OnlineEstimator`]), buffers incoming
//! snapshots in **bounded per-tenant queues** (crossbeam channels, so a
//! hot tenant back-pressures instead of eating the process), and drains
//! the queues with a **sharded worker pool** sized by the workspace-wide
//! [`losstomo_linalg::parallel`] policy (`LOSSTOMO_THREADS`-capped).
//!
//! ## Determinism contract
//!
//! Every tenant is pinned to exactly one shard, each shard's worker
//! processes its tenants in ascending id order, and a tenant's
//! snapshots are ingested in arrival order — so each tenant's estimator
//! sees precisely the call sequence it would see running alone.
//! Per-tenant estimates, congested sets, and change events are
//! therefore **bit-identical to a standalone
//! [`OnlineEstimator`]** at any worker count
//! (`tests/fleet_equivalence.rs` at the workspace root pins this for a
//! 16-tenant fleet). Events are merged across shards in
//! `(tenant, seq)` order, so the event stream is deterministic too.
//!
//! ## Hot path
//!
//! The per-snapshot cost is the estimator's ingest; its refresh rides
//! the allocation-reuse workspace of [`losstomo_core::streaming`]
//! ([`ScratchMode::Reuse`](losstomo_core::streaming::ScratchMode)), so a
//! steady-state fleet performs no per-snapshot allocations in Phase 1's
//! covariance replay, Gram assembly, or factorisation. The
//! `fleet_scale` benchmark measures both that reuse (vs the
//! reallocating baseline) and tenant-throughput scaling vs
//! `LOSSTOMO_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge;

pub use edge::{
    DemuxAck, DemuxConfig, DemuxHandle, DemuxStats, FleetQueryReport, RowRejection,
    TenantQuery, WireIngestMode, WireIngestReport,
};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use losstomo_core::budget::PairBudget;
use losstomo_core::streaming::{OnlineConfig, OnlineEstimator};
use losstomo_linalg::SimdPolicy;
use losstomo_netsim::Snapshot;
use losstomo_topology::{ReducedTopology, TopologyDelta};
use std::fmt;

/// Opaque handle of one registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's dense index (`0..fleet.tenant_count()`, in
    /// registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Capacity of each tenant's snapshot queue; [`Fleet::enqueue`]
    /// reports [`FleetError::QueueFull`] beyond it (backpressure), and
    /// [`Fleet::ingest_batch`] drains and retries instead.
    pub queue_capacity: usize,
    /// Worker threads for [`Fleet::drain`]. `None` (default) follows
    /// [`losstomo_linalg::parallel::num_threads`] — available
    /// parallelism capped by `LOSSTOMO_THREADS`. Results are identical
    /// at any setting; the knob trades wall-clock for CPU occupancy.
    pub workers: Option<usize>,
    /// Fleet-wide default pair budget: tenants whose
    /// [`OnlineConfig::pair_budget`] is unspecified
    /// ([`PairBudget::Env`]) inherit this at registration. The default
    /// is itself [`PairBudget::Env`], so with nothing configured the
    /// `LOSSTOMO_PAIR_BUDGET` knob decides (full when unset).
    pub pair_budget: PairBudget,
    /// SIMD policy installed for the whole process when the fleet is
    /// created. The default ([`SimdPolicy::Env`]) defers to the
    /// `LOSSTOMO_SIMD` knob (auto-detect when unset). The resolved
    /// engine is process-wide and first-caller-wins — read it back via
    /// [`Fleet::simd_engine`]; numerical results are engine-independent
    /// under every non-FMA policy (bit-identical kernels).
    pub simd: SimdPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 64,
            workers: None,
            pair_budget: PairBudget::default(),
            simd: SimdPolicy::default(),
        }
    }
}

/// Errors surfaced by the fleet's queueing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The tenant's bounded snapshot queue is full; drain the fleet (or
    /// widen [`FleetConfig::queue_capacity`]) and retry.
    QueueFull(TenantId),
    /// The tenant id does not belong to this fleet.
    UnknownTenant(TenantId),
    /// The tenant was quarantined after a panicking ingest and no
    /// longer accepts snapshots (see
    /// [`FleetEventKind::TenantQuarantined`]).
    Quarantined(TenantId),
    /// [`Fleet::revive_tenant`] was called on a tenant that is not
    /// quarantined — reviving a healthy tenant would silently discard
    /// its warm estimator state.
    NotQuarantined(TenantId),
    /// [`Fleet::update_topology`] was handed an invalid delta (path or
    /// link out of range, empty path). The tenant's estimator is
    /// untouched.
    RejectedDelta {
        /// The tenant the delta was aimed at.
        tenant: TenantId,
        /// The churn validation error, stringified.
        reason: String,
    },
    /// [`Fleet::enqueue`] rejected a snapshot that cannot be ingested:
    /// wrong path count for the tenant's topology, or zero probes. The
    /// queue and the estimator are untouched.
    MalformedSnapshot {
        /// The tenant the snapshot was aimed at.
        tenant: TenantId,
        /// Why the snapshot was rejected.
        reason: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::QueueFull(t) => write!(f, "snapshot queue of {t} is full"),
            FleetError::UnknownTenant(t) => write!(f, "{t} is not registered in this fleet"),
            FleetError::Quarantined(t) => {
                write!(f, "{t} is quarantined after a panicking ingest")
            }
            FleetError::NotQuarantined(t) => {
                write!(f, "{t} is not quarantined — nothing to revive")
            }
            FleetError::RejectedDelta { tenant, reason } => {
                write!(f, "topology delta rejected for {tenant}: {reason}")
            }
            FleetError::MalformedSnapshot { tenant, reason } => {
                write!(f, "malformed snapshot for {tenant}: {reason}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// One drained event of one tenant.
#[derive(Debug, Clone)]
pub struct FleetEvent {
    /// The tenant the event belongs to.
    pub tenant: TenantId,
    /// 1-based per-tenant snapshot sequence number that produced the
    /// event.
    pub seq: u64,
    /// What happened.
    pub kind: FleetEventKind,
}

/// Event payloads.
#[derive(Debug, Clone)]
pub enum FleetEventKind {
    /// The tenant's congested-link set changed with this snapshot.
    CongestionChanged {
        /// Links that entered the congested set (ascending).
        appeared: Vec<usize>,
        /// Links that left the congested set (ascending).
        cleared: Vec<usize>,
        /// The full congested set after this snapshot (ascending).
        congested: Vec<usize>,
    },
    /// The tenant's estimator failed to process this snapshot (a
    /// post-warm-up refresh failure). The tenant keeps running; the
    /// snapshot is dropped.
    EstimatorError {
        /// The estimator's error, stringified.
        message: String,
    },
    /// The tenant's ingest *panicked* (e.g. a malformed snapshot
    /// tripping an invariant). The unwind is caught at the tenant
    /// boundary: this tenant is quarantined — its estimator is never
    /// touched again and new snapshots are refused with
    /// [`FleetError::Quarantined`] — while every other tenant keeps
    /// running. Before this event existed, one panicking tenant
    /// aborted [`Fleet::drain`] for the whole fleet.
    TenantQuarantined {
        /// The panic payload, stringified.
        message: String,
    },
    /// The tenant's routing changed mid-stream via
    /// [`Fleet::update_topology`]: the estimator was patched in place
    /// — no drain, no queue loss — and is now serving the new
    /// topology.
    TopologyChurned {
        /// Paths added by the delta.
        added: usize,
        /// Paths removed by the delta.
        removed: usize,
        /// Surviving paths whose route changed.
        rerouted: usize,
        /// Snapshots until the covariance window flushes its pre-churn
        /// history and estimates are again bit-identical to a fresh
        /// estimator (`None` = never, e.g. an unbounded window).
        snapshots_until_flush: Option<u64>,
        /// Whether the incremental patch fell back to a clean rebuild
        /// (the companion [`FleetEventKind::EstimatorError`] event
        /// carries the reason — the degraded path is never silent).
        rebuilt: bool,
    },
    /// A quarantined tenant was rebuilt from its topology via
    /// [`Fleet::revive_tenant`] and accepts snapshots again. Its
    /// estimator restarts cold; ingest/error counters are retained.
    TenantRevived,
}

/// Per-tenant bookkeeping the fleet exposes for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Snapshots ingested (drained) so far.
    pub ingested: u64,
    /// Successful estimator refreshes so far.
    pub refreshes: u64,
    /// Snapshots currently waiting in the queue.
    pub queued: usize,
    /// Ingests that failed with an estimator error.
    pub errors: u64,
    /// Whether the tenant is quarantined after a panicking ingest.
    pub quarantined: bool,
}

/// One unit of work in a tenant queue. The service edge enqueues
/// decoded wire rows; the library API enqueues owned snapshots. Either
/// way the payload reaching the estimator is the snapshot's log-rate
/// row, bit for bit — which is what keeps wire ingest and direct
/// enqueue interchangeable.
enum QueueItem {
    /// An owned snapshot ([`Fleet::enqueue`] / [`Fleet::ingest_batch`]).
    Snapshot(Snapshot),
    /// A zero-copy wire row: `path_count × 8` little-endian `f64`
    /// bytes, an O(1) reference-counted window of the receive buffer.
    WireRow {
        /// The row bytes (alias of the batch buffer).
        data: Bytes,
        /// Wire sequence number of the snapshot.
        wire_seq: u64,
    },
    /// An owned, already-decoded log-rate row (copying wire mode, JSON
    /// fallback).
    OwnedRow {
        /// The decoded row.
        data: Vec<f64>,
        /// Wire sequence number, when the row came off the wire.
        wire_seq: Option<u64>,
    },
}

/// One registered tenant: its estimator plus the receive side of its
/// snapshot queue.
struct Tenant {
    name: String,
    estimator: OnlineEstimator,
    rx: Receiver<QueueItem>,
    ingested: u64,
    errors: u64,
    /// Highest wire sequence number ingested so far (None until the
    /// first wire row) — the staleness signal of [`Fleet::query`].
    last_wire_seq: Option<u64>,
    /// Set when an ingest panicked: the estimator may hold broken
    /// invariants, so it is never touched again (until
    /// [`Fleet::revive_tenant`] rebuilds it).
    quarantined: bool,
    /// Test hook: panic inside the ingest of the `n`-th snapshot, to
    /// exercise the quarantine containment without relying on a real
    /// estimator invariant (malformed input is now rejected with typed
    /// errors before it can trip one).
    #[cfg(test)]
    panic_at: Option<u64>,
}

impl Tenant {
    /// Drains every queued snapshot through the estimator, appending
    /// one event per congested-set change (or error) to `events`. A
    /// *panicking* ingest is caught here — the tenant boundary — and
    /// quarantines this tenant only, instead of unwinding through the
    /// worker pool and poisoning the whole fleet.
    fn drain(&mut self, id: TenantId, events: &mut Vec<FleetEvent>) {
        if self.quarantined {
            return;
        }
        while let Ok(item) = self.rx.try_recv() {
            self.ingested += 1;
            match &item {
                QueueItem::WireRow { wire_seq, .. } => self.last_wire_seq = Some(*wire_seq),
                QueueItem::OwnedRow {
                    wire_seq: Some(seq),
                    ..
                } => self.last_wire_seq = Some(*seq),
                _ => {}
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(test)]
                if self.panic_at == Some(self.ingested) {
                    panic!("injected ingest panic at snapshot {}", self.ingested);
                }
                match &item {
                    QueueItem::Snapshot(snapshot) => self.estimator.ingest(snapshot),
                    QueueItem::OwnedRow { data, .. } => self.estimator.ingest_log_rates(data),
                    // Zero-copy end to end: the estimator reads the
                    // row straight out of the receive buffer and
                    // retains it by reference (misaligned buffers
                    // decode once through the estimator's scratch).
                    QueueItem::WireRow { data, .. } => self.estimator.ingest_wire_row(data),
                }
            }));
            match outcome {
                Ok(Ok(update)) => {
                    if !update.appeared.is_empty() || !update.cleared.is_empty() {
                        events.push(FleetEvent {
                            tenant: id,
                            seq: self.ingested,
                            kind: FleetEventKind::CongestionChanged {
                                appeared: update.appeared,
                                cleared: update.cleared,
                                congested: update.congested,
                            },
                        });
                    }
                }
                Ok(Err(e)) => {
                    self.errors += 1;
                    events.push(FleetEvent {
                        tenant: id,
                        seq: self.ingested,
                        kind: FleetEventKind::EstimatorError {
                            message: e.to_string(),
                        },
                    });
                }
                Err(payload) => {
                    self.quarantined = true;
                    self.errors += 1;
                    events.push(FleetEvent {
                        tenant: id,
                        seq: self.ingested,
                        kind: FleetEventKind::TenantQuarantined {
                            message: panic_message(payload),
                        },
                    });
                    return;
                }
            }
        }
    }
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "tenant ingest panicked".to_string()
    }
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("ingested", &self.ingested)
            .field("queued", &self.rx.len())
            .finish_non_exhaustive()
    }
}

/// Registry and scheduler for many independently monitored networks.
///
/// ```text
/// feeds ──enqueue──► [bounded queue per tenant] ──drain──► worker pool
///                                                  │   (tenant-sharded)
///                                                  ▼
///                                    per-tenant OnlineEstimator
///                                                  │
///                                  FleetEvents (congested-set diffs)
/// ```
///
/// See the [crate docs](self) for the determinism contract.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    tenants: Vec<Tenant>,
    /// Send sides of the tenant queues, indexable with `&self` so
    /// producers can enqueue without exclusive access to the registry.
    senders: Vec<Sender<QueueItem>>,
    /// Recycled per-shard event buffers for [`Fleet::poll_events_into`]
    /// — a steady-state drain allocates no event vectors.
    event_pool: Vec<Vec<FleetEvent>>,
}

impl Fleet {
    /// Creates an empty fleet and installs its SIMD policy (first
    /// caller wins process-wide; see [`FleetConfig::simd`]).
    pub fn new(cfg: FleetConfig) -> Self {
        losstomo_linalg::simd::install(cfg.simd);
        Fleet {
            cfg,
            tenants: Vec::new(),
            senders: Vec::new(),
            event_pool: Vec::new(),
        }
    }

    /// Registers a tenant: its own copy of the reduced topology and a
    /// fresh [`OnlineEstimator`] with `online` settings, plus a bounded
    /// snapshot queue. Returns the tenant's handle.
    pub fn add_tenant(
        &mut self,
        name: impl Into<String>,
        red: &ReducedTopology,
        mut online: OnlineConfig,
    ) -> TenantId {
        // A tenant with no explicit pair budget inherits the fleet's.
        online.pair_budget = online.pair_budget.or(self.cfg.pair_budget);
        let id = TenantId(self.tenants.len());
        let (tx, rx) = bounded(self.cfg.queue_capacity);
        self.tenants.push(Tenant {
            name: name.into(),
            estimator: OnlineEstimator::new(red, online),
            rx,
            ingested: 0,
            errors: 0,
            last_wire_seq: None,
            quarantined: false,
            #[cfg(test)]
            panic_at: None,
        });
        self.senders.push(tx);
        id
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The worker count [`Fleet::drain`] will use right now (resolving
    /// the `None` default against the shared thread policy and the
    /// tenant count).
    pub fn workers(&self) -> usize {
        self.cfg
            .workers
            .unwrap_or_else(losstomo_linalg::parallel::num_threads)
            .clamp(1, self.tenants.len().max(1))
    }

    /// The SIMD engine actually active for this process (the resolution
    /// of [`FleetConfig::simd`], or of whichever policy was installed
    /// first).
    pub fn simd_engine(&self) -> losstomo_linalg::Engine {
        losstomo_linalg::simd::active()
    }

    /// The tenant's registration name.
    pub fn name(&self, id: TenantId) -> &str {
        &self.tenants[id.0].name
    }

    /// Read access to a tenant's estimator (variances, congested set,
    /// kept columns, …).
    pub fn estimator(&self, id: TenantId) -> &OnlineEstimator {
        &self.tenants[id.0].estimator
    }

    /// Queue/ingest counters of one tenant.
    pub fn stats(&self, id: TenantId) -> TenantStats {
        let t = &self.tenants[id.0];
        TenantStats {
            ingested: t.ingested,
            refreshes: t.estimator.refresh_count(),
            queued: t.rx.len(),
            errors: t.errors,
            quarantined: t.quarantined,
        }
    }

    /// Validates a snapshot against a tenant's current topology before
    /// it may enter the queue: the path count must match and at least
    /// one probe must have been sent (zero probes would produce NaN
    /// rates). Rejection is typed and loud — nothing reaches the
    /// estimator's moments.
    fn validate_snapshot(&self, id: TenantId, snapshot: &Snapshot) -> Result<(), FleetError> {
        let want = self.tenants[id.0].estimator.topology().num_paths();
        if snapshot.path_received.len() != want {
            return Err(FleetError::MalformedSnapshot {
                tenant: id,
                reason: format!(
                    "snapshot covers {} paths, topology has {want}",
                    snapshot.path_received.len()
                ),
            });
        }
        if snapshot.probes == 0 {
            return Err(FleetError::MalformedSnapshot {
                tenant: id,
                reason: "snapshot reports zero probes sent".to_string(),
            });
        }
        Ok(())
    }

    /// Enqueues one snapshot for a tenant without blocking. Fails with
    /// [`FleetError::QueueFull`] when the tenant's bounded queue is at
    /// capacity — the backpressure signal; [`Fleet::drain`] frees it —
    /// with [`FleetError::Quarantined`] when the tenant was quarantined
    /// by a panicking ingest, and with
    /// [`FleetError::MalformedSnapshot`] when the snapshot cannot match
    /// the tenant's topology (nothing is silently dropped).
    pub fn enqueue(&self, id: TenantId, snapshot: Snapshot) -> Result<(), FleetError> {
        let tx = self
            .senders
            .get(id.0)
            .ok_or(FleetError::UnknownTenant(id))?;
        if self.tenants[id.0].quarantined {
            return Err(FleetError::Quarantined(id));
        }
        self.validate_snapshot(id, &snapshot)?;
        match tx.try_send(QueueItem::Snapshot(snapshot)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(FleetError::QueueFull(id)),
            Err(TrySendError::Disconnected(_)) => Err(FleetError::UnknownTenant(id)),
        }
    }

    /// Applies a routing delta to a tenant's **live** estimator — no
    /// drain, no rebuild, the queue keeps its snapshots. Returns the
    /// admin events synchronously (they are not replayed by later
    /// [`Fleet::drain`] calls): a
    /// [`FleetEventKind::TopologyChurned`] event always, preceded by a
    /// [`FleetEventKind::EstimatorError`] event when the incremental
    /// patch had to fall back to a clean rebuild — the degraded path is
    /// loud, never a panic and never silent.
    ///
    /// An invalid delta returns [`FleetError::RejectedDelta`] and
    /// leaves the tenant untouched. Snapshots already queued against
    /// the old path numbering are rejected at ingest with a typed
    /// error (surfacing as [`FleetEventKind::EstimatorError`]), not
    /// ingested against the wrong topology.
    pub fn update_topology(
        &mut self,
        id: TenantId,
        delta: &TopologyDelta,
    ) -> Result<Vec<FleetEvent>, FleetError> {
        let t = self
            .tenants
            .get_mut(id.0)
            .ok_or(FleetError::UnknownTenant(id))?;
        if t.quarantined {
            return Err(FleetError::Quarantined(id));
        }
        let report = t
            .estimator
            .apply_delta(delta)
            .map_err(|e| FleetError::RejectedDelta {
                tenant: id,
                reason: e.to_string(),
            })?;
        let mut events = Vec::new();
        if let Some(reason) = &report.fallback {
            t.errors += 1;
            events.push(FleetEvent {
                tenant: id,
                seq: t.ingested,
                kind: FleetEventKind::EstimatorError {
                    message: reason.clone(),
                },
            });
        }
        events.push(FleetEvent {
            tenant: id,
            seq: t.ingested,
            kind: FleetEventKind::TopologyChurned {
                added: report.added_paths,
                removed: report.removed_paths,
                rerouted: report.rerouted_paths,
                snapshots_until_flush: report.staleness.snapshots_until_flush,
                rebuilt: report.fallback.is_some(),
            },
        });
        Ok(events)
    }

    /// Rebuilds a quarantined tenant's estimator from its reduced
    /// topology and configuration, clears the quarantine flag, and
    /// returns a [`FleetEventKind::TenantRevived`] event. The rebuilt
    /// estimator is **bit-identical to a fresh one** on the same
    /// topology (it restarts cold — the broken estimator's state is
    /// discarded, which is the point); queued snapshots survive and are
    /// ingested by the next [`Fleet::drain`]. Ingest/error counters are
    /// retained for observability.
    ///
    /// Calling this on a healthy tenant returns
    /// [`FleetError::NotQuarantined`] — it would discard warm state.
    pub fn revive_tenant(&mut self, id: TenantId) -> Result<FleetEvent, FleetError> {
        let t = self
            .tenants
            .get_mut(id.0)
            .ok_or(FleetError::UnknownTenant(id))?;
        if !t.quarantined {
            return Err(FleetError::NotQuarantined(id));
        }
        let red = t.estimator.topology().clone();
        let cfg = *t.estimator.config();
        t.estimator = OnlineEstimator::new(&red, cfg);
        t.quarantined = false;
        #[cfg(test)]
        {
            t.panic_at = None;
        }
        Ok(FleetEvent {
            tenant: id,
            seq: t.ingested,
            kind: FleetEventKind::TenantRevived,
        })
    }

    /// Drains every tenant queue through the sharded worker pool,
    /// **appending** the produced events to `events` — the caller owns
    /// (and reuses) the buffer, so a steady-state polling loop performs
    /// no per-drain event allocation. Per-shard scratch buffers are
    /// recycled from an internal pool for the same reason. The appended
    /// range is sorted in `(tenant, seq)` order; whatever was already
    /// in `events` is left untouched. Returns how many events were
    /// appended.
    ///
    /// Tenant `i` is pinned to shard `i mod workers`; each shard's
    /// worker ingests its tenants' snapshots in arrival order, so
    /// per-tenant results are identical at any worker count.
    pub fn poll_events_into(&mut self, events: &mut Vec<FleetEvent>) -> usize {
        let start = events.len();
        let workers = self.workers();
        if workers <= 1 || self.tenants.len() <= 1 {
            for (i, tenant) in self.tenants.iter_mut().enumerate() {
                tenant.drain(TenantId(i), events);
            }
        } else {
            // Deal the tenants out to their shards (round-robin by id,
            // so the assignment is stable as tenants are added).
            let mut shards: Vec<Vec<(TenantId, &mut Tenant)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, tenant) in self.tenants.iter_mut().enumerate() {
                shards[i % workers].push((TenantId(i), tenant));
            }
            let pool = &mut self.event_pool;
            let mut filled: Vec<Vec<FleetEvent>> = crossbeam::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|mut shard| {
                        let mut buf = pool.pop().unwrap_or_default();
                        buf.clear();
                        scope.spawn(move |_| {
                            for (id, tenant) in shard.iter_mut() {
                                tenant.drain(*id, &mut buf);
                            }
                            buf
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleet worker panicked"))
                    .collect()
            })
            .expect("fleet worker pool panicked");
            for buf in &mut filled {
                events.append(buf);
            }
            self.event_pool.append(&mut filled);
        }
        events[start..].sort_by_key(|e| (e.tenant, e.seq));
        events.len() - start
    }

    /// Drains every tenant queue and returns the produced events in
    /// `(tenant, seq)` order. Thin allocating wrapper over
    /// [`Fleet::poll_events_into`] — polling loops that care about the
    /// allocation should hold their own buffer and call that instead.
    pub fn poll_events(&mut self) -> Vec<FleetEvent> {
        let mut events = Vec::new();
        self.poll_events_into(&mut events);
        events
    }

    /// Alias of [`Fleet::poll_events`], kept as the historical name.
    pub fn drain(&mut self) -> Vec<FleetEvent> {
        self.poll_events()
    }

    /// Batch ingest: enqueues every `(tenant, snapshot)` pair, draining
    /// the fleet whenever a queue fills (the bounded queues are the
    /// batch's flow control), then drains whatever remains. Returns all
    /// events produced while processing the batch, in drain order
    /// (within each drain, `(tenant, seq)`-sorted).
    pub fn ingest_batch(
        &mut self,
        batch: impl IntoIterator<Item = (TenantId, Snapshot)>,
    ) -> Result<Vec<FleetEvent>, FleetError> {
        let mut events = Vec::new();
        for (id, snapshot) in batch {
            if self
                .tenants
                .get(id.0)
                .ok_or(FleetError::UnknownTenant(id))?
                .quarantined
            {
                return Err(FleetError::Quarantined(id));
            }
            self.validate_snapshot(id, &snapshot)?;
            let first = self
                .senders
                .get(id.0)
                .ok_or(FleetError::UnknownTenant(id))?
                .try_send(QueueItem::Snapshot(snapshot));
            match first {
                Ok(()) => {}
                Err(TrySendError::Full(item)) => {
                    // Backpressure: service the queues, then retry.
                    // The drain left every live tenant's queue empty
                    // and capacity is ≥ 1, so the retry cannot fail —
                    // unless this very drain quarantined the tenant
                    // (its queue keeps its leftovers), which must
                    // surface rather than silently drop the snapshot.
                    self.poll_events_into(&mut events);
                    if self.tenants[id.0].quarantined {
                        return Err(FleetError::Quarantined(id));
                    }
                    self.senders[id.0]
                        .try_send(item)
                        .map_err(|_| FleetError::QueueFull(id))?;
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(FleetError::UnknownTenant(id));
                }
            }
        }
        self.poll_events_into(&mut events);
        Ok(events)
    }

    /// Like [`Fleet::ingest_batch`], but **partial-accept**: a pair
    /// that cannot be enqueued (unknown or quarantined tenant,
    /// malformed snapshot, queue still full after a drain) is recorded
    /// — with its batch index — and skipped, instead of aborting the
    /// remainder of the batch. The report accounts for every input
    /// pair: `accepted + rejections.len()` equals the batch length.
    pub fn ingest_batch_report(
        &mut self,
        batch: impl IntoIterator<Item = (TenantId, Snapshot)>,
    ) -> BatchReport {
        let mut report = BatchReport::default();
        for (index, (id, snapshot)) in batch.into_iter().enumerate() {
            let verdict = self.check_tenant(id).and_then(|()| {
                self.validate_snapshot(id, &snapshot)
            });
            if let Err(error) = verdict {
                report.rejections.push(BatchRejection { index, tenant: id, error });
                continue;
            }
            match self.senders[id.0].try_send(QueueItem::Snapshot(snapshot)) {
                Ok(()) => report.accepted += 1,
                Err(TrySendError::Full(item)) => {
                    report.backpressure_drains += 1;
                    self.poll_events_into(&mut report.events);
                    let retry = if self.tenants[id.0].quarantined {
                        Err(FleetError::Quarantined(id))
                    } else {
                        self.senders[id.0]
                            .try_send(item)
                            .map_err(|_| FleetError::QueueFull(id))
                    };
                    match retry {
                        Ok(()) => report.accepted += 1,
                        Err(error) => report.rejections.push(BatchRejection {
                            index,
                            tenant: id,
                            error,
                        }),
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    report.rejections.push(BatchRejection {
                        index,
                        tenant: id,
                        error: FleetError::UnknownTenant(id),
                    });
                }
            }
        }
        self.poll_events_into(&mut report.events);
        report
    }

    /// Typed gate shared by the enqueue paths: the tenant must exist
    /// and not be quarantined.
    fn check_tenant(&self, id: TenantId) -> Result<(), FleetError> {
        let t = self
            .tenants
            .get(id.0)
            .ok_or(FleetError::UnknownTenant(id))?;
        if t.quarantined {
            return Err(FleetError::Quarantined(id));
        }
        Ok(())
    }
}

/// One rejected entry of a partial-accept batch — which input it was
/// (`index` into the batch, in iteration order), whom it was for, and
/// the typed reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRejection {
    /// Zero-based index of the rejected pair within the batch.
    pub index: usize,
    /// The tenant the pair was aimed at.
    pub tenant: TenantId,
    /// Why it was rejected.
    pub error: FleetError,
}

/// Accounting of one [`Fleet::ingest_batch_report`] call. Every input
/// pair is either counted in `accepted` or listed in `rejections` —
/// nothing is silently dropped.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Pairs that entered their tenant queue (and were drained).
    pub accepted: usize,
    /// Pairs that were refused, with index and typed reason.
    pub rejections: Vec<BatchRejection>,
    /// Events produced by the intermediate and final drains, in drain
    /// order (within each drain, `(tenant, seq)`-sorted).
    pub events: Vec<FleetEvent>,
    /// How many intermediate drains backpressure forced.
    pub backpressure_drains: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_netsim::{
        simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
    };
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    fn simulate(red: &ReducedTopology, m: usize, seed: u64) -> MeasurementSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.3,
            CongestionDynamics::Markov {
                stay_congested: 0.8,
            },
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 120,
            ..ProbeConfig::default()
        };
        simulate_run(red, &mut scenario, &cfg, m, &mut rng)
    }

    #[test]
    fn enqueue_applies_backpressure_and_drain_frees_it() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 2,
            workers: Some(1),
            ..FleetConfig::default()
        });
        let t = fleet.add_tenant("net-0", &red, OnlineConfig::default());
        let ms = simulate(&red, 3, 1);
        fleet.enqueue(t, ms.snapshots[0].clone()).unwrap();
        fleet.enqueue(t, ms.snapshots[1].clone()).unwrap();
        assert_eq!(
            fleet.enqueue(t, ms.snapshots[2].clone()),
            Err(FleetError::QueueFull(t))
        );
        assert_eq!(fleet.stats(t).queued, 2);
        fleet.drain();
        assert_eq!(fleet.stats(t).queued, 0);
        assert_eq!(fleet.stats(t).ingested, 2);
        fleet.enqueue(t, ms.snapshots[2].clone()).unwrap();
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let red = fig1();
        let fleet = Fleet::new(FleetConfig::default());
        let ghost = TenantId(7);
        let ms = simulate(&red, 1, 2);
        assert_eq!(
            fleet.enqueue(ghost, ms.snapshots[0].clone()),
            Err(FleetError::UnknownTenant(ghost))
        );
    }

    #[test]
    fn ingest_batch_drains_on_backpressure() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 2,
            workers: Some(2),
            ..FleetConfig::default()
        });
        let a = fleet.add_tenant("a", &red, OnlineConfig::default());
        let b = fleet.add_tenant("b", &red, OnlineConfig::default());
        let m = 9;
        let ms_a = simulate(&red, m, 3);
        let ms_b = simulate(&red, m, 4);
        // Interleave; queue capacity 2 forces intermediate drains.
        let batch: Vec<(TenantId, Snapshot)> = ms_a
            .snapshots
            .iter()
            .cloned()
            .map(|s| (a, s))
            .zip(ms_b.snapshots.iter().cloned().map(|s| (b, s)))
            .flat_map(|(x, y)| [x, y])
            .collect();
        fleet.ingest_batch(batch).unwrap();
        assert_eq!(fleet.stats(a).ingested, m as u64);
        assert_eq!(fleet.stats(b).ingested, m as u64);
        assert_eq!(fleet.stats(a).queued, 0);
        assert!(fleet.estimator(a).variances().is_some());
    }

    #[test]
    fn events_replay_congested_set_transitions() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig::default());
        let t = fleet.add_tenant("net", &red, OnlineConfig::default());
        let ms = simulate(&red, 25, 5);
        let events = fleet
            .ingest_batch(ms.snapshots.iter().cloned().map(|s| (t, s)))
            .unwrap();
        // Replaying appeared/cleared from an empty set must land on the
        // estimator's current congested set.
        let mut current: Vec<usize> = Vec::new();
        let mut last_seq = 0;
        for e in &events {
            assert_eq!(e.tenant, t);
            assert!(e.seq > last_seq, "events must be seq-ordered per tenant");
            last_seq = e.seq;
            match &e.kind {
                FleetEventKind::CongestionChanged {
                    appeared,
                    cleared,
                    congested,
                } => {
                    current.retain(|k| !cleared.contains(k));
                    current.extend(appeared.iter().copied());
                    current.sort_unstable();
                    assert_eq!(&current, congested);
                }
                FleetEventKind::EstimatorError { message }
                | FleetEventKind::TenantQuarantined { message } => {
                    panic!("unexpected estimator error: {message}")
                }
                other => panic!("unexpected admin event in drain stream: {other:?}"),
            }
        }
        assert_eq!(current, fleet.estimator(t).congested_links());
    }

    #[test]
    fn panicking_tenant_is_quarantined_not_fatal() {
        let red1 = fig1();
        // Two tenants on two workers: the panic unwinds inside a shard
        // thread and must still be contained to its tenant.
        let mut fleet = Fleet::new(FleetConfig {
            workers: Some(2),
            ..FleetConfig::default()
        });
        let a = fleet.add_tenant("bad", &red1, OnlineConfig::default());
        let b = fleet.add_tenant("good", &red1, OnlineConfig::default());
        let good = simulate(&red1, 6, 11);
        // Malformed input is rejected with typed errors before it can
        // trip an estimator invariant, so the poison pill is an
        // injected panic inside a's 2nd ingest.
        fleet.tenants[a.0].panic_at = Some(2);
        for s in &good.snapshots {
            fleet.enqueue(b, s.clone()).unwrap();
        }
        fleet.enqueue(a, good.snapshots[0].clone()).unwrap();
        fleet.enqueue(a, good.snapshots[3].clone()).unwrap();
        fleet.enqueue(a, good.snapshots[1].clone()).unwrap();
        let events = fleet.drain();
        let quarantines: Vec<&FleetEvent> = events
            .iter()
            .filter(|e| matches!(e.kind, FleetEventKind::TenantQuarantined { .. }))
            .collect();
        assert_eq!(quarantines.len(), 1, "exactly one quarantine event");
        assert_eq!(quarantines[0].tenant, a);
        assert_eq!(quarantines[0].seq, 2, "poison pill was a's 2nd snapshot");
        if let FleetEventKind::TenantQuarantined { message } = &quarantines[0].kind {
            assert!(
                message.contains("injected ingest panic"),
                "panic payload not forwarded: {message}"
            );
        }
        assert!(fleet.stats(a).quarantined);
        assert_eq!(fleet.stats(a).errors, 1);
        // The snapshot behind the poison pill stays queued, not dropped.
        assert_eq!(fleet.stats(a).queued, 1);
        // The healthy tenant was untouched by its neighbour's panic…
        assert!(!fleet.stats(b).quarantined);
        assert_eq!(fleet.stats(b).ingested, 6);
        // …and keeps running.
        fleet.enqueue(b, good.snapshots[0].clone()).unwrap();
        fleet.drain();
        assert_eq!(fleet.stats(b).ingested, 7);
        // The quarantined tenant refuses new snapshots loudly.
        assert_eq!(
            fleet.enqueue(a, good.snapshots[2].clone()),
            Err(FleetError::Quarantined(a))
        );
        assert_eq!(
            fleet
                .ingest_batch([(a, good.snapshots[2].clone())])
                .unwrap_err(),
            FleetError::Quarantined(a)
        );
        // Draining again must not touch a's estimator (nothing new
        // ingested despite the queued leftover).
        fleet.drain();
        assert_eq!(fleet.stats(a).ingested, 2);
    }

    #[test]
    fn tenants_inherit_fleet_pair_budget() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            pair_budget: PairBudget::Rows(1),
            ..FleetConfig::default()
        });
        // Default (Env) tenant config inherits the fleet's budget…
        let inherit = fleet.add_tenant("inherit", &red, OnlineConfig::default());
        // …an explicit tenant setting wins over it.
        let explicit = fleet.add_tenant(
            "explicit",
            &red,
            OnlineConfig {
                pair_budget: PairBudget::Full,
                ..OnlineConfig::default()
            },
        );
        let sel = fleet
            .estimator(inherit)
            .pair_selection()
            .expect("inherited budget must bite");
        assert!(sel.rows.len() < fleet.estimator(explicit).augmented().num_rows());
        assert!(fleet.estimator(explicit).pair_selection().is_none());
        // The budgeted tenant still estimates.
        let ms = simulate(&red, 25, 13);
        fleet
            .ingest_batch(ms.snapshots.iter().cloned().map(|s| (inherit, s)))
            .unwrap();
        assert!(fleet.estimator(inherit).variances().is_some());
    }

    #[test]
    fn ingest_batch_partial_drains_preserve_order_and_drop_nothing() {
        let red = fig1();
        // Capacity 2 forces several intermediate drains inside one
        // batch; two workers exercise the sharded path.
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 2,
            workers: Some(2),
            ..FleetConfig::default()
        });
        let a = fleet.add_tenant("a", &red, OnlineConfig::default());
        let b = fleet.add_tenant("b", &red, OnlineConfig::default());
        let m = 13;
        let ms_a = simulate(&red, m, 21);
        let ms_b = simulate(&red, m, 22);
        // Uneven interleave (2:1) so the queues fill at different
        // points in the batch.
        let mut batch: Vec<(TenantId, Snapshot)> = Vec::new();
        let mut b_count = 0usize;
        for (i, s) in ms_a.snapshots.iter().enumerate() {
            batch.push((a, s.clone()));
            if i % 2 == 0 {
                batch.push((b, ms_b.snapshots[b_count].clone()));
                b_count += 1;
            }
        }
        let events = fleet.ingest_batch(batch).unwrap();
        // Per-tenant seq must be strictly increasing across the whole
        // event stream even though it spans multiple partial drains.
        let mut last_seq = [0u64; 2];
        for e in &events {
            assert!(
                e.seq > last_seq[e.tenant.index()],
                "per-tenant event order violated for {}: {} after {}",
                e.tenant,
                e.seq,
                last_seq[e.tenant.index()]
            );
            last_seq[e.tenant.index()] = e.seq;
        }
        // No snapshot was silently dropped.
        assert_eq!(fleet.stats(a).ingested, m as u64);
        assert_eq!(fleet.stats(b).ingested, b_count as u64);
        assert_eq!(fleet.stats(a).queued, 0);
        assert_eq!(fleet.stats(b).queued, 0);
        // Each tenant saw exactly the stream it would see standalone.
        let mut solo = OnlineEstimator::new(&red, OnlineConfig::default());
        for s in &ms_a.snapshots {
            solo.ingest(s).unwrap();
        }
        assert_eq!(
            fleet.estimator(a).congested_links(),
            solo.congested_links()
        );
    }

    #[test]
    fn malformed_snapshots_are_rejected_at_the_gate() {
        let red = fig1();
        let red2 = fixtures::reduced(&fixtures::figure2());
        let mut fleet = Fleet::new(FleetConfig::default());
        let t = fleet.add_tenant("t", &red, OnlineConfig::default());
        // Wrong path count (a figure-2 snapshot against a figure-1
        // tenant) bounces with a typed error instead of panicking the
        // ingest later.
        let bad = simulate(&red2, 1, 51).snapshots[0].clone();
        assert!(matches!(
            fleet.enqueue(t, bad.clone()),
            Err(FleetError::MalformedSnapshot { tenant, .. }) if tenant == t
        ));
        assert!(matches!(
            fleet.ingest_batch([(t, bad)]),
            Err(FleetError::MalformedSnapshot { .. })
        ));
        // Zero probes would make every rate NaN.
        let mut zero = simulate(&red, 1, 52).snapshots[0].clone();
        zero.probes = 0;
        assert!(matches!(
            fleet.enqueue(t, zero),
            Err(FleetError::MalformedSnapshot { .. })
        ));
        // Nothing reached the estimator; the tenant still works.
        assert_eq!(fleet.stats(t).ingested, 0);
        let ms = simulate(&red, 10, 53);
        fleet
            .ingest_batch(ms.snapshots.iter().cloned().map(|s| (t, s)))
            .unwrap();
        assert_eq!(fleet.stats(t).ingested, 10);
        assert!(!fleet.stats(t).quarantined);
    }

    #[test]
    fn quarantine_revive_rebuilds_bit_identical_to_fresh() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 32,
            ..FleetConfig::default()
        });
        let t = fleet.add_tenant("t", &red, OnlineConfig::default());
        // Reviving a healthy tenant is refused — it would discard warm
        // state.
        assert_eq!(
            fleet.revive_tenant(t).unwrap_err(),
            FleetError::NotQuarantined(t)
        );
        let ms = simulate(&red, 20, 31);
        // Warm the tenant, then poison its 4th ingest.
        fleet.tenants[t.0].panic_at = Some(4);
        for s in &ms.snapshots[..6] {
            fleet.enqueue(t, s.clone()).unwrap();
        }
        fleet.drain();
        assert!(fleet.stats(t).quarantined);
        assert_eq!(fleet.stats(t).ingested, 4, "poison pill consumed");
        assert_eq!(fleet.stats(t).queued, 2, "leftovers survive quarantine");
        // Revive: the estimator rebuilds cold from the tenant's own
        // topology and config; counters are retained.
        let ev = fleet.revive_tenant(t).unwrap();
        assert!(matches!(ev.kind, FleetEventKind::TenantRevived));
        assert_eq!(ev.tenant, t);
        assert!(!fleet.stats(t).quarantined);
        assert_eq!(fleet.stats(t).ingested, 4);
        // The queued leftovers drain first, then the rest of the
        // stream flows normally.
        fleet.drain();
        for s in &ms.snapshots[6..] {
            fleet.enqueue(t, s.clone()).unwrap();
        }
        fleet.drain();
        assert_eq!(fleet.stats(t).ingested, 20);
        // Gate: the revived tenant is bit-identical to a standalone
        // estimator fed the post-revive stream (snapshots 4.. — the
        // pill itself was consumed by the panic).
        let mut fresh = OnlineEstimator::new(&red, OnlineConfig::default());
        for s in &ms.snapshots[4..] {
            fresh.ingest(s).unwrap();
        }
        assert_eq!(
            fleet.estimator(t).variances().unwrap().v,
            fresh.variances().unwrap().v
        );
        assert_eq!(
            fleet.estimator(t).congested_links(),
            fresh.congested_links()
        );
        assert_eq!(fleet.estimator(t).kept_columns(), fresh.kept_columns());
    }

    #[test]
    fn update_topology_churns_live_tenant_and_emits_events() {
        use losstomo_core::streaming::WindowMode;
        use losstomo_topology::PathId;
        let red = fixtures::reduced(&fixtures::figure2());
        let cfg = OnlineConfig {
            window: WindowMode::Sliding(8),
            ..OnlineConfig::default()
        };
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 32,
            ..FleetConfig::default()
        });
        let t = fleet.add_tenant("t", &red, cfg);
        let ms = simulate(&red, 20, 41);
        fleet
            .ingest_batch(ms.snapshots.iter().cloned().map(|s| (t, s)))
            .unwrap();
        let nc = red.num_links();
        let delta = TopologyDelta::new().reroute_path(PathId(0), vec![0, nc - 1]);
        let events = fleet.update_topology(t, &delta).unwrap();
        let churned = events.last().expect("churn event always emitted");
        assert_eq!(churned.tenant, t);
        match &churned.kind {
            FleetEventKind::TopologyChurned {
                added,
                removed,
                rerouted,
                snapshots_until_flush,
                rebuilt,
            } => {
                assert_eq!((*added, *removed, *rerouted), (0, 0, 1));
                assert!(snapshots_until_flush.is_some(), "sliding window flushes");
                // A rebuild is only legal with a companion error event.
                if *rebuilt {
                    assert!(events.iter().any(|e| matches!(
                        e.kind,
                        FleetEventKind::EstimatorError { .. }
                    )));
                }
            }
            other => panic!("expected TopologyChurned, got {other:?}"),
        }
        // The tenant serves the new topology without having been
        // drained or rebuilt; post-churn snapshots flow normally and
        // the window eventually flushes.
        let mut red2 = red.clone();
        red2.apply_delta(&delta).unwrap();
        let ms2 = simulate(&red2, 12, 42);
        fleet
            .ingest_batch(ms2.snapshots.iter().cloned().map(|s| (t, s)))
            .unwrap();
        assert!(fleet.estimator(t).covariance().is_churn_free());
        assert!(fleet.estimator(t).variances().is_some());
        assert!(!fleet.stats(t).quarantined);
        // An invalid delta is rejected loudly and changes nothing.
        let err = fleet
            .update_topology(t, &TopologyDelta::new().remove_path(PathId(99)))
            .unwrap_err();
        assert!(matches!(err, FleetError::RejectedDelta { tenant, .. } if tenant == t));
        assert_eq!(fleet.estimator(t).topology().num_paths(), red2.num_paths());
    }

    #[test]
    fn workers_resolve_against_tenant_count() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 4,
            workers: Some(8),
            ..FleetConfig::default()
        });
        assert_eq!(fleet.workers(), 1, "no tenants → one (idle) worker");
        for i in 0..3 {
            fleet.add_tenant(format!("net-{i}"), &red, OnlineConfig::default());
        }
        assert_eq!(fleet.workers(), 3, "workers are capped by tenants");
        assert_eq!(fleet.name(TenantId(2)), "net-2");
    }
}
