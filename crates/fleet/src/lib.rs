//! # losstomo-fleet — multi-tenant online loss inference
//!
//! The paper's estimator monitors *one* network; a production monitor
//! watches **many** — one topology and measurement feed per customer
//! network, point of presence, or overlay. This crate is that layer: a
//! [`Fleet`] owns an independent tenant per monitored network (its
//! [`ReducedTopology`] plus a warm
//! [`OnlineEstimator`]), buffers incoming
//! snapshots in **bounded per-tenant queues** (crossbeam channels, so a
//! hot tenant back-pressures instead of eating the process), and drains
//! the queues with a **sharded worker pool** sized by the workspace-wide
//! [`losstomo_linalg::parallel`] policy (`LOSSTOMO_THREADS`-capped).
//!
//! ## Determinism contract
//!
//! Every tenant is pinned to exactly one shard, each shard's worker
//! processes its tenants in ascending id order, and a tenant's
//! snapshots are ingested in arrival order — so each tenant's estimator
//! sees precisely the call sequence it would see running alone.
//! Per-tenant estimates, congested sets, and change events are
//! therefore **bit-identical to a standalone
//! [`OnlineEstimator`]** at any worker count
//! (`tests/fleet_equivalence.rs` at the workspace root pins this for a
//! 16-tenant fleet). Events are merged across shards in
//! `(tenant, seq)` order, so the event stream is deterministic too.
//!
//! ## Hot path
//!
//! The per-snapshot cost is the estimator's ingest; its refresh rides
//! the allocation-reuse workspace of [`losstomo_core::streaming`]
//! ([`ScratchMode::Reuse`](losstomo_core::streaming::ScratchMode)), so a
//! steady-state fleet performs no per-snapshot allocations in Phase 1's
//! covariance replay, Gram assembly, or factorisation. The
//! `fleet_scale` benchmark measures both that reuse (vs the
//! reallocating baseline) and tenant-throughput scaling vs
//! `LOSSTOMO_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use losstomo_core::streaming::{OnlineConfig, OnlineEstimator};
use losstomo_netsim::Snapshot;
use losstomo_topology::ReducedTopology;
use std::fmt;

/// Opaque handle of one registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's dense index (`0..fleet.tenant_count()`, in
    /// registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Capacity of each tenant's snapshot queue; [`Fleet::enqueue`]
    /// reports [`FleetError::QueueFull`] beyond it (backpressure), and
    /// [`Fleet::ingest_batch`] drains and retries instead.
    pub queue_capacity: usize,
    /// Worker threads for [`Fleet::drain`]. `None` (default) follows
    /// [`losstomo_linalg::parallel::num_threads`] — available
    /// parallelism capped by `LOSSTOMO_THREADS`. Results are identical
    /// at any setting; the knob trades wall-clock for CPU occupancy.
    pub workers: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 64,
            workers: None,
        }
    }
}

/// Errors surfaced by the fleet's queueing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The tenant's bounded snapshot queue is full; drain the fleet (or
    /// widen [`FleetConfig::queue_capacity`]) and retry.
    QueueFull(TenantId),
    /// The tenant id does not belong to this fleet.
    UnknownTenant(TenantId),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::QueueFull(t) => write!(f, "snapshot queue of {t} is full"),
            FleetError::UnknownTenant(t) => write!(f, "{t} is not registered in this fleet"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One drained event of one tenant.
#[derive(Debug, Clone)]
pub struct FleetEvent {
    /// The tenant the event belongs to.
    pub tenant: TenantId,
    /// 1-based per-tenant snapshot sequence number that produced the
    /// event.
    pub seq: u64,
    /// What happened.
    pub kind: FleetEventKind,
}

/// Event payloads.
#[derive(Debug, Clone)]
pub enum FleetEventKind {
    /// The tenant's congested-link set changed with this snapshot.
    CongestionChanged {
        /// Links that entered the congested set (ascending).
        appeared: Vec<usize>,
        /// Links that left the congested set (ascending).
        cleared: Vec<usize>,
        /// The full congested set after this snapshot (ascending).
        congested: Vec<usize>,
    },
    /// The tenant's estimator failed to process this snapshot (a
    /// post-warm-up refresh failure). The tenant keeps running; the
    /// snapshot is dropped.
    EstimatorError {
        /// The estimator's error, stringified.
        message: String,
    },
}

/// Per-tenant bookkeeping the fleet exposes for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Snapshots ingested (drained) so far.
    pub ingested: u64,
    /// Successful estimator refreshes so far.
    pub refreshes: u64,
    /// Snapshots currently waiting in the queue.
    pub queued: usize,
    /// Ingests that failed with an estimator error.
    pub errors: u64,
}

/// One registered tenant: its estimator plus the receive side of its
/// snapshot queue.
struct Tenant {
    name: String,
    estimator: OnlineEstimator,
    rx: Receiver<Snapshot>,
    ingested: u64,
    errors: u64,
}

impl Tenant {
    /// Drains every queued snapshot through the estimator, appending
    /// one event per congested-set change (or error) to `events`.
    fn drain(&mut self, id: TenantId, events: &mut Vec<FleetEvent>) {
        while let Ok(snapshot) = self.rx.try_recv() {
            self.ingested += 1;
            match self.estimator.ingest(&snapshot) {
                Ok(update) => {
                    if !update.appeared.is_empty() || !update.cleared.is_empty() {
                        events.push(FleetEvent {
                            tenant: id,
                            seq: self.ingested,
                            kind: FleetEventKind::CongestionChanged {
                                appeared: update.appeared,
                                cleared: update.cleared,
                                congested: update.congested,
                            },
                        });
                    }
                }
                Err(e) => {
                    self.errors += 1;
                    events.push(FleetEvent {
                        tenant: id,
                        seq: self.ingested,
                        kind: FleetEventKind::EstimatorError {
                            message: e.to_string(),
                        },
                    });
                }
            }
        }
    }
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("ingested", &self.ingested)
            .field("queued", &self.rx.len())
            .finish_non_exhaustive()
    }
}

/// Registry and scheduler for many independently monitored networks.
///
/// ```text
/// feeds ──enqueue──► [bounded queue per tenant] ──drain──► worker pool
///                                                  │   (tenant-sharded)
///                                                  ▼
///                                    per-tenant OnlineEstimator
///                                                  │
///                                  FleetEvents (congested-set diffs)
/// ```
///
/// See the [crate docs](self) for the determinism contract.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    tenants: Vec<Tenant>,
    /// Send sides of the tenant queues, indexable with `&self` so
    /// producers can enqueue without exclusive access to the registry.
    senders: Vec<Sender<Snapshot>>,
}

impl Fleet {
    /// Creates an empty fleet.
    pub fn new(cfg: FleetConfig) -> Self {
        Fleet {
            cfg,
            tenants: Vec::new(),
            senders: Vec::new(),
        }
    }

    /// Registers a tenant: its own copy of the reduced topology and a
    /// fresh [`OnlineEstimator`] with `online` settings, plus a bounded
    /// snapshot queue. Returns the tenant's handle.
    pub fn add_tenant(
        &mut self,
        name: impl Into<String>,
        red: &ReducedTopology,
        online: OnlineConfig,
    ) -> TenantId {
        let id = TenantId(self.tenants.len());
        let (tx, rx) = bounded(self.cfg.queue_capacity);
        self.tenants.push(Tenant {
            name: name.into(),
            estimator: OnlineEstimator::new(red, online),
            rx,
            ingested: 0,
            errors: 0,
        });
        self.senders.push(tx);
        id
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The worker count [`Fleet::drain`] will use right now (resolving
    /// the `None` default against the shared thread policy and the
    /// tenant count).
    pub fn workers(&self) -> usize {
        self.cfg
            .workers
            .unwrap_or_else(losstomo_linalg::parallel::num_threads)
            .clamp(1, self.tenants.len().max(1))
    }

    /// The tenant's registration name.
    pub fn name(&self, id: TenantId) -> &str {
        &self.tenants[id.0].name
    }

    /// Read access to a tenant's estimator (variances, congested set,
    /// kept columns, …).
    pub fn estimator(&self, id: TenantId) -> &OnlineEstimator {
        &self.tenants[id.0].estimator
    }

    /// Queue/ingest counters of one tenant.
    pub fn stats(&self, id: TenantId) -> TenantStats {
        let t = &self.tenants[id.0];
        TenantStats {
            ingested: t.ingested,
            refreshes: t.estimator.refresh_count(),
            queued: t.rx.len(),
            errors: t.errors,
        }
    }

    /// Enqueues one snapshot for a tenant without blocking. Fails with
    /// [`FleetError::QueueFull`] when the tenant's bounded queue is at
    /// capacity — the backpressure signal; [`Fleet::drain`] frees it.
    pub fn enqueue(&self, id: TenantId, snapshot: Snapshot) -> Result<(), FleetError> {
        let tx = self
            .senders
            .get(id.0)
            .ok_or(FleetError::UnknownTenant(id))?;
        match tx.try_send(snapshot) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(FleetError::QueueFull(id)),
            Err(TrySendError::Disconnected(_)) => Err(FleetError::UnknownTenant(id)),
        }
    }

    /// Drains every tenant queue through the sharded worker pool and
    /// returns the produced events in `(tenant, seq)` order.
    ///
    /// Tenant `i` is pinned to shard `i mod workers`; each shard's
    /// worker ingests its tenants' snapshots in arrival order, so
    /// per-tenant results are identical at any worker count.
    pub fn drain(&mut self) -> Vec<FleetEvent> {
        let workers = self.workers();
        let mut events = if workers <= 1 || self.tenants.len() <= 1 {
            let mut events = Vec::new();
            for (i, tenant) in self.tenants.iter_mut().enumerate() {
                tenant.drain(TenantId(i), &mut events);
            }
            events
        } else {
            // Deal the tenants out to their shards (round-robin by id,
            // so the assignment is stable as tenants are added).
            let mut shards: Vec<Vec<(TenantId, &mut Tenant)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, tenant) in self.tenants.iter_mut().enumerate() {
                shards[i % workers].push((TenantId(i), tenant));
            }
            crossbeam::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|mut shard| {
                        scope.spawn(move |_| {
                            let mut events = Vec::new();
                            for (id, tenant) in shard.iter_mut() {
                                tenant.drain(*id, &mut events);
                            }
                            events
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("fleet worker panicked"))
                    .collect()
            })
            .expect("fleet worker pool panicked")
        };
        events.sort_by_key(|e| (e.tenant, e.seq));
        events
    }

    /// Batch ingest: enqueues every `(tenant, snapshot)` pair, draining
    /// the fleet whenever a queue fills (the bounded queues are the
    /// batch's flow control), then drains whatever remains. Returns all
    /// events produced while processing the batch, in drain order
    /// (within each drain, `(tenant, seq)`-sorted).
    pub fn ingest_batch(
        &mut self,
        batch: impl IntoIterator<Item = (TenantId, Snapshot)>,
    ) -> Result<Vec<FleetEvent>, FleetError> {
        let mut events = Vec::new();
        for (id, snapshot) in batch {
            let first = self
                .senders
                .get(id.0)
                .ok_or(FleetError::UnknownTenant(id))?
                .try_send(snapshot);
            match first {
                Ok(()) => {}
                Err(TrySendError::Full(snapshot)) => {
                    // Backpressure: service the queues, then retry.
                    // The drain left every queue empty and capacity is
                    // ≥ 1, so the retry cannot fail.
                    events.append(&mut self.drain());
                    self.senders[id.0]
                        .try_send(snapshot)
                        .map_err(|_| FleetError::QueueFull(id))?;
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(FleetError::UnknownTenant(id));
                }
            }
        }
        events.append(&mut self.drain());
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_netsim::{
        simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
    };
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    fn simulate(red: &ReducedTopology, m: usize, seed: u64) -> MeasurementSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.3,
            CongestionDynamics::Markov {
                stay_congested: 0.8,
            },
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 120,
            ..ProbeConfig::default()
        };
        simulate_run(red, &mut scenario, &cfg, m, &mut rng)
    }

    #[test]
    fn enqueue_applies_backpressure_and_drain_frees_it() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 2,
            workers: Some(1),
        });
        let t = fleet.add_tenant("net-0", &red, OnlineConfig::default());
        let ms = simulate(&red, 3, 1);
        fleet.enqueue(t, ms.snapshots[0].clone()).unwrap();
        fleet.enqueue(t, ms.snapshots[1].clone()).unwrap();
        assert_eq!(
            fleet.enqueue(t, ms.snapshots[2].clone()),
            Err(FleetError::QueueFull(t))
        );
        assert_eq!(fleet.stats(t).queued, 2);
        fleet.drain();
        assert_eq!(fleet.stats(t).queued, 0);
        assert_eq!(fleet.stats(t).ingested, 2);
        fleet.enqueue(t, ms.snapshots[2].clone()).unwrap();
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let red = fig1();
        let fleet = Fleet::new(FleetConfig::default());
        let ghost = TenantId(7);
        let ms = simulate(&red, 1, 2);
        assert_eq!(
            fleet.enqueue(ghost, ms.snapshots[0].clone()),
            Err(FleetError::UnknownTenant(ghost))
        );
    }

    #[test]
    fn ingest_batch_drains_on_backpressure() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 2,
            workers: Some(2),
        });
        let a = fleet.add_tenant("a", &red, OnlineConfig::default());
        let b = fleet.add_tenant("b", &red, OnlineConfig::default());
        let m = 9;
        let ms_a = simulate(&red, m, 3);
        let ms_b = simulate(&red, m, 4);
        // Interleave; queue capacity 2 forces intermediate drains.
        let batch: Vec<(TenantId, Snapshot)> = ms_a
            .snapshots
            .iter()
            .cloned()
            .map(|s| (a, s))
            .zip(ms_b.snapshots.iter().cloned().map(|s| (b, s)))
            .flat_map(|(x, y)| [x, y])
            .collect();
        fleet.ingest_batch(batch).unwrap();
        assert_eq!(fleet.stats(a).ingested, m as u64);
        assert_eq!(fleet.stats(b).ingested, m as u64);
        assert_eq!(fleet.stats(a).queued, 0);
        assert!(fleet.estimator(a).variances().is_some());
    }

    #[test]
    fn events_replay_congested_set_transitions() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig::default());
        let t = fleet.add_tenant("net", &red, OnlineConfig::default());
        let ms = simulate(&red, 25, 5);
        let events = fleet
            .ingest_batch(ms.snapshots.iter().cloned().map(|s| (t, s)))
            .unwrap();
        // Replaying appeared/cleared from an empty set must land on the
        // estimator's current congested set.
        let mut current: Vec<usize> = Vec::new();
        let mut last_seq = 0;
        for e in &events {
            assert_eq!(e.tenant, t);
            assert!(e.seq > last_seq, "events must be seq-ordered per tenant");
            last_seq = e.seq;
            match &e.kind {
                FleetEventKind::CongestionChanged {
                    appeared,
                    cleared,
                    congested,
                } => {
                    current.retain(|k| !cleared.contains(k));
                    current.extend(appeared.iter().copied());
                    current.sort_unstable();
                    assert_eq!(&current, congested);
                }
                FleetEventKind::EstimatorError { message } => {
                    panic!("unexpected estimator error: {message}")
                }
            }
        }
        assert_eq!(current, fleet.estimator(t).congested_links());
    }

    #[test]
    fn workers_resolve_against_tenant_count() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 4,
            workers: Some(8),
        });
        assert_eq!(fleet.workers(), 1, "no tenants → one (idle) worker");
        for i in 0..3 {
            fleet.add_tenant(format!("net-{i}"), &red, OnlineConfig::default());
        }
        assert_eq!(fleet.workers(), 3, "workers are capped by tenants");
        assert_eq!(fleet.name(TenantId(2)), "net-2");
    }
}
