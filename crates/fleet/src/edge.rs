//! # Service edge — wire ingest, demux, and fleet query
//!
//! The boundary where framed byte batches (`losstomo-wire`) become
//! tenant queue items:
//!
//! * [`Fleet::ingest_wire_batch`] — feed a parsed [`WireBatch`]
//!   directly, either **zero-copy** (each row enqueued as a
//!   reference-counted window of the receive buffer, no row copy until
//!   the ingesting worker reads it as `&[f64]` in place) or
//!   **copying** (rows decoded to owned `Vec<f64>` at the edge). Both
//!   modes deliver bit-identical rows to the estimator; the mode only
//!   moves *where* the bytes are touched.
//! * [`Fleet::ingest_json_batch`] — the schema-stable JSON fallback
//!   codec, for feeds that cannot speak the binary format.
//! * [`Fleet::spawn_demux`] — a connection thread that parses batches
//!   off a byte source, routes frames to the tenant queues, and
//!   surfaces per-frame acknowledgements (accepted counts, typed
//!   row rejections, backpressure) to the caller.
//! * [`Fleet::query`] — the observability surface: per-tenant
//!   congested sets, ingest/error counters, queue depths, last wire
//!   sequence, and churn staleness, as one serializable report.
//!
//! ## Validation happens at the edge
//!
//! Frame- and row-level problems are rejected **before** anything
//! enters a tenant queue: unknown tenant ids, quarantined tenants,
//! path-count mismatches (frame-level — [`RowRejection::row`] is
//! `None`), and non-finite row values (row-level — `Some(row)`). A
//! malformed batch never panics: [`WireBatch::parse`] returns typed
//! [`WireError`](losstomo_wire::WireError)s, and everything that
//! parses but cannot be routed comes back in the report/ack with its
//! frame and row index. Rows the estimator *can* reject for deeper
//! reasons (topology churn racing a queued row) still surface as
//! [`FleetEventKind::EstimatorError`](crate::FleetEventKind) events,
//! exactly like the owned-snapshot path.

use crate::{Fleet, FleetError, FleetEvent, QueueItem, TenantId};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TrySendError};
use losstomo_wire::{JsonBatch, WireBatch};
use serde::Serialize;
use std::thread;
use std::time::Duration;

/// How [`Fleet::ingest_wire_batch`] materializes rows into the tenant
/// queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireIngestMode {
    /// Enqueue each row as a reference-counted window of the batch
    /// buffer ([`bytes::Bytes`]); the ingesting worker reads it in
    /// place as `&[f64]`. No per-row allocation or copy at the edge.
    ZeroCopy,
    /// Decode each row to an owned `Vec<f64>` at the edge (one
    /// allocation + copy per row). The baseline zero-copy is measured
    /// against; also the right mode when the receive buffer must be
    /// recycled immediately.
    Copying,
}

/// One rejected wire row (or frame), with enough position to point
/// back into the batch that carried it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowRejection {
    /// Index of the frame within the batch.
    pub frame: usize,
    /// Index of the row within the frame; `None` for frame-level
    /// rejections (unknown/quarantined tenant, path-count mismatch),
    /// where every row of the frame was refused at once.
    pub row: Option<usize>,
    /// The tenant id the frame was addressed to (as carried on the
    /// wire — it may not correspond to a registered tenant).
    pub tenant: u32,
    /// Why it was rejected.
    pub error: FleetError,
}

/// Accounting of one wire/JSON batch ingest. Every row of the batch is
/// either counted in `accepted` or covered by `rejections` (a
/// frame-level rejection covers all rows of its frame) — nothing is
/// silently dropped.
#[derive(Debug, Default)]
pub struct WireIngestReport {
    /// Rows that entered a tenant queue (and were drained).
    pub accepted: usize,
    /// Frame- and row-level rejections, in batch order.
    pub rejections: Vec<RowRejection>,
    /// Events produced by the intermediate and final drains.
    pub events: Vec<FleetEvent>,
    /// How many intermediate drains backpressure forced.
    pub backpressure_drains: usize,
}

impl WireIngestReport {
    /// Rows rejected (counting a frame-level rejection once per row it
    /// covered is the caller's business; this is the rejection-record
    /// count).
    pub fn rejection_count(&self) -> usize {
        self.rejections.len()
    }
}

/// Per-tenant slice of a [`FleetQueryReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TenantQuery {
    /// Dense tenant index (== [`TenantId::index`]).
    pub tenant: usize,
    /// Registration name.
    pub name: String,
    /// Current congested-link set (ascending link ids).
    pub congested: Vec<usize>,
    /// Snapshots ingested so far.
    pub ingested: u64,
    /// Successful estimator refreshes so far.
    pub refreshes: u64,
    /// Ingests that failed with an estimator error.
    pub errors: u64,
    /// Snapshots waiting in the queue right now.
    pub queued: usize,
    /// Whether the tenant is quarantined.
    pub quarantined: bool,
    /// Highest wire sequence number ingested (`None` until the first
    /// wire row) — compare against the feed's send counter for
    /// end-to-end lag.
    pub last_wire_seq: Option<u64>,
    /// Snapshots until the covariance window flushes pre-churn history
    /// (`Some(0)` = churn-free; `None` = never).
    pub snapshots_until_flush: Option<u64>,
}

/// Snapshot of the whole fleet's state, from [`Fleet::query`].
/// Serializable (the vendored `serde_json` renders it) so it can be
/// shipped to an operator endpoint as-is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FleetQueryReport {
    /// Per-tenant state, in tenant-id order.
    pub tenants: Vec<TenantQuery>,
    /// Worker threads the next drain will use.
    pub workers: usize,
    /// Active SIMD engine name.
    pub simd_engine: String,
    /// Sum of `ingested` across tenants.
    pub total_ingested: u64,
    /// Sum of `queued` across tenants.
    pub total_queued: usize,
    /// Number of quarantined tenants.
    pub quarantined_tenants: usize,
}

/// Configuration of a demux thread ([`Fleet::spawn_demux`]).
#[derive(Debug, Clone, Copy)]
pub struct DemuxConfig {
    /// How many times to retry a full tenant queue before rejecting
    /// the row with [`FleetError::QueueFull`]. The demux thread cannot
    /// drain the fleet itself (that needs `&mut Fleet`), so retries
    /// plus the consumer's polling loop are its only flow control.
    pub retry_attempts: usize,
    /// Sleep between retries.
    pub retry_backoff: Duration,
}

impl Default for DemuxConfig {
    fn default() -> Self {
        DemuxConfig {
            retry_attempts: 100,
            retry_backoff: Duration::from_micros(200),
        }
    }
}

/// One acknowledgement from the demux thread, in input order.
#[derive(Debug)]
pub enum DemuxAck {
    /// A batch failed to parse; nothing from it was enqueued.
    MalformedBatch {
        /// Zero-based index of the batch in the input stream.
        batch: u64,
        /// The typed parse error, stringified.
        error: String,
    },
    /// One frame was routed (fully, partially, or not at all — see the
    /// counts).
    Frame {
        /// Zero-based index of the batch in the input stream.
        batch: u64,
        /// Index of the frame within its batch.
        frame: usize,
        /// Tenant id carried on the wire.
        tenant: u32,
        /// Rows that entered the tenant queue.
        accepted: usize,
        /// Typed rejections (frame-level `row: None`, or per row).
        rejections: Vec<RowRejection>,
    },
}

/// Lifetime totals of a demux thread, returned by
/// [`DemuxHandle::finish`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DemuxStats {
    /// Batches received from the input channel.
    pub batches: u64,
    /// Batches that failed to parse.
    pub malformed_batches: u64,
    /// Frames routed (from well-formed batches).
    pub frames: u64,
    /// Rows that entered a tenant queue.
    pub rows_accepted: u64,
    /// Rows refused (frame-level rejections count every covered row).
    pub rows_rejected: u64,
}

/// Handle on a running demux thread.
///
/// Producers push raw batch buffers with [`DemuxHandle::send`] (the
/// sender is cloneable via [`DemuxHandle::sender`] for multiple
/// connections); the consumer polls [`DemuxHandle::try_ack`] for
/// per-frame outcomes while draining the fleet, and
/// [`DemuxHandle::finish`] shuts down (all senders dropped → the
/// thread exits after the queue empties).
#[derive(Debug)]
pub struct DemuxHandle {
    input: Sender<Bytes>,
    acks: Receiver<DemuxAck>,
    thread: thread::JoinHandle<DemuxStats>,
}

impl DemuxHandle {
    /// A cloneable sender for pushing batch buffers from another
    /// thread/connection.
    pub fn sender(&self) -> Sender<Bytes> {
        self.input.clone()
    }

    /// Pushes one batch buffer. Returns `false` if the demux thread
    /// already exited.
    pub fn send(&self, batch: Bytes) -> bool {
        self.input.send(batch).is_ok()
    }

    /// Non-blocking poll of the acknowledgement stream.
    pub fn try_ack(&self) -> Option<DemuxAck> {
        self.acks.try_recv().ok()
    }

    /// Drops the handle's sender, waits for the thread to drain its
    /// queue and exit, and returns its lifetime stats plus every
    /// not-yet-consumed acknowledgement. Clones obtained from
    /// [`DemuxHandle::sender`] must be dropped by their owners first
    /// or this blocks until they are.
    pub fn finish(self) -> (DemuxStats, Vec<DemuxAck>) {
        drop(self.input);
        let stats = self.thread.join().expect("demux thread panicked");
        let mut acks = Vec::new();
        while let Ok(ack) = self.acks.try_recv() {
            acks.push(ack);
        }
        (stats, acks)
    }
}

/// What the demux thread knows about one tenant, captured at spawn.
#[derive(Clone, Copy)]
struct DemuxTenant {
    paths: usize,
}

impl Fleet {
    /// Ingests one parsed wire batch: validates each frame and row at
    /// the edge, enqueues the rows per `mode`, drains on backpressure,
    /// and drains once at the end. See the [module docs](self) for the
    /// validation contract. Rows reach the estimator bit-identical to
    /// [`Fleet::enqueue`] of the snapshots they were encoded from.
    pub fn ingest_wire_batch(
        &mut self,
        batch: &WireBatch,
        mode: WireIngestMode,
    ) -> WireIngestReport {
        let mut report = WireIngestReport::default();
        for fi in 0..batch.frame_count() {
            let frame = batch.frame(fi);
            let wire_tenant = frame.tenant();
            let id = TenantId(wire_tenant as usize);
            if let Err(error) = self.check_wire_frame(id, frame.path_count()) {
                report.rejections.push(RowRejection {
                    frame: fi,
                    row: None,
                    tenant: wire_tenant,
                    error,
                });
                continue;
            }
            for r in 0..frame.row_count() {
                let row = frame.row(r);
                if let Some(path) = row.first_non_finite() {
                    report.rejections.push(RowRejection {
                        frame: fi,
                        row: Some(r),
                        tenant: wire_tenant,
                        error: FleetError::MalformedSnapshot {
                            tenant: id,
                            reason: format!("non-finite log rate at path {path}"),
                        },
                    });
                    continue;
                }
                let item = match mode {
                    WireIngestMode::ZeroCopy => QueueItem::WireRow {
                        data: frame.row_bytes(r),
                        wire_seq: frame.seq(r),
                    },
                    WireIngestMode::Copying => QueueItem::OwnedRow {
                        data: row.to_vec(),
                        wire_seq: Some(frame.seq(r)),
                    },
                };
                match self.enqueue_item_with_drain(id, item, &mut report.events) {
                    Ok(drained) => {
                        report.accepted += 1;
                        report.backpressure_drains += usize::from(drained);
                    }
                    Err((error, drained)) => {
                        report.backpressure_drains += usize::from(drained);
                        report.rejections.push(RowRejection {
                            frame: fi,
                            row: Some(r),
                            tenant: wire_tenant,
                            error,
                        });
                    }
                }
            }
        }
        self.poll_events_into(&mut report.events);
        report
    }

    /// Ingests one JSON-fallback batch with the same validation and
    /// accounting as [`Fleet::ingest_wire_batch`]. Rows are always
    /// owned here (the JSON codec already allocated them). Note the
    /// JSON codec does **not** guarantee `f64` bit-exactness across a
    /// round-trip (see [`losstomo_wire::json`]); the binary format
    /// does.
    pub fn ingest_json_batch(&mut self, batch: &JsonBatch) -> WireIngestReport {
        let mut report = WireIngestReport::default();
        for (fi, frame) in batch.frames.iter().enumerate() {
            let id = TenantId(frame.tenant as usize);
            let paths = frame.rows.first().map_or(0, Vec::len);
            if let Err(error) = self.check_wire_frame(id, paths) {
                report.rejections.push(RowRejection {
                    frame: fi,
                    row: None,
                    tenant: frame.tenant,
                    error,
                });
                continue;
            }
            for (r, row) in frame.rows.iter().enumerate() {
                let verdict = if row.len() != paths {
                    // JSON has no frame-wide row shape, so raggedness
                    // is representable — and rejected per row.
                    Some(format!(
                        "ragged row: {} values, frame started with {paths}",
                        row.len()
                    ))
                } else {
                    row.iter()
                        .position(|v| !v.is_finite())
                        .map(|p| format!("non-finite log rate at path {p}"))
                };
                if let Some(reason) = verdict {
                    report.rejections.push(RowRejection {
                        frame: fi,
                        row: Some(r),
                        tenant: frame.tenant,
                        error: FleetError::MalformedSnapshot { tenant: id, reason },
                    });
                    continue;
                }
                let item = QueueItem::OwnedRow {
                    data: row.clone(),
                    wire_seq: Some(frame.base_seq.wrapping_add(r as u64)),
                };
                match self.enqueue_item_with_drain(id, item, &mut report.events) {
                    Ok(drained) => {
                        report.accepted += 1;
                        report.backpressure_drains += usize::from(drained);
                    }
                    Err((error, drained)) => {
                        report.backpressure_drains += usize::from(drained);
                        report.rejections.push(RowRejection {
                            frame: fi,
                            row: Some(r),
                            tenant: frame.tenant,
                            error,
                        });
                    }
                }
            }
        }
        self.poll_events_into(&mut report.events);
        report
    }

    /// Frame-level gate for the wire paths: the tenant must exist, be
    /// healthy, and the frame's row shape must match its topology.
    fn check_wire_frame(&self, id: TenantId, paths: usize) -> Result<(), FleetError> {
        self.check_tenant(id)?;
        let want = self.tenants[id.0].estimator.topology().num_paths();
        if paths != want {
            return Err(FleetError::MalformedSnapshot {
                tenant: id,
                reason: format!("frame rows cover {paths} paths, topology has {want}"),
            });
        }
        Ok(())
    }

    /// Enqueues one validated item, draining the fleet once and
    /// retrying if the queue is full. `Ok(drained)` /
    /// `Err((error, drained))` report whether a backpressure drain
    /// happened.
    fn enqueue_item_with_drain(
        &mut self,
        id: TenantId,
        item: QueueItem,
        events: &mut Vec<FleetEvent>,
    ) -> Result<bool, (FleetError, bool)> {
        match self.senders[id.0].try_send(item) {
            Ok(()) => Ok(false),
            Err(TrySendError::Full(item)) => {
                self.poll_events_into(events);
                if self.tenants[id.0].quarantined {
                    return Err((FleetError::Quarantined(id), true));
                }
                match self.senders[id.0].try_send(item) {
                    Ok(()) => Ok(true),
                    Err(_) => Err((FleetError::QueueFull(id), true)),
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                Err((FleetError::UnknownTenant(id), false))
            }
        }
    }

    /// The fleet's observability snapshot: per-tenant congested sets,
    /// counters, queue depths, wire staleness, plus fleet-wide totals.
    /// Cheap (no drain, no lock beyond `&self`) and serializable.
    pub fn query(&self) -> FleetQueryReport {
        let tenants: Vec<TenantQuery> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantQuery {
                tenant: i,
                name: t.name.clone(),
                congested: t.estimator.congested_links().to_vec(),
                ingested: t.ingested,
                refreshes: t.estimator.refresh_count(),
                errors: t.errors,
                queued: t.rx.len(),
                quarantined: t.quarantined,
                last_wire_seq: t.last_wire_seq,
                snapshots_until_flush: t.estimator.staleness().snapshots_until_flush,
            })
            .collect();
        FleetQueryReport {
            workers: self.workers(),
            simd_engine: format!("{:?}", self.simd_engine()),
            total_ingested: tenants.iter().map(|t| t.ingested).sum(),
            total_queued: tenants.iter().map(|t| t.queued).sum(),
            quarantined_tenants: tenants.iter().filter(|t| t.quarantined).count(),
            tenants,
        }
    }

    /// Spawns a demux thread: it receives raw batch buffers from the
    /// returned handle's channel, parses and validates them, and
    /// routes rows **zero-copy** to the tenant queues, acknowledging
    /// every batch/frame on the handle's ack channel.
    ///
    /// The thread holds clones of the queue senders and a snapshot of
    /// each tenant's path count taken *now* — register all tenants
    /// before spawning (frames for tenants added later are rejected
    /// with [`FleetError::UnknownTenant`]), and note that quarantine
    /// and topology churn after spawn are invisible to the demux: a
    /// quarantined tenant's rows are still enqueued (and ignored by
    /// the drain), and post-churn path counts are enforced by the
    /// estimator's own typed ingest validation rather than at the
    /// demux.
    ///
    /// When a tenant queue is full the thread retries per
    /// [`DemuxConfig`]; meanwhile the consumer must keep calling
    /// [`Fleet::poll_events_into`] to make room. Rows still refused
    /// after the retries come back as [`FleetError::QueueFull`]
    /// rejections — backpressure is surfaced, never a deadlock.
    pub fn spawn_demux(&self, cfg: DemuxConfig) -> DemuxHandle {
        let senders = self.senders.clone();
        let tenants: Vec<DemuxTenant> = self
            .tenants
            .iter()
            .map(|t| DemuxTenant {
                paths: t.estimator.topology().num_paths(),
            })
            .collect();
        let (in_tx, in_rx) = unbounded::<Bytes>();
        let (ack_tx, ack_rx) = unbounded::<DemuxAck>();
        let thread = thread::Builder::new()
            .name("losstomo-demux".into())
            .spawn(move || demux_loop(&in_rx, &ack_tx, &senders, &tenants, cfg))
            .expect("spawn demux thread");
        DemuxHandle {
            input: in_tx,
            acks: ack_rx,
            thread,
        }
    }
}

/// Body of the demux thread: parse → validate → route, one batch at a
/// time, until every input sender is dropped.
fn demux_loop(
    input: &Receiver<Bytes>,
    acks: &Sender<DemuxAck>,
    senders: &[Sender<QueueItem>],
    tenants: &[DemuxTenant],
    cfg: DemuxConfig,
) -> DemuxStats {
    let mut stats = DemuxStats::default();
    while let Ok(buf) = input.recv() {
        let batch_idx = stats.batches;
        stats.batches += 1;
        let batch = match WireBatch::parse(buf) {
            Ok(batch) => batch,
            Err(e) => {
                stats.malformed_batches += 1;
                let _ = acks.send(DemuxAck::MalformedBatch {
                    batch: batch_idx,
                    error: e.to_string(),
                });
                continue;
            }
        };
        for fi in 0..batch.frame_count() {
            let frame = batch.frame(fi);
            stats.frames += 1;
            let wire_tenant = frame.tenant();
            let id = TenantId(wire_tenant as usize);
            let mut accepted = 0usize;
            let mut rejections = Vec::new();
            let frame_gate = match tenants.get(id.0) {
                None => Some(FleetError::UnknownTenant(id)),
                Some(t) if t.paths != frame.path_count() => {
                    Some(FleetError::MalformedSnapshot {
                        tenant: id,
                        reason: format!(
                            "frame rows cover {} paths, topology has {}",
                            frame.path_count(),
                            t.paths
                        ),
                    })
                }
                Some(_) => None,
            };
            if let Some(error) = frame_gate {
                stats.rows_rejected += frame.row_count() as u64;
                rejections.push(RowRejection {
                    frame: fi,
                    row: None,
                    tenant: wire_tenant,
                    error,
                });
                let _ = acks.send(DemuxAck::Frame {
                    batch: batch_idx,
                    frame: fi,
                    tenant: wire_tenant,
                    accepted,
                    rejections,
                });
                continue;
            }
            for r in 0..frame.row_count() {
                let row = frame.row(r);
                if let Some(path) = row.first_non_finite() {
                    stats.rows_rejected += 1;
                    rejections.push(RowRejection {
                        frame: fi,
                        row: Some(r),
                        tenant: wire_tenant,
                        error: FleetError::MalformedSnapshot {
                            tenant: id,
                            reason: format!("non-finite log rate at path {path}"),
                        },
                    });
                    continue;
                }
                let mut item = QueueItem::WireRow {
                    data: frame.row_bytes(r),
                    wire_seq: frame.seq(r),
                };
                let mut sent = false;
                for attempt in 0..=cfg.retry_attempts {
                    match senders[id.0].try_send(item) {
                        Ok(()) => {
                            sent = true;
                            break;
                        }
                        Err(TrySendError::Full(back)) => {
                            item = back;
                            if attempt < cfg.retry_attempts {
                                thread::sleep(cfg.retry_backoff);
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                if sent {
                    accepted += 1;
                    stats.rows_accepted += 1;
                } else {
                    stats.rows_rejected += 1;
                    rejections.push(RowRejection {
                        frame: fi,
                        row: Some(r),
                        tenant: wire_tenant,
                        error: FleetError::QueueFull(id),
                    });
                }
            }
            let _ = acks.send(DemuxAck::Frame {
                batch: batch_idx,
                frame: fi,
                tenant: wire_tenant,
                accepted,
                rejections,
            });
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FleetConfig, FleetEventKind};
    use losstomo_core::streaming::{OnlineConfig, OnlineEstimator};
    use losstomo_netsim::wirebridge::{batch_to_wire, SnapshotBridge};
    use losstomo_netsim::{
        fan_in, simulate_run, simulate_stream, CongestionDynamics, CongestionScenario,
        MeasurementSet, ProbeConfig, Snapshot, SnapshotFanIn,
    };
    use losstomo_topology::{fixtures, ReducedTopology};
    use losstomo_wire::{BatchEncoder, JsonFrame, WireEncodeOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    fn probe_cfg() -> ProbeConfig {
        ProbeConfig {
            probes_per_snapshot: 120,
            ..ProbeConfig::default()
        }
    }

    fn simulate(red: &ReducedTopology, m: usize, seed: u64) -> MeasurementSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.3,
            CongestionDynamics::Markov {
                stay_congested: 0.8,
            },
            &mut rng,
        );
        simulate_run(red, &mut scenario, &probe_cfg(), m, &mut rng)
    }

    fn mux(red: &'static ReducedTopology, tenants: usize) -> SnapshotFanIn<'static, StdRng> {
        let streams: Vec<_> = (0..tenants)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                let sc = CongestionScenario::draw(
                    red.num_links(),
                    0.3,
                    CongestionDynamics::Redraw,
                    &mut rng,
                );
                simulate_stream(red, sc, &probe_cfg(), rng)
            })
            .collect();
        fan_in(streams)
    }

    fn fleet_of(red: &ReducedTopology, tenants: usize, capacity: usize) -> Fleet {
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: capacity,
            workers: Some(2),
            ..FleetConfig::default()
        });
        for t in 0..tenants {
            fleet.add_tenant(format!("net-{t}"), red, OnlineConfig::default());
        }
        fleet
    }

    /// The tentpole equivalence gate: wire ingest — zero-copy AND
    /// copying AND JSON-sourced owned rows — lands every tenant on the
    /// same estimator state as direct snapshot enqueue.
    #[test]
    fn wire_ingest_matches_direct_enqueue_bit_for_bit() {
        let red: &'static ReducedTopology = Box::leak(Box::new(fig1()));
        let tenants = 3;
        let rounds = 30;
        let mut m = mux(red, tenants);
        // Pull the snapshot stream once; feed identical rows to every
        // ingest path.
        let snaps: Vec<(usize, Snapshot)> = (&mut m).take(tenants * rounds).collect();
        let mut frames: Vec<JsonFrame> = (0..tenants)
            .map(|t| JsonFrame {
                tenant: t as u32,
                base_seq: 0,
                rows: Vec::new(),
            })
            .collect();
        for (t, s) in &snaps {
            frames[*t].rows.push(s.log_rates());
        }
        let collected = JsonBatch { frames };
        let wire = batch_to_wire(&collected, WireEncodeOptions { crc: true });
        let batch = WireBatch::parse(wire).expect("bridge output parses");

        let mut direct = fleet_of(red, tenants, 8);
        for (t, s) in &snaps {
            let id = TenantId(*t);
            match direct.enqueue(id, s.clone()) {
                Ok(()) => {}
                Err(FleetError::QueueFull(_)) => {
                    direct.poll_events();
                    direct.enqueue(id, s.clone()).unwrap();
                }
                Err(e) => panic!("direct enqueue failed: {e}"),
            }
        }
        direct.poll_events();

        for mode in [WireIngestMode::ZeroCopy, WireIngestMode::Copying] {
            let mut fleet = fleet_of(red, tenants, 8);
            let report = fleet.ingest_wire_batch(&batch, mode);
            assert_eq!(report.accepted, tenants * rounds, "mode {mode:?}");
            assert!(report.rejections.is_empty(), "mode {mode:?}");
            for t in 0..tenants {
                let id = TenantId(t);
                assert_eq!(
                    fleet.estimator(id).variances().unwrap().v,
                    direct.estimator(id).variances().unwrap().v,
                    "mode {mode:?} diverged from direct enqueue for tenant {t}"
                );
                assert_eq!(
                    fleet.estimator(id).congested_links(),
                    direct.estimator(id).congested_links()
                );
                assert_eq!(
                    fleet.stats(id).ingested,
                    rounds as u64,
                    "wire seq bookkeeping"
                );
                assert_eq!(
                    fleet.query().tenants[t].last_wire_seq,
                    Some(rounds as u64 - 1)
                );
            }
        }
    }

    #[test]
    fn wire_rows_survive_backpressure_with_tiny_queues() {
        let red: &'static ReducedTopology = Box::leak(Box::new(fig1()));
        let mut m = mux(red, 2);
        let mut bridge = SnapshotBridge::new(2);
        let collected = bridge.collect_rounds(&mut m, 20);
        let batch =
            WireBatch::parse(batch_to_wire(&collected, WireEncodeOptions::default())).unwrap();
        // Capacity 2 forces many intermediate drains.
        let mut fleet = fleet_of(red, 2, 2);
        let report = fleet.ingest_wire_batch(&batch, WireIngestMode::ZeroCopy);
        assert_eq!(report.accepted, 40);
        assert!(report.rejections.is_empty());
        assert!(report.backpressure_drains > 0, "tiny queues must drain");
        assert_eq!(fleet.stats(TenantId(0)).ingested, 20);
        assert_eq!(fleet.stats(TenantId(1)).ingested, 20);
    }

    #[test]
    fn wire_frames_for_bad_tenants_and_rows_are_rejected_typed() {
        let red: &'static ReducedTopology = Box::leak(Box::new(fig1()));
        let paths = red.num_paths();
        let mut enc = BatchEncoder::new(WireEncodeOptions::default());
        // Frame 0: unknown tenant.
        enc.begin_frame(9, 0, paths as u32);
        enc.push_row(&vec![-0.1; paths]);
        enc.end_frame();
        // Frame 1: wrong path count for tenant 0.
        enc.begin_frame(0, 0, (paths + 1) as u32);
        enc.push_row(&vec![-0.1; paths + 1]);
        enc.end_frame();
        // Frame 2: good tenant, row 1 carries a NaN.
        enc.begin_frame(0, 0, paths as u32);
        enc.push_row(&vec![-0.1; paths]);
        let mut bad = vec![-0.2; paths];
        bad[2] = f64::NAN;
        enc.push_row(&bad);
        enc.push_row(&vec![-0.3; paths]);
        enc.end_frame();
        let batch = WireBatch::parse(enc.finish()).unwrap();

        let mut fleet = fleet_of(red, 1, 8);
        let report = fleet.ingest_wire_batch(&batch, WireIngestMode::ZeroCopy);
        assert_eq!(report.accepted, 2, "the two finite rows of frame 2");
        assert_eq!(report.rejections.len(), 3);
        assert!(matches!(
            &report.rejections[0],
            RowRejection {
                frame: 0,
                row: None,
                tenant: 9,
                error: FleetError::UnknownTenant(_)
            }
        ));
        assert!(matches!(
            &report.rejections[1],
            RowRejection {
                frame: 1,
                row: None,
                error: FleetError::MalformedSnapshot { .. },
                ..
            }
        ));
        assert!(matches!(
            &report.rejections[2],
            RowRejection {
                frame: 2,
                row: Some(1),
                error: FleetError::MalformedSnapshot { .. },
                ..
            }
        ));
        // The NaN row never reached the estimator: two clean ingests.
        assert_eq!(fleet.stats(TenantId(0)).ingested, 2);
        assert_eq!(fleet.stats(TenantId(0)).errors, 0);
    }

    #[test]
    fn json_fallback_ingests_with_ragged_and_nonfinite_rejections() {
        let red: &'static ReducedTopology = Box::leak(Box::new(fig1()));
        let paths = red.num_paths();
        let batch = JsonBatch {
            frames: vec![JsonFrame {
                tenant: 0,
                base_seq: 5,
                rows: vec![
                    vec![-0.1; paths],
                    vec![-0.1; paths - 1], // ragged
                    vec![f64::NEG_INFINITY; paths],
                    vec![-0.2; paths],
                ],
            }],
        };
        let mut fleet = fleet_of(red, 1, 8);
        let report = fleet.ingest_json_batch(&batch);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.rejections.len(), 2);
        assert!(report
            .rejections
            .iter()
            .all(|r| matches!(r.error, FleetError::MalformedSnapshot { .. })));
        assert_eq!(report.rejections[0].row, Some(1));
        assert_eq!(report.rejections[1].row, Some(2));
        // Wire seq tracks base_seq + row index of the last accepted
        // row (row 3 → seq 8).
        assert_eq!(fleet.query().tenants[0].last_wire_seq, Some(8));
    }

    #[test]
    fn query_reports_tenant_state_and_serializes() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            workers: Some(2),
            ..FleetConfig::default()
        });
        let a = fleet.add_tenant("alpha", &red, OnlineConfig::default());
        let _b = fleet.add_tenant("beta", &red, OnlineConfig::default());
        let ms = simulate(&red, 25, 7);
        fleet
            .ingest_batch(ms.snapshots.iter().cloned().map(|s| (a, s)))
            .unwrap();
        let q = fleet.query();
        assert_eq!(q.tenants.len(), 2);
        assert_eq!(q.tenants[0].name, "alpha");
        assert_eq!(q.tenants[0].ingested, 25);
        assert_eq!(q.tenants[0].refreshes, fleet.estimator(a).refresh_count());
        assert_eq!(
            q.tenants[0].congested,
            fleet.estimator(a).congested_links().to_vec()
        );
        assert_eq!(q.tenants[0].snapshots_until_flush, Some(0), "no churn yet");
        assert_eq!(q.tenants[1].ingested, 0);
        assert_eq!(q.tenants[1].last_wire_seq, None);
        assert_eq!(q.total_ingested, 25);
        assert_eq!(q.quarantined_tenants, 0);
        assert_eq!(q.workers, 2);
        // The report must render through the JSON codec for operator
        // endpoints.
        let json = serde_json::to_string(&q).expect("query serializes");
        assert!(json.contains("\"alpha\""));
        assert!(json.contains("\"total_ingested\":25"));
    }

    #[test]
    fn demux_routes_batches_end_to_end() {
        let red: &'static ReducedTopology = Box::leak(Box::new(fig1()));
        let tenants = 2;
        let mut m = mux(red, tenants);
        let mut bridge = SnapshotBridge::new(tenants);
        let mut fleet = fleet_of(red, tenants, 64);
        let demux = fleet.spawn_demux(DemuxConfig::default());
        let sender = demux.sender();
        let n_batches = 4;
        let rounds = 5;
        for _ in 0..n_batches {
            let collected = bridge.collect_rounds(&mut m, rounds);
            sender
                .send(batch_to_wire(&collected, WireEncodeOptions { crc: true }))
                .unwrap();
        }
        // One malformed buffer in the stream must be acked, not panic
        // the thread.
        sender.send(Bytes::from(vec![0u8; 11])).unwrap();
        drop(sender);
        let (stats, acks) = demux.finish();
        assert_eq!(stats.batches, n_batches as u64 + 1);
        assert_eq!(stats.malformed_batches, 1);
        assert_eq!(stats.frames, (n_batches * tenants) as u64);
        assert_eq!(stats.rows_accepted, (n_batches * tenants * rounds) as u64);
        assert_eq!(stats.rows_rejected, 0);
        assert_eq!(
            acks.iter()
                .filter(|a| matches!(a, DemuxAck::MalformedBatch { .. }))
                .count(),
            1
        );
        let mut events = Vec::new();
        fleet.poll_events_into(&mut events);
        for t in 0..tenants {
            let id = TenantId(t);
            assert_eq!(fleet.stats(id).ingested, (n_batches * rounds) as u64);
            assert!(!fleet.stats(id).quarantined);
        }
        // Event stream is (tenant, seq)-ordered and carries real
        // congestion transitions.
        assert!(events
            .iter()
            .all(|e| matches!(e.kind, FleetEventKind::CongestionChanged { .. })));
    }

    #[test]
    fn demux_surfaces_queue_full_instead_of_deadlocking() {
        let red: &'static ReducedTopology = Box::leak(Box::new(fig1()));
        let mut m = mux(red, 1);
        let mut bridge = SnapshotBridge::new(1);
        // Nobody drains: capacity 2 and zero retries means rows 3+ of
        // the batch must come back as QueueFull rejections.
        let fleet = {
            let mut f = Fleet::new(FleetConfig {
                queue_capacity: 2,
                workers: Some(1),
                ..FleetConfig::default()
            });
            f.add_tenant("t", red, OnlineConfig::default());
            f
        };
        let demux = fleet.spawn_demux(DemuxConfig {
            retry_attempts: 0,
            retry_backoff: Duration::from_micros(1),
        });
        let collected = bridge.collect_rounds(&mut m, 6);
        demux.send(batch_to_wire(&collected, WireEncodeOptions::default()));
        let (stats, acks) = demux.finish();
        assert_eq!(stats.rows_accepted, 2);
        assert_eq!(stats.rows_rejected, 4);
        let frame_acks: Vec<_> = acks
            .iter()
            .filter_map(|a| match a {
                DemuxAck::Frame {
                    accepted,
                    rejections,
                    ..
                } => Some((accepted, rejections)),
                _ => None,
            })
            .collect();
        assert_eq!(frame_acks.len(), 1);
        assert_eq!(*frame_acks[0].0, 2);
        assert_eq!(frame_acks[0].1.len(), 4);
        assert!(frame_acks[0]
            .1
            .iter()
            .all(|r| matches!(r.error, FleetError::QueueFull(_))));
    }

    /// Wire rows racing a topology churn are rejected by the
    /// estimator's typed ingest validation, not ingested against the
    /// wrong shape — the edge's spawn-time path-count snapshot going
    /// stale is loud, never silent.
    #[test]
    fn stale_wire_rows_after_churn_fail_typed_not_silent() {
        use losstomo_core::streaming::WindowMode;
        use losstomo_topology::TopologyDelta;
        let red = fixtures::reduced(&fixtures::figure2());
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: 16,
            workers: Some(1),
            ..FleetConfig::default()
        });
        let t = fleet.add_tenant(
            "t",
            &red,
            OnlineConfig {
                window: WindowMode::Sliding(8),
                ..OnlineConfig::default()
            },
        );
        let paths = red.num_paths();
        // Encode rows for the pre-churn shape…
        let mut enc = BatchEncoder::new(WireEncodeOptions::default());
        enc.begin_frame(0, 0, paths as u32);
        enc.push_row(&vec![-0.1; paths]);
        enc.end_frame();
        let batch = WireBatch::parse(enc.finish()).unwrap();
        // …then grow the topology by one path before they are ingested.
        let nc = red.num_links();
        let delta = TopologyDelta::new().add_path(vec![0, nc - 1]);
        fleet.update_topology(t, &delta).unwrap();
        let report = fleet.ingest_wire_batch(&batch, WireIngestMode::ZeroCopy);
        // The edge rejects at the frame gate (its view is the *live*
        // estimator topology, already churned).
        assert_eq!(report.accepted, 0);
        assert!(matches!(
            &report.rejections[0].error,
            FleetError::MalformedSnapshot { .. }
        ));
        assert_eq!(fleet.stats(t).errors, 0, "nothing reached the estimator");
    }

    #[test]
    fn poll_events_into_reuses_caller_buffer_and_appends() {
        let red = fig1();
        let mut fleet = Fleet::new(FleetConfig {
            workers: Some(2),
            ..FleetConfig::default()
        });
        let a = fleet.add_tenant("a", &red, OnlineConfig::default());
        let b = fleet.add_tenant("b", &red, OnlineConfig::default());
        let ms = simulate(&red, 30, 17);
        let mut events = Vec::new();
        let mut total = 0usize;
        for chunk in ms.snapshots.chunks(10) {
            for s in chunk {
                fleet.enqueue(a, s.clone()).unwrap();
                fleet.enqueue(b, s.clone()).unwrap();
            }
            let before = events.len();
            let appended = fleet.poll_events_into(&mut events);
            assert_eq!(events.len(), before + appended, "append-only contract");
            // The appended range is (tenant, seq)-sorted.
            let tail = &events[before..];
            for w in tail.windows(2) {
                assert!((w[0].tenant, w[0].seq) <= (w[1].tenant, w[1].seq));
            }
            total += appended;
        }
        assert_eq!(events.len(), total);
        assert_eq!(fleet.stats(a).ingested, 30);
        // poll_events (allocating wrapper) and drain agree on an empty
        // fleet.
        assert!(fleet.poll_events().is_empty());
        assert!(fleet.drain().is_empty());
        // Standalone equivalence still holds through the pooled path.
        let mut solo = OnlineEstimator::new(&red, OnlineConfig::default());
        for s in &ms.snapshots {
            solo.ingest(s).unwrap();
        }
        assert_eq!(fleet.estimator(a).congested_links(), solo.congested_links());
    }
}
