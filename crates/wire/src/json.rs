//! JSON fallback codec: the slow-path baseline the binary format is
//! benchmarked against, and an escape hatch for debugging (frames are
//! human-readable) or for clients without the binary encoder.
//!
//! Values round-trip through decimal text, so this path is **not**
//! guaranteed bit-exact for every `f64` — the bit-identity contract
//! (wire ingest ≡ direct enqueue) is a property of the binary format
//! only.

use crate::WireError;
use serde::{Deserialize, Serialize};

/// JSON counterpart of one wire frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonFrame {
    /// Wire tenant id (the fleet's dense tenant index).
    pub tenant: u32,
    /// Sequence number of `rows[0]`; row `r` carries `base_seq + r`.
    pub base_seq: u64,
    /// Log-rate rows, one per snapshot.
    pub rows: Vec<Vec<f64>>,
}

/// JSON counterpart of one wire batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonBatch {
    /// Frames in wire order.
    pub frames: Vec<JsonFrame>,
}

impl JsonBatch {
    /// Encodes to a JSON string.
    pub fn encode(&self) -> Result<String, WireError> {
        serde_json::to_string(self).map_err(|e| WireError::Json {
            message: e.to_string(),
        })
    }

    /// Decodes from a JSON string. Shape errors (missing fields, wrong
    /// types) surface as [`WireError::Json`]; ragged or non-finite
    /// rows are the ingest layer's validation concern, exactly as for
    /// the binary path.
    pub fn decode(text: &str) -> Result<JsonBatch, WireError> {
        serde_json::from_str(text).map_err(|e| WireError::Json {
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let batch = JsonBatch {
            frames: vec![
                JsonFrame {
                    tenant: 3,
                    base_seq: 41,
                    rows: vec![vec![-0.5, -0.25], vec![-1.0, -2.0]],
                },
                JsonFrame {
                    tenant: 0,
                    base_seq: 0,
                    rows: vec![vec![-0.125]],
                },
            ],
        };
        let text = batch.encode().expect("encode");
        let back = JsonBatch::decode(&text).expect("decode");
        assert_eq!(back, batch);
    }

    #[test]
    fn malformed_text_is_typed() {
        assert!(matches!(
            JsonBatch::decode("{not json"),
            Err(WireError::Json { .. })
        ));
        assert!(matches!(
            JsonBatch::decode("{\"frames\": 7}"),
            Err(WireError::Json { .. })
        ));
    }
}
