//! Batch encoder: append frames row by row, patch the deferred header
//! fields (row/frame counts, total length, CRC) on completion.

use crate::crc::crc32;
use crate::{
    BATCH_HEADER_LEN, BATCH_MAGIC, CRC_TRAILER_LEN, FRAME_FLAG_CRC, FRAME_HEADER_LEN,
    FRAME_MAGIC, MAX_PATHS_PER_ROW, MAX_ROWS_PER_FRAME, WIRE_VERSION,
};
use bytes::{BufMut, Bytes, BytesMut};

/// Environment knob: `LOSSTOMO_WIRE_CRC=1|true|on` appends a CRC32
/// trailer to every encoded frame.
pub const WIRE_CRC_ENV: &str = "LOSSTOMO_WIRE_CRC";

/// Encoder policy for one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireEncodeOptions {
    /// Append a CRC32 trailer to every frame (flag [`FRAME_FLAG_CRC`]).
    pub crc: bool,
}

impl WireEncodeOptions {
    /// Reads the default policy from [`WIRE_CRC_ENV`]; unset or
    /// unrecognized values mean no CRC (fastest path).
    pub fn from_env() -> WireEncodeOptions {
        let crc = std::env::var(WIRE_CRC_ENV)
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "1" || v == "true" || v == "on"
            })
            .unwrap_or(false);
        WireEncodeOptions { crc }
    }
}

/// Builds one wire batch. Frames are appended either whole
/// ([`BatchEncoder::push_frame`]) or streamed row by row
/// ([`BatchEncoder::begin_frame`] / [`BatchEncoder::push_row`] /
/// [`BatchEncoder::end_frame`]); [`BatchEncoder::finish`] patches the
/// batch header and freezes the buffer.
///
/// Misuse (mismatched row length, unterminated frame, zero-path frame)
/// is a programmer error and panics — malformed *input* is the
/// parser's concern, not the encoder's.
#[derive(Debug)]
pub struct BatchEncoder {
    buf: BytesMut,
    opts: WireEncodeOptions,
    frames: u32,
    /// Byte offset of the open frame's header, if one is open.
    open_frame: Option<usize>,
    open_paths: u32,
    open_rows: u32,
}

impl BatchEncoder {
    /// Creates an encoder and writes the batch header placeholder.
    pub fn new(opts: WireEncodeOptions) -> BatchEncoder {
        BatchEncoder::with_capacity(opts, 0)
    }

    /// Creates an encoder with `capacity` bytes reserved.
    pub fn with_capacity(opts: WireEncodeOptions, capacity: usize) -> BatchEncoder {
        let mut buf = BytesMut::with_capacity(capacity.max(BATCH_HEADER_LEN));
        buf.put_slice(&BATCH_MAGIC);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(0); // batch flags: none defined in version 1
        buf.put_u16_le(0); // reserved
        buf.put_u32_le(0); // frame_count, patched in finish()
        buf.put_u32_le(0); // total_len, patched in finish()
        BatchEncoder {
            buf,
            opts,
            frames: 0,
            open_frame: None,
            open_paths: 0,
            open_rows: 0,
        }
    }

    /// Bytes written so far (including unpatched headers).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` until the first frame is begun.
    pub fn is_empty(&self) -> bool {
        self.frames == 0 && self.open_frame.is_none()
    }

    /// Opens a frame for `tenant` whose first row has sequence number
    /// `base_seq`.
    ///
    /// # Panics
    /// Panics if a frame is already open, `path_count` is zero, or
    /// `path_count` exceeds [`MAX_PATHS_PER_ROW`].
    pub fn begin_frame(&mut self, tenant: u32, base_seq: u64, path_count: u32) {
        assert!(self.open_frame.is_none(), "frame already open");
        assert!(
            path_count > 0 && path_count <= MAX_PATHS_PER_ROW,
            "path_count {path_count} out of range"
        );
        self.open_frame = Some(self.buf.len());
        self.open_paths = path_count;
        self.open_rows = 0;
        self.buf.put_slice(&FRAME_MAGIC);
        self.buf.put_u8(WIRE_VERSION);
        self.buf
            .put_u8(if self.opts.crc { FRAME_FLAG_CRC } else { 0 });
        self.buf.put_u16_le(0); // reserved
        self.buf.put_u32_le(tenant);
        self.buf.put_u32_le(0); // row_count, patched in end_frame()
        self.buf.put_u32_le(path_count);
        self.buf.put_u32_le(0); // reserved
        self.buf.put_u64_le(base_seq);
    }

    /// Appends one row (`path_count` log-rates) to the open frame.
    ///
    /// # Panics
    /// Panics if no frame is open, the row length disagrees with the
    /// frame's `path_count`, or the frame already holds
    /// [`MAX_ROWS_PER_FRAME`] rows.
    pub fn push_row(&mut self, row: &[f64]) {
        assert!(self.open_frame.is_some(), "no open frame");
        assert_eq!(
            row.len(),
            self.open_paths as usize,
            "row length disagrees with frame path_count"
        );
        assert!(self.open_rows < MAX_ROWS_PER_FRAME, "frame row limit");
        for &v in row {
            self.buf.put_f64_le(v);
        }
        self.open_rows += 1;
    }

    /// Closes the open frame: patches its row count and, when the CRC
    /// option is on, appends the checksum trailer.
    ///
    /// # Panics
    /// Panics if no frame is open or the frame holds zero rows.
    pub fn end_frame(&mut self) {
        let start = self.open_frame.take().expect("no open frame");
        assert!(self.open_rows > 0, "frame holds zero rows");
        let row_count_at = start + 12;
        self.buf.as_mut_slice()[row_count_at..row_count_at + 4]
            .copy_from_slice(&self.open_rows.to_le_bytes());
        if self.opts.crc {
            let sum = crc32(&self.buf.as_slice()[start..]);
            self.buf.put_u32_le(sum);
            self.buf.put_u32_le(0); // alignment pad
        }
        self.frames += 1;
        self.open_rows = 0;
        self.open_paths = 0;
    }

    /// Appends a whole frame from materialized rows.
    ///
    /// # Panics
    /// Panics on the same misuse as the streaming methods, including
    /// an empty `rows` or ragged row lengths.
    pub fn push_frame<R: AsRef<[f64]>>(&mut self, tenant: u32, base_seq: u64, rows: &[R]) {
        let first = rows.first().expect("frame needs at least one row");
        self.begin_frame(
            tenant,
            base_seq,
            u32::try_from(first.as_ref().len()).expect("path count fits u32"),
        );
        for row in rows {
            self.push_row(row.as_ref());
        }
        self.end_frame();
    }

    /// Patches the batch header (frame count, total length) and
    /// freezes the buffer into an immutable [`Bytes`].
    ///
    /// # Panics
    /// Panics if a frame is still open or the batch exceeds `u32`
    /// addressable bytes.
    pub fn finish(mut self) -> Bytes {
        assert!(self.open_frame.is_none(), "unterminated frame");
        let total = u32::try_from(self.buf.len()).expect("batch exceeds u32 bytes");
        self.buf.as_mut_slice()[8..12].copy_from_slice(&self.frames.to_le_bytes());
        self.buf.as_mut_slice()[12..16].copy_from_slice(&total.to_le_bytes());
        self.buf.freeze()
    }

    /// Size in bytes a frame of `rows × paths` occupies on the wire
    /// under `opts` — for pre-sizing encoder buffers.
    pub fn frame_wire_size(opts: WireEncodeOptions, rows: usize, paths: usize) -> usize {
        FRAME_HEADER_LEN + rows * paths * 8 + if opts.crc { CRC_TRAILER_LEN } else { 0 }
    }
}
