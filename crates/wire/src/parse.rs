//! Zero-copy batch parser: one validation pass over the buffer, then
//! row views that alias it.

use crate::crc::crc32;
use crate::{
    WireError, BATCH_HEADER_LEN, BATCH_MAGIC, CRC_TRAILER_LEN, FRAME_FLAG_CRC,
    FRAME_HEADER_LEN, FRAME_MAGIC, MAX_PATHS_PER_ROW, MAX_ROWS_PER_FRAME, WIRE_VERSION,
};
use bytes::Bytes;
use losstomo_linalg::simd::cast_bytes_to_f64;

/// Validated offsets of one frame inside the batch buffer.
#[derive(Debug, Clone)]
struct FrameMeta {
    tenant: u32,
    base_seq: u64,
    rows: u32,
    paths: u32,
    /// Absolute byte offset of the payload in the batch buffer.
    payload_start: usize,
}

/// A parsed batch: the owned input buffer plus validated frame
/// offsets. All header, bound, and CRC checks happen once in
/// [`WireBatch::parse`]; the accessors after that are infallible and
/// alias the buffer.
#[derive(Debug)]
pub struct WireBatch {
    buf: Bytes,
    frames: Vec<FrameMeta>,
}

fn need(b: &[u8], off: usize, n: usize, context: &'static str) -> Result<(), WireError> {
    let available = b.len().saturating_sub(off);
    if available < n {
        Err(WireError::Truncated {
            context,
            needed: n,
            available,
        })
    } else {
        Ok(())
    }
}

// Fixed-width little-endian reads; callers have bounds-checked via
// `need`, and `expect` documents that contract without unsafe.
fn rd_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(b[off..off + 2].try_into().expect("bounds checked"))
}

fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("bounds checked"))
}

fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("bounds checked"))
}

impl WireBatch {
    /// Parses and fully validates a batch. Returns a typed
    /// [`WireError`] for any malformed input; never panics, and never
    /// exposes a row from a batch that failed validation.
    pub fn parse(buf: Bytes) -> Result<WireBatch, WireError> {
        let b = buf.as_slice();
        need(b, 0, BATCH_HEADER_LEN, "batch header")?;
        if b[0..4] != BATCH_MAGIC {
            return Err(WireError::BadMagic {
                context: "batch",
                found: [b[0], b[1], b[2], b[3]],
            });
        }
        if b[4] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                context: "batch",
                found: b[4],
            });
        }
        if b[5] != 0 {
            return Err(WireError::UnknownFlags {
                context: "batch",
                flags: b[5],
            });
        }
        if rd_u16(b, 6) != 0 {
            return Err(WireError::ReservedNonZero {
                context: "batch header",
            });
        }
        let frame_count = rd_u32(b, 8);
        let total_len = rd_u32(b, 12) as usize;
        if total_len < BATCH_HEADER_LEN {
            return Err(WireError::LengthMismatch {
                declared: total_len as u64,
                actual: b.len() as u64,
            });
        }
        if b.len() < total_len {
            return Err(WireError::Truncated {
                context: "batch body",
                needed: total_len,
                available: b.len(),
            });
        }
        if b.len() > total_len {
            return Err(WireError::TrailingBytes {
                extra: b.len() - total_len,
            });
        }

        // Capacity is clamped so a corrupt frame_count cannot drive a
        // huge allocation before the bytes run out.
        let mut frames = Vec::with_capacity((frame_count as usize).min(1024));
        let mut off = BATCH_HEADER_LEN;
        for _ in 0..frame_count {
            let frame_start = off;
            need(b, off, FRAME_HEADER_LEN, "frame header")?;
            if b[off..off + 4] != FRAME_MAGIC {
                return Err(WireError::BadMagic {
                    context: "frame",
                    found: [b[off], b[off + 1], b[off + 2], b[off + 3]],
                });
            }
            if b[off + 4] != WIRE_VERSION {
                return Err(WireError::UnsupportedVersion {
                    context: "frame",
                    found: b[off + 4],
                });
            }
            let flags = b[off + 5];
            if flags & !FRAME_FLAG_CRC != 0 {
                return Err(WireError::UnknownFlags {
                    context: "frame",
                    flags,
                });
            }
            if rd_u16(b, off + 6) != 0 || rd_u32(b, off + 20) != 0 {
                return Err(WireError::ReservedNonZero {
                    context: "frame header",
                });
            }
            let tenant = rd_u32(b, off + 8);
            let rows = rd_u32(b, off + 12);
            let paths = rd_u32(b, off + 16);
            let base_seq = rd_u64(b, off + 24);
            if rows == 0 || paths == 0 {
                return Err(WireError::EmptyFrame);
            }
            if rows > MAX_ROWS_PER_FRAME || paths > MAX_PATHS_PER_ROW {
                return Err(WireError::Oversized { rows, paths });
            }
            // rows, paths ≤ 2^20 so the product ×8 fits comfortably
            // in u64; compare in u64 before narrowing.
            let payload_len = u64::from(rows) * u64::from(paths) * 8;
            let payload_start = off + FRAME_HEADER_LEN;
            let available = (b.len() - payload_start) as u64;
            if available < payload_len {
                return Err(WireError::Truncated {
                    context: "frame payload",
                    needed: payload_len as usize,
                    available: available as usize,
                });
            }
            off = payload_start + payload_len as usize;
            if flags & FRAME_FLAG_CRC != 0 {
                need(b, off, CRC_TRAILER_LEN, "crc trailer")?;
                let stored = rd_u32(b, off);
                if rd_u32(b, off + 4) != 0 {
                    return Err(WireError::ReservedNonZero {
                        context: "crc trailer",
                    });
                }
                let computed = crc32(&b[frame_start..off]);
                if stored != computed {
                    return Err(WireError::CrcMismatch { stored, computed });
                }
                off += CRC_TRAILER_LEN;
            }
            frames.push(FrameMeta {
                tenant,
                base_seq,
                rows,
                paths,
                payload_start,
            });
        }
        if off != b.len() {
            return Err(WireError::TrailingBytes {
                extra: b.len() - off,
            });
        }
        Ok(WireBatch { buf, frames })
    }

    /// Number of frames in the batch.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total snapshot rows across all frames.
    pub fn total_rows(&self) -> usize {
        self.frames.iter().map(|f| f.rows as usize).sum()
    }

    /// View of frame `i`.
    ///
    /// # Panics
    /// Panics when `i ≥ frame_count()` (index, not wire, error).
    pub fn frame(&self, i: usize) -> FrameView<'_> {
        FrameView {
            buf: &self.buf,
            meta: &self.frames[i],
        }
    }

    /// Iterates over all frames.
    pub fn frames(&self) -> impl ExactSizeIterator<Item = FrameView<'_>> {
        self.frames.iter().map(|meta| FrameView {
            buf: &self.buf,
            meta,
        })
    }

    /// The underlying buffer (e.g. for size accounting).
    pub fn buffer(&self) -> &Bytes {
        &self.buf
    }
}

/// Borrowed view of one validated frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    buf: &'a Bytes,
    meta: &'a FrameMeta,
}

impl<'a> FrameView<'a> {
    /// Wire tenant id (the fleet's dense tenant index).
    pub fn tenant(&self) -> u32 {
        self.meta.tenant
    }

    /// Sequence number of row 0; row `r` carries `base_seq + r`.
    pub fn base_seq(&self) -> u64 {
        self.meta.base_seq
    }

    /// Sequence number of row `r`.
    pub fn seq(&self, r: usize) -> u64 {
        self.meta.base_seq.wrapping_add(r as u64)
    }

    /// Number of snapshot rows.
    pub fn row_count(&self) -> usize {
        self.meta.rows as usize
    }

    /// Log-rates per row.
    pub fn path_count(&self) -> usize {
        self.meta.paths as usize
    }

    fn payload_len(&self) -> usize {
        self.row_count() * self.path_count() * 8
    }

    /// The raw payload bytes (all rows, contiguous).
    pub fn payload(&self) -> &'a [u8] {
        let start = self.meta.payload_start;
        &self.buf.as_slice()[start..start + self.payload_len()]
    }

    /// The whole payload as `&[f64]` when the buffer allocation landed
    /// 8-aligned (the common case); `None` forces the copying
    /// fallback.
    pub fn aligned(&self) -> Option<&'a [f64]> {
        cast_bytes_to_f64(self.payload())
    }

    /// Zero-copy view of row `r`.
    ///
    /// # Panics
    /// Panics when `r ≥ row_count()`.
    pub fn row(&self, r: usize) -> SnapshotView<'a> {
        assert!(r < self.row_count(), "row index out of range");
        let paths = self.path_count();
        let repr = match self.aligned() {
            Some(all) => RowRepr::Aligned(&all[r * paths..(r + 1) * paths]),
            None => {
                let bytes = self.payload();
                RowRepr::Raw(&bytes[r * paths * 8..(r + 1) * paths * 8])
            }
        };
        SnapshotView { repr }
    }

    /// Iterates over all rows as zero-copy views.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = SnapshotView<'a>> {
        let view = *self;
        (0..self.row_count()).map(move |r| view.row(r))
    }

    /// Row `r` as an O(1) reference-counted window of the batch
    /// buffer — the handle that crosses a tenant queue without copying
    /// the payload.
    ///
    /// # Panics
    /// Panics when `r ≥ row_count()`.
    pub fn row_bytes(&self, r: usize) -> Bytes {
        assert!(r < self.row_count(), "row index out of range");
        let row_len = self.path_count() * 8;
        let start = self.meta.payload_start + r * row_len;
        self.buf.slice(start..start + row_len)
    }
}

#[derive(Debug, Clone, Copy)]
enum RowRepr<'a> {
    /// Direct `f64` alias of the input buffer.
    Aligned(&'a [f64]),
    /// Little-endian bytes (misaligned allocation or big-endian host).
    Raw(&'a [u8]),
}

/// Borrowed view of one snapshot row (the log-rate vector of one
/// snapshot). On the fast path this aliases the batch buffer as
/// `&[f64]`; the raw-bytes representation decodes lazily.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    repr: RowRepr<'a>,
}

impl<'a> SnapshotView<'a> {
    /// Number of log-rates in the row.
    pub fn path_count(&self) -> usize {
        match self.repr {
            RowRepr::Aligned(s) => s.len(),
            RowRepr::Raw(b) => b.len() / 8,
        }
    }

    /// The row as a borrowed `&[f64]` when the payload is aligned.
    pub fn as_f64s(&self) -> Option<&'a [f64]> {
        match self.repr {
            RowRepr::Aligned(s) => Some(s),
            RowRepr::Raw(_) => None,
        }
    }

    /// Log-rate `i`.
    ///
    /// # Panics
    /// Panics when `i ≥ path_count()`.
    pub fn get(&self, i: usize) -> f64 {
        match self.repr {
            RowRepr::Aligned(s) => s[i],
            RowRepr::Raw(b) => f64::from_le_bytes(
                b[i * 8..(i + 1) * 8].try_into().expect("bounds checked"),
            ),
        }
    }

    /// Clears `out` and fills it with the row's values — the copying
    /// fallback path, reusing the caller's scratch allocation.
    pub fn copy_into(&self, out: &mut Vec<f64>) {
        out.clear();
        match self.repr {
            RowRepr::Aligned(s) => out.extend_from_slice(s),
            RowRepr::Raw(b) => out.extend(
                b.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))),
            ),
        }
    }

    /// The row as a fresh vector.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.copy_into(&mut out);
        out
    }

    /// Index of the first non-finite value, if any — the decode-time
    /// finiteness validation run before a row is enqueued.
    pub fn first_non_finite(&self) -> Option<usize> {
        match self.repr {
            RowRepr::Aligned(s) => s.iter().position(|v| !v.is_finite()),
            RowRepr::Raw(b) => b
                .chunks_exact(8)
                .position(|c| {
                    !f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")).is_finite()
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{BatchEncoder, WireEncodeOptions};

    fn sample_rows(rows: usize, paths: usize) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|r| {
                (0..paths)
                    .map(|p| -((r * paths + p) as f64 + 0.5).ln())
                    .collect()
            })
            .collect()
    }

    fn encode(opts: WireEncodeOptions, frames: &[(u32, u64, Vec<Vec<f64>>)]) -> Bytes {
        let mut enc = BatchEncoder::new(opts);
        for (tenant, seq, rows) in frames {
            enc.push_frame(*tenant, *seq, rows);
        }
        enc.finish()
    }

    #[test]
    fn roundtrip_two_frames_bit_identical() {
        for crc in [false, true] {
            let a = sample_rows(3, 5);
            let b = sample_rows(2, 7);
            let buf = encode(
                WireEncodeOptions { crc },
                &[(0, 100, a.clone()), (9, 7, b.clone())],
            );
            let batch = WireBatch::parse(buf).expect("valid batch");
            assert_eq!(batch.frame_count(), 2);
            assert_eq!(batch.total_rows(), 5);
            let fa = batch.frame(0);
            assert_eq!((fa.tenant(), fa.base_seq()), (0, 100));
            assert_eq!((fa.row_count(), fa.path_count()), (3, 5));
            for (r, row) in fa.rows().enumerate() {
                assert_eq!(fa.seq(r), 100 + r as u64);
                for (p, want) in a[r].iter().enumerate() {
                    assert_eq!(row.get(p).to_bits(), want.to_bits());
                }
                assert_eq!(row.first_non_finite(), None);
            }
            let fb = batch.frame(1);
            assert_eq!((fb.tenant(), fb.base_seq()), (9, 7));
            let got = fb.row(1).to_vec();
            let want_bits: Vec<u64> = b[1].iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits);
        }
    }

    #[test]
    fn row_bytes_is_refcounted_window() {
        let rows = sample_rows(4, 3);
        let buf = encode(WireEncodeOptions::default(), &[(1, 0, rows.clone())]);
        let batch = WireBatch::parse(buf).expect("valid batch");
        let frame = batch.frame(0);
        let handle = frame.row_bytes(2);
        assert_eq!(handle.len(), 3 * 8);
        // The handle decodes to the same bits after the batch view is
        // gone — it owns a reference to the shared allocation.
        let decoded: Vec<u64> = handle
            .as_slice()
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let want: Vec<u64> = rows[2].iter().map(|v| v.to_bits()).collect();
        assert_eq!(decoded, want);
    }

    #[test]
    fn non_finite_rows_are_flagged_with_index() {
        let mut rows = sample_rows(2, 4);
        rows[1][2] = f64::NAN;
        let buf = encode(WireEncodeOptions::default(), &[(0, 0, rows)]);
        let batch = WireBatch::parse(buf).expect("NaN is valid on the wire");
        assert_eq!(batch.frame(0).row(0).first_non_finite(), None);
        assert_eq!(batch.frame(0).row(1).first_non_finite(), Some(2));
    }

    #[test]
    fn typed_errors_for_malformed_inputs() {
        let good = encode(
            WireEncodeOptions { crc: true },
            &[(0, 0, sample_rows(2, 3))],
        )
        .to_vec();

        // Truncations at every prefix length are typed, never panics.
        for cut in 0..good.len() {
            let err = WireBatch::parse(Bytes::from(good[..cut].to_vec()))
                .expect_err("truncated batch must fail");
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::LengthMismatch { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }

        // Wrong batch magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::BadMagic {
                context: "batch",
                ..
            })
        ));

        // Wrong frame magic.
        let mut bad = good.clone();
        bad[BATCH_HEADER_LEN] = b'X';
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::BadMagic {
                context: "frame",
                ..
            })
        ));

        // Future version.
        let mut bad = good.clone();
        bad[4] = WIRE_VERSION + 1;
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::UnsupportedVersion { .. })
        ));

        // Unknown frame flag.
        let mut bad = good.clone();
        bad[BATCH_HEADER_LEN + 5] |= 0x80;
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::UnknownFlags { .. })
        ));

        // Oversized declared rows.
        let mut bad = good.clone();
        let rows_at = BATCH_HEADER_LEN + 12;
        bad[rows_at..rows_at + 4].copy_from_slice(&(MAX_ROWS_PER_FRAME + 1).to_le_bytes());
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::Oversized { .. })
        ));

        // Corrupted payload byte fails the CRC.
        let mut bad = good.clone();
        let payload_at = BATCH_HEADER_LEN + FRAME_HEADER_LEN;
        bad[payload_at] ^= 0x40;
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::CrcMismatch { .. })
        ));

        // Trailing garbage after the declared batch.
        let mut bad = good.clone();
        bad.push(0xAA);
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::TrailingBytes { extra: 1 })
        ));

        // Zero-row frame.
        let mut bad = good;
        bad[rows_at..rows_at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            WireBatch::parse(Bytes::from(bad)),
            Err(WireError::EmptyFrame)
        ));
    }
}
