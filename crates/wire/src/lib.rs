//! Framed binary snapshot wire format for the losstomo service edge.
//!
//! A **batch** is one contiguous byte buffer packing many snapshot
//! **frames**, each carrying a run of consecutive log-rate rows for one
//! tenant. All multi-byte fields are little-endian, and every
//! structure size is a multiple of 8 bytes so row payloads stay
//! 8-byte-aligned relative to the start of the buffer:
//!
//! ```text
//! batch  := batch_header frame*
//! frame  := frame_header payload crc_trailer?
//!
//! batch_header (16 B):  magic "LTSB" | version u8 | flags u8
//!                       | reserved u16 | frame_count u32 | total_len u32
//! frame_header (32 B):  magic "LTSF" | version u8 | flags u8
//!                       | reserved u16 | tenant u32 | row_count u32
//!                       | path_count u32 | reserved u32 | base_seq u64
//! payload:              row_count × path_count little-endian f64
//! crc_trailer (8 B):    crc32 u32 | zero pad u32     (frame flag 0x01)
//! ```
//!
//! Row `r` of a frame carries the snapshot with sequence number
//! `base_seq + r`. The payload bytes are exactly the `f64` bit
//! patterns of `Snapshot::log_rates()`, which is what makes estimates
//! computed from wire ingest bit-identical to direct enqueue.
//!
//! Decoding is **zero-copy**: [`WireBatch::parse`] validates every
//! header once, then [`SnapshotView`]s alias the input buffer — on a
//! little-endian machine with an 8-aligned payload the row is a plain
//! `&[f64]` cast (via `losstomo_linalg::simd::cast_bytes_to_f64`),
//! and [`FrameView::row_bytes`] hands out O(1) reference-counted
//! [`Bytes`] windows that can cross a queue without copying the
//! payload. The parser returns a typed [`WireError`] for every
//! malformed input — truncation, wrong magic, unknown version or
//! flags, oversized declared dimensions, CRC mismatch, trailing
//! garbage — and never panics (see the proptest suite).
//!
//! [`json`] is the slow-path fallback codec over `serde_json`, kept as
//! the baseline the binary format is benchmarked against
//! (`fleet_ingest` → `BENCH_ingest.json`).
//!
//! [`Bytes`]: bytes::Bytes

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod encode;
pub mod json;
pub mod parse;

pub use encode::{BatchEncoder, WireEncodeOptions};
pub use json::{JsonBatch, JsonFrame};
pub use parse::{FrameView, SnapshotView, WireBatch};

use std::fmt;

/// Wire protocol version understood by this crate.
pub const WIRE_VERSION: u8 = 1;

/// Magic prefix of a batch header.
pub const BATCH_MAGIC: [u8; 4] = *b"LTSB";

/// Magic prefix of a frame header.
pub const FRAME_MAGIC: [u8; 4] = *b"LTSF";

/// Batch header size in bytes.
pub const BATCH_HEADER_LEN: usize = 16;

/// Frame header size in bytes.
pub const FRAME_HEADER_LEN: usize = 32;

/// CRC trailer size in bytes (checksum + alignment pad).
pub const CRC_TRAILER_LEN: usize = 8;

/// Frame flag bit: a CRC trailer follows the payload.
pub const FRAME_FLAG_CRC: u8 = 0x01;

/// Upper bound on `row_count` in one frame; larger declarations are
/// rejected as [`WireError::Oversized`] before any allocation.
pub const MAX_ROWS_PER_FRAME: u32 = 1 << 20;

/// Upper bound on `path_count` in one frame; larger declarations are
/// rejected as [`WireError::Oversized`] before any allocation.
pub const MAX_PATHS_PER_ROW: u32 = 1 << 20;

/// Typed decode/encode failure. Every malformed input maps to one of
/// these — the parser never panics and never yields partial rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ends before the structure it declares.
    Truncated {
        /// Which structure was being read.
        context: &'static str,
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Magic prefix is not `LTSB`/`LTSF`.
    BadMagic {
        /// Which structure was being read.
        context: &'static str,
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// Version byte is newer than [`WIRE_VERSION`].
    UnsupportedVersion {
        /// Which structure was being read.
        context: &'static str,
        /// The version byte found.
        found: u8,
    },
    /// Flag bits this version does not define are set.
    UnknownFlags {
        /// Which structure was being read.
        context: &'static str,
        /// The flag byte found.
        flags: u8,
    },
    /// A reserved field is non-zero (corruption canary).
    ReservedNonZero {
        /// Which structure was being read.
        context: &'static str,
    },
    /// Declared dimensions exceed [`MAX_ROWS_PER_FRAME`] /
    /// [`MAX_PATHS_PER_ROW`].
    Oversized {
        /// Declared row count.
        rows: u32,
        /// Declared path count.
        paths: u32,
    },
    /// A frame declares zero rows or zero paths.
    EmptyFrame,
    /// Batch header `total_len` disagrees with the buffer length.
    LengthMismatch {
        /// Length the header declares.
        declared: u64,
        /// Length of the buffer handed to the parser.
        actual: u64,
    },
    /// Stored CRC32 does not match the frame contents.
    CrcMismatch {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum computed over header + payload.
        computed: u32,
    },
    /// Bytes remain after the last declared frame.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// JSON fallback codec failure.
    Json {
        /// Underlying serde/serde_json message.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated {context}: need {needed} bytes, have {available}"
            ),
            WireError::BadMagic { context, found } => {
                write!(f, "bad {context} magic {found:02x?}")
            }
            WireError::UnsupportedVersion { context, found } => write!(
                f,
                "unsupported {context} version {found} (this build speaks {WIRE_VERSION})"
            ),
            WireError::UnknownFlags { context, flags } => {
                write!(f, "unknown {context} flags {flags:#04x}")
            }
            WireError::ReservedNonZero { context } => {
                write!(f, "non-zero reserved field in {context}")
            }
            WireError::Oversized { rows, paths } => write!(
                f,
                "frame declares {rows}×{paths} rows (limits {MAX_ROWS_PER_FRAME}×{MAX_PATHS_PER_ROW})"
            ),
            WireError::EmptyFrame => write!(f, "frame declares zero rows or zero paths"),
            WireError::LengthMismatch { declared, actual } => write!(
                f,
                "batch declares {declared} bytes but buffer holds {actual}"
            ),
            WireError::CrcMismatch { stored, computed } => write!(
                f,
                "frame CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after last frame")
            }
            WireError::Json { message } => write!(f, "json codec: {message}"),
        }
    }
}

impl std::error::Error for WireError {}
