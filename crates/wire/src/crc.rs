//! CRC-32 (IEEE 802.3, the zlib/`cksum -o 3` polynomial) over a byte
//! slice, with the 256-entry lookup table built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32/IEEE checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"losstomo wire frame");
        let mut flipped = b"losstomo wire frame".to_vec();
        flipped[4] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
