//! Property-based contracts of the binary snapshot wire format.
//!
//! Three families:
//!
//! * **Roundtrip** — encode → parse hands back every frame header
//!   field and every row payload **bit-identical**, CRC on or off
//!   (this is the wire half of the fleet's "wire ingest ≡ direct
//!   enqueue" guarantee).
//! * **Malformed input** — truncations, single-byte corruptions of a
//!   CRC-protected batch, wrong magic, and oversized declared
//!   dimensions all map to a typed [`WireError`]; the parser never
//!   panics and never yields partial rows.
//! * **Fuzz** — arbitrary byte soup parses to `Ok` or a typed error,
//!   and every accessor of whatever parses stays in bounds.

use losstomo_wire::{
    BatchEncoder, WireBatch, WireEncodeOptions, WireError, BATCH_HEADER_LEN, FRAME_HEADER_LEN,
    MAX_PATHS_PER_ROW, MAX_ROWS_PER_FRAME, WIRE_VERSION,
};
use proptest::prelude::*;

/// One logical frame: tenant, base sequence, and rows of arbitrary
/// `f64` **bit patterns** (NaNs and infinities included — the wire
/// format is bit-transparent; finiteness policy belongs to ingest).
type Frame = (u32, u64, Vec<Vec<u64>>);

fn frames_strategy() -> impl Strategy<Value = Vec<Frame>> {
    proptest::collection::vec(
        (any::<u32>(), any::<u64>(), 1usize..5, 1usize..7).prop_flat_map(
            |(tenant, base_seq, rows, paths)| {
                proptest::collection::vec(
                    proptest::collection::vec(any::<u64>(), paths..=paths),
                    rows..=rows,
                )
                .prop_map(move |rows| (tenant, base_seq, rows))
            },
        ),
        1..4,
    )
}

/// Encodes `frames` with the real encoder.
fn encode(frames: &[Frame], crc: bool) -> bytes::Bytes {
    let mut enc = BatchEncoder::new(WireEncodeOptions { crc });
    for (tenant, base_seq, rows) in frames {
        let rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|&b| f64::from_bits(b)).collect())
            .collect();
        enc.push_frame(*tenant, *base_seq, &rows);
    }
    enc.finish()
}

proptest! {
    /// Encode → parse is bit-identical: headers, sequence numbers, and
    /// raw row bytes all survive, with and without CRC trailers.
    #[test]
    fn roundtrip_is_bit_identical(frames in frames_strategy(), crc in any::<bool>()) {
        let buf = encode(&frames, crc);
        let batch = WireBatch::parse(buf).expect("encoder output parses");
        prop_assert_eq!(batch.frame_count(), frames.len());
        for (fi, (tenant, base_seq, rows)) in frames.iter().enumerate() {
            let frame = batch.frame(fi);
            prop_assert_eq!(frame.tenant(), *tenant);
            prop_assert_eq!(frame.base_seq(), *base_seq);
            prop_assert_eq!(frame.row_count(), rows.len());
            prop_assert_eq!(frame.path_count(), rows[0].len());
            for (r, row) in rows.iter().enumerate() {
                prop_assert_eq!(frame.seq(r), base_seq.wrapping_add(r as u64));
                // Byte-level identity of the zero-copy row window.
                let expect: Vec<u8> =
                    row.iter().flat_map(|&b| b.to_le_bytes()).collect();
                let window = frame.row_bytes(r);
                prop_assert_eq!(window.as_slice(), &expect[..]);
                // Value-level identity of the decoded view.
                let view = frame.row(r);
                for (i, &bits) in row.iter().enumerate() {
                    prop_assert_eq!(view.get(i).to_bits(), bits);
                }
            }
        }
    }

    /// Every strict prefix of a valid batch is rejected with a typed
    /// error — the declared lengths make truncation unambiguous.
    #[test]
    fn truncation_always_detected(frames in frames_strategy(), crc in any::<bool>(),
                                  cut in 0.0f64..1.0) {
        let buf = encode(&frames, crc);
        let keep = ((buf.len() as f64 * cut) as usize).min(buf.len() - 1);
        prop_assert!(WireBatch::parse(buf.slice(0..keep)).is_err());
    }

    /// With CRC trailers on, **any** single corrupted byte is caught:
    /// header fields are validated, payload and trailer bytes are
    /// checksummed. (CRC-32 detects all single-byte errors.)
    #[test]
    fn crc_catches_every_single_byte_corruption(
        frames in frames_strategy(),
        pos in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let buf = encode(&frames, true);
        let mut bytes = buf.to_vec();
        let i = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        bytes[i] ^= xor;
        prop_assert!(WireBatch::parse(bytes::Bytes::from(bytes)).is_err());
    }

    /// Without CRC the parser still never panics on payload
    /// corruption — flipped header bytes yield typed errors, flipped
    /// payload bytes decode to (different) rows.
    #[test]
    fn corruption_without_crc_never_panics(
        frames in frames_strategy(),
        pos in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let buf = encode(&frames, false);
        let mut bytes = buf.to_vec();
        let i = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        bytes[i] ^= xor;
        if let Ok(batch) = WireBatch::parse(bytes::Bytes::from(bytes)) {
            for frame in batch.frames() {
                for row in frame.rows() {
                    let _ = row.first_non_finite();
                }
            }
        }
    }

    /// Arbitrary byte soup: `parse` returns `Ok` or a typed error,
    /// never panics, and anything that parses is fully walkable.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(batch) = WireBatch::parse(bytes::Bytes::from(bytes)) {
            let mut rows = 0usize;
            for frame in batch.frames() {
                for r in 0..frame.row_count() {
                    let _ = frame.row_bytes(r);
                    let _ = frame.row(r).to_vec();
                    rows += 1;
                }
            }
            prop_assert_eq!(rows, batch.total_rows());
        }
    }
}

/// Hand-built header declaring `2^20 + 1` rows: rejected as
/// [`WireError::Oversized`] before any allocation happens.
#[test]
fn oversized_declared_dimensions_rejected() {
    for (rows, paths) in [
        (MAX_ROWS_PER_FRAME + 1, 1u32),
        (1, MAX_PATHS_PER_ROW + 1),
        (u32::MAX, u32::MAX),
    ] {
        let mut b = Vec::new();
        b.extend_from_slice(b"LTSB");
        b.push(WIRE_VERSION);
        b.extend_from_slice(&[0, 0, 0]); // flags + reserved
        b.extend_from_slice(&1u32.to_le_bytes()); // frame_count
        let total = (BATCH_HEADER_LEN + FRAME_HEADER_LEN) as u32;
        b.extend_from_slice(&total.to_le_bytes());
        b.extend_from_slice(b"LTSF");
        b.push(WIRE_VERSION);
        b.extend_from_slice(&[0, 0, 0]); // flags + reserved
        b.extend_from_slice(&7u32.to_le_bytes()); // tenant
        b.extend_from_slice(&rows.to_le_bytes());
        b.extend_from_slice(&paths.to_le_bytes());
        b.extend_from_slice(&0u32.to_le_bytes()); // reserved
        b.extend_from_slice(&9u64.to_le_bytes()); // base_seq
        assert!(matches!(
            WireBatch::parse(bytes::Bytes::from(b)),
            Err(WireError::Oversized { .. })
        ));
    }
}

/// Wrong magic in either header maps to [`WireError::BadMagic`] with
/// the offending bytes echoed back.
#[test]
fn wrong_magic_rejected() {
    let buf = encode(&[(0, 0, vec![vec![0u64; 2]])], false);
    let mut batch = buf.to_vec();
    batch[0] = b'X';
    assert!(matches!(
        WireBatch::parse(bytes::Bytes::from(batch)),
        Err(WireError::BadMagic { context: "batch", .. })
    ));
    let mut frame = buf.to_vec();
    frame[BATCH_HEADER_LEN] = b'X';
    assert!(matches!(
        WireBatch::parse(bytes::Bytes::from(frame)),
        Err(WireError::BadMagic { context: "frame", .. })
    ));
}
