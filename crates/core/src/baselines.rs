//! Naive first-moment baseline.
//!
//! Without variance information the first-moment system `Y = R X` is
//! rank deficient (Figure 1), so any solver must pick one of infinitely
//! many solutions. This baseline does what a practitioner without LIA
//! would: pick the *basic* least-squares solution from a column-pivoted
//! QR (the numerically best-conditioned column subset gets nonzero
//! rates, every other link is assigned loss 0). Comparing it against LIA
//! quantifies exactly how much the second-order information buys.
//!
//! The solver itself lives in the estimator zoo
//! ([`crate::estimator::FirstMomentEstimator`]); this function is the
//! historical entry point, kept for callers that only want the rates.

use losstomo_linalg::LinalgError;
use losstomo_topology::ReducedTopology;

/// Infers per-link transmission rates from one snapshot's log
/// measurements using the basic (pivoted-QR) first-moment solution.
///
/// Returns per-link transmission rates; links outside the pivot basis
/// get rate 1.0 (loss 0), mirroring LIA's treatment of eliminated links
/// — but with the pivot order chosen by numerics instead of by learnt
/// congestion level.
pub fn first_moment_basic(
    red: &ReducedTopology,
    y: &[f64],
) -> Result<Vec<f64>, LinalgError> {
    crate::estimator::first_moment_solution(red, y).map(|(transmission, _kept)| transmission)
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_topology::fixtures;

    #[test]
    fn reproduces_path_measurements() {
        // The basic solution is consistent with Y even if it attributes
        // losses to the wrong links. The routing matrix stays in sparse
        // form throughout — no dense conversion is needed for matvecs.
        let red = fixtures::reduced(&fixtures::figure1());
        let phi = [0.9_f64, 1.0, 0.8, 1.0, 1.0];
        let x: Vec<f64> = phi.iter().map(|p| p.ln()).collect();
        let y = red.matrix.matvec(&x).unwrap();
        let est = first_moment_basic(&red, &y).unwrap();
        let x_est: Vec<f64> = est.iter().map(|p| p.ln()).collect();
        let y_est = red.matrix.matvec(&x_est).unwrap();
        for (a, b) in y.iter().zip(y_est.iter()) {
            assert!((a - b).abs() < 1e-9, "not consistent: {y:?} vs {y_est:?}");
        }
    }

    #[test]
    fn can_misattribute_losses() {
        // This is the point of the baseline: on Figure 1 the basic
        // solution cannot distinguish the ambiguous assignments, so for
        // at least one loss pattern it differs from the truth.
        let red = fixtures::reduced(&fixtures::figure1());
        let (ra, rb) = losstomo_topology::fixtures::figure1_ambiguous_rates();
        // Both rate vectors yield the same Y (asserted in fixtures); the
        // baseline returns one answer, so it must be wrong for at least
        // one of them. Sparse matvec: no per-call dense conversion.
        let to_y = |rates: &[f64; 5]| {
            let x: Vec<f64> = rates.iter().map(|p| p.ln()).collect();
            red.matrix.matvec(&x).unwrap()
        };
        let est = first_moment_basic(&red, &to_y(&ra)).unwrap();
        let matches = |rates: &[f64; 5]| {
            est.iter()
                .zip(rates.iter())
                .all(|(e, t)| (e - t).abs() < 1e-6)
        };
        assert!(
            !(matches(&ra) && matches(&rb)),
            "cannot match two different truths at once"
        );
    }

    #[test]
    fn rejects_wrong_length() {
        let red = fixtures::reduced(&fixtures::figure1());
        assert!(first_moment_basic(&red, &[0.0]).is_err());
    }
}
