//! Pair budgeting: information-weighted row selection for the
//! augmented system, breaking Phase 1's `O(paths²)` ceiling.
//!
//! The augmented system materialises every path pair with a nonempty
//! link intersection, so its row count grows quadratically in paths
//! (497 tree paths → 89,944 rows; 3,540 PlanetLab paths → 428,640
//! rows) while its column count — the links whose variances Phase 1
//! actually estimates — stays near-linear. Most of those rows are
//! redundant: the paper's Theorem-1 identifiability argument only
//! needs the pair set to reach full column rank, and thinned-flow /
//! efficient-monitoring results (Rahman et al.; Chua, Kolaczyk &
//! Crovella) show a well-chosen measurement subset preserves the
//! inference. This module picks that subset.
//!
//! [`select_pairs`] ranks rows by a coverage-weighted score
//! (`Σ_{k ∈ row} 1 / count(k)` — a row covering rare links scores
//! high), streams them through the Givens row-basis certificate
//! ([`losstomo_linalg::row_basis`]) so the selection provably keeps
//! the full system's rank, tops up any link the basis left uncovered,
//! and then fills to the requested budget with a diminishing-returns
//! greedy on the coverage score — spreading the remaining rows across
//! the link set instead of stacking near-duplicates — optionally
//! weighted by statistical leverage against the basis factor
//! ([`select_pairs_leverage`]). The guarantees — every covered link
//! stays covered,
//! rank is preserved — make the budgeted Phase 1 *exact* on
//! noise-free covariances; the exactness oracle test below pins that.
//!
//! The budget itself is a [`PairBudget`]: `Full` (default), an
//! absolute row count, or a fraction of the full pair set, resolvable
//! from the `LOSSTOMO_PAIR_BUDGET` environment knob and inheritable
//! fleet → tenant via [`PairBudget::or`].

use crate::augmented::AugmentedSystem;
use losstomo_linalg::{row_basis, Cholesky, LinalgError, Matrix, SparseQr};

/// Cap on Gram-certificate repair rounds (each adds rows, so the loop
/// terminates regardless; the cap bounds the worst case).
const MAX_REPAIR_ROUNDS: usize = 64;

/// Rows-per-link ratio above which the streaming row-basis pass is
/// skipped in favour of the exact Gram certificate (see
/// `select_pairs_impl`).
const TALL_SKIP_RATIO: usize = 16;

/// Rows added per repair round.
const REPAIR_ROWS_PER_ROUND: usize = 8;

/// Environment knob read by [`PairBudget::from_env`]: `full`, an
/// absolute row count (`20000`), a fraction (`0.25`), or a percentage
/// (`25%`).
pub const PAIR_BUDGET_ENV: &str = "LOSSTOMO_PAIR_BUDGET";

/// Row budget for the augmented pair system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PairBudget {
    /// Resolve from the `LOSSTOMO_PAIR_BUDGET` environment variable at
    /// use time (unset or unparsable → [`PairBudget::Full`]). The
    /// default, so the knob reaches every pipeline without config
    /// plumbing — and so an explicit config still overrides it.
    #[default]
    Env,
    /// Keep every augmented pair (the pre-budgeting behaviour).
    Full,
    /// Keep at most this many rows.
    Rows(usize),
    /// Keep at most this fraction of the full pair set (`0 < f < 1`).
    Fraction(f64),
}

impl PairBudget {
    /// Resolves the `LOSSTOMO_PAIR_BUDGET` environment knob; unset or
    /// unparsable values mean [`PairBudget::Full`].
    pub fn from_env() -> PairBudget {
        std::env::var(PAIR_BUDGET_ENV)
            .ok()
            .and_then(|s| parse_pair_budget(&s))
            .unwrap_or(PairBudget::Full)
    }

    /// Inheritance: an [`PairBudget::Env`] (i.e. "unspecified") budget
    /// defers to `fallback`; anything explicit wins. Fleet configs use
    /// this so a fleet-wide budget applies to tenants that didn't set
    /// their own.
    pub fn or(self, fallback: PairBudget) -> PairBudget {
        match self {
            PairBudget::Env => fallback,
            explicit => explicit,
        }
    }

    /// The row limit this budget imposes on a `full_rows`-row system,
    /// or `None` when no budgeting applies (full budget, or a limit
    /// that doesn't bite). [`PairBudget::Env`] resolves the
    /// environment knob here.
    pub fn limit(self, full_rows: usize) -> Option<usize> {
        match self {
            PairBudget::Env => PairBudget::from_env().limit(full_rows),
            PairBudget::Full => None,
            PairBudget::Rows(n) => (n > 0 && n < full_rows).then_some(n),
            PairBudget::Fraction(f) => {
                if !(f > 0.0 && f < 1.0) {
                    return None;
                }
                let n = ((f * full_rows as f64).ceil() as usize).max(1);
                (n < full_rows).then_some(n)
            }
        }
    }
}

/// Parses a budget spec: `full` (case-insensitive), a percentage
/// (`25%`), a fraction (`0.25`), or an absolute row count (`20000`).
/// Returns `None` for anything unparsable or non-positive; fractions
/// and percentages at or above 1 collapse to [`PairBudget::Full`].
pub fn parse_pair_budget(s: &str) -> Option<PairBudget> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("full") {
        return Some(PairBudget::Full);
    }
    if let Some(pct) = s.strip_suffix('%') {
        let p: f64 = pct.trim().parse().ok()?;
        return fraction_budget(p / 100.0);
    }
    if s.contains('.') {
        let f: f64 = s.parse().ok()?;
        return fraction_budget(f);
    }
    let n: usize = s.parse().ok()?;
    (n > 0).then_some(PairBudget::Rows(n))
}

fn fraction_budget(f: f64) -> Option<PairBudget> {
    if !f.is_finite() || f <= 0.0 {
        None
    } else if f >= 1.0 {
        Some(PairBudget::Full)
    } else {
        Some(PairBudget::Fraction(f))
    }
}

/// The outcome of a pair selection: which rows of the full augmented
/// system survive the budget, and why.
#[derive(Debug, Clone)]
pub struct PairSelection {
    /// Selected row indices into the *full* augmented system,
    /// ascending — feed to [`AugmentedSystem::subset`].
    pub rows: Vec<usize>,
    /// Rows selected by the Givens row-basis certificate (these alone
    /// reproduce the full system's rank).
    pub basis_rows: usize,
    /// Rows added afterwards to restore coverage of links the basis
    /// missed (nonzero only on rank-deficient systems).
    pub coverage_rows: usize,
    /// Rows added by the Gram positive-definiteness repair (nonzero
    /// only when the Givens basis certificate proved numerically
    /// optimistic on a near-singular system).
    pub repair_rows: usize,
    /// The requested row limit (the effective budget is
    /// `rows.len()`, which may exceed this when the rank/coverage
    /// floor is larger).
    pub requested: usize,
    /// Row count of the full system the selection was drawn from.
    pub full_rows: usize,
}

impl PairSelection {
    /// Selected rows as a fraction of the full pair set.
    pub fn fraction(&self) -> f64 {
        if self.full_rows == 0 {
            1.0
        } else {
            self.rows.len() as f64 / self.full_rows as f64
        }
    }
}

/// Selects an information-weighted subset of at most
/// `max(limit, rank + coverage floor)` rows of `aug` that keeps the
/// full system's column rank and covers every link the full system
/// covers. Deterministic for a given system.
pub fn select_pairs(aug: &AugmentedSystem, limit: usize) -> PairSelection {
    select_pairs_impl(aug, limit, false)
}

/// [`select_pairs`] with the leverage-score refinement: the fill
/// beyond the rank/coverage floor is ranked by each row's statistical
/// leverage against the basis factor (`aᵀ(BᵀB)⁻¹a` via
/// [`SparseQr::leverage_of_row`]) instead of the coverage score —
/// slower to select, but prefers rows the basis represents worst.
pub fn select_pairs_leverage(aug: &AugmentedSystem, limit: usize) -> PairSelection {
    select_pairs_impl(aug, limit, true)
}

fn select_pairs_impl(aug: &AugmentedSystem, limit: usize, leverage: bool) -> PairSelection {
    let nr = aug.num_rows();
    let nc = aug.num_links();

    // Coverage-weighted score: a row earns 1/count(k) for every link k
    // it covers, so rows covering rarely-seen links rank first.
    let mut link_count = vec![0usize; nc];
    for row in aug.matrix().iter() {
        for &k in row {
            link_count[k] += 1;
        }
    }
    let covered_links = link_count.iter().filter(|&&c| c > 0).count();
    let score: Vec<f64> = (0..nr)
        .map(|r| {
            aug.row(r)
                .iter()
                .map(|&k| 1.0 / link_count[k] as f64)
                .sum()
        })
        .collect();
    let mut order: Vec<usize> = (0..nr).collect();
    order.sort_by(|&a, &b| score[b].total_cmp(&score[a]).then(a.cmp(&b)));

    // Rank floor: stream rows through the Givens certificate; the
    // install events are a row basis, so keeping them keeps the full
    // system's rank. The pass costs `O(rows × fill)`, which is a
    // bargain on wide systems (it spares the repair loop below from
    // bootstrapping rank one direction at a time) but dominates
    // selection on extremely tall ones — there the Gram is small, the
    // exact certificate is cheap, and coverage + fill land within a
    // repair round or two of positive definite anyway, so skip the
    // streaming pass and let the certificate do the proving.
    let basis = if nr > TALL_SKIP_RATIO * nc.max(1) {
        Vec::new()
    } else {
        row_basis(&aug.to_sparse(), &order)
    };
    let mut selected = vec![false; nr];
    let mut covered = vec![false; nc];
    let mut n_selected = 0usize;
    let mut n_covered = 0usize;
    for &r in &basis {
        selected[r] = true;
        n_selected += 1;
        for &k in aug.row(r) {
            if !covered[k] {
                covered[k] = true;
                n_covered += 1;
            }
        }
    }
    let basis_rows = n_selected;

    // Coverage floor: at full rank no link can be uncovered (an
    // uncovered link would be a zero column of the basis), so this
    // only fires on rank-deficient systems — walk the score order and
    // take any row that covers something new.
    for &r in &order {
        if n_covered == covered_links {
            break;
        }
        if selected[r] || !aug.row(r).iter().any(|&k| !covered[k]) {
            continue;
        }
        selected[r] = true;
        n_selected += 1;
        for &k in aug.row(r) {
            if !covered[k] {
                covered[k] = true;
                n_covered += 1;
            }
        }
    }
    let coverage_rows = n_selected - basis_rows;

    // Fill to the budget (the floor may already exceed it) with a
    // *diminishing-returns* greedy: a row's gain is its coverage score
    // discounted by how often the selection already covers each of its
    // links. Taking the static top scorers instead would pick
    // near-duplicate rows (they all contain the same rare links) and
    // leave the budgeted Gram terribly conditioned; the discount
    // spreads the budget across the link set. Threshold greedy —
    // geometric sweeps accepting any row whose current gain clears the
    // bar — keeps the submodular (1−1/e−ε) guarantee in a bounded
    // number of linear passes, where the exact heap order degrades
    // badly on tall systems whose rows share hub links (every
    // selection stales thousands of heap entries).
    let target = limit.max(n_selected).min(nr);
    if n_selected < target {
        // Leverage refinement: weight each row's gain by its
        // statistical leverage against the floor rows already selected
        // (the basis when the streaming pass ran, the coverage floor
        // otherwise), preferring rows that floor represents worst.
        // Rows touching a column the floor never installed
        // (rank-deficient systems only) carry weight 1.
        let lev_mult: Option<Vec<f64>> = leverage.then(|| {
            let floor: Vec<usize> = (0..nr).filter(|&r| selected[r]).collect();
            let qr = SparseQr::new(aug.subset(&floor).to_sparse()).ok();
            (0..nr)
                .map(|r| {
                    qr.as_ref()
                        .and_then(|qr| qr.leverage_of_row(aug.row(r)))
                        .unwrap_or(1.0)
                })
                .collect()
        });
        let mult = |r: usize| lev_mult.as_ref().map_or(1.0, |l| l[r]);
        let mut cnt = vec![0usize; nc];
        for (r, sel) in selected.iter().enumerate() {
            if *sel {
                for &k in aug.row(r) {
                    cnt[k] += 1;
                }
            }
        }
        let gain = |r: usize, cnt: &[usize]| -> f64 {
            mult(r)
                * aug
                    .row(r)
                    .iter()
                    .map(|&k| 1.0 / (link_count[k] * (1 + cnt[k])) as f64)
                    .sum::<f64>()
        };
        let mut tau = (0..nr)
            .filter(|&r| !selected[r])
            .map(|r| gain(r, &cnt))
            .fold(0.0_f64, f64::max);
        let tau_floor = tau * 1e-6;
        while n_selected < target && tau > tau_floor {
            #[allow(clippy::needless_range_loop)] // `r` indexes two slices
            for r in 0..nr {
                if n_selected == target {
                    break;
                }
                if !selected[r] && gain(r, &cnt) >= tau {
                    selected[r] = true;
                    n_selected += 1;
                    for &k in aug.row(r) {
                        cnt[k] += 1;
                    }
                }
            }
            tau *= 0.5;
        }
        // Gains can underflow the floor collectively (duplicate-heavy
        // systems): top up in score order so the budget is honoured.
        for &r in &order {
            if n_selected == target {
                break;
            }
            if !selected[r] {
                selected[r] = true;
                n_selected += 1;
            }
        }
    }

    // Positive-definiteness certificate and repair. The streaming
    // basis certificate is numerically soft near singularity (a
    // dependent row's cancellation residue can survive the rank
    // tolerance and masquerade as a basis row), so certify the
    // selection the way Phase 1 will consume it: factor the selected
    // rows' Gram over the covered columns with the same Cholesky, and
    // on a failing pivot add the best unselected rows covering the
    // corresponding link. Each round adds rows, so this terminates; in
    // practice one or two rounds fix the rare marginal topology.
    let repair_floor = n_selected;
    let mut round = 0usize;
    while n_selected < nr && round < MAX_REPAIR_ROUNDS {
        round += 1;
        let mask: Vec<usize> = {
            let mut covered_sel = vec![false; nc];
            for (r, sel) in selected.iter().enumerate() {
                if *sel {
                    for &k in aug.row(r) {
                        covered_sel[k] = true;
                    }
                }
            }
            (0..nc).filter(|&k| covered_sel[k]).collect()
        };
        let mut dense_of = vec![usize::MAX; nc];
        for (m, &k) in mask.iter().enumerate() {
            dense_of[k] = m;
        }
        let mut gram = Matrix::zeros(mask.len(), mask.len());
        for (r, sel) in selected.iter().enumerate() {
            if *sel {
                for &a in aug.row(r) {
                    for &b in aug.row(r) {
                        gram[(dense_of[a], dense_of[b])] += 1.0;
                    }
                }
            }
        }
        match Cholesky::new(&gram) {
            Ok(_) => break,
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(_) => break,
        }
        // Extract the near-null direction behind the failing pivot and
        // add the unselected rows with the largest component along it
        // — the rows that provably strengthen exactly the deficient
        // direction (a row's contribution to the pivot is (aᵀv)²).
        let Some(v) = near_null_direction(&gram) else {
            break;
        };
        let mut candidates: Vec<(usize, f64)> = (0..nr)
            .filter(|&r| !selected[r])
            .map(|r| {
                let t: f64 = aug
                    .row(r)
                    .iter()
                    .filter(|&&k| dense_of[k] != usize::MAX)
                    .map(|&k| v[dense_of[k]])
                    .sum();
                (r, t.abs())
            })
            .filter(|&(_, t)| t > 1e-9)
            .collect();
        if candidates.is_empty() {
            // No remaining row reaches the deficient direction: the
            // full system is (numerically) deficient there too, and
            // the runtime mask/fold-back logic handles it the same
            // way it does for the full system.
            break;
        }
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for (r, _) in candidates.into_iter().take(REPAIR_ROWS_PER_ROUND) {
            selected[r] = true;
            n_selected += 1;
        }
    }
    let repair_rows = n_selected - repair_floor;

    let rows: Vec<usize> = (0..nr).filter(|&r| selected[r]).collect();
    PairSelection {
        rows,
        basis_rows,
        coverage_rows,
        repair_rows,
        requested: limit,
        full_rows: nr,
    }
}

/// The direction a failing Gram pivot is flat along: runs an unpivoted
/// `LDLᵀ` until a pivot falls below the (slightly stricter than the
/// Cholesky's) relative tolerance, then back-solves `Lᵀv = e_j` on the
/// leading minor — `Gv ≈ 0`, so `v` spans the numerical null space the
/// repair loop must reinforce. Returns `None` when every pivot is
/// sound.
fn near_null_direction(gram: &Matrix) -> Option<Vec<f64>> {
    let n = gram.rows();
    let max_diag = (0..n).fold(0.0_f64, |m, i| m.max(gram[(i, i)]));
    let tol = 1e-12 * max_diag.max(1e-300);
    let mut l = Matrix::zeros(n, n);
    let mut d = vec![0.0_f64; n];
    for j in 0..n {
        let mut dj = gram[(j, j)];
        for k in 0..j {
            dj -= l[(j, k)] * l[(j, k)] * d[k];
        }
        if dj <= tol {
            let mut v = vec![0.0_f64; n];
            v[j] = 1.0;
            for i in (0..j).rev() {
                let mut s = 0.0;
                for k in (i + 1)..=j {
                    s += l[(k, i)] * v[k];
                }
                v[i] = -s;
            }
            return Some(v);
        }
        d[j] = dj;
        for i in (j + 1)..n {
            let mut x = gram[(i, j)];
            for k in 0..j {
                x -= l[(i, k)] * l[(j, k)] * d[k];
            }
            l[(i, j)] = x / dj;
        }
    }
    None
}

/// Applies a budget to a freshly built augmented system: returns the
/// (possibly) budgeted system plus the selection that produced it
/// (`None` when the budget doesn't bite and the system is unchanged).
/// This is the one entry point the batch experiment, the streaming
/// estimator and the fleet all share.
pub fn apply_budget(
    aug: AugmentedSystem,
    budget: PairBudget,
) -> (AugmentedSystem, Option<PairSelection>) {
    match budget.limit(aug.num_rows()) {
        None => (aug, None),
        Some(limit) => {
            let sel = select_pairs(&aug, limit);
            if sel.rows.len() >= aug.num_rows() {
                return (aug, None);
            }
            let sub = aug.subset(&sel.rows);
            (sub, Some(sel))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::{estimate_variances_from_sigmas, VarianceConfig};
    use losstomo_topology::fixtures;
    use losstomo_topology::ReducedTopology;

    fn fig(red: &ReducedTopology) -> AugmentedSystem {
        AugmentedSystem::build(red)
    }

    #[test]
    fn parse_specs() {
        assert_eq!(parse_pair_budget("full"), Some(PairBudget::Full));
        assert_eq!(parse_pair_budget(" FULL "), Some(PairBudget::Full));
        assert_eq!(parse_pair_budget("20000"), Some(PairBudget::Rows(20000)));
        assert_eq!(
            parse_pair_budget("0.25"),
            Some(PairBudget::Fraction(0.25))
        );
        assert_eq!(
            parse_pair_budget("25%"),
            Some(PairBudget::Fraction(0.25))
        );
        assert_eq!(parse_pair_budget("1.5"), Some(PairBudget::Full));
        assert_eq!(parse_pair_budget("150%"), Some(PairBudget::Full));
        assert_eq!(parse_pair_budget("0"), None);
        assert_eq!(parse_pair_budget("0.0"), None);
        assert_eq!(parse_pair_budget("-3"), None);
        assert_eq!(parse_pair_budget("nonsense"), None);
        assert_eq!(parse_pair_budget(""), None);
    }

    #[test]
    fn budget_inheritance_and_limits() {
        assert_eq!(
            PairBudget::Env.or(PairBudget::Rows(5)),
            PairBudget::Rows(5)
        );
        assert_eq!(
            PairBudget::Full.or(PairBudget::Rows(5)),
            PairBudget::Full
        );
        assert_eq!(PairBudget::Full.limit(100), None);
        assert_eq!(PairBudget::Rows(10).limit(100), Some(10));
        assert_eq!(PairBudget::Rows(100).limit(100), None);
        assert_eq!(PairBudget::Rows(0).limit(100), None);
        assert_eq!(PairBudget::Fraction(0.25).limit(100), Some(25));
        // ceil(0.5 * 3) = 2.
        assert_eq!(PairBudget::Fraction(0.5).limit(3), Some(2));
        assert_eq!(PairBudget::Fraction(0.999).limit(2), None);
    }

    #[test]
    fn selection_keeps_rank_and_coverage() {
        for topo in [fixtures::figure1(), fixtures::figure2()] {
            let red = fixtures::reduced(&topo);
            let aug = fig(&red);
            let full_rank = losstomo_linalg::rank(&aug.to_dense());
            // Ask for an absurdly small budget: the rank floor wins.
            let sel = select_pairs(&aug, 1);
            assert_eq!(sel.basis_rows, full_rank);
            assert!(sel.rows.len() >= full_rank);
            let sub = aug.subset(&sel.rows);
            assert_eq!(losstomo_linalg::rank(&sub.to_dense()), full_rank);
            // Every link the full system covers stays covered.
            let mut covered = vec![false; aug.num_links()];
            for row in sub.matrix().iter() {
                for &k in row {
                    covered[k] = true;
                }
            }
            for (k, &got) in covered.iter().enumerate() {
                let full_covers = (0..aug.num_rows()).any(|r| aug.row(r).contains(&k));
                assert_eq!(got, full_covers, "link {k} coverage");
            }
        }
    }

    #[test]
    fn selection_is_deterministic_and_respects_budget() {
        let red = fixtures::reduced(&fixtures::figure2());
        let aug = fig(&red);
        let a = select_pairs(&aug, aug.num_rows() - 1);
        let b = select_pairs(&aug, aug.num_rows() - 1);
        assert_eq!(a.rows, b.rows);
        assert!(a.rows.len() < aug.num_rows() || a.rows.len() == a.basis_rows + a.coverage_rows);
        assert!(a.rows.windows(2).all(|w| w[0] < w[1]), "ascending");
    }

    #[test]
    fn leverage_refinement_keeps_guarantees() {
        let red = fixtures::reduced(&fixtures::figure2());
        let aug = fig(&red);
        let full_rank = losstomo_linalg::rank(&aug.to_dense());
        let sel = select_pairs_leverage(&aug, full_rank + 1);
        assert_eq!(sel.basis_rows, full_rank);
        assert_eq!(sel.rows.len(), (full_rank + 1).max(sel.basis_rows + sel.coverage_rows));
        let sub = aug.subset(&sel.rows);
        assert_eq!(losstomo_linalg::rank(&sub.to_dense()), full_rank);
    }

    /// The exactness oracle of ISSUE 6: on noise-free covariances
    /// `Σ* = A·v`, the budgeted system — full column rank by the basis
    /// certificate, consistent by construction — recovers `v`
    /// *exactly* (to solver tolerance), proving the selection lost no
    /// information Phase 1 needs.
    #[test]
    fn exactness_oracle_budgeted_matches_full() {
        for (topo, budget_frac) in [
            (fixtures::figure1(), 0.85),
            (fixtures::figure2(), 0.5),
        ] {
            let red = fixtures::reduced(&topo);
            let aug = fig(&red);
            if !aug.is_identifiable() {
                // The oracle needs exact recovery, hence full rank.
                continue;
            }
            let nc = aug.num_links();
            let v: Vec<f64> = (0..nc).map(|k| 0.05 + 0.01 * k as f64).collect();
            let sigmas = aug.matrix().matvec(&v).unwrap();
            let cfg = VarianceConfig::default();
            let full = estimate_variances_from_sigmas(&red, &aug, &sigmas, &cfg).unwrap();

            let limit = ((aug.num_rows() as f64) * budget_frac).ceil() as usize;
            let sel = select_pairs(&aug, limit);
            let sub = aug.subset(&sel.rows);
            let sub_sigmas: Vec<f64> = sel.rows.iter().map(|&r| sigmas[r]).collect();
            let budgeted =
                estimate_variances_from_sigmas(&red, &sub, &sub_sigmas, &cfg).unwrap();

            for (k, &vk) in v.iter().enumerate().take(nc) {
                assert!(
                    (budgeted.v[k] - vk).abs() < 1e-10,
                    "budgeted v[{k}] = {} vs true {vk}",
                    budgeted.v[k]
                );
                assert!(
                    (budgeted.v[k] - full.v[k]).abs() < 1e-10,
                    "budgeted vs full mismatch at {k}"
                );
            }
        }
    }

    #[test]
    fn apply_budget_full_is_identity() {
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = fig(&red);
        let nr = aug.num_rows();
        let (same, sel) = apply_budget(aug, PairBudget::Full);
        assert!(sel.is_none());
        assert_eq!(same.num_rows(), nr);
    }

    #[test]
    fn apply_budget_subsets_when_it_bites() {
        let red = fixtures::reduced(&fixtures::figure2());
        let aug = fig(&red);
        let nr = aug.num_rows();
        let rank = losstomo_linalg::rank(&aug.to_dense());
        let (sub, sel) = apply_budget(aug, PairBudget::Rows(rank));
        if let Some(sel) = sel {
            assert_eq!(sub.num_rows(), sel.rows.len());
            assert!(sub.num_rows() < nr);
            assert_eq!(losstomo_linalg::rank(&sub.to_dense()), rank);
        }
    }
}
