//! Phase 1 of LIA: estimating the link variances `v` from the sample
//! covariances of end-to-end measurements (Section 5.1).
//!
//! With the augmented system `Σ* = A v` (Lemma 1) and Theorem 1
//! guaranteeing full column rank, the variances follow from a single
//! least-squares solve. This is a generalized-method-of-moments
//! estimator: consistent, distribution-free, and far cheaper than an
//! iterative MLE/EM (the paper contrasts it with the EM of Cao et al.,
//! which "cannot scale to networks with hundreds of nodes").
//!
//! Sampling noise makes some `Σ̂_{ii'}` negative; following the paper
//! ("we ignore equations with Σ̂_{ii'} < 0" — they are redundant), those
//! rows are dropped before solving.

use crate::augmented::AugmentedSystem;
use crate::covariance::CenteredMeasurements;
use losstomo_linalg::{lstsq, LinalgError, LstsqBackend, Matrix, SparseQr, SpdScratch};
use losstomo_topology::ReducedTopology;

/// Which factorisation family solves the Phase-1 least squares,
/// mirroring [`crate::lia::Phase2Dispatch`] for Phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase1Dispatch {
    /// Dense family (per [`VarianceConfig::backend`]) up to
    /// [`crate::lia::dense_phase2_max_cols`] columns, the row-streaming
    /// sparse QR above — wide meshes pay `O(links³)` for the dense
    /// Gram factorisation no matter how few rows feed it, while the
    /// sparse QR's cost tracks the (budgetable) row count.
    #[default]
    Auto,
    /// Always the dense family ([`VarianceConfig::backend`]).
    Dense,
    /// Always the sparse QR on the kept CSR rows.
    Sparse,
}

/// Configuration for the variance estimator.
#[derive(Debug, Clone, Copy)]
pub struct VarianceConfig {
    /// Least-squares backend of the *dense* family.
    /// [`LstsqBackend::NormalEquations`] accumulates `AᵀA` from sparse
    /// rows and is the default — `A` has `O(n_p²)` rows but only `n_c`
    /// columns.
    pub backend: LstsqBackend,
    /// Drop rows whose sample covariance is negative (the paper's rule).
    /// Disable only for the `ablation_negative_cov` study.
    pub drop_negative_covariances: bool,
    /// Dense-vs-sparse dispatch (see [`Phase1Dispatch`]).
    pub dispatch: Phase1Dispatch,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig {
            backend: LstsqBackend::NormalEquations,
            drop_negative_covariances: true,
            dispatch: Phase1Dispatch::Auto,
        }
    }
}

impl Phase1Dispatch {
    /// Whether Phase 1 takes the dense path for `nc` columns.
    fn use_dense(self, nc: usize) -> bool {
        match self {
            Phase1Dispatch::Auto => nc <= crate::lia::dense_phase2_max_cols(),
            Phase1Dispatch::Dense => true,
            Phase1Dispatch::Sparse => false,
        }
    }
}

/// The result of Phase 1.
#[derive(Debug, Clone)]
pub struct VarianceEstimate {
    /// Estimated variance `v_k` of `X_k = log φ̂_{e_k}` per virtual link.
    pub v: Vec<f64>,
    /// Rows dropped because their sample covariance was negative.
    pub dropped_rows: usize,
    /// Rows used in the solve.
    pub used_rows: usize,
}

/// Estimates the link variances from `m ≥ 2` snapshots.
///
/// `aug` must be built for (or incrementally updated to) `red`;
/// `centered` must hold the same paths as `red`.
///
/// On small topologies, dropping the negative-covariance rows can leave
/// an under-determined system (they are only "redundant" at scale, as
/// the paper notes for its PlanetLab-sized systems); in that case the
/// estimator falls back to keeping all rows.
pub fn estimate_variances(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    centered: &CenteredMeasurements,
    cfg: &VarianceConfig,
) -> Result<VarianceEstimate, LinalgError> {
    assert_eq!(
        centered.paths(),
        red.num_paths(),
        "measurements cover {} paths, topology has {}",
        centered.paths(),
        red.num_paths()
    );
    // One-pass covariance: every Σ̂_{ii'} the augmented system needs,
    // computed from the flat centred deviations in a single (parallel)
    // sweep instead of one O(m) strided walk per row — and computed
    // once, shared by the retry below.
    let sigmas = centered.pair_covariances(&aug.pair_indices());
    estimate_variances_from_sigmas(red, aug, &sigmas, cfg)
}

/// Phase 1 from precomputed pair covariances (`sigmas[r]` = `Σ̂` of
/// `aug`'s row-`r` path pair).
///
/// This is the solve half of [`estimate_variances`]; the streaming
/// estimator calls it directly with covariances maintained by
/// [`crate::streaming::StreamingCovariance`], so batch and online
/// refreshes share one code path (and therefore produce identical
/// bits for identical covariances).
pub fn estimate_variances_from_sigmas(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    sigmas: &[f64],
    cfg: &VarianceConfig,
) -> Result<VarianceEstimate, LinalgError> {
    if !cfg.dispatch.use_dense(red.num_links()) {
        return estimate_variances_sparse(red, aug, sigmas, cfg);
    }
    if cfg.backend == LstsqBackend::NormalEquations {
        // The normal-equations path folds the retry into one assembly:
        // dropped-row contributions are recorded by index and added to
        // the already-built system if the kept rows prove singular.
        let mut cache = GramCache::new();
        return estimate_variances_cached(red, aug, sigmas, cfg, &mut cache);
    }
    match estimate_variances_inner(red, aug, sigmas, cfg) {
        Ok(est) => Ok(est),
        Err(_) if cfg.drop_negative_covariances => {
            let retry = VarianceConfig {
                drop_negative_covariances: false,
                ..*cfg
            };
            estimate_variances_inner(red, aug, sigmas, &retry)
        }
        Err(e) => Err(e),
    }
}

/// Reusable normal-equations assembly state for repeated Phase-1 solves
/// over one augmented system.
///
/// The Gram matrix `AᵀA` of the kept rows depends only on *which* rows
/// are kept (entries are integer co-occurrence counts), not on the
/// covariance values themselves. A streaming estimator therefore only
/// has to patch the counts for rows whose kept/dropped status *changed*
/// since the previous refresh — `O(Δ · s²)` integer updates instead of
/// re-assembling all `r` rows — and integer arithmetic makes the
/// patched counts exactly equal to a from-scratch assembly, which is
/// what keeps cached refreshes bit-identical to batch Phase 1.
#[derive(Debug, Clone, Default)]
pub struct GramCache {
    /// Upper-triangle co-occurrence counts of the currently-kept rows
    /// (`counts[ka * nc + kb]` for `ka ≤ kb`).
    counts: Vec<u32>,
    /// Per augmented row: is it currently folded into `counts`?
    kept: Vec<bool>,
    ready: bool,
}

impl GramCache {
    /// Creates an empty cache; the first
    /// [`estimate_variances_cached`] call fills it.
    pub fn new() -> Self {
        GramCache::default()
    }

    /// Whether the cache has been filled by a previous solve.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// The kept/dropped mask of the last sync (one flag per row).
    pub fn kept_mask(&self) -> &[bool] {
        &self.kept
    }

    /// Raw upper-triangle co-occurrence counts (row-major, `nc × nc`).
    pub(crate) fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Re-points the cache at `new_kept`, patching the counts for every
    /// row whose status changed. `rows` is the augmented system's
    /// shared [`losstomo_topology::RoutingMatrix`]
    /// ([`AugmentedSystem::matrix`]). Returns the changed rows as
    /// `(newly_kept, newly_dropped)` index lists (ascending).
    pub(crate) fn sync(
        &mut self,
        rows: &losstomo_topology::RoutingMatrix,
        nc: usize,
        new_kept: &[bool],
    ) -> (Vec<usize>, Vec<usize>) {
        debug_assert_eq!(new_kept.len(), rows.rows());
        if !self.ready {
            self.counts = vec![0u32; nc * nc];
            self.kept = vec![false; rows.rows()];
            self.ready = true;
        }
        let mut added = Vec::new();
        let mut dropped = Vec::new();
        for (r, (&was, &now)) in self.kept.iter().zip(new_kept.iter()).enumerate() {
            if was == now {
                continue;
            }
            let links = rows.row(r);
            if now {
                added.push(r);
                for (ai, &ka) in links.iter().enumerate() {
                    let crow = &mut self.counts[ka * nc..(ka + 1) * nc];
                    for &kb in &links[ai..] {
                        crow[kb] += 1;
                    }
                }
            } else {
                dropped.push(r);
                for (ai, &ka) in links.iter().enumerate() {
                    let crow = &mut self.counts[ka * nc..(ka + 1) * nc];
                    for &kb in &links[ai..] {
                        crow[kb] -= 1;
                    }
                }
            }
        }
        self.kept.copy_from_slice(new_kept);
        (added, dropped)
    }

    /// Re-keys the cache across a routing churn event: `carry[new_r]`
    /// names the old augmented row that new row `new_r` carries
    /// unchanged (`None` = recomputed/added — see
    /// [`AugmentedSystem::apply_delta`]). Kept flags follow their rows
    /// to the new numbering; old kept rows that did not survive are
    /// subtracted from the integer counts, and recomputed rows enter as
    /// not-yet-kept (the next [`GramCache::sync`] folds them in against
    /// fresh covariances).
    ///
    /// Because carried rows have bit-identical link sets and the counts
    /// are integers, the patched counts exactly equal a from-scratch
    /// assembly over the carried kept rows — the churn patch costs
    /// `O(dropped · s²)` instead of `O(r · s²)`.
    ///
    /// Returns the old indices of the kept rows that were subtracted
    /// (ascending) so the factor-surgery path can downdate them; empty
    /// if the cache was never filled.
    pub(crate) fn apply_churn(
        &mut self,
        old_rows: &losstomo_topology::RoutingMatrix,
        nc: usize,
        carry: &[Option<usize>],
    ) -> Vec<usize> {
        if !self.ready {
            return Vec::new();
        }
        let mut survived = vec![false; self.kept.len()];
        let mut new_kept = vec![false; carry.len()];
        for (new_r, c) in carry.iter().enumerate() {
            if let Some(old_r) = c {
                survived[*old_r] = true;
                new_kept[new_r] = self.kept[*old_r];
            }
        }
        let mut dropped = Vec::new();
        for (old_r, (&was_kept, &surv)) in self.kept.iter().zip(survived.iter()).enumerate() {
            if was_kept && !surv {
                dropped.push(old_r);
                let links = old_rows.row(old_r);
                for (ai, &ka) in links.iter().enumerate() {
                    let crow = &mut self.counts[ka * nc..(ka + 1) * nc];
                    for &kb in &links[ai..] {
                        crow[kb] -= 1;
                    }
                }
            }
        }
        self.kept = new_kept;
        dropped
    }
}

/// Phase 1 via the normal equations with a reusable [`GramCache`]:
/// the paper's negative-row drop, its all-rows fallback, and
/// incremental `AᵀA` maintenance sharing one assembly.
///
/// With a fresh cache this is the batch normal-equations estimator
/// (and [`estimate_variances`] routes through it); with a warm cache
/// only the rows whose kept/dropped status changed since the previous
/// call touch the Gram counts. Counts are small integers, so the
/// incremental result is exactly the from-scratch result; `AᵀΣ*` is
/// rebuilt per call in ascending row order, matching the batch
/// accumulation order bit for bit.
pub fn estimate_variances_cached(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    sigmas: &[f64],
    cfg: &VarianceConfig,
    cache: &mut GramCache,
) -> Result<VarianceEstimate, LinalgError> {
    estimate_variances_scratch(red, aug, sigmas, cfg, cache, &mut Phase1Scratch::default())
}

/// Reusable buffers for repeated Phase-1 normal-equations solves: the
/// kept mask, `AᵀΣ*`, the dense Gram expansion, and the SPD solver
/// workspace (permutation, permuted Gram, Cholesky factor) all survive
/// between refreshes, so a steady-state refresh allocates nothing.
///
/// The workspace must be dedicated to one `(red, aug, cache)` pipeline:
/// when a refresh leaves the kept/dropped row mask unchanged, the Gram
/// expansion *and its cached Cholesky factor* are reused outright
/// (integer counts unchanged ⇒ identical Gram bits ⇒ identical factor
/// bits), turning the refresh into one `AᵀΣ*` sweep plus two triangular
/// solves.
///
/// The all-rows fallback gets its own cached factor: its Gram is the
/// co-occurrence count over *every* augmented row — a constant of the
/// topology — so once the fallback has run, every later fallback is two
/// triangular solves instead of an `O(n_c³)` factorisation. On
/// topologies where the negative-row drop leaves a singular system at
/// every refresh (the paper tree is one), this removes the second of
/// the two factorisations every steady-state refresh used to pay.
#[derive(Debug, Default)]
pub struct Phase1Scratch {
    new_kept: Vec<bool>,
    atb: Vec<f64>,
    gram: Matrix,
    /// Solver workspace of the kept-rows system. Its cached factor is
    /// only valid for the mask the [`GramCache`] currently holds — any
    /// path that moves the cache mask without solving through it must
    /// invalidate it.
    spd: SpdScratch,
    /// Solver workspace of the all-rows fallback (its Gram never
    /// changes, so its cached factor is reusable forever).
    spd_all: SpdScratch,
    /// Reusable all-true mask for the fallback's cache sync.
    all_mask: Vec<bool>,
}

impl Phase1Scratch {
    /// Creates an empty workspace (filled by the first solve).
    pub fn new() -> Self {
        Phase1Scratch::default()
    }

    /// Drops the kept-mask Cholesky factor. Callers that move the
    /// shared [`GramCache`] mask *outside*
    /// [`estimate_variances_scratch`] (the Givens refresh path syncs
    /// the cache itself) must call this, or a later solve could reuse
    /// a factor belonging to an older mask. The all-rows fallback
    /// factor is unaffected — its Gram is a constant of the topology.
    pub fn invalidate_kept_factor(&mut self) {
        self.spd.invalidate();
    }

    /// Drops **both** cached Cholesky factors. Routing churn changes
    /// the augmented row set itself, so the all-rows fallback Gram —
    /// otherwise a constant of the topology whose factor is "reusable
    /// forever" — is no longer the matrix either factor was computed
    /// from. Every churn event must call this; reusing either stale
    /// factor would silently break the post-flush bit-identity gate.
    pub fn invalidate_for_churn(&mut self) {
        self.spd.invalidate();
        self.spd_all.invalidate();
    }
}

/// [`estimate_variances_cached`] with a reusable [`Phase1Scratch`]
/// workspace — the allocation-free steady-state entry point the
/// streaming estimator refreshes through. Bit-identical to
/// [`estimate_variances_cached`] (which wraps this with a throwaway
/// workspace).
pub fn estimate_variances_scratch(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    sigmas: &[f64],
    cfg: &VarianceConfig,
    cache: &mut GramCache,
    ws: &mut Phase1Scratch,
) -> Result<VarianceEstimate, LinalgError> {
    if !cfg.dispatch.use_dense(red.num_links()) {
        // The sparse family has no Gram to cache — refactoring the
        // kept rows is the whole solve, and it is what keeps wide
        // meshes off the `O(links³)` dense path.
        return estimate_variances_sparse(red, aug, sigmas, cfg);
    }
    assert_eq!(
        sigmas.len(),
        aug.num_rows(),
        "got {} covariances for {} augmented rows",
        sigmas.len(),
        aug.num_rows()
    );
    let nc = red.num_links();
    ws.new_kept.clear();
    ws.new_kept
        .extend(sigmas.iter().map(|&s| !(cfg.drop_negative_covariances && s < 0.0)));
    let cache_was_ready = cache.is_ready();
    let (added, dropped) = cache.sync(aug.matrix(), nc, &ws.new_kept);
    let mask_unchanged = cache_was_ready && added.is_empty() && dropped.is_empty();
    let used = ws.new_kept.iter().filter(|&&k| k).count();
    let dropped_count = aug.num_rows() - used;
    // `AᵀΣ*` changes with every covariance value, so it is rebuilt per
    // call: one sweep over the kept rows in ascending order.
    ws.atb.clear();
    ws.atb.resize(nc, 0.0);
    for (((_, links), &sigma), &keep) in aug.iter().zip(sigmas.iter()).zip(ws.new_kept.iter()) {
        if !keep {
            continue;
        }
        for &ka in links {
            ws.atb[ka] += sigma;
        }
    }
    // Unchanged mask ⇒ unchanged integer counts ⇒ the previous Gram
    // expansion and its factor are exactly this refresh's too.
    let factor_reusable = mask_unchanged && ws.spd.factor_is_cached(nc);
    // Structural-singularity precheck: a link no kept row covers is a
    // zero Gram diagonal, so the kept Cholesky cannot succeed — skip
    // the doomed `O(n_c³)` attempt and go straight to the fold-back.
    // Only worth scanning when a fold-back exists (`dropped_count > 0`;
    // otherwise the genuine error must surface) and the factor isn't
    // already cached (a cached factor proves the mask solved before).
    let structurally_singular = if used >= nc && dropped_count > 0 && !factor_reusable {
        (0..nc).find(|&k| cache.counts()[k * nc + k] == 0)
    } else {
        None
    };
    let first_error = if let Some(index) = structurally_singular {
        // The kept solve is skipped: its cached factor (if any, from an
        // older mask) must not survive.
        ws.spd.invalidate();
        LinalgError::Singular { index }
    } else if used >= nc {
        if !factor_reusable {
            ws.gram.reshape_uninit(nc, nc);
            counts_to_symmetric(cache.counts(), ws.gram.as_mut_slice(), nc);
        }
        match lstsq::solve_spd_with(&ws.gram, &ws.atb, &mut ws.spd, factor_reusable) {
            Ok(v) => {
                return Ok(VarianceEstimate {
                    v,
                    dropped_rows: dropped_count,
                    used_rows: used,
                });
            }
            Err(e) => e,
        }
    } else {
        // The kept solve is skipped entirely, so `ws.spd`'s cached
        // factor (from some older mask) must not survive into a later
        // refresh whose mask happens to match the cache again.
        ws.spd.invalidate();
        LinalgError::DimensionMismatch(format!(
            "only {used} usable covariance rows for {nc} links"
        ))
    };
    if dropped_count == 0 {
        // Nothing was dropped: the failure is genuine.
        return Err(first_error);
    }
    // Fold the dropped rows back in and solve the all-rows system (the
    // paper's rows are only "redundant" when enough of them survive).
    // Its Gram is a constant of the topology, so the factor cached in
    // `spd_all` from any previous fallback is bit-identical to what a
    // refactorisation would produce.
    ws.all_mask.clear();
    ws.all_mask.resize(aug.num_rows(), true);
    cache.sync(aug.matrix(), nc, &ws.all_mask);
    // The cache mask just moved to all-true without a kept solve:
    // `ws.spd`'s factor no longer corresponds to it.
    ws.spd.invalidate();
    for (((_, links), &sigma), &keep) in aug.iter().zip(sigmas.iter()).zip(ws.new_kept.iter()) {
        if keep {
            continue;
        }
        for &ka in links {
            ws.atb[ka] += sigma;
        }
    }
    let all_factor_reusable = ws.spd_all.factor_is_cached(nc);
    if !all_factor_reusable {
        ws.gram.reshape_uninit(nc, nc);
        counts_to_symmetric(cache.counts(), ws.gram.as_mut_slice(), nc);
    }
    let v = lstsq::solve_spd_with(&ws.gram, &ws.atb, &mut ws.spd_all, all_factor_reusable)?;
    Ok(VarianceEstimate {
        v,
        dropped_rows: 0,
        used_rows: aug.num_rows(),
    })
}

/// Expands upper-triangle co-occurrence counts into a full symmetric
/// f64 matrix (exact: the counts are small integers).
pub(crate) fn counts_to_symmetric(counts: &[u32], gram: &mut [f64], n: usize) {
    for j in 0..n {
        for k in j..n {
            let v = counts[j * n + k] as f64;
            gram[j * n + k] = v;
            gram[k * n + j] = v;
        }
    }
}

/// Phase 1 on wide meshes: least squares on the kept CSR rows via the
/// row-streaming Givens QR — the dense family factors an
/// `O(links³)` Gram no matter how few rows survive the budget/drop,
/// while this path's cost tracks the row count (which is exactly what
/// the pair budget caps). Same drop-negative/fold-back semantics as
/// the dense paths.
fn estimate_variances_sparse(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    sigmas: &[f64],
    cfg: &VarianceConfig,
) -> Result<VarianceEstimate, LinalgError> {
    let nc = red.num_links();
    let solve = |drop_neg: bool| -> Result<VarianceEstimate, LinalgError> {
        let mut builder = losstomo_topology::matrix::RoutingMatrix::builder(nc);
        let mut rhs: Vec<f64> = Vec::new();
        let mut dropped = 0usize;
        for ((_, links), &sigma) in aug.iter().zip(sigmas.iter()) {
            if drop_neg && sigma < 0.0 {
                dropped += 1;
                continue;
            }
            builder.push_sorted_row(links);
            rhs.push(sigma);
        }
        let used = rhs.len();
        if used < nc {
            return Err(LinalgError::DimensionMismatch(format!(
                "only {used} usable covariance rows for {nc} links"
            )));
        }
        let qr = SparseQr::new(builder.build().to_sparse())?;
        if !qr.has_full_column_rank() {
            return Err(LinalgError::Singular { index: 0 });
        }
        let v = qr.solve_least_squares(&rhs)?;
        Ok(VarianceEstimate {
            v,
            dropped_rows: if drop_neg { dropped } else { 0 },
            used_rows: used,
        })
    };
    match solve(cfg.drop_negative_covariances) {
        Ok(est) => Ok(est),
        Err(_) if cfg.drop_negative_covariances => solve(false),
        Err(e) => Err(e),
    }
}

/// Phase 1 via the paper's textbook method: materialise the kept rows
/// and factor with Householder reflections. The rows are written
/// straight into one flat row-major buffer (no per-row `Vec`, no copy
/// into the `Matrix` afterwards). Only used with
/// [`LstsqBackend::HouseholderQr`]; the normal-equations backend takes
/// the fused path above.
fn estimate_variances_inner(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    sigmas: &[f64],
    cfg: &VarianceConfig,
) -> Result<VarianceEstimate, LinalgError> {
    let nc = red.num_links();
    let mut dropped = 0usize;
    let mut used = 0usize;
    let mut data: Vec<f64> = Vec::new();
    let mut rhs: Vec<f64> = Vec::new();
    for ((_, links), &sigma) in aug.iter().zip(sigmas.iter()) {
        if cfg.drop_negative_covariances && sigma < 0.0 {
            dropped += 1;
            continue;
        }
        used += 1;
        let start = data.len();
        data.resize(start + nc, 0.0);
        let row = &mut data[start..];
        for &k in links {
            row[k] = 1.0;
        }
        rhs.push(sigma);
    }
    if used < nc {
        return Err(LinalgError::DimensionMismatch(format!(
            "only {used} usable covariance rows for {nc} links"
        )));
    }
    let a = Matrix::from_vec(used, nc, data)?;
    let v = lstsq::solve_least_squares_with(&a, &rhs, LstsqBackend::HouseholderQr)?;
    Ok(VarianceEstimate {
        v,
        dropped_rows: dropped,
        used_rows: used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_netsim::{
        simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig,
    };
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end Phase-1 check on the Figure-1 tree: with one congested
    /// link, its estimated variance must dominate all others.
    fn phase1_on_figure1(backend: LstsqBackend) -> (Vec<f64>, Vec<bool>) {
        let red = fixtures::reduced(&fixtures::figure1());
        let mut rng = StdRng::seed_from_u64(99);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.2,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        // Force exactly one congested link for a crisp check: link 0.
        while scenario.congested_count() != 1 {
            scenario =
                CongestionScenario::draw(red.num_links(), 0.2, CongestionDynamics::Fixed, &mut rng);
        }
        let cfg = ProbeConfig::default();
        let ms = simulate_run(&red, &mut scenario.clone(), &cfg, 50, &mut rng);
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::new(&ms);
        let est = estimate_variances(
            &red,
            &aug,
            &centered,
            &VarianceConfig {
                backend,
                ..VarianceConfig::default()
            },
        )
        .unwrap();
        (est.v, scenario.statuses().to_vec())
    }

    #[test]
    fn congested_link_has_dominant_variance_normal_eq() {
        let (v, statuses) = phase1_on_figure1(LstsqBackend::NormalEquations);
        let congested_idx = statuses.iter().position(|&c| c).unwrap();
        let max_idx = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(
            max_idx, congested_idx,
            "variances {v:?}, congested {congested_idx}"
        );
    }

    #[test]
    fn backends_agree() {
        let (v1, _) = phase1_on_figure1(LstsqBackend::NormalEquations);
        let (v2, _) = phase1_on_figure1(LstsqBackend::HouseholderQr);
        for (a, b) in v1.iter().zip(v2.iter()) {
            assert!((a - b).abs() < 1e-8, "{v1:?} vs {v2:?}");
        }
    }

    /// The sparse Phase-1 family must solve the same least-squares
    /// problem as the dense ones (the corrected seminormal solve is
    /// accurate to ~1e-12 of the dense QR on these well-conditioned
    /// systems).
    #[test]
    fn sparse_dispatch_agrees_with_dense() {
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        let mut rng = StdRng::seed_from_u64(9);
        let mut scenario =
            CongestionScenario::draw(red.num_links(), 0.3, CongestionDynamics::Fixed, &mut rng);
        let ms = simulate_run(&red, &mut scenario, &ProbeConfig::default(), 400, &mut rng);
        let centered = CenteredMeasurements::new(&ms);
        let dense = estimate_variances(&red, &aug, &centered, &VarianceConfig::default()).unwrap();
        let sparse_cfg = VarianceConfig {
            dispatch: Phase1Dispatch::Sparse,
            ..VarianceConfig::default()
        };
        let sparse = estimate_variances(&red, &aug, &centered, &sparse_cfg).unwrap();
        assert_eq!(sparse.used_rows, dense.used_rows);
        assert_eq!(sparse.dropped_rows, dense.dropped_rows);
        for (a, b) in sparse.v.iter().zip(dense.v.iter()) {
            assert!((a - b).abs() < 1e-8, "{:?} vs {:?}", sparse.v, dense.v);
        }
    }

    #[test]
    fn exact_covariances_recover_exact_variances() {
        // Synthetic: build Σ* = A v directly from known v and solve.
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        let v_true = vec![0.05, 0.001, 0.02, 0.0005, 0.01];
        // Fabricate centred measurements whose sample covariance equals
        // the model covariance: use the linear map Y = R X with X drawn
        // to have diagonal covariance... easier: feed cov directly by
        // constructing a CenteredMeasurements stand-in is not possible,
        // so instead verify via the dense solve: A v = Σ*.
        let a = aug.to_dense();
        let sigma_star = a.matvec(&v_true).unwrap();
        let v = lstsq::solve_least_squares(&a, &sigma_star).unwrap();
        for (est, truth) in v.iter().zip(v_true.iter()) {
            assert!((est - truth).abs() < 1e-10);
        }
    }

    #[test]
    fn negative_rows_are_counted() {
        let red = fixtures::reduced(&fixtures::figure1());
        let mut rng = StdRng::seed_from_u64(5);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.3,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let ms = simulate_run(&red, &mut scenario, &ProbeConfig::default(), 10, &mut rng);
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::new(&ms);
        let est =
            estimate_variances(&red, &aug, &centered, &VarianceConfig::default()).unwrap();
        assert_eq!(est.used_rows + est.dropped_rows, aug.num_rows());
    }

    #[test]
    fn scratch_never_reuses_a_stale_factor_across_fallbacks() {
        // Regression: refresh 1 succeeds on a kept mask M1 (caching its
        // factor); refresh 2 has too few usable rows, skips the kept
        // solve, and its all-rows fallback re-syncs the Gram cache to
        // the all-true mask; refresh 3 arrives with an all-true mask —
        // "unchanged" relative to the cache — and must NOT solve with
        // the cached M1 factor.
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        let cfg = VarianceConfig::default();
        let mut cache = GramCache::new();
        let mut ws = Phase1Scratch::new();
        // Figure-1 aug rows: [0,1],[0,2,3],[0,2,4],[0],[0,2],[0,2].
        // Dropping the duplicate [0,2] row keeps the system full rank.
        let m1 = vec![1.0, 1.0, 1.0, 1.0, -1.0, 1.0];
        let r1 = estimate_variances_scratch(&red, &aug, &m1, &cfg, &mut cache, &mut ws).unwrap();
        assert_eq!(r1.dropped_rows, 1, "kept solve should succeed on M1");
        // Only one usable row: used < nc forces the all-rows fallback.
        let m2 = vec![1.0, -1.0, -1.0, -1.0, -1.0, -1.0];
        let r2 = estimate_variances_scratch(&red, &aug, &m2, &cfg, &mut cache, &mut ws).unwrap();
        assert_eq!(r2.dropped_rows, 0, "fallback folds every row back in");
        // All-positive sigmas: the mask equals the cache's all-true
        // state, so a stale M1 factor would be silently reused.
        let m3 = vec![0.9, 1.1, 0.8, 1.2, 1.0, 0.7];
        let got = estimate_variances_scratch(&red, &aug, &m3, &cfg, &mut cache, &mut ws).unwrap();
        let fresh =
            estimate_variances_cached(&red, &aug, &m3, &cfg, &mut GramCache::new()).unwrap();
        assert_eq!(got.v, fresh.v, "stale factor leaked across the fallback");
        assert_eq!(got.used_rows, fresh.used_rows);
    }

    #[test]
    fn gram_churn_patch_matches_from_scratch_counts() {
        use losstomo_topology::{PathId, TopologyDelta};
        let mut red = fixtures::reduced(&fixtures::figure2());
        let nc = red.num_links();
        let aug = AugmentedSystem::build(&red);
        // Fill the cache with a mixed kept mask.
        let mut cache = GramCache::new();
        let kept: Vec<bool> = (0..aug.num_rows()).map(|r| r % 3 != 0).collect();
        cache.sync(aug.matrix(), nc, &kept);
        // Churn: reroute one path, drop another, add one.
        let delta = TopologyDelta::new()
            .reroute_path(PathId(1), vec![0, 2])
            .remove_path(PathId(3))
            .add_path(vec![1, nc - 1]);
        let effect = red.apply_delta(&delta).unwrap();
        let (patched, carry) = aug.apply_delta(&red, &effect);
        let dropped = cache.apply_churn(aug.matrix(), nc, &carry);
        // Every dropped index was a kept old row that no new row carries.
        for &old_r in &dropped {
            assert!(kept[old_r]);
            assert!(carry.iter().all(|c| *c != Some(old_r)));
        }
        // Patched counts == from-scratch counts over the carried kept rows.
        let mut fresh = GramCache::new();
        fresh.sync(patched.matrix(), nc, cache.kept_mask());
        assert_eq!(cache.counts(), fresh.counts());
        // And a follow-up sync to a new mask still agrees bit-for-bit.
        let new_mask: Vec<bool> = (0..patched.num_rows()).map(|r| r % 2 == 0).collect();
        cache.sync(patched.matrix(), nc, &new_mask);
        let mut fresh2 = GramCache::new();
        fresh2.sync(patched.matrix(), nc, &new_mask);
        assert_eq!(cache.counts(), fresh2.counts());
    }

    #[test]
    #[should_panic(expected = "measurements cover")]
    fn path_count_mismatch_panics() {
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::from_rows(vec![vec![0.0; 7], vec![0.1; 7]]);
        let _ = estimate_variances(&red, &aug, &centered, &VarianceConfig::default());
    }
}
