//! Phase 1 of LIA: estimating the link variances `v` from the sample
//! covariances of end-to-end measurements (Section 5.1).
//!
//! With the augmented system `Σ* = A v` (Lemma 1) and Theorem 1
//! guaranteeing full column rank, the variances follow from a single
//! least-squares solve. This is a generalized-method-of-moments
//! estimator: consistent, distribution-free, and far cheaper than an
//! iterative MLE/EM (the paper contrasts it with the EM of Cao et al.,
//! which "cannot scale to networks with hundreds of nodes").
//!
//! Sampling noise makes some `Σ̂_{ii'}` negative; following the paper
//! ("we ignore equations with Σ̂_{ii'} < 0" — they are redundant), those
//! rows are dropped before solving.

use crate::augmented::AugmentedSystem;
use crate::covariance::CenteredMeasurements;
use losstomo_linalg::{lstsq, LinalgError, LstsqBackend, Matrix};
use losstomo_topology::ReducedTopology;

/// Configuration for the variance estimator.
#[derive(Debug, Clone, Copy)]
pub struct VarianceConfig {
    /// Least-squares backend. [`LstsqBackend::NormalEquations`]
    /// accumulates `AᵀA` from sparse rows and is the default —
    /// `A` has `O(n_p²)` rows but only `n_c` columns.
    pub backend: LstsqBackend,
    /// Drop rows whose sample covariance is negative (the paper's rule).
    /// Disable only for the `ablation_negative_cov` study.
    pub drop_negative_covariances: bool,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig {
            backend: LstsqBackend::NormalEquations,
            drop_negative_covariances: true,
        }
    }
}

/// The result of Phase 1.
#[derive(Debug, Clone)]
pub struct VarianceEstimate {
    /// Estimated variance `v_k` of `X_k = log φ̂_{e_k}` per virtual link.
    pub v: Vec<f64>,
    /// Rows dropped because their sample covariance was negative.
    pub dropped_rows: usize,
    /// Rows used in the solve.
    pub used_rows: usize,
}

/// Estimates the link variances from `m ≥ 2` snapshots.
///
/// `aug` must be built for (or incrementally updated to) `red`;
/// `centered` must hold the same paths as `red`.
///
/// On small topologies, dropping the negative-covariance rows can leave
/// an under-determined system (they are only "redundant" at scale, as
/// the paper notes for its PlanetLab-sized systems); in that case the
/// estimator falls back to keeping all rows.
pub fn estimate_variances(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    centered: &CenteredMeasurements,
    cfg: &VarianceConfig,
) -> Result<VarianceEstimate, LinalgError> {
    match estimate_variances_inner(red, aug, centered, cfg) {
        Ok(est) => Ok(est),
        Err(_) if cfg.drop_negative_covariances => {
            let retry = VarianceConfig {
                drop_negative_covariances: false,
                ..*cfg
            };
            estimate_variances_inner(red, aug, centered, &retry)
        }
        Err(e) => Err(e),
    }
}

fn estimate_variances_inner(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    centered: &CenteredMeasurements,
    cfg: &VarianceConfig,
) -> Result<VarianceEstimate, LinalgError> {
    assert_eq!(
        centered.paths(),
        red.num_paths(),
        "measurements cover {} paths, topology has {}",
        centered.paths(),
        red.num_paths()
    );
    let nc = red.num_links();
    let mut dropped = 0usize;
    let mut used = 0usize;

    match cfg.backend {
        LstsqBackend::NormalEquations => {
            // Accumulate AᵀA and AᵀΣ* from the sparse rows directly.
            let mut gram = Matrix::zeros(nc, nc);
            let mut atb = vec![0.0; nc];
            for (pair, links) in aug.iter() {
                let sigma = centered.cov(pair.0.index(), pair.1.index());
                if cfg.drop_negative_covariances && sigma < 0.0 {
                    dropped += 1;
                    continue;
                }
                used += 1;
                for (ai, &ka) in links.iter().enumerate() {
                    atb[ka] += sigma;
                    for &kb in &links[ai..] {
                        gram[(ka, kb)] += 1.0;
                    }
                }
            }
            for j in 0..nc {
                for k in (j + 1)..nc {
                    gram[(k, j)] = gram[(j, k)];
                }
            }
            if used < nc {
                // Dropping rows left an under-determined system; the
                // caller retries with all rows kept.
                return Err(LinalgError::DimensionMismatch(format!(
                    "only {used} usable covariance rows for {nc} links"
                )));
            }
            let v = lstsq::solve_spd(&gram, &atb)?;
            Ok(VarianceEstimate {
                v,
                dropped_rows: dropped,
                used_rows: used,
            })
        }
        LstsqBackend::HouseholderQr => {
            // The paper's textbook method: materialise the kept rows and
            // factor with Householder reflections.
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut rhs: Vec<f64> = Vec::new();
            for (pair, links) in aug.iter() {
                let sigma = centered.cov(pair.0.index(), pair.1.index());
                if cfg.drop_negative_covariances && sigma < 0.0 {
                    dropped += 1;
                    continue;
                }
                used += 1;
                let mut row = vec![0.0; nc];
                for &k in links {
                    row[k] = 1.0;
                }
                rows.push(row);
                rhs.push(sigma);
            }
            if rows.len() < nc {
                return Err(LinalgError::DimensionMismatch(format!(
                    "only {} usable covariance rows for {nc} links",
                    rows.len()
                )));
            }
            let a = Matrix::from_rows(&rows)?;
            let v = lstsq::solve_least_squares_with(&a, &rhs, LstsqBackend::HouseholderQr)?;
            Ok(VarianceEstimate {
                v,
                dropped_rows: dropped,
                used_rows: used,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_netsim::{
        simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig,
    };
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end Phase-1 check on the Figure-1 tree: with one congested
    /// link, its estimated variance must dominate all others.
    fn phase1_on_figure1(backend: LstsqBackend) -> (Vec<f64>, Vec<bool>) {
        let red = fixtures::reduced(&fixtures::figure1());
        let mut rng = StdRng::seed_from_u64(99);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.2,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        // Force exactly one congested link for a crisp check: link 0.
        while scenario.congested_count() != 1 {
            scenario =
                CongestionScenario::draw(red.num_links(), 0.2, CongestionDynamics::Fixed, &mut rng);
        }
        let cfg = ProbeConfig::default();
        let ms = simulate_run(&red, &mut scenario.clone(), &cfg, 50, &mut rng);
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::new(&ms);
        let est = estimate_variances(
            &red,
            &aug,
            &centered,
            &VarianceConfig {
                backend,
                drop_negative_covariances: true,
            },
        )
        .unwrap();
        (est.v, scenario.statuses().to_vec())
    }

    #[test]
    fn congested_link_has_dominant_variance_normal_eq() {
        let (v, statuses) = phase1_on_figure1(LstsqBackend::NormalEquations);
        let congested_idx = statuses.iter().position(|&c| c).unwrap();
        let max_idx = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(
            max_idx, congested_idx,
            "variances {v:?}, congested {congested_idx}"
        );
    }

    #[test]
    fn backends_agree() {
        let (v1, _) = phase1_on_figure1(LstsqBackend::NormalEquations);
        let (v2, _) = phase1_on_figure1(LstsqBackend::HouseholderQr);
        for (a, b) in v1.iter().zip(v2.iter()) {
            assert!((a - b).abs() < 1e-8, "{v1:?} vs {v2:?}");
        }
    }

    #[test]
    fn exact_covariances_recover_exact_variances() {
        // Synthetic: build Σ* = A v directly from known v and solve.
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        let v_true = vec![0.05, 0.001, 0.02, 0.0005, 0.01];
        // Fabricate centred measurements whose sample covariance equals
        // the model covariance: use the linear map Y = R X with X drawn
        // to have diagonal covariance... easier: feed cov directly by
        // constructing a CenteredMeasurements stand-in is not possible,
        // so instead verify via the dense solve: A v = Σ*.
        let a = aug.to_dense();
        let sigma_star = a.matvec(&v_true).unwrap();
        let v = lstsq::solve_least_squares(&a, &sigma_star).unwrap();
        for (est, truth) in v.iter().zip(v_true.iter()) {
            assert!((est - truth).abs() < 1e-10);
        }
    }

    #[test]
    fn negative_rows_are_counted() {
        let red = fixtures::reduced(&fixtures::figure1());
        let mut rng = StdRng::seed_from_u64(5);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.3,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let ms = simulate_run(&red, &mut scenario, &ProbeConfig::default(), 10, &mut rng);
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::new(&ms);
        let est =
            estimate_variances(&red, &aug, &centered, &VarianceConfig::default()).unwrap();
        assert_eq!(est.used_rows + est.dropped_rows, aug.num_rows());
    }

    #[test]
    #[should_panic(expected = "measurements cover")]
    fn path_count_mismatch_panics() {
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::from_rows(vec![vec![0.0; 7], vec![0.1; 7]]);
        let _ = estimate_variances(&red, &aug, &centered, &VarianceConfig::default());
    }
}
