//! The augmented matrix `A` of Definition 1 and the identifiability
//! check of Theorem 1.
//!
//! `A` stacks, for every ordered pair of paths `i ≤ j`, the element-wise
//! product `R_i* ⊗ R_j*` — for binary routing matrices this is simply the
//! indicator of the links shared by both paths (`i = j` reproduces the
//! row itself). Theorem 1 proves that `A` has full column rank on every
//! topology satisfying T.1/T.2, making the link variances identifiable.
//!
//! Two practical notes from Section 5.1 are honoured:
//!
//! * Pairs of paths sharing no link produce all-zero rows; such rows
//!   pair with covariance entries that are pure sampling noise and
//!   contribute nothing to the least-squares normal equations, so the
//!   builder skips them (the solution is unchanged, and `A` keeps
//!   `O(shared pairs)` instead of `n_p(n_p+1)/2` rows).
//! * When paths are added or removed (beacon churn, routing changes),
//!   only the rows touching changed paths need recomputation —
//!   [`AugmentedSystem::with_paths_replaced`] does exactly that.

use losstomo_linalg::{rank, CsrMatrix, Matrix};
use losstomo_topology::{DeltaEffect, PathId, ReducedTopology, RoutingMatrix};

/// The augmented moment system: pair index plus sparse rows of `A`.
///
/// Rows are stored as a shared [`RoutingMatrix`] — the same flat binary
/// CSR the routing matrix itself uses, so Phase-1 assembly walks one
/// sequential stream instead of a pointer chase through per-row
/// allocations, and downstream consumers ([`crate::variance::GramCache`],
/// the covariance sweep) read the rows without re-materialising them.
#[derive(Debug, Clone)]
pub struct AugmentedSystem {
    /// The path pair `(i, j)` with `i ≤ j` for each row of `A`.
    pairs: Vec<(PathId, PathId)>,
    /// The rows of `A`: shared-link indices per retained pair.
    rows: RoutingMatrix,
}

/// Intersection of two ascending index slices.
#[cfg(test)]
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    intersect_sorted_into(a, b, &mut out);
    out
}

/// Appends the intersection of two ascending index slices to `out`.
fn intersect_sorted_into(a: &[usize], b: &[usize], out: &mut Vec<usize>) {
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[x]);
                x += 1;
                y += 1;
            }
        }
    }
}

impl AugmentedSystem {
    /// Builds the system for a reduced topology.
    pub fn build(red: &ReducedTopology) -> Self {
        let np = red.num_paths();
        let nc = red.num_links();
        let mut pairs = Vec::new();
        let mut rows = RoutingMatrix::builder(nc);
        let mut scratch: Vec<usize> = Vec::new();
        // Diagonal pairs (i, i): the path's own links.
        for i in 0..np {
            pairs.push((PathId(i as u32), PathId(i as u32)));
            rows.push_sorted_row(red.path_links(PathId(i as u32)));
        }
        // Off-diagonal pairs sharing at least one link, discovered via
        // the link → paths inverted index.
        let per_link = red.paths_per_link();
        let mut seen = std::collections::HashSet::new();
        for paths in &per_link {
            for (a_idx, &a) in paths.iter().enumerate() {
                for &b in &paths[a_idx + 1..] {
                    let key = (a.min(b), a.max(b));
                    if !seen.insert(key) {
                        continue;
                    }
                    scratch.clear();
                    intersect_sorted_into(
                        red.path_links(key.0),
                        red.path_links(key.1),
                        &mut scratch,
                    );
                    debug_assert!(!scratch.is_empty());
                    pairs.push(key);
                    rows.push_sorted_row(&scratch);
                }
            }
        }
        AugmentedSystem {
            pairs,
            rows: rows.build(),
        }
    }

    /// Number of retained rows (pairs with a nonempty intersection).
    pub fn num_rows(&self) -> usize {
        self.pairs.len()
    }

    /// Number of links `n_c` (columns of `A`).
    pub fn num_links(&self) -> usize {
        self.rows.cols()
    }

    /// The path pair of row `r`.
    pub fn pair(&self, r: usize) -> (PathId, PathId) {
        self.pairs[r]
    }

    /// The shared links of row `r` (ascending).
    pub fn row(&self, r: usize) -> &[usize] {
        self.rows.row(r)
    }

    /// The rows of `A` as the shared [`RoutingMatrix`] — Gram caches
    /// and covariance sweeps read this directly.
    pub fn matrix(&self) -> &RoutingMatrix {
        &self.rows
    }

    /// Iterates over `(pair, shared links)`.
    pub fn iter(&self) -> impl Iterator<Item = ((PathId, PathId), &[usize])> {
        self.pairs.iter().copied().zip(self.rows.iter())
    }

    /// The path pairs of all retained rows as raw index pairs, in row
    /// order — the exact argument
    /// [`crate::covariance::CenteredMeasurements::pair_covariances`]
    /// expects for the one-pass Phase-1 covariance assembly.
    pub fn pair_indices(&self) -> Vec<(usize, usize)> {
        self.pairs
            .iter()
            .map(|&(a, b)| (a.index(), b.index()))
            .collect()
    }

    /// Assembles the retained rows as a sparse matrix (binary).
    pub fn to_sparse(&self) -> CsrMatrix {
        self.rows.to_sparse()
    }

    /// Assembles the retained rows densely (small systems only).
    pub fn to_dense(&self) -> Matrix {
        self.rows.to_dense()
    }

    /// Theorem-1 check: does `A` have full column rank, i.e. are the
    /// link variances statistically identifiable on this topology?
    ///
    /// Skipping all-zero rows does not change the column rank, so this
    /// is exact. Cost: one pivoted QR on a dense `num_rows × n_c`
    /// matrix — use on small/medium topologies only.
    pub fn is_identifiable(&self) -> bool {
        let nc = self.num_links();
        if nc == 0 {
            return false;
        }
        if self.pairs.len() < nc {
            return false;
        }
        rank(&self.to_dense()) == nc
    }

    /// The sub-system formed by the given row indices, in the given
    /// order — the budgeted view that
    /// [`crate::budget::select_pairs`] produces. Pairs and rows stay
    /// aligned; duplicates are allowed but pointless.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn subset(&self, rows: &[usize]) -> AugmentedSystem {
        let mut pairs = Vec::with_capacity(rows.len());
        let mut b = RoutingMatrix::builder(self.rows.cols());
        for &r in rows {
            pairs.push(self.pairs[r]);
            b.push_sorted_row(self.rows.row(r));
        }
        AugmentedSystem {
            pairs,
            rows: b.build(),
        }
    }

    /// Incrementally rebuilds the system after the paths in `changed`
    /// were re-routed (or added/removed) in `red`: rows touching a
    /// changed path are recomputed, all other rows are reused.
    ///
    /// `red` must be the *new* reduced topology with the same link
    /// numbering; path ids must be stable for unchanged paths.
    pub fn with_paths_replaced(&self, red: &ReducedTopology, changed: &[PathId]) -> Self {
        let changed_set: std::collections::HashSet<PathId> = changed.iter().copied().collect();
        let np = red.num_paths();
        let mut pairs = Vec::with_capacity(self.pairs.len());
        let mut rows = RoutingMatrix::builder(red.num_links());
        // Keep untouched rows that still reference valid paths.
        for (pair, row) in self.iter() {
            if pair.0.index() >= np || pair.1.index() >= np {
                continue;
            }
            if changed_set.contains(&pair.0) || changed_set.contains(&pair.1) {
                continue;
            }
            pairs.push(pair);
            rows.push_sorted_row(row);
        }
        // Recompute all pairs involving a changed path.
        let mut seen: std::collections::HashSet<(PathId, PathId)> =
            pairs.iter().copied().collect();
        let mut scratch: Vec<usize> = Vec::new();
        for &c in changed {
            if c.index() >= np {
                continue; // removed path
            }
            for other in 0..np {
                let o = PathId(other as u32);
                let key = if c <= o { (c, o) } else { (o, c) };
                if !seen.insert(key) {
                    continue;
                }
                scratch.clear();
                if key.0 == key.1 {
                    scratch.extend_from_slice(red.path_links(key.0));
                } else {
                    intersect_sorted_into(
                        red.path_links(key.0),
                        red.path_links(key.1),
                        &mut scratch,
                    );
                }
                if scratch.is_empty() {
                    continue;
                }
                pairs.push(key);
                rows.push_sorted_row(&scratch);
            }
        }
        AugmentedSystem {
            pairs,
            rows: rows.build(),
        }
    }

    /// Patches the system for a routing delta, producing a result that
    /// is **bit-identical to a fresh [`AugmentedSystem::build`]** on the
    /// churned topology — same pairs, same rows, same row *order* — at
    /// `O(changed · n_p)` intersection cost plus an `O(r log r)` sort,
    /// instead of the full `O(Σ paths-per-link²)` pair discovery.
    ///
    /// The order identity is what makes live churn survivable without
    /// giving up the streaming layer's exactness contract: Phase-1
    /// accumulation order, Gram assembly and covariance pairing all key
    /// on row order, so a patched system feeds them the exact bits a
    /// restart would. It holds because `build` emits diagonals first
    /// (ascending) and discovers each off-diagonal pair at its minimum
    /// shared link in lexicographic path order — i.e. fresh order is
    /// exactly "diagonals by path, then off-diagonals by
    /// `(min shared link, a, b)`", a total order we can re-sort the
    /// patched rows into.
    ///
    /// Returns the patched system plus, per new row, the old row it
    /// carries unchanged (`None` = recomputed; its cached downstream
    /// state — Gram counts, covariance history — is stale).
    ///
    /// `red` must be the post-delta topology and `effect` the
    /// [`DeltaEffect`] its `apply_delta` returned; `self` must be a
    /// full (unbudgeted) system whose path ids predate the delta.
    pub fn apply_delta(
        &self,
        red: &ReducedTopology,
        effect: &DeltaEffect,
    ) -> (AugmentedSystem, Vec<Option<usize>>) {
        enum Src {
            Carried(usize),
            Fresh(usize),
        }
        let np = red.num_paths();
        let changed: std::collections::HashSet<u32> =
            effect.changed.iter().map(|p| p.0).collect();
        // Sort key reproducing fresh build order: diagonals ascending,
        // then off-diagonals by (min shared link, a, b).
        let mut entries: Vec<((u8, usize, u32, u32), Src)> =
            Vec::with_capacity(self.pairs.len());
        for (r, &(a, b)) in self.pairs.iter().enumerate() {
            let (Some(a2), Some(b2)) = (effect.id_map[a.index()], effect.id_map[b.index()])
            else {
                continue; // an endpoint was removed
            };
            if changed.contains(&a2.0) || changed.contains(&b2.0) {
                continue; // recomputed below
            }
            let row = self.rows.row(r);
            let key = if a2 == b2 {
                (0u8, a2.index(), 0u32, 0u32)
            } else {
                (1u8, row[0], a2.0, b2.0)
            };
            entries.push((key, Src::Carried(r)));
        }
        // Recompute every pair touching a changed path.
        let mut fresh: Vec<((PathId, PathId), Vec<usize>)> = Vec::new();
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut scratch: Vec<usize> = Vec::new();
        for &c in &effect.changed {
            for other in 0..np {
                let o = PathId(other as u32);
                let key = if c <= o { (c.0, o.0) } else { (o.0, c.0) };
                if !seen.insert(key) {
                    continue;
                }
                scratch.clear();
                if key.0 == key.1 {
                    scratch.extend_from_slice(red.path_links(PathId(key.0)));
                } else {
                    intersect_sorted_into(
                        red.path_links(PathId(key.0)),
                        red.path_links(PathId(key.1)),
                        &mut scratch,
                    );
                    if scratch.is_empty() {
                        continue; // disjoint pairs are skipped, as in build
                    }
                }
                let sort_key = if key.0 == key.1 {
                    (0u8, key.0 as usize, 0u32, 0u32)
                } else {
                    (1u8, scratch[0], key.0, key.1)
                };
                entries.push((sort_key, Src::Fresh(fresh.len())));
                fresh.push(((PathId(key.0), PathId(key.1)), scratch.clone()));
            }
        }
        entries.sort_unstable_by_key(|x| x.0);
        let mut pairs = Vec::with_capacity(entries.len());
        let mut rows = RoutingMatrix::builder(red.num_links());
        let mut carry = Vec::with_capacity(entries.len());
        for (_, src) in &entries {
            match *src {
                Src::Carried(r) => {
                    let (a, b) = self.pairs[r];
                    pairs.push((
                        effect.id_map[a.index()].expect("carried endpoint survives"),
                        effect.id_map[b.index()].expect("carried endpoint survives"),
                    ));
                    rows.push_sorted_row(self.rows.row(r));
                    carry.push(Some(r));
                }
                Src::Fresh(i) => {
                    pairs.push(fresh[i].0);
                    rows.push_sorted_row(&fresh[i].1);
                    carry.push(None);
                }
            }
        }
        (
            AugmentedSystem {
                pairs,
                rows: rows.build(),
            },
            carry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_topology::fixtures;

    #[test]
    fn figure1_augmented_matrix_matches_paper() {
        // The paper prints A for the Figure-1 network: 6 rows (3 paths +
        // 3 pairs), 5 columns, and full column rank 5.
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        // 3 diagonal pairs + 3 off-diagonal pairs all share the root.
        assert_eq!(aug.num_rows(), 6);
        assert_eq!(aug.num_links(), 5);
        assert!(aug.is_identifiable());
        // Row sums match the paper's A: rows of weight {2,3,3} for the
        // paths and {1,1,2} for the pairs.
        let mut weights: Vec<usize> = (0..6).map(|r| aug.row(r).len()).collect();
        weights.sort_unstable();
        assert_eq!(weights, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn figure2_identifiable_despite_rank_deficient_r() {
        let red = fixtures::reduced(&fixtures::figure2());
        let r_rank = losstomo_linalg::rank(&red.matrix.to_dense());
        assert!(r_rank < red.num_links(), "premise: R rank deficient");
        let aug = AugmentedSystem::build(&red);
        assert!(
            aug.is_identifiable(),
            "Theorem 1: A must have full column rank"
        );
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[0, 2, 4], &[1, 2, 3, 4]), vec![2, 4]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<usize>::new());
        assert_eq!(intersect_sorted(&[5], &[5]), vec![5]);
    }

    #[test]
    fn disjoint_pairs_are_skipped() {
        let red = fixtures::reduced(&fixtures::figure2());
        let aug = AugmentedSystem::build(&red);
        for (_, row) in aug.iter() {
            assert!(!row.is_empty(), "all retained rows must be nonzero");
        }
        let full_pairs = red.num_paths() * (red.num_paths() + 1) / 2;
        assert!(aug.num_rows() <= full_pairs);
    }

    #[test]
    fn incremental_rebuild_matches_full_rebuild() {
        let red = fixtures::reduced(&fixtures::figure2());
        let aug = AugmentedSystem::build(&red);
        // "Re-route" paths 0 and 3 (same topology, so results must be
        // identical to a fresh build).
        let rebuilt = aug.with_paths_replaced(&red, &[PathId(0), PathId(3)]);
        let fresh = AugmentedSystem::build(&red);
        let normalise = |a: &AugmentedSystem| {
            let mut v: Vec<((PathId, PathId), Vec<usize>)> =
                a.iter().map(|(p, r)| (p, r.to_vec())).collect();
            v.sort();
            v
        };
        assert_eq!(normalise(&rebuilt), normalise(&fresh));
    }

    /// The churn patch must reproduce a fresh build *exactly* — pairs,
    /// rows, and row order — because every downstream accumulation
    /// (Phase-1 AᵀΣ*, Gram counts, covariance pairing) keys on order.
    fn assert_patch_matches_fresh(delta: &losstomo_topology::TopologyDelta) {
        let mut red = fixtures::reduced(&fixtures::figure2());
        let aug = AugmentedSystem::build(&red);
        let effect = red.apply_delta(delta).unwrap();
        let (patched, carry) = aug.apply_delta(&red, &effect);
        let fresh = AugmentedSystem::build(&red);
        assert_eq!(patched.pairs, fresh.pairs, "pair list + order must match");
        assert_eq!(patched.rows, fresh.rows, "CSR rows must match bit-for-bit");
        assert_eq!(carry.len(), patched.num_rows());
        // Carried rows must reference an identical old row.
        for (new_r, c) in carry.iter().enumerate() {
            if let Some(old_r) = c {
                assert_eq!(aug.row(*old_r), patched.row(new_r));
            }
        }
    }

    #[test]
    fn delta_patch_matches_fresh_build_exactly() {
        use losstomo_topology::{PathId, TopologyDelta};
        let red = fixtures::reduced(&fixtures::figure2());
        let nc = red.num_links();
        assert_patch_matches_fresh(&TopologyDelta::new()); // no-op
        assert_patch_matches_fresh(&TopologyDelta::new().add_path(vec![0, nc - 1]));
        assert_patch_matches_fresh(&TopologyDelta::new().remove_path(PathId(1)));
        assert_patch_matches_fresh(&TopologyDelta::new().reroute_path(PathId(0), vec![1, 2]));
        assert_patch_matches_fresh(&TopologyDelta::new().remap_link(0, 1));
        assert_patch_matches_fresh(
            &TopologyDelta::new()
                .remove_path(PathId(2))
                .add_path(vec![0, 1])
                .reroute_path(PathId(0), vec![nc - 1])
                .remap_link(2, 3),
        );
    }

    #[test]
    fn empty_topology_is_not_identifiable() {
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem {
            pairs: vec![],
            rows: RoutingMatrix::empty(red.num_links()),
        };
        assert!(!aug.is_identifiable());
    }

    #[test]
    fn sparse_and_dense_agree() {
        let red = fixtures::reduced(&fixtures::figure1());
        let aug = AugmentedSystem::build(&red);
        assert_eq!(aug.to_sparse().to_dense(), aug.to_dense());
    }
}
