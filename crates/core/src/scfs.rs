//! SCFS — the Smallest Consistent Failure Set baseline (Duffield,
//! "Network tomography of binary network performance characteristics",
//! IEEE Trans. IT 2006), which Figure 5 compares LIA against.
//!
//! SCFS uses a *single* snapshot: classify each path as good or bad by
//! its end-to-end loss rate, then explain the bad paths with the
//! smallest consistent set of congested links. On a tree this is the set
//! of *topmost* links whose entire downstream path set is bad. We use
//! the equivalent path-set formulation, which extends to multi-beacon
//! meshes link-by-link:
//!
//! * a link is a **candidate** iff every path through it is bad (a link
//!   on any good path is certainly good — loss rates are monotone along
//!   paths);
//! * a candidate is **marked** iff no other candidate's path set
//!   strictly contains its own (the strictly-larger candidate explains
//!   the same bad paths with a link closer to the source, so the
//!   smaller candidate is redundant).
//!
//! On single-beacon trees the two formulations coincide exactly.

use losstomo_topology::ReducedTopology;

/// SCFS configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScfsConfig {
    /// The per-link good/congested threshold `t_l`. A path of `L` links
    /// is classified *bad* when its measured transmission rate falls
    /// below `(1 − t_l)^L` — i.e. below what `L` good links could
    /// jointly produce (the classification rule of the binary-tomography
    /// literature the paper compares against).
    pub link_threshold: f64,
}

impl Default for ScfsConfig {
    fn default() -> Self {
        ScfsConfig {
            link_threshold: losstomo_netsim::DEFAULT_LOSS_THRESHOLD,
        }
    }
}

/// Runs SCFS on one snapshot's per-path loss rates.
///
/// Returns a boolean per virtual link: `true` = diagnosed congested.
pub fn scfs_diagnose(
    red: &ReducedTopology,
    path_loss_rates: &[f64],
    cfg: &ScfsConfig,
) -> Vec<bool> {
    assert_eq!(
        path_loss_rates.len(),
        red.num_paths(),
        "got {} path rates for {} paths",
        path_loss_rates.len(),
        red.num_paths()
    );
    let bad: Vec<bool> = path_loss_rates
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let links = red.path_links(losstomo_topology::PathId(i as u32)).len();
            1.0 - l < (1.0 - cfg.link_threshold).powi(links as i32)
        })
        .collect();

    // Candidates: links whose entire path set is bad (and nonempty).
    let per_link = red.paths_per_link();
    let nc = red.num_links();
    let candidate: Vec<bool> = (0..nc)
        .map(|k| {
            !per_link[k].is_empty() && per_link[k].iter().all(|p| bad[p.index()])
        })
        .collect();

    // Mark candidates not strictly dominated by another candidate.
    let mut diagnosed = vec![false; nc];
    for k in 0..nc {
        if !candidate[k] {
            continue;
        }
        let pk = &per_link[k];
        let dominated = (0..nc).any(|j| {
            j != k
                && candidate[j]
                && per_link[j].len() > pk.len()
                && is_subset(pk, &per_link[j])
        });
        diagnosed[k] = !dominated;
    }
    diagnosed
}

/// `a ⊆ b` for ascending-sorted path lists.
fn is_subset(a: &[losstomo_topology::PathId], b: &[losstomo_topology::PathId]) -> bool {
    let mut bi = 0;
    for x in a {
        while bi < b.len() && b[bi] < *x {
            bi += 1;
        }
        if bi == b.len() || b[bi] != *x {
            return false;
        }
        bi += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_topology::fixtures;

    /// Figure-1 tree link layout (virtual columns in link-id order):
    /// 0 = root e1, 1 = e2 (→D1), 2 = e3 (→n2), 3 = e4 (→D2),
    /// 4 = e5 (→D3). Paths: 0 = B→D1 {0,1}, 1 = B→D2 {0,2,3},
    /// 2 = B→D3 {0,2,4}.
    fn fig1() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    #[test]
    fn all_paths_bad_blames_the_root() {
        let red = fig1();
        let diagnosed = scfs_diagnose(&red, &[0.1, 0.1, 0.1], &ScfsConfig::default());
        // Only the shared root link is marked: it alone explains all
        // bad paths (the smallest consistent set).
        assert_eq!(diagnosed.iter().filter(|&&d| d).count(), 1);
        assert!(diagnosed[0]);
    }

    #[test]
    fn single_bad_path_blames_its_leaf_branch() {
        let red = fig1();
        // Only path 0 (B→D1) is bad: the root also carries good paths,
        // so the leaf link e2 is the culprit.
        let diagnosed = scfs_diagnose(&red, &[0.1, 0.0, 0.0], &ScfsConfig::default());
        assert!(!diagnosed[0]);
        assert!(diagnosed[1]);
        assert_eq!(diagnosed.iter().filter(|&&d| d).count(), 1);
    }

    #[test]
    fn subtree_bad_blames_subtree_root() {
        let red = fig1();
        // Paths 1 and 2 (through n2) bad, path 0 good: blame e3.
        let diagnosed = scfs_diagnose(&red, &[0.0, 0.1, 0.1], &ScfsConfig::default());
        assert!(diagnosed[2]);
        assert!(!diagnosed[3]);
        assert!(!diagnosed[4]);
        assert!(!diagnosed[0]);
        assert_eq!(diagnosed.iter().filter(|&&d| d).count(), 1);
    }

    #[test]
    fn no_bad_paths_no_diagnosis() {
        let red = fig1();
        let diagnosed = scfs_diagnose(&red, &[0.0, 0.0, 0.0], &ScfsConfig::default());
        assert!(diagnosed.iter().all(|&d| !d));
    }

    #[test]
    fn threshold_respected() {
        let red = fig1();
        let cfg = ScfsConfig {
            link_threshold: 0.05,
        };
        let diagnosed = scfs_diagnose(&red, &[0.04, 0.04, 0.04], &cfg);
        assert!(diagnosed.iter().all(|&d| !d));
    }

    #[test]
    fn subset_helper() {
        use losstomo_topology::PathId;
        let a = [PathId(1), PathId(3)];
        let b = [PathId(0), PathId(1), PathId(3)];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&[], &b));
    }

    #[test]
    #[should_panic(expected = "path rates")]
    fn wrong_input_length_panics() {
        let red = fig1();
        scfs_diagnose(&red, &[0.0], &ScfsConfig::default());
    }
}
