//! Identifiability checks (Section 4).
//!
//! * First moments: the mean link loss rates are identifiable iff `R`
//!   has full column rank — which essentially never holds on real
//!   topologies (Figure 1).
//! * Second moments: the link *variances* are identifiable iff the
//!   augmented matrix `A` has full column rank — which Theorem 1 proves
//!   always holds under T.1/T.2. [`crate::augmented::AugmentedSystem::is_identifiable`]
//!   performs the numerical check; this module adds the first-moment
//!   counterpart and a combined report.

use crate::augmented::AugmentedSystem;
use losstomo_linalg::rank;
use losstomo_topology::ReducedTopology;
use serde::{Deserialize, Serialize};

/// The identifiability status of a measurement topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdentifiabilityReport {
    /// Number of paths `n_p`.
    pub num_paths: usize,
    /// Number of covered virtual links `n_c`.
    pub num_links: usize,
    /// `rank(R)`.
    pub r_rank: usize,
    /// Whether mean loss rates are identifiable (`rank(R) = n_c`).
    pub first_moment_identifiable: bool,
    /// Whether link variances are identifiable (`rank(A) = n_c`,
    /// Theorem 1).
    pub variances_identifiable: bool,
}

/// Computes both identifiability checks for a topology.
///
/// Cost is dominated by two pivoted QR factorisations; intended for
/// small/medium topologies and offline validation.
pub fn check_identifiability(red: &ReducedTopology) -> IdentifiabilityReport {
    let dense = red.matrix.to_dense();
    let r_rank = rank(&dense);
    let aug = AugmentedSystem::build(red);
    IdentifiabilityReport {
        num_paths: red.num_paths(),
        num_links: red.num_links(),
        r_rank,
        first_moment_identifiable: r_rank == red.num_links(),
        variances_identifiable: aug.is_identifiable(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_topology::fixtures;
    use losstomo_topology::gen::tree::{self, TreeParams};
    use losstomo_topology::{compute_paths, reduce};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure1_first_moments_unidentifiable_variances_identifiable() {
        let red = fixtures::reduced(&fixtures::figure1());
        let report = check_identifiability(&red);
        assert!(!report.first_moment_identifiable);
        assert!(report.variances_identifiable);
        assert_eq!(report.r_rank, 3);
        assert_eq!(report.num_links, 5);
    }

    #[test]
    fn figure2_multibeacon_variances_identifiable() {
        let red = fixtures::reduced(&fixtures::figure2());
        let report = check_identifiability(&red);
        assert!(!report.first_moment_identifiable);
        assert!(report.variances_identifiable);
    }

    /// Theorem 1 on random trees: the augmented matrix always reaches
    /// full column rank (this is the paper's Section 6.1 observation
    /// "the rank of the augmented routing matrix A is always equal the
    /// number of links n_c").
    #[test]
    fn random_trees_always_variance_identifiable() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = tree::generate(
                TreeParams {
                    nodes: 60,
                    max_branching: 5,
                },
                &mut rng,
            );
            let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
            let red = reduce(&t.graph, &paths);
            let report = check_identifiability(&red);
            assert!(
                report.variances_identifiable,
                "seed {seed}: rank(A) < n_c = {}",
                report.num_links
            );
        }
    }
}
