//! Thread-count policy for the parallel stages of the pipeline.
//!
//! Every parallel code path in this crate (covariance assembly,
//! [`crate::experiment::run_many`]) sizes its worker pool with
//! [`num_threads`], which delegates to the workspace-wide policy in
//! [`losstomo_linalg::parallel`]: the machine's available parallelism,
//! optionally capped by the `LOSSTOMO_THREADS` environment variable.
//! All parallel stages are written so that results are bit-identical at
//! any thread count — the knob trades wall-clock for CPU occupancy,
//! never results.

pub use losstomo_linalg::parallel::num_threads;
