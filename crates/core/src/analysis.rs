//! Post-inference analyses from the paper's measurement study.
//!
//! * [`mean_variance_per_path`] — the Figure-3 scatter: mean vs variance
//!   of each path's loss rate across snapshots, supporting Assumption
//!   S.3 (monotonicity of variance in the mean).
//! * [`as_location`] — Table 3: are congested links inter- or intra-AS?
//! * [`congestion_durations`] — Section 7.2.2: how many consecutive
//!   snapshots does a link stay (diagnosed) congested?

use losstomo_netsim::MeasurementSet;
use losstomo_topology::{Graph, ReducedTopology};
use serde::{Deserialize, Serialize};

/// One Figure-3 point: a path's loss-rate mean and variance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanVariancePoint {
    /// Mean end-to-end loss rate across snapshots.
    pub mean: f64,
    /// Variance of the end-to-end loss rate across snapshots.
    pub variance: f64,
}

/// Computes the per-path mean and variance of end-to-end loss rates
/// across all snapshots (Figure 3).
pub fn mean_variance_per_path(measurements: &MeasurementSet) -> Vec<MeanVariancePoint> {
    assert!(
        measurements.len() >= 2,
        "need at least 2 snapshots for a variance"
    );
    let rows: Vec<Vec<f64>> = measurements
        .snapshots
        .iter()
        .map(|s| s.path_loss_rates())
        .collect();
    let n_paths = rows[0].len();
    (0..n_paths)
        .map(|i| {
            let series: Vec<f64> = rows.iter().map(|r| r[i]).collect();
            MeanVariancePoint {
                mean: losstomo_linalg::vector::mean(&series),
                variance: losstomo_linalg::vector::sample_variance(&series),
            }
        })
        .collect()
}

/// Quantifies Assumption S.3 on Figure-3 data: the rank correlation
/// (Spearman) between means and variances. Near +1 ⇒ variance is a
/// monotone function of the mean.
pub fn mean_variance_spearman(points: &[MeanVariancePoint]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let rank_of = |key: &dyn Fn(&MeanVariancePoint) -> f64| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| key(&points[a]).total_cmp(&key(&points[b])));
        let mut ranks = vec![0.0; n];
        // Average ranks over ties.
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n
                && key(&points[idx[j + 1]]) == key(&points[idx[i]])
            {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let rm = rank_of(&|p: &MeanVariancePoint| p.mean);
    let rv = rank_of(&|p: &MeanVariancePoint| p.variance);
    let mean_rm = losstomo_linalg::vector::mean(&rm);
    let mean_rv = losstomo_linalg::vector::mean(&rv);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for k in 0..n {
        let a = rm[k] - mean_rm;
        let b = rv[k] - mean_rv;
        num += a * b;
        da += a * a;
        db += b * b;
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// Table-3 row: how congested links split across AS boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsLocationStats {
    /// Congested links crossing an AS boundary.
    pub inter_as: usize,
    /// Congested links inside a single AS.
    pub intra_as: usize,
    /// Congested links with unknown AS membership.
    pub unknown: usize,
}

impl AsLocationStats {
    /// Percentage of classified congested links that are inter-AS.
    pub fn percent_inter(&self) -> f64 {
        let total = self.inter_as + self.intra_as;
        if total == 0 {
            0.0
        } else {
            100.0 * self.inter_as as f64 / total as f64
        }
    }

    /// Percentage of classified congested links that are intra-AS.
    pub fn percent_intra(&self) -> f64 {
        let total = self.inter_as + self.intra_as;
        if total == 0 {
            0.0
        } else {
            100.0 * self.intra_as as f64 / total as f64
        }
    }
}

/// Classifies the links whose estimated loss rate exceeds `threshold`
/// as inter- or intra-AS. A virtual link (alias chain) is inter-AS when
/// *any* of its physical constituents crosses an AS boundary.
pub fn as_location(
    graph: &Graph,
    red: &ReducedTopology,
    est_loss_rates: &[f64],
    threshold: f64,
) -> AsLocationStats {
    assert_eq!(est_loss_rates.len(), red.num_links(), "length mismatch");
    let mut stats = AsLocationStats {
        inter_as: 0,
        intra_as: 0,
        unknown: 0,
    };
    for (k, &loss) in est_loss_rates.iter().enumerate() {
        if loss <= threshold {
            continue;
        }
        let vl = &red.virtual_links[k];
        let mut any_inter = false;
        let mut any_known = false;
        for &pl in &vl.physical {
            match graph.link_is_inter_as(pl) {
                Some(true) => {
                    any_inter = true;
                    any_known = true;
                }
                Some(false) => any_known = true,
                None => {}
            }
        }
        if !any_known {
            stats.unknown += 1;
        } else if any_inter {
            stats.inter_as += 1;
        } else {
            stats.intra_as += 1;
        }
    }
    stats
}

/// Histogram of congestion durations: `durations[d]` is the number of
/// maximal runs in which a link stayed diagnosed congested for exactly
/// `d + 1` consecutive snapshots (Section 7.2.2).
pub fn congestion_durations(diagnosed_per_snapshot: &[Vec<bool>]) -> Vec<usize> {
    if diagnosed_per_snapshot.is_empty() {
        return Vec::new();
    }
    let n_links = diagnosed_per_snapshot[0].len();
    assert!(
        diagnosed_per_snapshot
            .iter()
            .all(|d| d.len() == n_links),
        "snapshots disagree on the number of links"
    );
    let mut histogram: Vec<usize> = Vec::new();
    for k in 0..n_links {
        let mut run = 0usize;
        for snap in diagnosed_per_snapshot {
            if snap[k] {
                run += 1;
            } else if run > 0 {
                bump(&mut histogram, run);
                run = 0;
            }
        }
        if run > 0 {
            bump(&mut histogram, run);
        }
    }
    histogram
}

fn bump(histogram: &mut Vec<usize>, run: usize) {
    if histogram.len() < run {
        histogram.resize(run, 0);
    }
    histogram[run - 1] += 1;
}

/// Fraction of congestion episodes lasting exactly one snapshot
/// (the paper reports 99 % on PlanetLab).
pub fn fraction_single_snapshot(histogram: &[usize]) -> f64 {
    let total: usize = histogram.iter().sum();
    if total == 0 {
        0.0
    } else {
        histogram[0] as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_netsim::Snapshot;

    fn ms(rows: Vec<Vec<u32>>) -> MeasurementSet {
        MeasurementSet {
            snapshots: rows
                .into_iter()
                .map(|r| Snapshot {
                    probes: 100,
                    path_received: r,
                    link_truth: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn mean_variance_computation() {
        let m = ms(vec![vec![100, 50], vec![100, 70]]);
        let pts = mean_variance_per_path(&m);
        assert_eq!(pts[0].mean, 0.0);
        assert_eq!(pts[0].variance, 0.0);
        assert!((pts[1].mean - 0.4).abs() < 1e-12);
        assert!(pts[1].variance > 0.0);
    }

    #[test]
    fn spearman_of_monotone_data_is_one() {
        let pts: Vec<MeanVariancePoint> = (0..10)
            .map(|i| MeanVariancePoint {
                mean: i as f64,
                variance: (i * i) as f64,
            })
            .collect();
        assert!((mean_variance_spearman(&pts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_of_reversed_data_is_minus_one() {
        let pts: Vec<MeanVariancePoint> = (0..10)
            .map(|i| MeanVariancePoint {
                mean: i as f64,
                variance: -(i as f64),
            })
            .collect();
        assert!((mean_variance_spearman(&pts) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn duration_histogram() {
        // Link 0: runs of 2 and 1. Link 1: one run of 3.
        let snaps = vec![
            vec![true, true],
            vec![true, true],
            vec![false, true],
            vec![true, false],
        ];
        let h = congestion_durations(&snaps);
        assert_eq!(h, vec![1, 1, 1]); // one 1-run, one 2-run, one 3-run
        assert!((fraction_single_snapshot(&h) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duration_empty_cases() {
        assert!(congestion_durations(&[]).is_empty());
        assert_eq!(fraction_single_snapshot(&[]), 0.0);
        let h = congestion_durations(&[vec![false, false]]);
        assert!(h.is_empty());
    }

    #[test]
    fn as_location_classifies() {
        use losstomo_topology::{compute_paths, reduce, NodeKind};
        let mut g = losstomo_topology::Graph::new();
        let b = g.add_node_in_as(NodeKind::Host, 1);
        let r1 = g.add_node_in_as(NodeKind::Router, 1);
        let r2 = g.add_node_in_as(NodeKind::Router, 2);
        let d1 = g.add_node_in_as(NodeKind::Host, 2);
        let d2 = g.add_node_in_as(NodeKind::Host, 1);
        g.add_link(b, r1); // intra (AS 1)
        g.add_link(r1, r2); // inter (1→2)
        g.add_link(r2, d1); // intra (AS 2)
        g.add_link(r1, d2); // intra (AS 1)
        let paths = compute_paths(&g, &[b], &[d1, d2]);
        let red = reduce(&g, &paths);
        // Congest everything: the b→r1→r2→d1 chain reduces to virtual
        // links; classify with threshold 0.
        let loss = vec![0.1; red.num_links()];
        let stats = as_location(&g, &red, &loss, 0.002);
        assert_eq!(stats.inter_as + stats.intra_as, red.num_links());
        assert!(stats.inter_as >= 1);
        assert!(stats.intra_as >= 1);
        assert!((stats.percent_inter() + stats.percent_intra() - 100.0).abs() < 1e-9);
    }
}
