//! The estimator zoo: pluggable loss-inference backends behind one
//! [`LossEstimator`] trait.
//!
//! The paper's LIA is one point in a space of loss-tomography
//! estimators. This module makes the space explicit:
//!
//! | backend | idea | role |
//! |---------|------|------|
//! | [`EstimatorKind::Lia`] | two-phase GMM (Phase 1 variances, Phase 2 elimination) | the paper's algorithm, bit-identical to the pre-trait pipeline |
//! | [`EstimatorKind::ZhuMle`] | closed-form MLE on trees (Zhu) | analytic oracle: exact where it applies, errors cleanly elsewhere |
//! | [`EstimatorKind::DengFast`] | per-link moment matching + Gauss–Seidel (Deng et al.) | the speed point on meshes — skips the `O(paths²)` pair system |
//! | [`EstimatorKind::FirstMoment`] | pivoted-QR basic solution of `Y = R X` | deliberately naive floor: what no second-order information buys |
//!
//! LIA and Zhu share Phase 2 ([`infer_link_rates`]) verbatim, so their
//! output differences isolate the *variance learning* strategy; the
//! fast backend additionally swaps in a variance-screened Phase 2 (see
//! [`DengFastEstimator`]) that rank-searches only the columns whose
//! learned variance clears the noise floor. The backends remain oracles
//! for each other
//! (`tests/estimator_agreement.rs`): Zhu's closed form is exact on
//! trees, so any backend disagreeing there is wrong; LIA is pinned
//! bit-identical to the historical pipeline by golden fixtures.
//!
//! ## Zhu's closed form, in this codebase's terms
//!
//! On a (logical) tree, two paths' shared links are exactly the common
//! root→meet prefix, so `Σ̂_{ij} = Σ_{k ∈ prefix} v_k = S(meet(i,j))`
//! where `S(e)` is the cumulative variance from the root down to `e`.
//! Grouping the sample covariances by their pairs' meet link therefore
//! estimates every `S(e)` directly (no least squares), and
//! `v_e = S(e) − S(parent(e))` falls out by differencing along the
//! tree. The tree itself is never given to us — it is *reconstructed*
//! from `paths_per_link`: on a tree, a path's links sorted by strictly
//! decreasing traverser count are its root→leaf order (ties cannot
//! survive [`losstomo_topology::reduce`]'s duplicate-column merge), and
//! the per-path orders must assemble into a trie with unique parents.
//! Any violation means the routing is not tree-like and the backend
//! reports [`LinalgError::DimensionMismatch`] instead of guessing.

use crate::augmented::AugmentedSystem;
use crate::budget::{apply_budget, PairBudget};
use crate::covariance::CenteredMeasurements;
use crate::lia::{
    infer_link_rates, rates_from_solution, solve_reduced, LiaConfig, LinkRateEstimate, RankView,
};
use crate::variance::{estimate_variances_from_sigmas, VarianceConfig};
use losstomo_linalg::{LinalgError, PivotedQr};
use losstomo_topology::ReducedTopology;
use serde::{Deserialize, Serialize};

/// Which estimator backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EstimatorKind {
    /// The paper's two-phase LIA (default).
    #[default]
    Lia,
    /// Zhu's closed-form MLE — exact on tree topologies, typed error on
    /// anything else.
    ZhuMle,
    /// Deng-style fast moment matching for general topologies.
    DengFast,
    /// First-moment pivoted-QR basic solution (no variance learning).
    FirstMoment,
}

impl EstimatorKind {
    /// Stable lowercase name (CLI flags, bench JSON, fixture keys).
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Lia => "lia",
            EstimatorKind::ZhuMle => "zhu-mle",
            EstimatorKind::DengFast => "deng-fast",
            EstimatorKind::FirstMoment => "first-moment",
        }
    }

    /// Every backend, in frontier display order.
    pub fn all() -> [EstimatorKind; 4] {
        [
            EstimatorKind::Lia,
            EstimatorKind::ZhuMle,
            EstimatorKind::DengFast,
            EstimatorKind::FirstMoment,
        ]
    }

    /// Parses a backend name (the forms accepted by bench `--estimator`
    /// flags); `None` for anything unknown.
    pub fn parse(s: &str) -> Option<EstimatorKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lia" => Some(EstimatorKind::Lia),
            "zhu" | "zhu-mle" | "zhumle" => Some(EstimatorKind::ZhuMle),
            "deng" | "deng-fast" | "dengfast" => Some(EstimatorKind::DengFast),
            "first-moment" | "firstmoment" | "fm" => Some(EstimatorKind::FirstMoment),
            _ => None,
        }
    }

    /// Instantiates this backend (see [`build_estimator`]).
    pub fn build(
        self,
        lia: LiaConfig,
        variance: VarianceConfig,
        pair_budget: PairBudget,
    ) -> Box<dyn LossEstimator> {
        build_estimator(self, lia, variance, pair_budget)
    }
}

/// Self-reported cost and intermediate state of one estimate.
#[derive(Debug, Clone)]
pub struct EstimatorDiagnostics {
    /// The backend that produced the estimate ([`EstimatorKind::name`]).
    pub backend: &'static str,
    /// Covariance rows (path pairs) the backend consumed.
    pub rows_used: usize,
    /// Rows dropped or clamped for having negative sample covariance.
    pub dropped_rows: usize,
    /// Learnt per-link variances (all zeros for backends that don't
    /// estimate variances, such as the first-moment baseline).
    pub variances: Vec<f64>,
}

/// One backend's answer: the per-link rate estimate plus diagnostics.
#[derive(Debug, Clone)]
pub struct EstimatorOutput {
    /// Per-link transmission rates, kept mask, and kept count — the
    /// same container every consumer of [`infer_link_rates`] already
    /// speaks.
    pub estimate: LinkRateEstimate,
    /// Cost and intermediate state.
    pub diagnostics: EstimatorDiagnostics,
}

impl EstimatorOutput {
    /// Links whose estimated loss rate exceeds `threshold`.
    pub fn congested_links(&self, threshold: f64) -> Vec<usize> {
        self.estimate.congested_links(threshold)
    }
}

/// A pluggable loss-inference backend.
///
/// Backends are constructed from configuration only (cheap, reusable
/// across topologies) and do all their work in [`estimate`]: given the
/// reduced topology, the centred training measurements, and the
/// evaluation snapshot's log path rates, produce per-link rates. The
/// trait is object-safe so configuration structs can carry a
/// [`EstimatorKind`] and dispatch at run time.
///
/// [`estimate`]: LossEstimator::estimate
pub trait LossEstimator: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> EstimatorKind;

    /// Stable backend name (defaults to [`EstimatorKind::name`]).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Runs the full inference: learn whatever the backend learns from
    /// `centered` (the `m` training snapshots) and solve for per-link
    /// rates against `y_eval` (the evaluation snapshot's log rates).
    fn estimate(
        &self,
        red: &ReducedTopology,
        centered: &CenteredMeasurements,
        y_eval: &[f64],
    ) -> Result<EstimatorOutput, LinalgError>;
}

/// Builds the backend for `kind`.
///
/// `lia` configures Phase 2 (shared by every variance-producing
/// backend), `variance` configures LIA's Phase 1, and `pair_budget`
/// bounds LIA's augmented pair system — the closed-form and fast
/// backends don't build that system, so the budget doesn't apply to
/// them.
pub fn build_estimator(
    kind: EstimatorKind,
    lia: LiaConfig,
    variance: VarianceConfig,
    pair_budget: PairBudget,
) -> Box<dyn LossEstimator> {
    match kind {
        EstimatorKind::Lia => Box::new(LiaEstimator {
            lia,
            variance,
            pair_budget,
        }),
        EstimatorKind::ZhuMle => Box::new(ZhuMleEstimator { lia }),
        EstimatorKind::DengFast => Box::new(DengFastEstimator { lia }),
        EstimatorKind::FirstMoment => Box::new(FirstMomentEstimator),
    }
}

// ---------------------------------------------------------------------
// LIA
// ---------------------------------------------------------------------

/// The paper's two-phase pipeline as a [`LossEstimator`].
///
/// Runs exactly the historical `run_experiment` inference path —
/// augmented system (under `pair_budget`), Phase-1 GMM, Phase-2
/// elimination — and is pinned bit-identical to it by
/// `tests/golden_estimators.rs` and the agreement proptests.
#[derive(Debug, Clone)]
pub struct LiaEstimator {
    /// Phase-2 configuration.
    pub lia: LiaConfig,
    /// Phase-1 configuration.
    pub variance: VarianceConfig,
    /// Row budget for the augmented pair system.
    pub pair_budget: PairBudget,
}

impl LossEstimator for LiaEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Lia
    }

    fn estimate(
        &self,
        red: &ReducedTopology,
        centered: &CenteredMeasurements,
        y_eval: &[f64],
    ) -> Result<EstimatorOutput, LinalgError> {
        let (aug, _selection) = apply_budget(AugmentedSystem::build(red), self.pair_budget);
        let sigmas = centered.pair_covariances(&aug.pair_indices());
        let var_est = estimate_variances_from_sigmas(red, &aug, &sigmas, &self.variance)?;
        let estimate = infer_link_rates(red, &var_est.v, y_eval, &self.lia)?;
        Ok(EstimatorOutput {
            estimate,
            diagnostics: EstimatorDiagnostics {
                backend: self.name(),
                rows_used: var_est.used_rows,
                dropped_rows: var_est.dropped_rows,
                variances: var_est.v,
            },
        })
    }
}

// ---------------------------------------------------------------------
// Zhu closed-form MLE (trees)
// ---------------------------------------------------------------------

/// Zhu's closed-form MLE, exact on logical trees.
#[derive(Debug, Clone)]
pub struct ZhuMleEstimator {
    /// Phase-2 configuration (shared with LIA so the elimination step
    /// is identical and differences isolate Phase 1).
    pub lia: LiaConfig,
}

impl LossEstimator for ZhuMleEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::ZhuMle
    }

    fn estimate(
        &self,
        red: &ReducedTopology,
        centered: &CenteredMeasurements,
        y_eval: &[f64],
    ) -> Result<EstimatorOutput, LinalgError> {
        let aug = AugmentedSystem::build(red);
        let sigmas = centered.pair_covariances(&aug.pair_indices());
        let v = closed_form_variances(red, &aug, &sigmas)?;
        let estimate = infer_link_rates(red, &v, y_eval, &self.lia)?;
        Ok(EstimatorOutput {
            estimate,
            diagnostics: EstimatorDiagnostics {
                backend: self.name(),
                rows_used: aug.num_rows(),
                dropped_rows: 0,
                variances: v,
            },
        })
    }
}

/// The reconstructed tree order: per-link parent (`usize::MAX` for
/// roots) and per-link traverser count.
struct TreeOrder {
    parent: Vec<usize>,
    count: Vec<usize>,
}

const NO_PARENT: usize = usize::MAX;

fn non_tree(detail: String) -> LinalgError {
    LinalgError::DimensionMismatch(format!(
        "Zhu closed-form MLE requires a tree topology: {detail}"
    ))
}

/// Reconstructs the logical tree from `paths_per_link`, or reports why
/// the routing is not a tree.
fn reconstruct_tree(red: &ReducedTopology) -> Result<TreeOrder, LinalgError> {
    let ppl = red.paths_per_link();
    let count: Vec<usize> = ppl.iter().map(|ps| ps.len()).collect();
    let mut parent = vec![NO_PARENT; red.num_links()];
    let mut parent_known = vec![false; red.num_links()];
    let mut ordered: Vec<usize> = Vec::new();
    for p in 0..red.num_paths() {
        let pid = losstomo_topology::PathId(p as u32);
        ordered.clear();
        ordered.extend_from_slice(red.path_links(pid));
        // Root→leaf order = strictly decreasing traverser count. Ties
        // between two links of one path would mean identical traverser
        // sets (on a tree), which the alias reduction merges away — so
        // a tie here proves the routing is not tree-like.
        ordered.sort_by(|&a, &b| count[b].cmp(&count[a]).then(a.cmp(&b)));
        for w in ordered.windows(2) {
            if count[w[0]] == count[w[1]] {
                return Err(non_tree(format!(
                    "links {} and {} on path {p} have equal traverser counts",
                    w[0], w[1]
                )));
            }
        }
        let mut prev = NO_PARENT;
        for &k in ordered.iter() {
            if parent_known[k] {
                if parent[k] != prev {
                    return Err(non_tree(format!(
                        "link {k} has two distinct parents across paths"
                    )));
                }
            } else {
                parent[k] = prev;
                parent_known[k] = true;
            }
            prev = k;
        }
    }
    Ok(TreeOrder { parent, count })
}

/// Zhu's closed-form variance solution on a tree topology.
///
/// `sigmas[r]` must be the sample (or exact) covariance of `aug`'s
/// row-`r` path pair. With exact covariances the output equals the true
/// per-link variances exactly (the analytic-oracle property the
/// agreement proptests assert to 1e-10); with sample covariances it is
/// the closed-form MLE estimate. Returns
/// [`LinalgError::DimensionMismatch`] when the routing is not a logical
/// tree.
pub fn closed_form_variances(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    sigmas: &[f64],
) -> Result<Vec<f64>, LinalgError> {
    if sigmas.len() != aug.num_rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "got {} covariances for {} augmented rows",
            sigmas.len(),
            aug.num_rows()
        )));
    }
    let tree = reconstruct_tree(red)?;
    let nc = red.num_links();

    // Group covariances by the pair's meet link (deepest shared link =
    // minimal traverser count in the shared set), checking that each
    // shared set really is the root→meet prefix chain.
    let mut sum = vec![0.0_f64; nc];
    let mut rows = vec![0usize; nc];
    let mut chain: Vec<usize> = Vec::new();
    for (r, &sigma) in sigmas.iter().enumerate() {
        let shared = aug.row(r);
        let meet = *shared
            .iter()
            .min_by_key(|&&k| tree.count[k])
            .expect("augmented rows are non-empty");
        chain.clear();
        let mut k = meet;
        while k != NO_PARENT {
            chain.push(k);
            k = tree.parent[k];
        }
        if chain.len() != shared.len() {
            let (i, j) = aug.pair(r);
            return Err(non_tree(format!(
                "paths {} and {} share {} links but the root→meet chain has {}",
                i.index(),
                j.index(),
                shared.len(),
                chain.len()
            )));
        }
        chain.sort_unstable();
        if chain != shared {
            let (i, j) = aug.pair(r);
            return Err(non_tree(format!(
                "paths {} and {} share links off the root→meet chain",
                i.index(),
                j.index()
            )));
        }
        sum[meet] += sigma;
        rows[meet] += 1;
    }

    // S(k) = cumulative variance root→k; v_k = S(k) − S(parent(k)).
    // Every link is some pair's meet after alias reduction: a link with
    // a single child and no terminating path would have the same
    // traverser set as that child and be merged away.
    let mut v = vec![0.0_f64; nc];
    for k in 0..nc {
        if rows[k] == 0 {
            return Err(non_tree(format!("link {k} is no pair's meet link")));
        }
        let s_k = sum[k] / rows[k] as f64;
        let s_parent = if tree.parent[k] == NO_PARENT {
            0.0
        } else {
            let pk = tree.parent[k];
            sum[pk] / rows[pk] as f64
        };
        v[k] = s_k - s_parent;
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Deng-style fast moment matching (general topologies)
// ---------------------------------------------------------------------

/// Gauss–Seidel sweeps of the fast backend's redistribution loop.
const DENG_SWEEPS: usize = 8;

/// Deng-style fast estimator for general topologies.
///
/// Fast on **both** phases:
///
/// * *Phase 1* — instead of the `O(paths²)`-row augmented system, it
///   picks a handful of covariance equations *per link* (pairs drawn
///   from that link's traverser list), then redistributes each
///   equation's covariance mass across its links with a few damped
///   Gauss–Seidel sweeps of
///   `v_k ← mean over rows ∋ k of (σ_r − Σ_{l ∈ row, l ≠ k} v_l)`
///   clamped at zero — `O(links · m)` instead of `O(pairs · m)`.
/// * *Phase 2* — instead of the paper-order bisection (a dozen rank
///   checks on near-full-width systems), it **screens** columns by
///   learned variance: links below [`DENG_SCREEN_FACTOR`] × the median
///   (the noise floor, since congestion is sparse) are declared
///   loss-free outright, and only the small candidate set enters the
///   rank search and the reduced solve. If congestion is *not* sparse
///   (candidates exceed half the links) it falls back to the full
///   [`infer_link_rates`] rather than mis-screen.
///
/// The variances are approximate, but detection only consumes their
/// *order* and the screened solve still least-squares the surviving
/// columns, so accuracy stays within a few DR points of LIA while the
/// wall-clock drops by the candidate-set ratio (the `scale_estimators`
/// bench gates ≥2× on the paper-scale Waxman mesh).
#[derive(Debug, Clone)]
pub struct DengFastEstimator {
    /// Phase-2 configuration (dispatch/backend shared with LIA; the
    /// elimination strategy only applies on the dense-congestion
    /// fallback path).
    pub lia: LiaConfig,
}

/// Variance screening factor for the fast backend's Phase 2: links
/// whose learned variance is at or below this multiple of the median
/// variance (the noise floor under sparse congestion) are treated as
/// loss-free without entering the rank search.
pub const DENG_SCREEN_FACTOR: f64 = 10.0;

/// The fast backend's screened Phase 2: rank-search and solve only the
/// columns whose learned variance clears the noise floor.
fn deng_screened_phase2(
    red: &ReducedTopology,
    variances: &[f64],
    y: &[f64],
    cfg: &LiaConfig,
) -> Result<LinkRateEstimate, LinalgError> {
    let nc = red.num_links();
    if y.len() != red.num_paths() {
        return Err(LinalgError::DimensionMismatch(format!(
            "snapshot has {} paths, topology has {}",
            y.len(),
            red.num_paths()
        )));
    }
    if nc == 0 {
        return Ok(rates_from_solution(0, &[], &[]));
    }
    let mut sorted = variances.to_vec();
    sorted.sort_by(f64::total_cmp);
    let tau = sorted[nc / 2] * DENG_SCREEN_FACTOR;
    let mut candidates: Vec<usize> = (0..nc).filter(|&k| variances[k] > tau).collect();
    // Dense congestion defeats the median-as-noise-floor assumption;
    // fall back to the full paper-order Phase 2 rather than mis-screen.
    if candidates.len() * 2 > nc {
        return infer_link_rates(red, variances, y, cfg);
    }
    if candidates.is_empty() {
        return Ok(rates_from_solution(nc, &[], &[]));
    }
    // Paper-order semantics within the candidate set: drop the minimal
    // prefix of smallest-variance candidates until the rest is
    // independent. Every rank check touches only candidate columns.
    candidates.sort_by(|&a, &b| variances[a].total_cmp(&variances[b]));
    let view = RankView::new(red, cfg.dispatch);
    let np = red.num_paths();
    let feasible = |cut: usize| view.subset_full_rank(&candidates[cut..], np);
    let cut = if feasible(0) {
        0
    } else {
        let (mut lo, mut hi) = (0usize, candidates.len());
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };
    let mut kept = candidates[cut..].to_vec();
    kept.sort_unstable();
    let xstar = solve_reduced(&view, &kept, y, cfg.backend)?;
    Ok(rates_from_solution(nc, &kept, &xstar))
}

/// Sorted intersection of two ascending link lists.
fn sorted_intersection(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The fast backend's equation set: a few path pairs per link, chosen
/// from the link's traverser list without building the full pair
/// system. Exposed for the bench binary's row-count reporting.
pub fn deng_select_pairs(red: &ReducedTopology) -> Vec<(usize, usize)> {
    let ppl = red.paths_per_link();
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    let mut push = |a: usize, b: usize, pairs: &mut Vec<(usize, usize)>| {
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            pairs.push(key);
        }
    };
    for ps in &ppl {
        match ps.len() {
            0 => {}
            1 => push(ps[0].index(), ps[0].index(), &mut pairs),
            n => {
                // Spread the picks across the traverser list so nearby
                // links don't all select the same pair: first two,
                // ends, and a middle-adjacent pair.
                push(ps[0].index(), ps[1].index(), &mut pairs);
                push(ps[0].index(), ps[n - 1].index(), &mut pairs);
                if n > 2 {
                    push(ps[n / 2].index(), ps[n / 2 - 1].index(), &mut pairs);
                }
            }
        }
    }
    pairs
}

/// The fast backend's Phase 1: per-link pair selection + Gauss–Seidel
/// redistribution. Returns `(variances, rows_used, clamped_rows)`.
pub fn deng_fast_variances(
    red: &ReducedTopology,
    centered: &CenteredMeasurements,
) -> (Vec<f64>, usize, usize) {
    let nc = red.num_links();
    let pairs = deng_select_pairs(red);
    let mut sigmas = centered.pair_covariances(&pairs);
    // Negative sample covariances carry no variance information
    // (the paper drops those rows; here we clamp so the row still
    // pins its links' variances toward zero).
    let mut clamped = 0usize;
    for s in sigmas.iter_mut() {
        if *s < 0.0 {
            *s = 0.0;
            clamped += 1;
        }
    }
    // Row supports: shared links of each selected pair.
    let mut rows: Vec<Vec<usize>> = Vec::with_capacity(pairs.len());
    let mut rows_of: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for (r, &(a, b)) in pairs.iter().enumerate() {
        let row = if a == b {
            red.path_links(losstomo_topology::PathId(a as u32)).to_vec()
        } else {
            sorted_intersection(
                red.path_links(losstomo_topology::PathId(a as u32)),
                red.path_links(losstomo_topology::PathId(b as u32)),
            )
        };
        for &k in &row {
            rows_of[k].push(r);
        }
        rows.push(row);
    }
    // Gauss–Seidel: each sweep re-solves every link's equations given
    // the current estimates of the other links on its rows.
    let mut v = vec![0.0_f64; nc];
    let mut row_sum: Vec<f64> = rows
        .iter()
        .map(|row| row.iter().map(|&l| v[l]).sum())
        .collect();
    for _ in 0..DENG_SWEEPS {
        for k in 0..nc {
            if rows_of[k].is_empty() {
                continue;
            }
            let mut acc = 0.0;
            for &r in &rows_of[k] {
                acc += sigmas[r] - (row_sum[r] - v[k]);
            }
            let new = (acc / rows_of[k].len() as f64).max(0.0);
            let delta = new - v[k];
            if delta != 0.0 {
                for &r in &rows_of[k] {
                    row_sum[r] += delta;
                }
                v[k] = new;
            }
        }
    }
    (v, pairs.len(), clamped)
}

impl LossEstimator for DengFastEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::DengFast
    }

    fn estimate(
        &self,
        red: &ReducedTopology,
        centered: &CenteredMeasurements,
        y_eval: &[f64],
    ) -> Result<EstimatorOutput, LinalgError> {
        let (v, rows_used, clamped) = deng_fast_variances(red, centered);
        let estimate = deng_screened_phase2(red, &v, y_eval, &self.lia)?;
        Ok(EstimatorOutput {
            estimate,
            diagnostics: EstimatorDiagnostics {
                backend: self.name(),
                rows_used,
                dropped_rows: clamped,
                variances: v,
            },
        })
    }
}

// ---------------------------------------------------------------------
// First-moment baseline
// ---------------------------------------------------------------------

/// The naive first-moment baseline as a [`LossEstimator`].
///
/// Ignores the training snapshots entirely and solves `Y = R X` for the
/// evaluation snapshot with the pivoted-QR basic solution (see
/// [`crate::baselines`], which delegates here).
#[derive(Debug, Clone)]
pub struct FirstMomentEstimator;

/// The basic (pivoted-QR) first-moment solution: per-link transmission
/// rates and the pivot-basis kept mask.
pub(crate) fn first_moment_solution(
    red: &ReducedTopology,
    y: &[f64],
) -> Result<(Vec<f64>, Vec<bool>), LinalgError> {
    if y.len() != red.num_paths() {
        return Err(LinalgError::DimensionMismatch(format!(
            "snapshot has {} paths, topology has {}",
            y.len(),
            red.num_paths()
        )));
    }
    let dense = red.matrix.to_dense();
    let qr = PivotedQr::new(&dense)?;
    let basis = qr.independent_columns();
    let sub = dense.select_columns(&basis);
    let x = PivotedQr::new(&sub)?.solve_least_squares(y)?;
    let mut transmission = vec![1.0; red.num_links()];
    let mut kept = vec![false; red.num_links()];
    for (pos, &k) in basis.iter().enumerate() {
        // Deliberately NOT clamped to [0, 1]: the basic solution happily
        // assigns non-physical rates > 1 to compensate other links —
        // one more symptom of first-moment un-identifiability.
        transmission[k] = x[pos].exp();
        kept[k] = true;
    }
    Ok((transmission, kept))
}

impl LossEstimator for FirstMomentEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::FirstMoment
    }

    fn estimate(
        &self,
        red: &ReducedTopology,
        _centered: &CenteredMeasurements,
        y_eval: &[f64],
    ) -> Result<EstimatorOutput, LinalgError> {
        let (transmission, kept) = first_moment_solution(red, y_eval)?;
        let kept_count = kept.iter().filter(|&&k| k).count();
        Ok(EstimatorOutput {
            estimate: LinkRateEstimate {
                transmission,
                kept,
                kept_count,
            },
            diagnostics: EstimatorDiagnostics {
                backend: self.name(),
                rows_used: 0,
                dropped_rows: 0,
                variances: vec![0.0; red.num_links()],
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::estimate_variances;
    use losstomo_netsim::{simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig};
    use losstomo_topology::gen::tree::{self, TreeParams};
    use losstomo_topology::gen::waxman::{self, WaxmanParams};
    use losstomo_topology::{compute_paths, fixtures, reduce};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_tree(seed: u64, nodes: usize) -> ReducedTopology {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tree::generate(
            TreeParams {
                nodes,
                max_branching: 4,
            },
            &mut rng,
        );
        let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
        reduce(&t.graph, &paths)
    }

    fn simulated(
        red: &ReducedTopology,
        m: usize,
        seed: u64,
    ) -> (CenteredMeasurements, Vec<f64>, losstomo_netsim::Snapshot) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.1,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let ms = simulate_run(red, &mut scenario, &ProbeConfig::default(), m + 1, &mut rng);
        let train = losstomo_netsim::MeasurementSet {
            snapshots: ms.snapshots[..m].to_vec(),
        };
        let eval = ms.snapshots[m].clone();
        let y = eval.log_rates();
        (CenteredMeasurements::new(&train), y, eval)
    }

    #[test]
    fn kind_names_roundtrip_through_parse() {
        for kind in EstimatorKind::all() {
            assert_eq!(EstimatorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EstimatorKind::parse("zhu"), Some(EstimatorKind::ZhuMle));
        assert_eq!(EstimatorKind::parse("fm"), Some(EstimatorKind::FirstMoment));
        assert_eq!(EstimatorKind::parse("nope"), None);
    }

    #[test]
    fn build_dispatches_every_kind() {
        for kind in EstimatorKind::all() {
            let est = build_estimator(
                kind,
                LiaConfig::default(),
                VarianceConfig::default(),
                PairBudget::Full,
            );
            assert_eq!(est.kind(), kind);
            assert_eq!(est.name(), kind.name());
        }
    }

    #[test]
    fn lia_backend_is_bit_identical_to_manual_pipeline() {
        let red = small_tree(11, 60);
        let (centered, y, _) = simulated(&red, 25, 5);
        let backend = LiaEstimator {
            lia: LiaConfig::default(),
            variance: VarianceConfig::default(),
            pair_budget: PairBudget::Full,
        };
        let out = backend.estimate(&red, &centered, &y).unwrap();
        let aug = AugmentedSystem::build(&red);
        let var_est = estimate_variances(&red, &aug, &centered, &VarianceConfig::default()).unwrap();
        let manual = infer_link_rates(&red, &var_est.v, &y, &LiaConfig::default()).unwrap();
        assert_eq!(out.estimate.kept, manual.kept);
        for (a, b) in out.estimate.transmission.iter().zip(&manual.transmission) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in out.diagnostics.variances.iter().zip(&var_est.v) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(out.diagnostics.dropped_rows, var_est.dropped_rows);
    }

    #[test]
    fn zhu_recovers_exact_variances_from_exact_covariances() {
        let red = small_tree(12, 80);
        let aug = AugmentedSystem::build(&red);
        // Synthetic ground-truth variances, then exact covariances
        // sigma_r = sum of v_true over the row's shared links.
        let v_true: Vec<f64> = (0..red.num_links())
            .map(|k| 1e-4 + 1e-3 * ((k * 7 % 13) as f64))
            .collect();
        let sigmas: Vec<f64> = (0..aug.num_rows())
            .map(|r| aug.row(r).iter().map(|&k| v_true[k]).sum())
            .collect();
        let v = closed_form_variances(&red, &aug, &sigmas).unwrap();
        for (k, (a, b)) in v.iter().zip(&v_true).enumerate() {
            assert!(
                (a - b).abs() < 1e-10,
                "link {k}: closed form {a}, truth {b}"
            );
        }
    }

    #[test]
    fn zhu_rejects_non_tree_topologies() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = waxman::generate(
            WaxmanParams {
                nodes: 60,
                hosts: 12,
                ..WaxmanParams::default()
            },
            &mut rng,
        );
        let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
        let red = reduce(&t.graph, &paths);
        let (centered, y, _) = simulated(&red, 10, 14);
        let backend = ZhuMleEstimator {
            lia: LiaConfig::default(),
        };
        let err = backend.estimate(&red, &centered, &y).unwrap_err();
        let msg = format!("{err:?}");
        assert!(msg.contains("tree"), "unexpected error: {msg}");
    }

    #[test]
    fn zhu_rejects_mismatched_sigma_count() {
        let red = small_tree(15, 40);
        let aug = AugmentedSystem::build(&red);
        assert!(closed_form_variances(&red, &aug, &[0.0]).is_err());
    }

    #[test]
    fn deng_pairs_cover_every_traversed_link() {
        let red = small_tree(16, 80);
        let pairs = deng_select_pairs(&red);
        // Every selected pair is normalised and unique.
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(a <= b);
            assert!(seen.insert((a, b)));
        }
        // Every link appears in at least one pair's shared set.
        let mut covered = vec![false; red.num_links()];
        for &(a, b) in &pairs {
            let row = if a == b {
                red.path_links(losstomo_topology::PathId(a as u32)).to_vec()
            } else {
                sorted_intersection(
                    red.path_links(losstomo_topology::PathId(a as u32)),
                    red.path_links(losstomo_topology::PathId(b as u32)),
                )
            };
            for k in row {
                covered[k] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "some link has no equation");
        // The whole point: far fewer rows than the full pair system.
        assert!(pairs.len() < AugmentedSystem::build(&red).num_rows());
    }

    #[test]
    fn deng_detects_congested_links_on_tree() {
        let red = small_tree(17, 100);
        let (centered, y, eval) = simulated(&red, 40, 18);
        let backend = DengFastEstimator {
            lia: LiaConfig::default(),
        };
        let out = backend.estimate(&red, &centered, &y).unwrap();
        let threshold = losstomo_netsim::DEFAULT_LOSS_THRESHOLD;
        let est_flags: Vec<bool> = out
            .estimate
            .loss_rates()
            .iter()
            .map(|&l| l > threshold)
            .collect();
        let truth: Vec<bool> = eval.link_truth.iter().map(|t| t.congested).collect();
        let loc = crate::metrics::location_accuracy(&truth, &est_flags);
        assert!(
            loc.detection_rate > 0.7,
            "Deng DR {:.2} too low",
            loc.detection_rate
        );
    }

    #[test]
    fn first_moment_backend_matches_baseline_fn() {
        let red = fixtures::reduced(&fixtures::figure1());
        let phi = [0.9_f64, 1.0, 0.8, 1.0, 1.0];
        let x: Vec<f64> = phi.iter().map(|p| p.ln()).collect();
        let y = red.matrix.matvec(&x).unwrap();
        let baseline = crate::baselines::first_moment_basic(&red, &y).unwrap();
        let backend = FirstMomentEstimator;
        let centered = CenteredMeasurements::from_rows(vec![y.clone(), y.clone()]);
        let out = backend.estimate(&red, &centered, &y).unwrap();
        for (a, b) in out.estimate.transmission.iter().zip(&baseline) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            out.estimate.kept_count,
            out.estimate.kept.iter().filter(|&&k| k).count()
        );
    }

    #[test]
    fn diagnostics_report_backend_and_rows() {
        let red = small_tree(19, 60);
        let (centered, y, _) = simulated(&red, 20, 20);
        for kind in EstimatorKind::all() {
            let est = build_estimator(
                kind,
                LiaConfig::default(),
                VarianceConfig::default(),
                PairBudget::Full,
            );
            let out = match est.estimate(&red, &centered, &y) {
                Ok(out) => out,
                Err(_) => continue, // Zhu may reject non-ideal shapes
            };
            assert_eq!(out.diagnostics.backend, kind.name());
            assert_eq!(out.diagnostics.variances.len(), red.num_links());
            assert_eq!(out.estimate.transmission.len(), red.num_links());
        }
    }

    #[test]
    fn sorted_intersection_basics() {
        assert_eq!(sorted_intersection(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(sorted_intersection(&[], &[1]), Vec::<usize>::new());
        assert_eq!(sorted_intersection(&[4], &[4]), vec![4]);
    }
}
