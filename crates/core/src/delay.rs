//! Delay tomography — the paper's first proposed extension (Section 8).
//!
//! "A first immediate extension is to compute link delays. Congested
//! links usually have high delay variations. In this direction, we first
//! need to take multiple snapshots of the network to learn about the
//! delay variances. Based on the inferred variances, we could then
//! reduce the first order moment equations by removing links with small
//! congestion delays and then solve for the delays of the remaining
//! congested links."
//!
//! Delays compose *additively* along a path, so the measurement model is
//! `Y = R X` directly (no log transform) with `X_k` the mean link delay
//! of the snapshot. Two things change relative to loss:
//!
//! * the covariance identity `Σ = R diag(v) Rᵀ` and Theorem 1 carry over
//!   unchanged — the same [`crate::augmented::AugmentedSystem`] serves
//!   Phase 1;
//! * un-congested links do **not** have near-zero delay (they still have
//!   propagation delay), so Phase 2 must operate on the *queueing
//!   component*: we subtract a per-path baseline (the minimum observed
//!   path delay, an estimate of its propagation total) and approximate
//!   eliminated links' queueing delay by 0.

use crate::augmented::AugmentedSystem;
use crate::covariance::CenteredMeasurements;
use crate::lia::{EliminationStrategy, LiaConfig};
use crate::variance::{estimate_variances, VarianceConfig, VarianceEstimate};
use losstomo_linalg::{LinalgError, PivotedQr};
use losstomo_netsim::delay::DelaySnapshot;
use losstomo_topology::ReducedTopology;
use serde::{Deserialize, Serialize};

/// Result of the delay-inference extension on one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayEstimate {
    /// Estimated mean *queueing* delay per link (ms); 0 for eliminated
    /// links.
    pub queue_delay: Vec<f64>,
    /// Whether each link survived into the reduced system.
    pub kept: Vec<bool>,
}

impl DelayEstimate {
    /// Links whose estimated queueing delay exceeds `threshold` ms.
    pub fn congested_links(&self, threshold: f64) -> Vec<usize> {
        self.queue_delay
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > threshold)
            .map(|(k, _)| k)
            .collect()
    }
}

/// Learns per-link delay variances from `m` snapshots (Phase 1 for
/// delays; identical moment system, no log transform).
pub fn estimate_delay_variances(
    red: &ReducedTopology,
    aug: &AugmentedSystem,
    snapshots: &[DelaySnapshot],
    cfg: &VarianceConfig,
) -> Result<VarianceEstimate, LinalgError> {
    let rows: Vec<Vec<f64>> = snapshots.iter().map(|s| s.path_delay.clone()).collect();
    let centered = CenteredMeasurements::from_rows(rows);
    estimate_variances(red, aug, &centered, cfg)
}

/// Phase 2 for delays: subtract the per-path baseline (minimum path
/// delay over the learning window ≈ propagation total), eliminate the
/// low-variance columns, and solve for the queueing delays of the
/// surviving links.
///
/// `history` supplies the baselines; `eval` is the snapshot to explain.
///
/// Limitation (inherent to baseline subtraction): a link congested in
/// *every* history snapshot leaks its minimum queueing delay into the
/// baseline, so only its excess over that minimum is attributed to it.
/// With episodic congestion (the regime of Section 7.2.2) the baseline
/// tracks true propagation and queueing delays are recovered in full.
pub fn infer_link_delays(
    red: &ReducedTopology,
    variances: &[f64],
    history: &[DelaySnapshot],
    eval: &DelaySnapshot,
    cfg: &LiaConfig,
) -> Result<DelayEstimate, LinalgError> {
    let np = red.num_paths();
    if eval.path_delay.len() != np {
        return Err(LinalgError::DimensionMismatch(format!(
            "snapshot has {} paths, topology has {np}",
            eval.path_delay.len()
        )));
    }
    if history.is_empty() {
        return Err(LinalgError::Empty);
    }
    // Per-path baseline: the smallest delay ever observed on the path.
    let mut baseline = vec![f64::INFINITY; np];
    for snap in history {
        for (b, &d) in baseline.iter_mut().zip(snap.path_delay.iter()) {
            *b = b.min(d);
        }
    }
    let y: Vec<f64> = eval
        .path_delay
        .iter()
        .zip(baseline.iter())
        .map(|(&d, &b)| (d - b).max(0.0))
        .collect();

    let kept = crate::lia::select_full_rank_columns(
        red,
        variances,
        match cfg.elimination {
            s @ EliminationStrategy::PaperOrder => s,
            s @ EliminationStrategy::GreedyMatroid => s,
        },
    );
    let dense = red.matrix.to_dense();
    let rstar = dense.select_columns(&kept);
    let x = PivotedQr::new(&rstar)?.solve_least_squares(&y)?;
    let mut queue_delay = vec![0.0; red.num_links()];
    let mut kept_mask = vec![false; red.num_links()];
    for (pos, &k) in kept.iter().enumerate() {
        queue_delay[k] = x[pos].max(0.0);
        kept_mask[k] = true;
    }
    Ok(DelayEstimate {
        queue_delay,
        kept: kept_mask,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_netsim::delay::{
        simulate_delay_run, DelayConfig, DelayNetwork,
    };
    use losstomo_netsim::{CongestionDynamics, CongestionScenario};
    use losstomo_topology::gen::tree::{self, TreeParams};
    use losstomo_topology::{compute_paths, reduce};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_delay_pipeline(seed: u64) -> (Vec<bool>, DelayEstimate, DelaySnapshot) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = tree::generate(
            TreeParams {
                nodes: 80,
                max_branching: 4,
            },
            &mut rng,
        );
        let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
        let red = reduce(&topo.graph, &paths);
        let cfg = DelayConfig::default();
        let net = DelayNetwork::draw(&red, &cfg, &mut rng);
        // Episodic congestion: links alternate between good and
        // congested states, so every path sees its propagation-only
        // baseline at least once in the window.
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.1,
            CongestionDynamics::Markov {
                stay_congested: 0.7,
            },
            &mut rng,
        );
        let m = 40;
        let snaps = simulate_delay_run(&red, &net, &mut scenario, &cfg, m + 1, &mut rng);
        let aug = AugmentedSystem::build(&red);
        let v =
            estimate_delay_variances(&red, &aug, &snaps[..m], &VarianceConfig::default())
                .unwrap();
        let est = infer_link_delays(
            &red,
            &v.v,
            &snaps[..m],
            &snaps[m],
            &LiaConfig::default(),
        )
        .unwrap();
        // "Detectable" congested links: congested in the evaluation
        // snapshot AND congested often enough during the learning window
        // for Phase 1 to have seen their delay variance. Links whose
        // first congestion episode *is* the evaluation snapshot are
        // invisible to any variance-based method.
        let window_congestion: Vec<usize> = (0..red.num_links())
            .map(|k| snaps[..m].iter().filter(|s| s.congested[k]).count())
            .collect();
        let truth: Vec<bool> = (0..red.num_links())
            .map(|k| snaps[m].congested[k] && window_congestion[k] >= m / 4)
            .collect();
        (truth, est, snaps[m].clone())
    }

    #[test]
    fn congested_links_found_via_delays() {
        let (truth, est, _) = run_delay_pipeline(1);
        // Detectable congested links must be among the estimated
        // high-queue links (threshold 2 ms, well below the 5–40 ms
        // congested range).
        let detected = est.congested_links(2.0);
        let missed: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(k, &c)| c && !detected.contains(k))
            .map(|(k, _)| k)
            .collect();
        let total = truth.iter().filter(|&&c| c).count();
        assert!(
            missed.len() <= total / 4,
            "missed {missed:?} of {total} detectable congested links"
        );
    }

    #[test]
    fn estimated_queue_delays_track_truth() {
        let (_, est, eval) = run_delay_pipeline(2);
        for (k, (&est_d, &true_d)) in est
            .queue_delay
            .iter()
            .zip(eval.link_queue_delay.iter())
            .enumerate()
        {
            if est.kept[k] && true_d > 5.0 {
                assert!(
                    (est_d - true_d).abs() < 0.5 * true_d + 3.0,
                    "link {k}: est {est_d:.2} vs true {true_d:.2}"
                );
            }
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let red = losstomo_topology::fixtures::reduced(&losstomo_topology::fixtures::figure1());
        let est = infer_link_delays(
            &red,
            &[0.0; 5],
            &[],
            &DelaySnapshot {
                path_delay: vec![0.0; 3],
                link_queue_delay: vec![],
                congested: vec![],
            },
            &LiaConfig::default(),
        );
        assert!(est.is_err());
    }
}
