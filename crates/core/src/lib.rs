//! # losstomo-core — Loss Inference with Second-Order Statistics
//!
//! Rust implementation of the **LIA** algorithm from Nguyen & Thiran,
//! *"Network Loss Inference with Second Order Statistics of End-to-End
//! Flows"*, IMC 2007.
//!
//! The mean loss rates of network links are **not** identifiable from
//! end-to-end unicast measurements (the first-moment system `Y = R X`
//! is rank deficient on essentially every topology). The paper's insight
//! is that the *variances* of the links' log transmission rates **are**
//! identifiable: the covariance matrix of path measurements satisfies
//! `Σ = R diag(v) Rᵀ`, equivalently `Σ* = A v` where the augmented
//! matrix `A` (pairwise products of routing rows) provably has full
//! column rank (Theorem 1). Because congestion losses are bursty, a
//! link's variance is a monotone proxy for its congestion level, so the
//! learnt variances tell us *which columns of `R` can be safely deleted*
//! (the quiet links), leaving a full-rank first-moment system for the
//! congested ones.
//!
//! ## Pipeline
//!
//! ```text
//!  m snapshots ──► covariance (eq. 7) ──► Σ* = A v  (Phase 1)
//!                                              │ variances v
//!  snapshot m+1 ──► Y = R* X* on the highest-variance
//!                   full-rank column set        (Phase 2)
//!                                              │
//!                 per-link loss rates, DR/FPR, error factors
//! ```
//!
//! ## Module map
//!
//! * [`covariance`] — sample moments of path measurements (eq. 7)
//! * [`augmented`] — the matrix `A` of Definition 1 + Theorem-1 check
//! * [`variance`] — Phase 1 (GMM least-squares estimator)
//! * [`lia`] — Phase 2 column elimination + reduced solve
//! * [`streaming`] — incremental covariance + online two-phase
//!   estimation over snapshot streams
//! * [`scfs`] — the SCFS single-snapshot baseline of Figure 5
//! * [`estimator`] — the estimator zoo: LIA, Zhu's closed-form MLE,
//!   Deng-style fast matching, first-moment, behind one trait
//! * [`baselines`] — naive first-moment inversion (thin wrapper over
//!   the zoo's first-moment backend)
//! * [`metrics`] — DR/FPR, error factor `f_δ`, CDFs, summaries
//! * [`validate`] — inference/validation split, eq. (11)
//! * [`analysis`] — Figure-3 scatter, Table-3 AS split, §7.2.2 durations
//! * [`identifiability`] — rank diagnostics for `R` and `A`
//! * [`experiment`] — the end-to-end simulation harness
//! * [`parallel`] — thread-count policy for the parallel stages

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod augmented;
pub mod budget;
pub mod delay;
pub mod baselines;
pub mod covariance;
pub mod estimator;
pub mod experiment;
pub mod identifiability;
pub mod lia;
pub mod metrics;
pub mod parallel;
pub mod scfs;
pub mod streaming;
pub mod validate;
pub mod variance;

pub use augmented::AugmentedSystem;
pub use budget::{
    apply_budget, parse_pair_budget, select_pairs, select_pairs_leverage, PairBudget,
    PairSelection, PAIR_BUDGET_ENV,
};
pub use covariance::CenteredMeasurements;
pub use estimator::{
    build_estimator, closed_form_variances, deng_fast_variances, EstimatorDiagnostics,
    EstimatorKind, EstimatorOutput, LossEstimator,
};
pub use experiment::{run_experiment, run_many, ExperimentConfig, ExperimentResult};
pub use identifiability::{check_identifiability, IdentifiabilityReport};
pub use delay::{estimate_delay_variances, infer_link_delays, DelayEstimate};
pub use lia::{
    dense_phase2_max_cols, infer_link_rates, select_full_rank_columns, EliminationStrategy,
    LiaConfig, LinkRateEstimate, Phase2Dispatch, RankView,
};
pub use metrics::{location_accuracy, LocationAccuracy, RateErrors, Summary};
pub use scfs::{scfs_diagnose, ScfsConfig};
pub use streaming::{
    ChurnReport, FactorRefresh, OnlineConfig, OnlineEstimator, OnlineUpdate, RefreshTiming,
    ScratchMode, Staleness, StreamingCovariance, WindowMode,
};
pub use validate::{cross_validate, CrossValidationConfig, CrossValidationResult};
pub use variance::{
    estimate_variances, estimate_variances_cached, estimate_variances_from_sigmas,
    estimate_variances_scratch, GramCache, Phase1Dispatch, Phase1Scratch, VarianceConfig,
    VarianceEstimate,
};
