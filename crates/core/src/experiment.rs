//! End-to-end experiment harness: generate losses, learn variances,
//! infer rates, score against ground truth.
//!
//! This is the engine behind every simulation figure and table
//! (Sections 6.1–6.3): one [`run_experiment`] call reproduces a single
//! cell; [`run_many`] repeats it across seeds in parallel (the paper
//! averages 10 runs per configuration).

use crate::budget::PairBudget;
use crate::covariance::CenteredMeasurements;
use crate::estimator::{build_estimator, EstimatorKind};
use crate::lia::{LiaConfig, LinkRateEstimate};
use crate::metrics::{location_accuracy, LocationAccuracy, RateErrors, DEFAULT_DELTA};
use crate::scfs::{scfs_diagnose, ScfsConfig};
use crate::variance::VarianceConfig;
use losstomo_linalg::LinalgError;
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig,
};
use losstomo_topology::ReducedTopology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Full configuration of one simulated experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Fraction of congested links (the paper's `p`, default 10 %).
    pub p_congested: f64,
    /// Learning snapshots `m` (default 50).
    pub snapshots: usize,
    /// Probe engine settings (`S`, loss model, loss process).
    pub probe: ProbeConfig,
    /// Congested-set evolution (default fixed, as in Section 6).
    pub dynamics: CongestionDynamics,
    /// Phase-2 settings.
    pub lia: LiaConfig,
    /// Phase-1 settings.
    pub variance: VarianceConfig,
    /// Row budget for the augmented pair system (default: the
    /// `LOSSTOMO_PAIR_BUDGET` knob, i.e. full when unset).
    pub pair_budget: PairBudget,
    /// Which estimator backend runs the inference (default: LIA).
    pub estimator: EstimatorKind,
    /// Error-factor margin `δ`.
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Also run the SCFS baseline on the evaluation snapshot.
    pub run_scfs: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            p_congested: 0.1,
            snapshots: 50,
            probe: ProbeConfig::default(),
            dynamics: CongestionDynamics::Fixed,
            lia: LiaConfig::default(),
            variance: VarianceConfig::default(),
            pair_budget: PairBudget::default(),
            estimator: EstimatorKind::default(),
            delta: DEFAULT_DELTA,
            seed: 0,
            run_scfs: false,
        }
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// LIA's congested-link location accuracy on the evaluation
    /// snapshot.
    pub location: LocationAccuracy,
    /// SCFS's accuracy on the same snapshot (if requested).
    pub scfs_location: Option<LocationAccuracy>,
    /// Per-link loss-rate errors of LIA.
    pub errors: RateErrors,
    /// Columns kept in `R*`.
    pub kept_count: usize,
    /// Truly congested links in the evaluation snapshot.
    pub congested_count: usize,
    /// Estimated link variances from Phase 1.
    pub variances: Vec<f64>,
    /// True per-link loss rates in the evaluation snapshot.
    pub true_loss: Vec<f64>,
    /// Estimated per-link loss rates.
    pub est_loss: Vec<f64>,
    /// Covariance rows dropped for being negative.
    pub dropped_rows: usize,
}

impl ExperimentResult {
    /// The Figure-7 statistic: congested links per kept column
    /// (must stay < 1 for the Phase-2 approximation to be safe).
    pub fn congested_to_kept_ratio(&self) -> f64 {
        if self.kept_count == 0 {
            0.0
        } else {
            self.congested_count as f64 / self.kept_count as f64
        }
    }
}

/// Runs one complete experiment on a prepared topology.
///
/// Simulates `m + 1` snapshots; the first `m` feed Phase 1, the last is
/// the evaluation snapshot for Phase 2 and the baselines.
pub fn run_experiment(
    red: &ReducedTopology,
    cfg: &ExperimentConfig,
) -> Result<ExperimentResult, LinalgError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scenario =
        CongestionScenario::draw(red.num_links(), cfg.p_congested, cfg.dynamics, &mut rng);
    let ms = simulate_run(red, &mut scenario, &cfg.probe, cfg.snapshots + 1, &mut rng);

    // Training snapshots feed the backend's learning stage (Phase 1
    // for LIA/Zhu/Deng; ignored by the first-moment baseline), the
    // evaluation snapshot feeds its solve stage.
    let train = losstomo_netsim::MeasurementSet {
        snapshots: ms.snapshots[..cfg.snapshots].to_vec(),
    };
    let centered = CenteredMeasurements::new(&train);
    let eval = &ms.snapshots[cfg.snapshots];
    let y = eval.log_rates();
    let backend = build_estimator(cfg.estimator, cfg.lia, cfg.variance, cfg.pair_budget);
    let out = backend.estimate(red, &centered, &y)?;

    Ok(score_against_truth(
        red,
        cfg,
        eval,
        &out.estimate,
        out.diagnostics.variances,
        out.diagnostics.dropped_rows,
    ))
}

/// Scores an estimate against a snapshot's ground truth, including the
/// optional SCFS baseline. Exposed so ablation binaries can score
/// alternative estimators with identical logic.
pub fn score_against_truth(
    red: &ReducedTopology,
    cfg: &ExperimentConfig,
    eval: &losstomo_netsim::Snapshot,
    est: &LinkRateEstimate,
    variances: Vec<f64>,
    dropped_rows: usize,
) -> ExperimentResult {
    let threshold = cfg.probe.loss_model.threshold();
    let true_loss: Vec<f64> = eval
        .link_truth
        .iter()
        .map(|t| t.true_loss_rate())
        .collect();
    // The paper's F is the set of links the loss model made congested
    // (diagnosis X is still thresholded on the *inferred* rates).
    let truth_flags: Vec<bool> = eval.link_truth.iter().map(|t| t.congested).collect();
    let est_loss = est.loss_rates();
    let est_flags: Vec<bool> = est_loss.iter().map(|&l| l > threshold).collect();
    let location = location_accuracy(&truth_flags, &est_flags);
    let errors = RateErrors::compare(&true_loss, &est_loss, cfg.delta);

    let scfs_location = if cfg.run_scfs {
        let diagnosed = scfs_diagnose(
            red,
            &eval.path_loss_rates(),
            &ScfsConfig {
                link_threshold: threshold,
            },
        );
        Some(location_accuracy(&truth_flags, &diagnosed))
    } else {
        None
    };

    ExperimentResult {
        location,
        scfs_location,
        errors,
        kept_count: est.kept_count,
        congested_count: truth_flags.iter().filter(|&&c| c).count(),
        variances,
        true_loss,
        est_loss,
        dropped_rows,
    }
}

/// Runs `n_runs` experiments with seeds `cfg.seed .. cfg.seed + n_runs`,
/// in parallel across threads (crossbeam scoped threads; results are
/// returned in seed order). Worker count follows
/// [`crate::parallel::num_threads`] (`LOSSTOMO_THREADS` caps it).
pub fn run_many(
    red: &ReducedTopology,
    cfg: &ExperimentConfig,
    n_runs: usize,
) -> Vec<Result<ExperimentResult, LinalgError>> {
    let n_threads = crate::parallel::num_threads().min(n_runs.max(1));
    let results = parking_lot::Mutex::new(Vec::with_capacity(n_runs));
    for _ in 0..n_runs {
        results.lock().push(None);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n_runs {
                    break;
                }
                let mut run_cfg = *cfg;
                run_cfg.seed = cfg.seed + i as u64;
                let r = run_experiment(red, &run_cfg);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("experiment worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all slots filled by workers"))
        .collect()
}

/// Averages location accuracies across successful runs.
pub fn average_location(results: &[Result<ExperimentResult, LinalgError>]) -> LocationAccuracy {
    let ok: Vec<&ExperimentResult> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    if ok.is_empty() {
        return LocationAccuracy {
            detection_rate: 0.0,
            false_positive_rate: 0.0,
            actual_congested: 0,
            diagnosed_congested: 0,
        };
    }
    let n = ok.len() as f64;
    LocationAccuracy {
        detection_rate: ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n,
        false_positive_rate: ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n,
        actual_congested: ok.iter().map(|r| r.location.actual_congested).sum::<usize>()
            / ok.len(),
        diagnosed_congested: ok
            .iter()
            .map(|r| r.location.diagnosed_congested)
            .sum::<usize>()
            / ok.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_topology::gen::tree::{self, TreeParams};
    use losstomo_topology::{compute_paths, reduce};

    fn small_tree(seed: u64) -> ReducedTopology {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tree::generate(
            TreeParams {
                nodes: 100,
                max_branching: 5,
            },
            &mut rng,
        );
        let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
        reduce(&t.graph, &paths)
    }

    #[test]
    fn lia_beats_chance_on_small_tree() {
        let red = small_tree(31);
        let cfg = ExperimentConfig {
            snapshots: 30,
            run_scfs: true,
            seed: 7,
            ..ExperimentConfig::default()
        };
        let res = run_experiment(&red, &cfg).unwrap();
        assert!(
            res.location.detection_rate > 0.8,
            "DR {:.2} too low",
            res.location.detection_rate
        );
        // At 100-node scale the kept column set is much larger than the
        // congested set, so borderline good links inflate the FPR; at
        // the paper's 1000-node scale (bench binaries) FPR drops below
        // a few percent because R* keeps almost exactly the congested
        // links.
        assert!(
            res.location.false_positive_rate < 0.45,
            "FPR {:.2} too high",
            res.location.false_positive_rate
        );
        assert!(res.scfs_location.is_some());
        // Figure-7 invariant: congested links fit within R*.
        assert!(res.congested_to_kept_ratio() <= 1.0);
    }

    #[test]
    fn run_many_is_deterministic_and_ordered() {
        let red = small_tree(32);
        let cfg = ExperimentConfig {
            snapshots: 10,
            seed: 100,
            ..ExperimentConfig::default()
        };
        let a = run_many(&red, &cfg, 3);
        let b = run_many(&red, &cfg, 3);
        for (x, y) in a.iter().zip(b.iter()) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.location, y.location);
        }
        // Different seeds give different draws.
        let drs: Vec<f64> = a
            .iter()
            .map(|r| r.as_ref().unwrap().congested_count as f64)
            .collect();
        assert!(drs.len() == 3);
    }

    #[test]
    fn average_location_handles_empty() {
        let avg = average_location(&[]);
        assert_eq!(avg.detection_rate, 0.0);
    }
}
