//! The Loss Inference Algorithm (LIA) — Phase 2 and the end-to-end
//! driver (Section 5.2–5.3).
//!
//! After Phase 1 has learnt the link variances, Phase 2:
//!
//! 1. sorts links in increasing variance order (by Assumption S.3 this
//!    is increasing congestion order),
//! 2. removes the least-variant columns from the first-moment system
//!    `Y = R X` until the remaining matrix `R*` has full column rank,
//! 3. solves `Y = R* X*` by least squares for the surviving (congested)
//!    links, and
//! 4. approximates the removed links' transmission rates by 1 (loss 0).
//!
//! The paper's loop removes the globally smallest-variance column while
//! `R*` is rank deficient. Because "subset of an independent set is
//! independent", the set of survivors is monotone in the cut position,
//! so we find the minimal cut by bisection over the variance order —
//! identical output, `O(log n_c)` rank checks instead of `O(n_c)`.
//! A greedy-matroid variant that keeps every column independent of the
//! already-kept higher-variance set is provided for the ablation study
//! (it never discards an identifiable congested link).
//!
//! Phase 2 consumes whatever variances Phase 1 produced; it is
//! agnostic to the augmented-pair row budget ([`crate::budget`]) —
//! budgeting changes how many covariance rows *feed* Phase 1, not the
//! first-moment system `Y = R X` solved here.

use losstomo_linalg::{lstsq, CsrMatrix, LinalgError, LstsqBackend, Matrix, PivotedQr, SparseQr};
use losstomo_topology::ReducedTopology;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// How Phase 2 chooses the columns of `R*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EliminationStrategy {
    /// The paper's rule: drop the smallest-variance columns (as a
    /// prefix of the variance order) until `R*` has full column rank.
    #[default]
    PaperOrder,
    /// Keep a maximal independent set, scanning columns in decreasing
    /// variance order (matroid greedy). Keeps a superset of the
    /// information the paper's rule keeps.
    GreedyMatroid,
}

/// Which factorisation family Phase 2 uses for its rank checks and the
/// reduced least-squares solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Phase2Dispatch {
    /// Dense pivoted QR up to [`dense_phase2_max_cols`] columns, the
    /// sparse Givens QR above (the routing matrix is 1–2 % dense at
    /// mesh scale, where densifying dominates the pipeline). Default.
    #[default]
    Auto,
    /// Force the dense pivoted-QR path at any size — the pre-sparse
    /// behaviour, kept as the dispatchable oracle for golden tests.
    Dense,
    /// Force the sparse path at any size (tests, benchmarks).
    Sparse,
}

/// The column count up to which [`Phase2Dispatch::Auto`] stays dense:
/// the `LOSSTOMO_DENSE_PHASE2_MAX_COLS` environment variable, default
/// 2500 (read once per process).
pub fn dense_phase2_max_cols() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("LOSSTOMO_DENSE_PHASE2_MAX_COLS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2500)
    })
}

impl Phase2Dispatch {
    /// Whether a system with `nc` link columns resolves to the dense
    /// path.
    pub fn is_dense(self, nc: usize) -> bool {
        match self {
            Phase2Dispatch::Auto => nc <= dense_phase2_max_cols(),
            Phase2Dispatch::Dense => true,
            Phase2Dispatch::Sparse => false,
        }
    }
}

/// The routing-matrix view Phase 2 runs its rank checks and reduced
/// solves against — materialised **once** per estimator/bisection and
/// reused for every check, so neither path re-materialises `R`.
#[derive(Debug, Clone)]
pub enum RankView {
    /// Dense copy of `R`; subset checks use the pivoted QR (oracle).
    Dense(Matrix),
    /// CSR view of `R`; subset checks use the sparse Givens QR.
    Sparse(CsrMatrix),
}

impl RankView {
    /// Builds the view the dispatch policy selects for `red`.
    pub fn new(red: &ReducedTopology, dispatch: Phase2Dispatch) -> RankView {
        if dispatch.is_dense(red.num_links()) {
            RankView::Dense(red.matrix.to_dense())
        } else {
            RankView::Sparse(red.matrix.to_sparse())
        }
    }

    /// Does the column subset `kept` (any order for the dense view;
    /// sorted internally for the sparse one) have full column rank?
    /// `np` is the row count; a subset wider than `np` is trivially
    /// dependent and short-circuits.
    pub(crate) fn subset_full_rank(&self, kept: &[usize], np: usize) -> bool {
        if kept.is_empty() {
            return true;
        }
        if kept.len() > np {
            return false;
        }
        match self {
            RankView::Dense(dense) => {
                let sub = dense.select_columns(kept);
                losstomo_linalg::rank(&sub) == kept.len()
            }
            RankView::Sparse(csr) => {
                let mut sorted = kept.to_vec();
                sorted.sort_unstable();
                let sub = csr.select_columns(&sorted);
                match SparseQr::new(sub) {
                    Ok(qr) => qr.has_full_column_rank(),
                    Err(_) => false,
                }
            }
        }
    }
}

/// LIA configuration.
#[derive(Debug, Clone, Copy)]
pub struct LiaConfig {
    /// Column-elimination strategy for Phase 2.
    pub elimination: EliminationStrategy,
    /// Backend for the reduced first-moment solve (dense path; the
    /// sparse path always solves through the sparse QR).
    pub backend: LstsqBackend,
    /// Dense-vs-sparse factorisation dispatch.
    pub dispatch: Phase2Dispatch,
}

impl Default for LiaConfig {
    fn default() -> Self {
        LiaConfig {
            elimination: EliminationStrategy::PaperOrder,
            backend: LstsqBackend::HouseholderQr,
            dispatch: Phase2Dispatch::Auto,
        }
    }
}

/// The output of Phase 2 for one snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkRateEstimate {
    /// Estimated transmission rate `φ̂_{e_k}` per virtual link
    /// (1.0 for links eliminated as un-congested).
    pub transmission: Vec<f64>,
    /// Whether each link survived into `R*` (true) or was eliminated
    /// and approximated as loss-free (false).
    pub kept: Vec<bool>,
    /// Number of columns of `R*`.
    pub kept_count: usize,
}

impl LinkRateEstimate {
    /// Estimated loss rate `1 − φ̂` per link.
    pub fn loss_rates(&self) -> Vec<f64> {
        self.transmission.iter().map(|t| 1.0 - t).collect()
    }

    /// Links whose estimated loss rate exceeds the threshold `t_l`.
    pub fn congested_links(&self, threshold: f64) -> Vec<usize> {
        self.transmission
            .iter()
            .enumerate()
            .filter(|(_, &t)| 1.0 - t > threshold)
            .map(|(k, _)| k)
            .collect()
    }
}

/// Selects the columns of `R*` given the learnt variances.
///
/// Returns the kept column indices (ascending). The paper's strategy
/// bisects over the number of dropped smallest-variance columns; the
/// greedy strategy scans in decreasing variance order and keeps columns
/// that enlarge the span.
///
/// This convenience entry point always uses the
/// [`Phase2Dispatch::Auto`] policy for its rank checks; to force the
/// dense oracle or the sparse path, go through
/// [`infer_link_rates`]/[`LiaConfig::dispatch`] or call
/// [`select_paper_order_hinted`] with an explicit [`RankView`].
pub fn select_full_rank_columns(
    red: &ReducedTopology,
    variances: &[f64],
    strategy: EliminationStrategy,
) -> Vec<usize> {
    let nc = red.num_links();
    assert_eq!(
        variances.len(),
        nc,
        "got {} variances for {} links",
        variances.len(),
        nc
    );
    select_full_rank_columns_ordered(red, &variance_order(variances), strategy)
}

/// The ascending variance order Phase 2 eliminates in: link indices
/// sorted by increasing variance, ties broken by link index for
/// reproducibility.
///
/// The kept column set is a pure function of this permutation (not of
/// the variance *values*), which is what lets the streaming estimator
/// skip the rank bisection entirely whenever a refresh leaves the order
/// unchanged.
pub fn variance_order(variances: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..variances.len()).collect();
    order.sort_by(|&a, &b| variances[a].total_cmp(&variances[b]).then(a.cmp(&b)));
    order
}

/// [`select_full_rank_columns`] with a precomputed [`variance_order`]
/// permutation (`order.len()` must equal `red.num_links()`); same
/// [`Phase2Dispatch::Auto`] policy.
pub fn select_full_rank_columns_ordered(
    red: &ReducedTopology,
    order: &[usize],
    strategy: EliminationStrategy,
) -> Vec<usize> {
    let nc = red.num_links();
    assert_eq!(
        order.len(),
        nc,
        "got a {}-element variance order for {} links",
        order.len(),
        nc
    );

    match strategy {
        EliminationStrategy::PaperOrder => {
            let view = RankView::new(red, Phase2Dispatch::Auto);
            select_paper_order_hinted(red, &view, order, None).0
        }
        EliminationStrategy::GreedyMatroid => {
            greedy_matroid_columns(&red.matrix.to_dense(), red.num_paths(), order)
        }
    }
}

/// The greedy-matroid selection body: incremental Gram–Schmidt over
/// columns in descending variance order. This ablation strategy is
/// dense at every size — it materialises one column at a time —
/// so callers that already hold a dense view pass it in.
fn greedy_matroid_columns(dense: &Matrix, np: usize, order: &[usize]) -> Vec<usize> {
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    for &j in order.iter().rev() {
        if basis.len() == np {
            break; // span is full
        }
        let mut col = dense.col(j);
        let norm0 = losstomo_linalg::vector::norm2(&col);
        if norm0 == 0.0 {
            continue;
        }
        for b in &basis {
            let proj = losstomo_linalg::vector::dot(b, &col);
            losstomo_linalg::vector::axpy(-proj, b, &mut col);
        }
        let residual = losstomo_linalg::vector::norm2(&col);
        if residual > 1e-10 * norm0 {
            losstomo_linalg::vector::scale(1.0 / residual, &mut col);
            basis.push(col);
            kept.push(j);
        }
    }
    kept.sort_unstable();
    kept
}

/// The paper-order column selection with an optional warm-start cut,
/// returning `(kept columns ascending, cut position)`.
///
/// The cut `h*` is the minimal number of smallest-variance columns to
/// drop so that the remaining set is independent. Feasibility is
/// monotone in the cut ("subset of an independent set is independent"),
/// so `h*` is the unique `h` with `feasible(h)` and (`h = 0` or
/// `¬feasible(h − 1)`) — a caller that remembers the previous refresh's
/// cut can re-certify it with **two** rank checks instead of the
/// `O(log n_c)` bisection, with identical output (the streaming
/// estimator does exactly this; a stale hint falls back to the full
/// bisection). `view` must be a [`RankView`] of `red.matrix`, passed in
/// so repeated callers materialise it once.
pub fn select_paper_order_hinted(
    red: &ReducedTopology,
    view: &RankView,
    order: &[usize],
    hint: Option<usize>,
) -> (Vec<usize>, usize) {
    let nc = red.num_links();
    assert_eq!(
        order.len(),
        nc,
        "got a {}-element variance order for {} links",
        order.len(),
        nc
    );
    if let RankView::Dense(dense) = view {
        assert_eq!(
            (dense.rows(), dense.cols()),
            (red.num_paths(), nc),
            "dense matrix is {}x{}, expected the {}x{} routing matrix",
            dense.rows(),
            dense.cols(),
            red.num_paths(),
            nc
        );
    }
    let full_rank_after_drop =
        |k: usize| -> bool { view.subset_full_rank(&order[k..], red.num_paths()) };
    // Feasibility is monotone in the cut: if dropping k smallest
    // leaves an independent set, dropping k+1 does too. Invariant:
    // lo infeasible, hi feasible; converges on the minimal feasible
    // cut.
    let bisect = |mut lo: usize, mut hi: usize| -> usize {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if full_rank_after_drop(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };
    let cut = 'cut: {
        // Warm start: certify the hinted cut as still minimal. Between
        // refreshes the cut drifts by a position or two (one link's
        // variance crossing another's), so when certification fails we
        // gallop outward from the stale hint to bracket the new cut
        // and bisect the bracket — a handful of rank checks on narrow
        // column subsets instead of the full `(0, nc)` bisection,
        // whose early probes rank-check near-full-width systems.
        if let Some(h) = hint {
            if h <= nc && full_rank_after_drop(h) {
                if h == 0 || !full_rank_after_drop(h - 1) {
                    break 'cut h;
                }
                // Cut moved down: `h − 1` is feasible.
                let mut hi = h - 1;
                let mut step = 1usize;
                let lo = loop {
                    if hi == 0 {
                        break 'cut 0;
                    }
                    let probe = hi.saturating_sub(step);
                    if full_rank_after_drop(probe) {
                        hi = probe;
                        step *= 2;
                    } else {
                        break probe;
                    }
                };
                break 'cut bisect(lo, hi);
            } else if h < nc {
                // Cut moved up: `h` is infeasible (dropping all `nc`
                // is trivially feasible, so a bracket always exists).
                let mut lo = h;
                let mut step = 1usize;
                let hi = loop {
                    let probe = lo + step;
                    if probe >= nc {
                        break nc;
                    }
                    if full_rank_after_drop(probe) {
                        break probe;
                    }
                    lo = probe;
                    step *= 2;
                };
                break 'cut bisect(lo, hi);
            }
            // `h > nc`: a stale hint from another topology — fall
            // through to the cold-start search.
        }
        if full_rank_after_drop(0) {
            break 'cut 0;
        }
        bisect(0, nc)
    };
    let mut kept: Vec<usize> = order[cut..].to_vec();
    kept.sort_unstable();
    (kept, cut)
}

/// Runs Phase 2: solves the reduced first-moment system for one
/// snapshot's log measurements `y` and returns per-link rates.
///
/// The factorisation family follows `cfg.dispatch`: below the dense
/// threshold the historical pivoted-QR path runs unchanged
/// (bit-identical to the pre-sparse pipeline); above it the rank checks
/// and the reduced solve both go through the sparse Givens QR without
/// ever densifying `R`.
pub fn infer_link_rates(
    red: &ReducedTopology,
    variances: &[f64],
    y: &[f64],
    cfg: &LiaConfig,
) -> Result<LinkRateEstimate, LinalgError> {
    let nc = red.num_links();
    if y.len() != red.num_paths() {
        return Err(LinalgError::DimensionMismatch(format!(
            "snapshot has {} paths, topology has {}",
            y.len(),
            red.num_paths()
        )));
    }
    assert_eq!(
        variances.len(),
        nc,
        "got {} variances for {} links",
        variances.len(),
        nc
    );
    let view = RankView::new(red, cfg.dispatch);
    let kept = match (cfg.elimination, &view) {
        (EliminationStrategy::PaperOrder, _) => {
            select_paper_order_hinted(red, &view, &variance_order(variances), None).0
        }
        // Greedy is dense-only; reuse the already-materialised view
        // instead of densifying a second time.
        (EliminationStrategy::GreedyMatroid, RankView::Dense(dense)) => {
            greedy_matroid_columns(dense, red.num_paths(), &variance_order(variances))
        }
        (EliminationStrategy::GreedyMatroid, RankView::Sparse(_)) => {
            select_full_rank_columns(red, variances, cfg.elimination)
        }
    };
    let xstar = solve_reduced(&view, &kept, y, cfg.backend)?;
    Ok(rates_from_solution(nc, &kept, &xstar))
}

/// Solves the reduced first-moment system `Y = R* X*` for the kept
/// columns (ascending) against whichever view Phase 2 dispatched to.
/// The streaming estimator does not call this — it memoizes the
/// factorisation of `R*` across snapshots (`Phase2Factor` in
/// `streaming.rs`) and must be kept in step with any change to the
/// factor choice or solve path here.
pub(crate) fn solve_reduced(
    view: &RankView,
    kept: &[usize],
    y: &[f64],
    backend: LstsqBackend,
) -> Result<Vec<f64>, LinalgError> {
    match view {
        RankView::Dense(dense) => {
            let rstar = dense.select_columns(kept);
            match backend {
                LstsqBackend::HouseholderQr => PivotedQr::new(&rstar)?.solve_least_squares(y),
                LstsqBackend::NormalEquations => lstsq::solve_normal_equations(&rstar, y),
            }
        }
        RankView::Sparse(csr) => SparseQr::new(csr.select_columns(kept))?.solve_least_squares(y),
    }
}

/// Expands a reduced-system solution `X*` (log rates of the kept
/// columns) into per-link transmission rates — the Phase-2
/// post-processing shared by [`infer_link_rates`] and the streaming
/// estimator.
pub(crate) fn rates_from_solution(nc: usize, kept: &[usize], xstar: &[f64]) -> LinkRateEstimate {
    let mut transmission = vec![1.0; nc];
    let mut kept_mask = vec![false; nc];
    for (pos, &k) in kept.iter().enumerate() {
        // X_k = log φ_k; clamp into [0, 1] (sampling noise can push the
        // estimate slightly above 0 in log space).
        transmission[k] = xstar[pos].exp().clamp(0.0, 1.0);
        kept_mask[k] = true;
    }
    LinkRateEstimate {
        transmission,
        kept: kept_mask,
        kept_count: kept.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_topology::fixtures;

    fn fig1() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    #[test]
    fn paper_order_drops_smallest_variances() {
        let red = fig1();
        // R is 3×5 with rank 3: at least 2 columns must go. Give the
        // "congested" links 0 and 2 large variances.
        let variances = vec![0.5, 0.001, 0.3, 0.002, 0.003];
        let kept = select_full_rank_columns(&red, &variances, EliminationStrategy::PaperOrder);
        assert!(kept.len() <= 3);
        assert!(kept.contains(&0), "highest-variance link must survive");
        // The kept set must be full column rank.
        let sub = red.matrix.to_dense().select_columns(&kept);
        assert_eq!(losstomo_linalg::rank(&sub), kept.len());
    }

    #[test]
    fn stale_hints_reproduce_the_cold_bisection_exactly() {
        // The warm-start path gallops outward from a stale hint; every
        // possible hint (certified, drifted either way, or nonsense
        // beyond `nc`) must land on the identical minimal cut.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
        let topo = losstomo_topology::gen::tree::generate(
            losstomo_topology::gen::tree::TreeParams {
                nodes: 60,
                max_branching: 4,
            },
            &mut rng,
        );
        let paths =
            losstomo_topology::compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
        let red = losstomo_topology::reduce(&topo.graph, &paths);
        let nc = red.num_links();
        let view = RankView::new(&red, Phase2Dispatch::Auto);
        for seed in 0..3u64 {
            // A deterministic shuffled variance order per seed.
            let mut order: Vec<usize> = (0..nc).collect();
            for i in (1..nc).rev() {
                let j = ((seed + 1) * 2654435761 % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let (cold_kept, cold_cut) = select_paper_order_hinted(&red, &view, &order, None);
            for hint in 0..=(nc + 2) {
                let (kept, cut) = select_paper_order_hinted(&red, &view, &order, Some(hint));
                assert_eq!(cut, cold_cut, "hint {hint} drifted the cut");
                assert_eq!(kept, cold_kept, "hint {hint} drifted the kept set");
            }
        }
    }

    #[test]
    fn greedy_keeps_at_least_as_many_columns() {
        let red = fig1();
        let variances = vec![0.5, 0.001, 0.3, 0.002, 0.003];
        let paper =
            select_full_rank_columns(&red, &variances, EliminationStrategy::PaperOrder);
        let greedy =
            select_full_rank_columns(&red, &variances, EliminationStrategy::GreedyMatroid);
        assert!(greedy.len() >= paper.len());
        let sub = red.matrix.to_dense().select_columns(&greedy);
        assert_eq!(losstomo_linalg::rank(&sub), greedy.len());
    }

    #[test]
    fn exact_rates_recovered_when_congested_links_survive() {
        // Ground truth: link 0 lossy (φ=0.9), link 2 lossy (φ=0.8),
        // others perfect. Y = R log φ. With variances pointing at links
        // 0 and 2, Phase 2 must recover their rates exactly.
        let red = fig1();
        let phi_true = [0.9_f64, 1.0, 0.8, 1.0, 1.0];
        let x: Vec<f64> = phi_true.iter().map(|p| p.ln()).collect();
        let y = red.matrix.to_dense().matvec(&x).unwrap();
        let variances = vec![0.5, 0.0, 0.3, 0.0, 0.0];
        let est =
            infer_link_rates(&red, &variances, &y, &LiaConfig::default()).unwrap();
        assert!((est.transmission[0] - 0.9).abs() < 1e-10, "{est:?}");
        assert!((est.transmission[2] - 0.8).abs() < 1e-10);
        assert_eq!(est.transmission[1], 1.0);
        assert_eq!(est.transmission[3], 1.0);
        assert_eq!(est.transmission[4], 1.0);
    }

    #[test]
    fn congested_links_classified_by_threshold() {
        let est = LinkRateEstimate {
            transmission: vec![0.9, 1.0, 0.999],
            kept: vec![true, false, true],
            kept_count: 2,
        };
        assert_eq!(est.congested_links(0.002), vec![0]);
        let loss = est.loss_rates();
        assert!((loss[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn both_backends_agree() {
        let red = fig1();
        let phi_true = [0.9_f64, 1.0, 0.8, 1.0, 1.0];
        let x: Vec<f64> = phi_true.iter().map(|p| p.ln()).collect();
        let y = red.matrix.to_dense().matvec(&x).unwrap();
        let variances = vec![0.5, 0.0, 0.3, 0.0, 0.0];
        let qr = infer_link_rates(
            &red,
            &variances,
            &y,
            &LiaConfig {
                backend: LstsqBackend::HouseholderQr,
                ..LiaConfig::default()
            },
        )
        .unwrap();
        let ne = infer_link_rates(
            &red,
            &variances,
            &y,
            &LiaConfig {
                backend: LstsqBackend::NormalEquations,
                ..LiaConfig::default()
            },
        )
        .unwrap();
        for (a, b) in qr.transmission.iter().zip(ne.transmission.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn wrong_snapshot_size_rejected() {
        let red = fig1();
        let variances = vec![0.0; red.num_links()];
        assert!(infer_link_rates(&red, &variances, &[0.0], &LiaConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "variances for")]
    fn wrong_variance_count_panics() {
        let red = fig1();
        select_full_rank_columns(&red, &[0.0], EliminationStrategy::PaperOrder);
    }

    #[test]
    fn kept_mask_consistent_with_count() {
        let red = fig1();
        let variances = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let y = vec![0.0; red.num_paths()];
        let est = infer_link_rates(&red, &variances, &y, &LiaConfig::default()).unwrap();
        assert_eq!(
            est.kept.iter().filter(|&&k| k).count(),
            est.kept_count
        );
    }
}
