//! Cross-validation on real (or simulated-real) measurements
//! (Section 7.2, eq. (11)).
//!
//! Without ground truth, the paper validates LIA indirectly: split the
//! measured paths randomly into an *inference* half and a *validation*
//! half, run LIA on the inference half only, and check for every
//! validation path that the product of inferred link transmission rates
//! along the path (restricted to links the inference topology covers)
//! matches the path's measured rate within a tolerance `ε = 0.005`.

use crate::budget::PairBudget;
use crate::covariance::CenteredMeasurements;
use crate::estimator::{build_estimator, EstimatorKind};
use crate::lia::LiaConfig;
use crate::variance::VarianceConfig;
use losstomo_linalg::LinalgError;
use losstomo_netsim::MeasurementSet;
use losstomo_topology::alias::{VirtualLink, VirtualLinkId};
use losstomo_topology::{PathId, ReducedTopology, RoutingMatrix};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cross-validation configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrossValidationConfig {
    /// Tolerable error `ε` in eq. (11) (paper: 0.005).
    pub epsilon: f64,
    /// LIA Phase-2 configuration.
    pub lia: LiaConfig,
    /// Phase-1 configuration.
    pub variance: VarianceConfig,
    /// Which estimator backend runs on the inference half.
    pub estimator: EstimatorKind,
}

impl Default for CrossValidationConfig {
    fn default() -> Self {
        CrossValidationConfig {
            epsilon: 0.005,
            lia: LiaConfig::default(),
            variance: VarianceConfig::default(),
            estimator: EstimatorKind::default(),
        }
    }
}

/// Cross-validation outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CrossValidationResult {
    /// Validation paths passing the eq. (11) consistency test.
    pub consistent: usize,
    /// Total validation paths tested.
    pub total: usize,
    /// Links covered by the inference half.
    pub inference_links: usize,
}

impl CrossValidationResult {
    /// Percentage of consistent paths (Figure 9's y-axis).
    pub fn percent_consistent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.consistent as f64 / self.total as f64
        }
    }
}

/// The inference-half subsystem: rows = inference paths, columns =
/// covered links with duplicate columns merged (two links are
/// indistinguishable within the inference half when exactly the same
/// inference paths traverse them).
struct SubSystem {
    topo: ReducedTopology,
    /// For each subsystem column: the original link indices it groups.
    groups: Vec<Vec<usize>>,
}

fn build_subsystem(red: &ReducedTopology, inference: &[PathId]) -> SubSystem {
    // Fingerprint each original link by the sorted list of inference
    // paths traversing it.
    let mut traversers: HashMap<usize, Vec<u32>> = HashMap::new();
    for &pid in inference {
        for &k in red.path_links(pid) {
            traversers.entry(k).or_default().push(pid.0);
        }
    }
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_fingerprint: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut sorted_links: Vec<usize> = traversers.keys().copied().collect();
    sorted_links.sort_unstable();
    for k in sorted_links {
        let fp = traversers[&k].clone();
        let gid = *by_fingerprint.entry(fp).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gid].push(k);
        group_of.insert(k, gid);
    }
    // Subsystem routing matrix (the shared builder sorts and dedups).
    let mut builder = RoutingMatrix::builder(groups.len());
    let mut cols: Vec<usize> = Vec::new();
    for &pid in inference {
        cols.clear();
        cols.extend(red.path_links(pid).iter().map(|k| group_of[k]));
        builder.push_row(&cols);
    }
    // Reuse ReducedTopology as a plain matrix holder: the inference
    // pipeline only touches `matrix`.
    let virtual_links = (0..groups.len())
        .map(|i| VirtualLink {
            id: VirtualLinkId(i as u32),
            physical: Vec::new(),
        })
        .collect();
    SubSystem {
        topo: ReducedTopology {
            virtual_links,
            link_to_virtual: HashMap::new(),
            matrix: builder.build(),
        },
        groups,
    }
}

/// Runs one cross-validation round.
///
/// `measurements` must contain `m + 1` snapshots: the first `m` train
/// the variances, the last supplies both the inference-half measurement
/// for Phase 2 and the validation-half measured rates for eq. (11).
pub fn cross_validate<R: Rng>(
    red: &ReducedTopology,
    measurements: &MeasurementSet,
    cfg: &CrossValidationConfig,
    rng: &mut R,
) -> Result<CrossValidationResult, LinalgError> {
    assert!(
        measurements.len() >= 3,
        "need at least 3 snapshots (2 to learn + 1 to validate)"
    );
    let np = red.num_paths();
    // Random half/half split.
    let mut ids: Vec<PathId> = (0..np).map(|i| PathId(i as u32)).collect();
    ids.shuffle(rng);
    let half = np / 2;
    let inference: Vec<PathId> = ids[..half].to_vec();
    let validation: Vec<PathId> = ids[half..].to_vec();

    let sub = build_subsystem(red, &inference);

    // Restrict the measurement rows to the inference paths.
    let all_rows = measurements.log_rate_rows();
    let (train_rows, last_row) = {
        let m = all_rows.len() - 1;
        let train: Vec<Vec<f64>> = all_rows[..m]
            .iter()
            .map(|row| inference.iter().map(|p| row[p.index()]).collect())
            .collect();
        (train, &all_rows[m])
    };
    let y_inf: Vec<f64> = inference.iter().map(|p| last_row[p.index()]).collect();

    // The configured backend runs on the inference subsystem. The full
    // pair budget preserves the historical behaviour (cross-validation
    // never budgeted its — much smaller — subsystem).
    let centered = CenteredMeasurements::from_rows(train_rows);
    let backend = build_estimator(cfg.estimator, cfg.lia, cfg.variance, PairBudget::Full);
    let est = backend.estimate(&sub.topo, &centered, &y_inf)?.estimate;

    // Disaggregate merged groups geometrically: a group's inferred rate
    // is the product over its constituent links, so each constituent
    // gets the |group|-th root.
    let mut per_link_rate: HashMap<usize, f64> = HashMap::new();
    for (gid, group) in sub.groups.iter().enumerate() {
        let group_rate = est.transmission[gid].max(1e-12);
        let per = group_rate.powf(1.0 / group.len() as f64);
        for &k in group {
            per_link_rate.insert(k, per);
        }
    }

    // Eq. (11) on the validation half against the last snapshot.
    let last_snapshot = &measurements.snapshots[measurements.len() - 1];
    let measured_phi = last_snapshot.path_transmission_rates();
    let mut consistent = 0usize;
    for &pid in &validation {
        let mut product = 1.0;
        for &k in red.path_links(pid) {
            if let Some(&r) = per_link_rate.get(&k) {
                product *= r;
            } // links not covered by the inference half are skipped
              // (the paper's product runs over P_i ∩ E_inf).
        }
        if (measured_phi[pid.index()] - product).abs() <= cfg.epsilon {
            consistent += 1;
        }
    }
    Ok(CrossValidationResult {
        consistent,
        total: validation.len(),
        inference_links: sub.groups.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_netsim::{
        simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig,
    };
    use losstomo_topology::gen::planetlab::{self, PlanetLabParams};
    use losstomo_topology::{compute_paths, reduce};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// All-to-all mesh, like the paper's PlanetLab validation: half the
    /// paths still cover almost every link, so the inference half can
    /// actually predict the validation half.
    fn tree_measurements(
        seed: u64,
        m: usize,
    ) -> (ReducedTopology, MeasurementSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = planetlab::generate(
            PlanetLabParams {
                sites: 16,
                core_routers: 6,
                ..PlanetLabParams::default()
            },
            &mut rng,
        );
        let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
        let red = reduce(&t.graph, &paths);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.1,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let ms = simulate_run(
            &red,
            &mut scenario,
            &ProbeConfig::default(),
            m + 1,
            &mut rng,
        );
        (red, ms)
    }

    #[test]
    fn most_paths_validate_on_clean_simulation() {
        let (red, ms) = tree_measurements(21, 30);
        let mut rng = StdRng::seed_from_u64(22);
        let res =
            cross_validate(&red, &ms, &CrossValidationConfig::default(), &mut rng).unwrap();
        assert!(res.total > 0);
        assert!(
            res.percent_consistent() >= 80.0,
            "only {:.1}% consistent ({}/{})",
            res.percent_consistent(),
            res.consistent,
            res.total
        );
    }

    #[test]
    fn subsystem_merges_indistinguishable_links() {
        let (red, _) = tree_measurements(23, 3);
        // Using only one path, every link of that path merges into a
        // single group.
        let sub = build_subsystem(&red, &[PathId(0)]);
        assert_eq!(sub.topo.num_links(), 1);
        assert_eq!(
            sub.groups[0].len(),
            red.path_links(PathId(0)).len()
        );
    }

    #[test]
    fn result_percentage() {
        let r = CrossValidationResult {
            consistent: 95,
            total: 100,
            inference_links: 50,
        };
        assert_eq!(r.percent_consistent(), 95.0);
        let empty = CrossValidationResult {
            consistent: 0,
            total: 0,
            inference_links: 0,
        };
        assert_eq!(empty.percent_consistent(), 100.0);
    }

    #[test]
    #[should_panic(expected = "at least 3 snapshots")]
    fn too_few_snapshots_panics() {
        let (red, ms) = tree_measurements(25, 1);
        let mut rng = StdRng::seed_from_u64(26);
        let short = MeasurementSet {
            snapshots: ms.snapshots[..2].to_vec(),
        };
        let _ = cross_validate(&red, &short, &CrossValidationConfig::default(), &mut rng);
    }
}
