//! Sample moments of end-to-end measurements (eq. (7) of the paper).
//!
//! Given `m` snapshots of the log transmission rates
//! `Y^(l) = [Y_1^(l) … Y_np^(l)]`, the unbiased sample covariance is
//!
//! `Σ̂_{ii'} = 1/(m−1) · Σ_l (Y_i^(l) − Ȳ_i)(Y_{i'}^(l) − Ȳ_{i'})`.
//!
//! Phase 1 only needs the entries for path pairs that share at least one
//! link (disjoint pairs produce all-zero rows of `A`). The estimator
//! stores the centred deviations *path-major* in one flat buffer, so
//! every covariance entry is a dot product of two contiguous slices, and
//! computes all entries the augmented system needs in a single pass
//! ([`CenteredMeasurements::pair_covariances`]), interleaving four
//! register-resident accumulator chains per loop; the full dense Gram
//! `Σ = D Dᵀ/(m−1)` is available as
//! [`CenteredMeasurements::full_covariance`] for small systems. The
//! pair sweep is parallelised over disjoint output blocks with
//! crossbeam scoped threads; every entry is produced by exactly one
//! thread with a fixed ascending accumulation order, so serial and
//! parallel results are bit-identical.
//!
//! The pair sweep is the `O(paths²)` term of Phase 1: its cost is one
//! dot product per *requested* pair. Under a row budget
//! ([`crate::budget`]) the augmented system hands over only the
//! selected pairs, so the sweep (and the Gram assembly downstream)
//! shrinks proportionally — see `scale_pairs` in the bench crate for
//! the measured effect.

use losstomo_linalg::simd::{self, Engine};
use losstomo_netsim::MeasurementSet;

/// Centred snapshot data, ready to produce covariance entries on demand.
#[derive(Debug, Clone)]
pub struct CenteredMeasurements {
    /// Path-major centred deviations:
    /// `dev[i * m + l] = Y_i^(l) − Ȳ_i` for path `i`, snapshot `l`.
    dev: Vec<f64>,
    n_paths: usize,
    snapshots: usize,
    /// Scratch: per-path means of the current window (a field so
    /// re-centring allocates nothing).
    means: Vec<f64>,
}

/// Pairs per chunk when fanning covariance work out to threads; large
/// enough that spawn overhead is negligible against the dot products.
const MIN_PAIRS_PER_THREAD: usize = 4096;

impl CenteredMeasurements {
    /// Centres the log measurements of `m ≥ 2` snapshots.
    ///
    /// # Panics
    /// Panics if fewer than two snapshots are supplied (the sample
    /// covariance is undefined) or if snapshots disagree on the number
    /// of paths.
    pub fn new(measurements: &MeasurementSet) -> Self {
        Self::from_rows(measurements.log_rate_rows())
    }

    /// Centres pre-extracted log-rate rows (one row per snapshot).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Self::from_row_refs(&refs)
    }

    /// Centres borrowed log-rate rows (one slice per snapshot, in
    /// chronological order).
    ///
    /// This is the core constructor; [`CenteredMeasurements::from_rows`]
    /// delegates to it. The streaming accumulator
    /// ([`crate::streaming::StreamingCovariance`]) calls it over its
    /// window ring buffer, which is what makes streaming refreshes
    /// bit-identical to a batch recompute: the means accumulate over
    /// rows in the same order and the deviations are produced by the
    /// same subtraction.
    pub fn from_row_refs(rows: &[&[f64]]) -> Self {
        let mut centered = CenteredMeasurements::empty();
        centered.recentre_from_refs(rows);
        centered
    }

    /// An empty instance for workspace slots. It holds no window —
    /// re-centre it before asking for covariances.
    pub(crate) fn empty() -> Self {
        CenteredMeasurements {
            dev: Vec::new(),
            n_paths: 0,
            snapshots: 0,
            means: Vec::new(),
        }
    }

    /// Re-centres this instance over a new window of borrowed rows,
    /// reusing the internal buffers — the in-place counterpart of
    /// [`CenteredMeasurements::from_row_refs`] (which is a thin wrapper
    /// over this on an empty instance). Same arithmetic, same panics,
    /// bit-identical deviations; no allocation once the buffers have
    /// reached `n_paths × m` capacity.
    pub fn recentre_from_refs(&mut self, rows: &[&[f64]]) {
        self.recentre_from_iter(rows.iter().copied());
    }

    /// [`CenteredMeasurements::recentre_from_refs`] over any re-runnable
    /// row iterator (two passes: means, then deviations), so callers
    /// holding rows in a ring buffer can re-centre without materialising
    /// a slice of references. Iteration order is the window order —
    /// means accumulate over it exactly as the batch constructor does.
    pub fn recentre_from_iter<'a, I>(&mut self, rows: I)
    where
        I: Iterator<Item = &'a [f64]> + Clone,
    {
        let mut m = 0usize;
        self.means.clear();
        for row in rows.clone() {
            if m == 0 {
                self.means.resize(row.len(), 0.0);
            }
            assert_eq!(
                row.len(),
                self.means.len(),
                "snapshots disagree on the number of paths"
            );
            m += 1;
            for (mean, y) in self.means.iter_mut().zip(row.iter()) {
                *mean += y;
            }
        }
        assert!(m >= 2, "need at least 2 snapshots, got {m}");
        let n_paths = self.means.len();
        for mean in self.means.iter_mut() {
            *mean /= m as f64;
        }
        // Transpose into path-major order so each path's deviations are
        // one contiguous slice.
        self.dev.clear();
        self.dev.resize(n_paths * m, 0.0);
        for (l, row) in rows.enumerate() {
            for (i, (y, mean)) in row.iter().zip(self.means.iter()).enumerate() {
                self.dev[i * m + l] = y - mean;
            }
        }
        self.n_paths = n_paths;
        self.snapshots = m;
    }

    /// Number of snapshots `m`.
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }

    /// Number of paths `n_p`.
    pub fn paths(&self) -> usize {
        self.n_paths
    }

    /// The centred deviations of path `i`, one entry per snapshot.
    #[inline]
    fn dev_row(&self, i: usize) -> &[f64] {
        &self.dev[i * self.snapshots..(i + 1) * self.snapshots]
    }

    /// The sample covariance `Σ̂_{ii'}` (unbiased, `m − 1` denominator).
    pub fn cov(&self, i: usize, i2: usize) -> f64 {
        debug_assert!(i < self.n_paths && i2 < self.n_paths);
        dot(self.dev_row(i), self.dev_row(i2)) / (self.snapshots - 1) as f64
    }

    /// The sample variance of path `i`.
    pub fn var(&self, i: usize) -> f64 {
        self.cov(i, i)
    }

    /// Computes `Σ̂_{ii'}` for every requested `(i, i')` pair in one
    /// pass, parallelised over the available cores (the
    /// `LOSSTOMO_THREADS` environment variable caps the thread count).
    ///
    /// Entry `r` of the result corresponds to `pairs[r]`. Bit-identical
    /// to calling [`CenteredMeasurements::cov`] per pair, and to
    /// [`CenteredMeasurements::pair_covariances_with_threads`] at any
    /// thread count.
    pub fn pair_covariances(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.pair_covariances_with_threads(pairs, crate::parallel::num_threads())
    }

    /// [`CenteredMeasurements::pair_covariances`] writing into a
    /// reusable output buffer (resized and fully overwritten) instead
    /// of allocating one per sweep. Bit-identical results.
    pub fn pair_covariances_into(&self, pairs: &[(usize, usize)], out: &mut Vec<f64>) {
        self.pair_covariances_with_threads_into(pairs, crate::parallel::num_threads(), out);
    }

    /// [`CenteredMeasurements::pair_covariances`] with an explicit
    /// thread count (1 forces the serial path).
    pub fn pair_covariances_with_threads(
        &self,
        pairs: &[(usize, usize)],
        n_threads: usize,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.pair_covariances_with_threads_into(pairs, n_threads, &mut out);
        out
    }

    /// [`CenteredMeasurements::pair_covariances_with_threads`] into a
    /// reusable output buffer.
    pub fn pair_covariances_with_threads_into(
        &self,
        pairs: &[(usize, usize)],
        n_threads: usize,
        out: &mut Vec<f64>,
    ) {
        // The engine is resolved once per sweep (not per pair) and
        // shared by every worker thread.
        let engine = simd::active();
        out.clear();
        out.resize(pairs.len(), 0.0);
        if pairs.is_empty() {
            return;
        }
        let threads = n_threads
            .max(1)
            .min(pairs.len().div_ceil(MIN_PAIRS_PER_THREAD));
        if threads <= 1 {
            self.pair_cov_block(pairs, out, engine);
            return;
        }
        let chunk = pairs.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            for (pair_chunk, out_chunk) in pairs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move |_| self.pair_cov_block(pair_chunk, out_chunk, engine));
            }
        })
        .expect("covariance worker panicked");
    }

    /// [`CenteredMeasurements::pair_covariances`] under an explicit
    /// SIMD engine, serial (the engine is the variable under test —
    /// used by the SIMD equivalence suites and the `scale_simd` bench).
    /// Non-FMA engines are bit-identical.
    pub fn pair_covariances_with_engine(
        &self,
        pairs: &[(usize, usize)],
        engine: Engine,
    ) -> Vec<f64> {
        let mut out = vec![0.0; pairs.len()];
        self.pair_cov_block(pairs, &mut out, engine);
        out
    }

    /// Computes one block of pair covariances into `out`.
    ///
    /// Pairs are processed in groups of four so four independent
    /// accumulation chains are in flight, hiding the floating-point add
    /// latency that bounds a single running dot product. Each entry
    /// still accumulates over snapshots in ascending order into its own
    /// accumulator, which is what makes the result independent of the
    /// grouping (and of the thread count in the caller). Under an AVX2
    /// engine the four chains become the four lanes of
    /// [`simd::pair_cov4`] — same chains, same order, bit-identical
    /// without FMA.
    fn pair_cov_block(&self, pairs: &[(usize, usize)], out: &mut [f64], engine: Engine) {
        let denom = (self.snapshots - 1) as f64;
        let mut q = 0;
        // Four pairs per iteration of one shared snapshot loop: four
        // independent accumulator chains advance together, so the adds
        // of one chain hide the latency of the others.
        while q + 4 <= pairs.len() {
            let a0 = self.dev_row(pairs[q].0);
            let b0 = self.dev_row(pairs[q].1);
            let a1 = self.dev_row(pairs[q + 1].0);
            let b1 = self.dev_row(pairs[q + 1].1);
            let a2 = self.dev_row(pairs[q + 2].0);
            let b2 = self.dev_row(pairs[q + 2].1);
            let a3 = self.dev_row(pairs[q + 3].0);
            let b3 = self.dev_row(pairs[q + 3].1);
            let s = match engine {
                Engine::Avx2 { fma } => {
                    simd::pair_cov4(a0, b0, a1, b1, a2, b2, a3, b3, fma)
                        .unwrap_or_else(|| scalar4(a0, b0, a1, b1, a2, b2, a3, b3))
                }
                Engine::Scalar => scalar4(a0, b0, a1, b1, a2, b2, a3, b3),
            };
            out[q] = s[0] / denom;
            out[q + 1] = s[1] / denom;
            out[q + 2] = s[2] / denom;
            out[q + 3] = s[3] / denom;
            q += 4;
        }
        for q in q..pairs.len() {
            out[q] = dot(self.dev_row(pairs[q].0), self.dev_row(pairs[q].1)) / denom;
        }
    }

    /// The full `n_p × n_p` sample covariance matrix (small systems:
    /// `n_p²` doubles are materialised).
    pub fn full_covariance(&self) -> losstomo_linalg::Matrix {
        let n = self.n_paths;
        let mut cov = losstomo_linalg::Matrix::zeros(n, n);
        let denom = (self.snapshots - 1) as f64;
        for i in 0..n {
            let di = self.dev_row(i);
            for j in i..n {
                let c = dot(di, self.dev_row(j)) / denom;
                cov[(i, j)] = c;
                cov[(j, i)] = c;
            }
        }
        cov
    }
}

/// The scalar four-chain dot kernel (fallback and oracle of
/// [`simd::pair_cov4`]): one shared snapshot loop advancing four
/// independent ascending-order accumulators.
#[inline]
#[allow(clippy::too_many_arguments)]
fn scalar4(
    a0: &[f64],
    b0: &[f64],
    a1: &[f64],
    b1: &[f64],
    a2: &[f64],
    b2: &[f64],
    a3: &[f64],
    b3: &[f64],
) -> [f64; 4] {
    let m = a0.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for l in 0..m {
        s0 += a0[l] * b0[l];
        s1 += a1[l] * b1[l];
        s2 += a2[l] * b2[l];
        s3 += a3[l] * b3[l];
    }
    [s0, s1, s2, s3]
}

/// Dot product of two equal-length slices, accumulating in ascending
/// index order (a single chain — bit-compatible with the historical
/// per-entry covariance loop).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        s += x * y;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_linalg::vector;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0, -1.0],
            vec![2.0, 4.0, -1.5],
            vec![3.0, 6.0, -0.5],
            vec![0.0, 0.0, -1.0],
        ]
    }

    #[test]
    fn matches_direct_formulas() {
        let c = CenteredMeasurements::from_rows(rows());
        let data = rows();
        let col = |j: usize| -> Vec<f64> { data.iter().map(|r| r[j]).collect() };
        for i in 0..3 {
            assert!((c.var(i) - vector::sample_variance(&col(i))).abs() < 1e-12);
            for j in 0..3 {
                let expected = vector::sample_covariance(&col(i), &col(j));
                assert!((c.cov(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn covariance_is_symmetric() {
        let c = CenteredMeasurements::from_rows(rows());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.cov(i, j), c.cov(j, i));
            }
        }
    }

    #[test]
    fn perfectly_correlated_paths() {
        // Column 1 = 2 × column 0 → cov = 2·var₀.
        let c = CenteredMeasurements::from_rows(rows());
        assert!((c.cov(0, 1) - 2.0 * c.var(0)).abs() < 1e-12);
    }

    #[test]
    fn dimensions_exposed() {
        let c = CenteredMeasurements::from_rows(rows());
        assert_eq!(c.snapshots(), 4);
        assert_eq!(c.paths(), 3);
    }

    #[test]
    fn pair_covariances_match_per_entry_bitwise() {
        let c = CenteredMeasurements::from_rows(rows());
        let pairs: Vec<(usize, usize)> = (0..3)
            .flat_map(|i| (i..3).map(move |j| (i, j)))
            .collect();
        let batch = c.pair_covariances(&pairs);
        for (r, &(i, j)) in pairs.iter().enumerate() {
            assert_eq!(batch[r], c.cov(i, j), "pair ({i},{j})");
        }
        assert!(c.pair_covariances(&[]).is_empty());
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Enough pairs to actually exercise the chunked path.
        let m = 16;
        let n = 40;
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|l| {
                (0..n)
                    .map(|i| (((l * 31 + i * 17 + 3) % 97) as f64) / 9.7 - 5.0)
                    .collect()
            })
            .collect();
        let c = CenteredMeasurements::from_rows(rows);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i..n).map(move |j| (i, j)))
            .collect();
        let serial = c.pair_covariances_with_threads(&pairs, 1);
        for threads in [2, 3, 8] {
            let parallel = c.pair_covariances_with_threads(&pairs, threads);
            assert_eq!(serial, parallel, "{threads} threads drifted");
        }
    }

    #[test]
    fn engines_are_bit_identical_on_pair_batches() {
        // Odd path count and odd snapshot count, so the engine path
        // exercises both the 4-pair batches and the tail pairs, and the
        // kernel's m % 4 scalar continuation.
        let m = 23;
        let n = 17;
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|l| {
                (0..n)
                    .map(|i| (((l * 29 + i * 13 + 7) % 101) as f64) / 10.1 - 5.0)
                    .collect()
            })
            .collect();
        let c = CenteredMeasurements::from_rows(rows);
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i..n).map(move |j| (i, j)))
            .collect();
        let reference = c.pair_covariances(&pairs);
        let scalar = c.pair_covariances_with_engine(&pairs, Engine::Scalar);
        assert_eq!(reference, scalar, "scalar engine drifted from default entry point");
        if Engine::avx2_available() {
            // The covariance kernel has no contraction opportunity, so
            // even the FMA engine must match bitwise.
            for engine in [Engine::Avx2 { fma: false }, Engine::Avx2 { fma: true }] {
                let vector = c.pair_covariances_with_engine(&pairs, engine);
                let sb: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
                let vb: Vec<u64> = vector.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, vb, "{engine:?} drifted from scalar");
            }
        }
    }

    #[test]
    fn full_covariance_agrees_with_cov() {
        let c = CenteredMeasurements::from_rows(rows());
        let full = c.full_covariance();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(full[(i, j)], c.cov(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 snapshots")]
    fn rejects_single_snapshot() {
        CenteredMeasurements::from_rows(vec![vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn rejects_ragged_rows() {
        CenteredMeasurements::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
