//! Sample moments of end-to-end measurements (eq. (7) of the paper).
//!
//! Given `m` snapshots of the log transmission rates
//! `Y^(l) = [Y_1^(l) … Y_np^(l)]`, the unbiased sample covariance is
//!
//! `Σ̂_{ii'} = 1/(m−1) · Σ_l (Y_i^(l) − Ȳ_i)(Y_{i'}^(l) − Ȳ_{i'})`.
//!
//! Phase 1 only needs the entries for path pairs that share at least one
//! link (disjoint pairs produce all-zero rows of `A`), so the estimator
//! computes exactly the requested entries instead of the full `n_p²`
//! matrix.

use losstomo_netsim::MeasurementSet;

/// Centred snapshot data, ready to produce covariance entries on demand.
#[derive(Debug, Clone)]
pub struct CenteredMeasurements {
    /// `deviations[l][i] = Y_i^(l) − Ȳ_i` for snapshot `l`, path `i`.
    deviations: Vec<Vec<f64>>,
    n_paths: usize,
}

impl CenteredMeasurements {
    /// Centres the log measurements of `m ≥ 2` snapshots.
    ///
    /// # Panics
    /// Panics if fewer than two snapshots are supplied (the sample
    /// covariance is undefined) or if snapshots disagree on the number
    /// of paths.
    pub fn new(measurements: &MeasurementSet) -> Self {
        Self::from_rows(measurements.log_rate_rows())
    }

    /// Centres pre-extracted log-rate rows (one row per snapshot).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let m = rows.len();
        assert!(m >= 2, "need at least 2 snapshots, got {m}");
        let n_paths = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == n_paths),
            "snapshots disagree on the number of paths"
        );
        let mut means = vec![0.0; n_paths];
        for row in &rows {
            for (mean, y) in means.iter_mut().zip(row.iter()) {
                *mean += y;
            }
        }
        for mean in means.iter_mut() {
            *mean /= m as f64;
        }
        let deviations = rows
            .into_iter()
            .map(|row| {
                row.iter()
                    .zip(means.iter())
                    .map(|(y, mean)| y - mean)
                    .collect()
            })
            .collect();
        CenteredMeasurements { deviations, n_paths }
    }

    /// Number of snapshots `m`.
    pub fn snapshots(&self) -> usize {
        self.deviations.len()
    }

    /// Number of paths `n_p`.
    pub fn paths(&self) -> usize {
        self.n_paths
    }

    /// The sample covariance `Σ̂_{ii'}` (unbiased, `m − 1` denominator).
    pub fn cov(&self, i: usize, i2: usize) -> f64 {
        debug_assert!(i < self.n_paths && i2 < self.n_paths);
        let m = self.deviations.len();
        let sum: f64 = self
            .deviations
            .iter()
            .map(|row| row[i] * row[i2])
            .sum();
        sum / (m - 1) as f64
    }

    /// The sample variance of path `i`.
    pub fn var(&self, i: usize) -> f64 {
        self.cov(i, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use losstomo_linalg::vector;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0, -1.0],
            vec![2.0, 4.0, -1.5],
            vec![3.0, 6.0, -0.5],
            vec![0.0, 0.0, -1.0],
        ]
    }

    #[test]
    fn matches_direct_formulas() {
        let c = CenteredMeasurements::from_rows(rows());
        let data = rows();
        let col = |j: usize| -> Vec<f64> { data.iter().map(|r| r[j]).collect() };
        for i in 0..3 {
            assert!((c.var(i) - vector::sample_variance(&col(i))).abs() < 1e-12);
            for j in 0..3 {
                let expected = vector::sample_covariance(&col(i), &col(j));
                assert!((c.cov(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn covariance_is_symmetric() {
        let c = CenteredMeasurements::from_rows(rows());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(c.cov(i, j), c.cov(j, i));
            }
        }
    }

    #[test]
    fn perfectly_correlated_paths() {
        // Column 1 = 2 × column 0 → cov = 2·var₀.
        let c = CenteredMeasurements::from_rows(rows());
        assert!((c.cov(0, 1) - 2.0 * c.var(0)).abs() < 1e-12);
    }

    #[test]
    fn dimensions_exposed() {
        let c = CenteredMeasurements::from_rows(rows());
        assert_eq!(c.snapshots(), 4);
        assert_eq!(c.paths(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 2 snapshots")]
    fn rejects_single_snapshot() {
        CenteredMeasurements::from_rows(vec![vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn rejects_ragged_rows() {
        CenteredMeasurements::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
