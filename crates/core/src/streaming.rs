//! Streaming loss inference: incremental covariance tracking and an
//! online two-phase estimator.
//!
//! The paper's estimator is batch — collect `m` snapshots, form the
//! sample covariance (eq. 7), solve `Σ* = A v` — but a production
//! monitor sees snapshots arrive as a stream and wants congested-link
//! sets that update per snapshot, not per recomputation. This module
//! provides the two pieces:
//!
//! * [`StreamingCovariance`] ingests one snapshot of log measurements at
//!   a time and maintains the covariances of the augmented path pairs
//!   two ways at once: **Welford-style rank-1 running co-moments**
//!   (`O(n_p + r)` per ingest, available at any instant, optionally
//!   under a sliding or exponentially-forgetting window) and an **exact
//!   replay** over the retained window that is bit-identical to the
//!   batch [`CenteredMeasurements::pair_covariances`] sweep — same
//!   additions in the same order — so a streaming refresh can reproduce
//!   a batch recompute exactly.
//! * [`OnlineEstimator`] keeps the full Phase-1/Phase-2 pipeline warm
//!   across refreshes: the Phase-1 Gram matrix is patched incrementally
//!   through a [`GramCache`] (integer co-occurrence counts, so patched
//!   and from-scratch assemblies are exactly equal), the Cholesky factor
//!   can be amended with the Givens rank-1 updates of
//!   [`losstomo_linalg::givens`] instead of refactored
//!   ([`FactorRefresh::GivensUpdate`]), and the Phase-2 column selection
//!   and pivoted-QR factorisation are memoized on the variance *order*,
//!   which rarely changes between consecutive snapshots. Refresh cadence
//!   is configurable, and every ingest reports congested-set changes
//!   ([`OnlineUpdate::appeared`] / [`OnlineUpdate::cleared`]).
//!
//! ## Exactness contract
//!
//! With the default configuration ([`WindowMode::Unbounded`],
//! [`FactorRefresh::Exact`]), ingesting `m` snapshots and refreshing
//! produces **bit-for-bit** the Phase-1 variances and Phase-2 link rates
//! of the batch pipeline ([`estimate_variances`][crate::estimate_variances]
//! followed by [`infer_link_rates`][crate::infer_link_rates]) on the same
//! `m` snapshots: the replayed covariances are the same bits, the cached
//! Gram counts are the same integers, and the memoized Phase-2 factor is
//! built from the same reduced matrix. A sliding window is equally exact
//! over its window. [`FactorRefresh::GivensUpdate`] and
//! [`WindowMode::Exponential`] trade the last bits for lower refresh
//! cost and are tolerance-tested instead.
//!
//! ## Memory and refresh cost
//!
//! The exactness contract requires replaying the retained window, so
//! [`WindowMode::Unbounded`] (the default, matching the paper's
//! grow-forever batch regime) buffers every ingested row and its
//! refresh cost grows with the history length. A monitor that runs
//! indefinitely should bound its state with [`WindowMode::Sliding`]
//! (exact over the window, `O(w)` rows retained) or
//! [`WindowMode::Exponential`] (`O(1)` state, no row buffer at all),
//! and/or lengthen [`OnlineConfig::refresh_every`].

use crate::augmented::AugmentedSystem;
use crate::budget::{apply_budget, PairBudget, PairSelection};
use crate::covariance::CenteredMeasurements;
use crate::lia::{self, EliminationStrategy, LiaConfig, LinkRateEstimate, RankView};
use crate::variance::{
    estimate_variances_from_sigmas, estimate_variances_scratch, GramCache, Phase1Scratch,
    VarianceConfig, VarianceEstimate,
};
use losstomo_linalg::{
    givens, lstsq, triangular, Cholesky, CsrMatrix, LinalgError, LstsqBackend, Matrix, PivotedQr,
    SparseQr,
};
use losstomo_netsim::Snapshot;
use losstomo_topology::ReducedTopology;
use std::collections::VecDeque;

/// Default sliding-window recentre cadence, in evictions: frequent
/// enough that reverse-Welford rounding stays far below any tolerance
/// in use, rare enough that the `O(window)` replay is amortised to
/// noise.
pub const DEFAULT_RECENTRE_EVERY: usize = 1024;

/// How much history the streaming accumulator retains.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WindowMode {
    /// Keep every ingested snapshot (the batch regime, grown online).
    /// Memory and exact-refresh cost grow with the stream — prefer a
    /// bounded window for monitors that run indefinitely.
    #[default]
    Unbounded,
    /// Keep only the most recent `w ≥ 2` snapshots; older ones are
    /// evicted with a reverse-Welford downdate.
    Sliding(usize),
    /// Exponential forgetting with smoothing factor `0 < α < 1`: the
    /// running mean and co-moments are EWMA estimates
    /// (`mean += α·(y − mean)`, `C = (1−α)·(C + α·δδᵀ)`). No snapshot
    /// buffer is kept, so exact batch replay is unavailable in this
    /// mode.
    Exponential(f64),
}

/// Streaming accumulator for the covariances of a fixed pair set.
///
/// Feed it one row of log measurements per snapshot with
/// [`StreamingCovariance::ingest`]; read back either the cheap Welford
/// running estimates ([`StreamingCovariance::covariances`]) or the
/// batch-bit-identical replay
/// ([`StreamingCovariance::exact_covariances`]). The pair set is
/// typically [`AugmentedSystem::pair_indices`] — every `Σ̂_{ii'}`
/// Phase 1 needs.
#[derive(Debug, Clone)]
pub struct StreamingCovariance {
    n_paths: usize,
    pairs: Vec<(usize, usize)>,
    mode: WindowMode,
    /// Exact-recentre cadence in evictions (0 = never); see
    /// [`StreamingCovariance::with_recentre_every`].
    recentre_every: usize,
    /// Evictions since the last exact recentre.
    evictions_since_recentre: usize,
    /// Retained rows, oldest first (empty in exponential mode).
    rows: VecDeque<Vec<f64>>,
    /// Rows currently contributing to the running moments.
    count: usize,
    total_ingested: u64,
    /// Running (Welford or EWMA) per-path means.
    mean: Vec<f64>,
    /// Running co-moments, one per pair: `Σ (y_i − μ_i)(y_j − μ_j)` in
    /// Welford form, or the EWMA covariance itself in exponential mode.
    comoment: Vec<f64>,
    /// Scratch: per-path deviations from the pre-update mean.
    delta_old: Vec<f64>,
    /// Scratch: per-path deviations from the post-update mean.
    delta_new: Vec<f64>,
}

impl StreamingCovariance {
    /// Creates an accumulator for `n_paths` paths tracking `pairs`.
    ///
    /// # Panics
    /// Panics on an empty path set, a sliding window shorter than 2
    /// (the sample covariance is undefined), a smoothing factor outside
    /// `(0, 1)`, or a pair index out of range.
    pub fn new(n_paths: usize, pairs: Vec<(usize, usize)>, mode: WindowMode) -> Self {
        assert!(n_paths > 0, "need at least one path");
        match mode {
            WindowMode::Sliding(w) => {
                assert!(w >= 2, "sliding window must hold at least 2 snapshots, got {w}")
            }
            WindowMode::Exponential(alpha) => {
                assert!(
                    alpha > 0.0 && alpha < 1.0,
                    "smoothing factor must lie in (0, 1), got {alpha}"
                )
            }
            WindowMode::Unbounded => {}
        }
        assert!(
            pairs.iter().all(|&(i, j)| i < n_paths && j < n_paths),
            "pair index out of range for {n_paths} paths"
        );
        let n_pairs = pairs.len();
        StreamingCovariance {
            n_paths,
            pairs,
            mode,
            recentre_every: DEFAULT_RECENTRE_EVERY,
            evictions_since_recentre: 0,
            rows: VecDeque::new(),
            count: 0,
            total_ingested: 0,
            mean: vec![0.0; n_paths],
            comoment: vec![0.0; n_pairs],
            delta_old: vec![0.0; n_paths],
            delta_new: vec![0.0; n_paths],
        }
    }

    /// Sets the exact-recentre cadence: after `every` sliding-window
    /// evictions the running moments are rebuilt exactly from the
    /// retained rows, bounding the rounding drift that reverse-Welford
    /// downdates accumulate over thousands of evictions (`0` disables
    /// — the pre-cadence behaviour). Default:
    /// [`DEFAULT_RECENTRE_EVERY`].
    pub fn with_recentre_every(mut self, every: usize) -> Self {
        self.recentre_every = every;
        self
    }

    /// Rebuilds the running Welford moments exactly from the retained
    /// rows — a drift reset for the incremental estimates (the exact
    /// queries replay the window anyway). `O(window · (n_p + pairs))`.
    pub fn recentre(&mut self) {
        self.evictions_since_recentre = 0;
        if matches!(self.mode, WindowMode::Exponential(_)) {
            return; // no window to replay
        }
        self.count = 0;
        self.mean.fill(0.0);
        self.comoment.fill(0.0);
        let rows = std::mem::take(&mut self.rows);
        for row in &rows {
            self.welford_add(row);
        }
        self.rows = rows;
    }

    /// Number of paths per snapshot row.
    pub fn paths(&self) -> usize {
        self.n_paths
    }

    /// The tracked path pairs, in result order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Snapshots currently contributing (window occupancy).
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` until the first ingest.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total snapshots ever ingested (including evicted ones).
    pub fn total_ingested(&self) -> u64 {
        self.total_ingested
    }

    /// Ingests one snapshot's log measurements (`Y_i = log φ̂_i`, one
    /// entry per path): `O(n_p + r)` for `r` tracked pairs, plus an
    /// eviction of the oldest row when a sliding window overflows.
    pub fn ingest(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.n_paths,
            "snapshot covers {} paths, accumulator tracks {}",
            row.len(),
            self.n_paths
        );
        self.total_ingested += 1;
        match self.mode {
            WindowMode::Exponential(alpha) => self.ingest_ewma(row, alpha),
            WindowMode::Unbounded => {
                self.rows.push_back(row.to_vec());
                self.welford_add(row);
            }
            WindowMode::Sliding(w) => {
                self.rows.push_back(row.to_vec());
                self.welford_add(row);
                if self.rows.len() > w {
                    let old = self.rows.pop_front().expect("window overflowed");
                    self.welford_remove(&old);
                    self.evictions_since_recentre += 1;
                    if self.recentre_every > 0
                        && self.evictions_since_recentre >= self.recentre_every
                    {
                        self.recentre();
                    }
                }
            }
        }
    }

    /// Welford forward update: `C += (y_i − μ_i^{old})(y_j − μ_j^{new})`.
    fn welford_add(&mut self, row: &[f64]) {
        self.count += 1;
        let n = self.count as f64;
        for (((&y, mean), d_old), d_new) in row
            .iter()
            .zip(self.mean.iter_mut())
            .zip(self.delta_old.iter_mut())
            .zip(self.delta_new.iter_mut())
        {
            let d = y - *mean;
            *d_old = d;
            *mean += d / n;
            *d_new = y - *mean;
        }
        for (c, &(i, j)) in self.comoment.iter_mut().zip(self.pairs.iter()) {
            *c += self.delta_old[i] * self.delta_new[j];
        }
    }

    /// Reverse-Welford downdate: removes a row by inverting
    /// [`StreamingCovariance::welford_add`] exactly (in exact
    /// arithmetic; floating point reintroduces rounding, which is why
    /// exact queries replay the window instead).
    fn welford_remove(&mut self, row: &[f64]) {
        self.count -= 1;
        if self.count == 0 {
            self.mean.fill(0.0);
            self.comoment.fill(0.0);
            return;
        }
        let n = self.count as f64;
        for (((&y, mean), d_old), d_new) in row
            .iter()
            .zip(self.mean.iter_mut())
            .zip(self.delta_old.iter_mut())
            .zip(self.delta_new.iter_mut())
        {
            // μ^{old} = μ^{new} + (μ^{new} − y) / n, inverting the add.
            *d_old = y - *mean; // y − μ^{post-add}
            *mean += (*mean - y) / n;
            *d_new = y - *mean; // y − μ^{pre-add}
        }
        for (c, &(i, j)) in self.comoment.iter_mut().zip(self.pairs.iter()) {
            *c -= self.delta_new[i] * self.delta_old[j];
        }
    }

    /// EWMA update: `μ += α δ`, `C = (1−α)(C + α δ_i δ_j)`.
    fn ingest_ewma(&mut self, row: &[f64], alpha: f64) {
        if self.count == 0 {
            self.count = 1;
            self.mean.copy_from_slice(row);
            return;
        }
        self.count += 1;
        for ((&y, mean), d_old) in row
            .iter()
            .zip(self.mean.iter_mut())
            .zip(self.delta_old.iter_mut())
        {
            *d_old = y - *mean;
            *mean += alpha * *d_old;
        }
        for (c, &(i, j)) in self.comoment.iter_mut().zip(self.pairs.iter()) {
            *c = (1.0 - alpha) * (*c + alpha * self.delta_old[i] * self.delta_old[j]);
        }
    }

    /// The running covariance estimates, one per tracked pair:
    /// co-moments over `n − 1` in Welford mode, the EWMA covariance in
    /// exponential mode. `O(r)` — no pass over the window.
    ///
    /// # Panics
    /// Panics with fewer than two ingested snapshots (the sample
    /// covariance is undefined).
    pub fn covariances(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.covariances_into(&mut out);
        out
    }

    /// [`StreamingCovariance::covariances`] into a reusable buffer
    /// (resized and fully overwritten; same panics).
    pub fn covariances_into(&self, out: &mut Vec<f64>) {
        assert!(
            self.count >= 2,
            "need at least 2 snapshots for covariances, have {}",
            self.count
        );
        out.clear();
        match self.mode {
            WindowMode::Exponential(_) => out.extend_from_slice(&self.comoment),
            _ => {
                let denom = (self.count - 1) as f64;
                out.extend(self.comoment.iter().map(|c| c / denom));
            }
        }
    }

    /// The running mean of each path's log measurements.
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// Centres the retained window with the exact batch arithmetic.
    ///
    /// The result is indistinguishable from
    /// `CenteredMeasurements::from_rows(window_rows)`: means accumulate
    /// over rows oldest-first (the ingestion order), deviations are the
    /// same subtractions. Unavailable under exponential forgetting
    /// (nothing is retained).
    ///
    /// # Panics
    /// Panics in [`WindowMode::Exponential`] or with fewer than two
    /// retained snapshots.
    pub fn centered(&self) -> CenteredMeasurements {
        assert!(
            !matches!(self.mode, WindowMode::Exponential(_)),
            "exact replay is unavailable under exponential forgetting"
        );
        let refs: Vec<&[f64]> = self.rows.iter().map(|r| r.as_slice()).collect();
        CenteredMeasurements::from_row_refs(&refs)
    }

    /// The exact pair covariances of the retained window — bit-identical
    /// to the batch [`CenteredMeasurements::pair_covariances`] over the
    /// same rows (same panics as [`StreamingCovariance::centered`]).
    pub fn exact_covariances(&self) -> Vec<f64> {
        self.centered().pair_covariances(&self.pairs)
    }
}

/// How [`OnlineEstimator`] maintains the Phase-1 normal-equations
/// factorisation across refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorRefresh {
    /// Refactor the (incrementally patched) Gram matrix from scratch
    /// each refresh — bit-identical to batch Phase 1. Default.
    #[default]
    Exact,
    /// Amend the previous upper-triangular factor with one Givens
    /// rank-1 [`update`][givens::rank_one_update] /
    /// [`downdate`][givens::rank_one_downdate] per covariance row that
    /// moved between the kept and dropped sets: `O(Δ · n_c²)` instead
    /// of `O(n_c³)` when few rows change sign. Numerically equivalent
    /// (not bit-identical); falls back to a full refactor when a
    /// downdate would lose positive definiteness.
    GivensUpdate,
}

/// Whether the online estimator reuses its refresh workspace across
/// cadences.
///
/// Both modes produce **bit-identical** estimates; the knob exists so
/// the `fleet_scale` benchmark can measure exactly what the reuse is
/// worth, and as an escape hatch for memory-constrained tenants that
/// prefer to release the workspace between (slow-cadence) refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScratchMode {
    /// Keep the refresh workspace — replay buffer, covariance vector,
    /// Gram expansion, SPD permutation + Cholesky factor, Phase-2
    /// factor buffers — alive between refreshes, so a steady-state
    /// refresh allocates nothing and an unchanged kept-row mask reuses
    /// the Phase-1 factor outright. Default.
    #[default]
    Reuse,
    /// Drop and reallocate the workspace every refresh — the historical
    /// behaviour, kept as the measurable baseline.
    AllocPerRefresh,
}

/// Configuration of the online estimator.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// History retention for the covariance accumulator.
    pub window: WindowMode,
    /// Run a Phase-1 + Phase-2-structure refresh every `k ≥ 1` ingests.
    /// Between refreshes, Phase 2 reuses the cached column set and
    /// factorisation with each new snapshot's measurements (exact).
    pub refresh_every: usize,
    /// Phase-1 settings (the cached Gram path requires the default
    /// [`LstsqBackend::NormalEquations`] backend).
    pub variance: VarianceConfig,
    /// Phase-2 settings.
    pub lia: LiaConfig,
    /// Factorisation maintenance policy.
    pub factor: FactorRefresh,
    /// Refresh-workspace policy (reuse vs reallocate; identical bits).
    pub scratch: ScratchMode,
    /// Loss-rate threshold above which a link counts as congested for
    /// change detection (the paper's `t_l`).
    pub congestion_threshold: f64,
    /// Row budget for the augmented pair system (default: the
    /// `LOSSTOMO_PAIR_BUDGET` knob, i.e. full when unset). Applied once
    /// at construction; the selection is readable via
    /// [`OnlineEstimator::pair_selection`].
    pub pair_budget: PairBudget,
    /// Exact-recentre cadence of the sliding-window accumulator: after
    /// this many evictions the running Welford moments are rebuilt
    /// from the retained rows, bounding reverse-Welford rounding drift
    /// on long streams (`0` disables; exact refreshes are unaffected —
    /// they replay the window regardless).
    pub recentre_every: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: WindowMode::Unbounded,
            refresh_every: 1,
            variance: VarianceConfig::default(),
            lia: LiaConfig::default(),
            factor: FactorRefresh::Exact,
            scratch: ScratchMode::default(),
            congestion_threshold: losstomo_netsim::DEFAULT_LOSS_THRESHOLD,
            pair_budget: PairBudget::default(),
            recentre_every: DEFAULT_RECENTRE_EVERY,
        }
    }
}

/// The reusable refresh workspace of one [`OnlineEstimator`]: every
/// buffer the refresh hot path writes, owned by the estimator so
/// steady-state refreshes allocate nothing (see [`ScratchMode`]).
#[derive(Debug)]
struct RefreshScratch {
    /// Pair covariances of the current refresh.
    sigmas: Vec<f64>,
    /// Batch-exact replay of the retained window (empty until the
    /// first exact refresh).
    centered: CenteredMeasurements,
    /// Phase-1 assembly + SPD solver workspace (including the cached
    /// Cholesky factor reused while the kept-row mask is unchanged).
    phase1: Phase1Scratch,
    /// Dense `R*` column-selection buffer.
    rstar_dense: Matrix,
    /// Sparse `R*` column-selection buffer (recycled through
    /// [`SparseQr::refactor`]).
    rstar_csr: CsrMatrix,
}

impl Default for RefreshScratch {
    fn default() -> Self {
        RefreshScratch {
            sigmas: Vec::new(),
            centered: CenteredMeasurements::empty(),
            phase1: Phase1Scratch::default(),
            rstar_dense: Matrix::zeros(0, 0),
            rstar_csr: CsrMatrix::empty(0),
        }
    }
}

/// What one [`OnlineEstimator::ingest`] produced.
#[derive(Debug, Clone)]
pub struct OnlineUpdate {
    /// Whether this ingest triggered a Phase-1/Phase-2-structure
    /// refresh (per the configured cadence).
    pub refreshed: bool,
    /// Per-link rate estimate for the ingested snapshot (`None` while
    /// the estimator is still warming up).
    pub estimate: Option<LinkRateEstimate>,
    /// Links currently diagnosed congested (ascending).
    pub congested: Vec<usize>,
    /// Links that entered the congested set with this snapshot.
    pub appeared: Vec<usize>,
    /// Links that left the congested set with this snapshot.
    pub cleared: Vec<usize>,
}

/// The streaming two-phase estimator: ingest snapshots one at a time,
/// read back per-link loss rates and congested-set changes.
///
/// See the [module docs](self) for the incremental machinery and the
/// exactness contract. Typical use:
///
/// ```text
/// let mut est = OnlineEstimator::new(&red, OnlineConfig::default());
/// for snapshot in simulate_stream(&red, scenario, &probe_cfg, rng) {
///     let update = est.ingest(&snapshot)?;
///     for k in update.appeared { alert_congested(k); }
/// }
/// ```
#[derive(Debug)]
pub struct OnlineEstimator {
    cfg: OnlineConfig,
    red: ReducedTopology,
    /// The Phase-2 routing-matrix view (dense below the dispatch
    /// threshold, CSR above), materialised once for column selection
    /// and `R*` assembly.
    view: RankView,
    aug: AugmentedSystem,
    /// The pair selection the budget produced at construction (`None`
    /// when the budget didn't bite and `aug` is the full system).
    selection: Option<PairSelection>,
    cov: StreamingCovariance,
    gram: GramCache,
    /// Upper factor `R` with `RᵀR = AᵀA` (Givens mode only).
    factor: Option<Matrix>,
    variances: Option<VarianceEstimate>,
    /// Memoized Phase-2 structure: the variance order of the last
    /// refresh, its elimination cut, its kept column set, and the
    /// factorisation of `R*`.
    order: Vec<usize>,
    cut: Option<usize>,
    kept: Vec<usize>,
    p2: Option<Phase2Factor>,
    congested: Vec<usize>,
    since_refresh: usize,
    refreshes: u64,
    warmup_error: Option<LinalgError>,
    /// Refresh workspace (dropped and rebuilt every refresh under
    /// [`ScratchMode::AllocPerRefresh`]).
    scratch: RefreshScratch,
}

/// The memoized factorisation of the reduced system `R*`, reused while
/// the kept column set is unchanged.
#[derive(Debug)]
enum Phase2Factor {
    /// Dense pivoted QR (the default dense-path backend).
    DenseQr(PivotedQr),
    /// Dense `R*` solved by normal equations per estimate
    /// ([`LstsqBackend::NormalEquations`]).
    DenseNormal(Matrix),
    /// Sparse Givens QR (the sparse dispatch path).
    Sparse(SparseQr),
}

impl OnlineEstimator {
    /// Builds the estimator for a reduced topology: constructs the
    /// augmented system, its pair index, and the streaming accumulator.
    pub fn new(red: &ReducedTopology, cfg: OnlineConfig) -> Self {
        assert!(cfg.refresh_every >= 1, "refresh cadence must be ≥ 1");
        // Budget the pair set before wiring the accumulator: the
        // covariance sweep, the Gram cache and every Phase-1 solve then
        // only ever see the selected rows.
        let (aug, selection) = apply_budget(AugmentedSystem::build(red), cfg.pair_budget);
        let cov = StreamingCovariance::new(red.num_paths(), aug.pair_indices(), cfg.window)
            .with_recentre_every(cfg.recentre_every);
        OnlineEstimator {
            red: red.clone(),
            view: RankView::new(red, cfg.lia.dispatch),
            cfg,
            aug,
            selection,
            cov,
            gram: GramCache::new(),
            factor: None,
            variances: None,
            order: Vec::new(),
            cut: None,
            kept: Vec::new(),
            p2: None,
            congested: Vec::new(),
            since_refresh: 0,
            refreshes: 0,
            warmup_error: None,
            scratch: RefreshScratch::default(),
        }
    }

    /// The augmented system the estimator tracks covariances for
    /// (already budgeted when [`OnlineConfig::pair_budget`] bites).
    pub fn augmented(&self) -> &AugmentedSystem {
        &self.aug
    }

    /// The pair selection applied at construction, or `None` when the
    /// configured [`PairBudget`] kept the full pair set.
    pub fn pair_selection(&self) -> Option<&PairSelection> {
        self.selection.as_ref()
    }

    /// The streaming covariance accumulator (window occupancy, running
    /// means, Welford estimates).
    pub fn covariance(&self) -> &StreamingCovariance {
        &self.cov
    }

    /// The latest Phase-1 estimate, if any refresh has succeeded.
    pub fn variances(&self) -> Option<&VarianceEstimate> {
        self.variances.as_ref()
    }

    /// Links currently diagnosed congested (ascending).
    pub fn congested_links(&self) -> &[usize] {
        &self.congested
    }

    /// Columns currently kept in `R*` (ascending; empty before the
    /// first successful refresh).
    pub fn kept_columns(&self) -> &[usize] {
        &self.kept
    }

    /// Successful refreshes so far.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// The error of the most recent failed warm-up refresh, if the
    /// estimator has not produced variances yet (early on, dropping
    /// negative covariance rows can leave the moment system
    /// under-determined; the estimator keeps ingesting until it becomes
    /// solvable).
    pub fn warmup_error(&self) -> Option<&LinalgError> {
        self.warmup_error.as_ref()
    }

    /// Ingests one simulated/measured snapshot: extracts the log rates
    /// once, updates the covariance accumulator, refreshes per the
    /// cadence, and scores the snapshot against the current model.
    pub fn ingest(&mut self, snapshot: &Snapshot) -> Result<OnlineUpdate, LinalgError> {
        self.ingest_log_rates(&snapshot.log_rates())
    }

    /// [`OnlineEstimator::ingest`] for pre-extracted log measurements
    /// `Y_i = log φ̂_i` (one entry per path).
    pub fn ingest_log_rates(&mut self, y: &[f64]) -> Result<OnlineUpdate, LinalgError> {
        assert_eq!(
            y.len(),
            self.red.num_paths(),
            "snapshot covers {} paths, topology has {}",
            y.len(),
            self.red.num_paths()
        );
        self.cov.ingest(y);
        self.since_refresh += 1;
        let due = self.variances.is_none() || self.since_refresh >= self.cfg.refresh_every;
        let mut refreshed = false;
        if due && self.cov.len() >= 2 {
            match self.refresh() {
                Ok(()) => refreshed = true,
                // While warming up, an unsolvable moment system just
                // means "not enough signal yet" — keep streaming. After
                // the first success, failures are real and surface.
                Err(e) if self.variances.is_none() => self.warmup_error = Some(e),
                Err(e) => return Err(e),
            }
        }
        let estimate = if self.variances.is_some() {
            Some(self.estimate(y)?)
        } else {
            None
        };
        let congested = estimate
            .as_ref()
            .map(|e| e.congested_links(self.cfg.congestion_threshold))
            .unwrap_or_default();
        let (appeared, cleared) = diff_sorted(&self.congested, &congested);
        self.congested.clone_from(&congested);
        Ok(OnlineUpdate {
            refreshed,
            estimate,
            congested,
            appeared,
            cleared,
        })
    }

    /// Runs a Phase-1 refresh and re-memoizes the Phase-2 structure.
    /// Called automatically per the cadence; public so callers on a
    /// slow cadence can force a refresh (e.g. before reading
    /// [`OnlineEstimator::variances`] at a reporting boundary).
    pub fn refresh(&mut self) -> Result<(), LinalgError> {
        if self.cfg.scratch == ScratchMode::AllocPerRefresh {
            // The measurable baseline: pay the full allocation (and
            // factorisation) bill every refresh.
            self.scratch = RefreshScratch::default();
        }
        // Covariances into the reusable buffer. The buffer is moved out
        // for the duration of the solve (the borrow checker cannot see
        // that the Phase-1/Phase-2 body never touches it) and moved
        // back before returning.
        let mut sigmas = std::mem::take(&mut self.scratch.sigmas);
        match self.cfg.window {
            WindowMode::Exponential(_) => self.cov.covariances_into(&mut sigmas),
            _ => {
                // Exact batch replay of the retained window, recentred
                // into the reusable buffers straight off the ring
                // buffer (no per-refresh allocations) — bit-identical
                // to `StreamingCovariance::exact_covariances`.
                let centered = &mut self.scratch.centered;
                centered.recentre_from_iter(self.cov.rows.iter().map(|r| r.as_slice()));
                centered.pair_covariances_into(&self.cov.pairs, &mut sigmas);
            }
        }
        let result = self.refresh_from_sigmas_inner(&sigmas);
        self.scratch.sigmas = sigmas;
        result
    }

    /// The Phase-1 solve + Phase-2 re-memoization half of a refresh.
    fn refresh_from_sigmas_inner(&mut self, sigmas: &[f64]) -> Result<(), LinalgError> {
        let est = match (self.cfg.variance.backend, self.cfg.factor) {
            (LstsqBackend::NormalEquations, FactorRefresh::Exact) => {
                let mut phase1 = std::mem::take(&mut self.scratch.phase1);
                let est = estimate_variances_scratch(
                    &self.red,
                    &self.aug,
                    sigmas,
                    &self.cfg.variance,
                    &mut self.gram,
                    &mut phase1,
                );
                self.scratch.phase1 = phase1;
                est?
            }
            (LstsqBackend::NormalEquations, FactorRefresh::GivensUpdate) => {
                self.refresh_givens(sigmas)?
            }
            // The QR backend has no incremental assembly to cache.
            (LstsqBackend::HouseholderQr, _) => {
                estimate_variances_from_sigmas(&self.red, &self.aug, sigmas, &self.cfg.variance)?
            }
        };
        // Phase-2 structure: the kept set is a pure function of the
        // variance order, so an unchanged order skips the column
        // selection entirely; a changed order re-certifies the previous
        // elimination cut with two rank checks (falling back to the
        // full bisection only when the cut actually moved); and an
        // unchanged kept set reuses the factorisation.
        let order = lia::variance_order(&est.v);
        if order != self.order || self.p2.is_none() {
            let kept = match self.cfg.lia.elimination {
                EliminationStrategy::PaperOrder => {
                    let (kept, cut) =
                        lia::select_paper_order_hinted(&self.red, &self.view, &order, self.cut);
                    self.cut = Some(cut);
                    kept
                }
                EliminationStrategy::GreedyMatroid => lia::select_full_rank_columns_ordered(
                    &self.red,
                    &order,
                    self.cfg.lia.elimination,
                ),
            };
            if kept != self.kept || self.p2.is_none() {
                self.rebuild_phase2(&kept)?;
                self.kept = kept;
            }
            self.order = order;
        }
        self.variances = Some(est);
        self.warmup_error = None;
        self.since_refresh = 0;
        self.refreshes += 1;
        Ok(())
    }

    /// (Re)factors `R*` for a new kept column set, reusing the previous
    /// factor's buffers through the in-place `factor_into`/`refactor`
    /// APIs when a factor of the right family already exists. On error
    /// the memoized factor is dropped (it would be invalid).
    fn rebuild_phase2(&mut self, kept: &[usize]) -> Result<(), LinalgError> {
        match &self.view {
            RankView::Dense(dense) => {
                dense.select_columns_into(kept, &mut self.scratch.rstar_dense);
                match (self.cfg.lia.backend, &mut self.p2) {
                    (LstsqBackend::HouseholderQr, Some(Phase2Factor::DenseQr(qr))) => {
                        if let Err(e) = qr.factor_into(&self.scratch.rstar_dense) {
                            self.p2 = None;
                            return Err(e);
                        }
                    }
                    (LstsqBackend::HouseholderQr, _) => {
                        self.p2 = Some(Phase2Factor::DenseQr(PivotedQr::new(
                            &self.scratch.rstar_dense,
                        )?));
                    }
                    (LstsqBackend::NormalEquations, Some(Phase2Factor::DenseNormal(rstar))) => {
                        rstar.copy_from(&self.scratch.rstar_dense);
                    }
                    (LstsqBackend::NormalEquations, _) => {
                        self.p2 = Some(Phase2Factor::DenseNormal(self.scratch.rstar_dense.clone()));
                    }
                }
            }
            RankView::Sparse(csr) => {
                csr.select_columns_into(kept, &mut self.scratch.rstar_csr);
                let rstar = std::mem::replace(&mut self.scratch.rstar_csr, CsrMatrix::empty(0));
                match &mut self.p2 {
                    Some(Phase2Factor::Sparse(qr)) => match qr.refactor(rstar) {
                        // The displaced matrix becomes the next
                        // selection buffer.
                        Ok(prev) => self.scratch.rstar_csr = prev,
                        Err(e) => {
                            self.p2 = None;
                            return Err(e);
                        }
                    },
                    _ => self.p2 = Some(Phase2Factor::Sparse(SparseQr::new(rstar)?)),
                }
            }
        }
        Ok(())
    }

    /// The exact cached Phase 1, run through the estimator's
    /// *persistent* workspace — every fallback from the Givens path
    /// funnels through here, so the all-rows fallback factor cached in
    /// `scratch.phase1` survives between refreshes. (A throwaway
    /// workspace here refactorised the fallback Gram from scratch on
    /// every singular retry — the p99 refresh-tail spike.)
    fn refresh_exact_fallback(&mut self, sigmas: &[f64]) -> Result<VarianceEstimate, LinalgError> {
        let mut phase1 = std::mem::take(&mut self.scratch.phase1);
        let est = estimate_variances_scratch(
            &self.red,
            &self.aug,
            sigmas,
            &self.cfg.variance,
            &mut self.gram,
            &mut phase1,
        );
        self.scratch.phase1 = phase1;
        est
    }

    /// Phase 1 with the Givens-amended factor: patch the Gram counts,
    /// rank-1-update/downdate the upper factor for the rows that moved
    /// between kept and dropped, and solve by two triangular solves.
    /// Any failure (under-determined kept set, lost positive
    /// definiteness, singular factor) falls back to the exact cached
    /// path and discards the factor, which is rebuilt from the patched
    /// counts at the next refresh.
    fn refresh_givens(&mut self, sigmas: &[f64]) -> Result<VarianceEstimate, LinalgError> {
        let nc = self.red.num_links();
        let cfg = &self.cfg.variance;
        let new_kept: Vec<bool> = sigmas
            .iter()
            .map(|&s| !(cfg.drop_negative_covariances && s < 0.0))
            .collect();
        let (added, dropped) = self.gram.sync(self.aug.matrix(), nc, &new_kept);
        if !added.is_empty() || !dropped.is_empty() {
            // The cache mask moved without a kept solve: the kept
            // factor in the persistent workspace is stale.
            self.scratch.phase1.invalidate_kept_factor();
        }
        let used = new_kept.iter().filter(|&&k| k).count();
        let dropped_count = self.aug.num_rows() - used;
        if used < nc {
            self.factor = None;
            return self.refresh_exact_fallback(sigmas);
        }
        // Amend or (re)build the factor.
        let mut scratch = vec![0.0; nc];
        if let Some(factor) = self.factor.as_mut() {
            let mut amended = true;
            for &r in added.iter().chain(dropped.iter()) {
                scratch.fill(0.0);
                for &k in self.aug.row(r) {
                    scratch[k] = 1.0;
                }
                let res = if new_kept[r] {
                    givens::rank_one_update(factor, &mut scratch)
                } else {
                    givens::rank_one_downdate(factor, &mut scratch)
                };
                if res.is_err() {
                    amended = false;
                    break;
                }
            }
            if !amended {
                self.factor = None;
            }
        }
        if self.factor.is_none() {
            let mut gram = Matrix::zeros(nc, nc);
            crate::variance::counts_to_symmetric(self.gram.counts(), gram.as_mut_slice(), nc);
            match Cholesky::new(&gram) {
                Ok(chol) => self.factor = Some(chol.l().transpose()),
                Err(_) => {
                    // Mirror the exact path's all-rows fallback.
                    return self.refresh_exact_fallback(sigmas);
                }
            }
        }
        let mut atb = vec![0.0; nc];
        for (((_, links), &sigma), &keep) in
            self.aug.iter().zip(sigmas.iter()).zip(new_kept.iter())
        {
            if !keep {
                continue;
            }
            for &ka in links {
                atb[ka] += sigma;
            }
        }
        let factor = self.factor.as_ref().expect("factor was just built");
        let solved = triangular::solve_upper_transposed(factor, &atb)
            .and_then(|z| triangular::solve_upper_triangular(factor, &z));
        match solved {
            Ok(v) => Ok(VarianceEstimate {
                v,
                dropped_rows: dropped_count,
                used_rows: used,
            }),
            Err(_) => {
                self.factor = None;
                self.refresh_exact_fallback(sigmas)
            }
        }
    }

    /// Phase 2 for one snapshot's log measurements against the current
    /// model: reuses the memoized kept set and factorisation, so a
    /// per-snapshot estimate between refreshes costs one least-squares
    /// application instead of a rank bisection plus factorisation.
    pub fn estimate(&self, y: &[f64]) -> Result<LinkRateEstimate, LinalgError> {
        if self.variances.is_none() {
            return Err(LinalgError::DimensionMismatch(
                "no successful Phase-1 refresh yet — ingest more snapshots".to_string(),
            ));
        }
        if y.len() != self.red.num_paths() {
            return Err(LinalgError::DimensionMismatch(format!(
                "snapshot has {} paths, topology has {}",
                y.len(),
                self.red.num_paths()
            )));
        }
        let xstar = match self.p2.as_ref().expect("kept set built with variances") {
            Phase2Factor::DenseQr(qr) => qr.solve_least_squares(y)?,
            Phase2Factor::DenseNormal(rstar) => lstsq::solve_normal_equations(rstar, y)?,
            Phase2Factor::Sparse(qr) => qr.solve_least_squares(y)?,
        };
        Ok(lia::rates_from_solution(
            self.red.num_links(),
            &self.kept,
            &xstar,
        ))
    }
}

/// Set difference of two ascending index lists, as
/// `(in_new_only, in_old_only)`.
fn diff_sorted(old: &[usize], new: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut appeared = Vec::new();
    let mut cleared = Vec::new();
    let (mut a, mut b) = (0, 0);
    while a < old.len() || b < new.len() {
        match (old.get(a), new.get(b)) {
            (Some(&x), Some(&y)) if x == y => {
                a += 1;
                b += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                cleared.push(x);
                a += 1;
            }
            (Some(_), Some(&y)) => {
                appeared.push(y);
                b += 1;
            }
            (Some(&x), None) => {
                cleared.push(x);
                a += 1;
            }
            (None, Some(&y)) => {
                appeared.push(y);
                b += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    (appeared, cleared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::estimate_variances;
    use crate::{infer_link_rates, CenteredMeasurements};
    use losstomo_netsim::{
        simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
    };
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    fn simulate(red: &ReducedTopology, m: usize, seed: u64) -> MeasurementSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.3,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 200,
            ..ProbeConfig::default()
        };
        simulate_run(red, &mut scenario, &cfg, m, &mut rng)
    }

    fn all_pairs(n: usize) -> Vec<(usize, usize)> {
        (0..n).flat_map(|i| (i..n).map(move |j| (i, j))).collect()
    }

    fn synthetic_rows(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m)
            .map(|l| {
                (0..n)
                    .map(|i| (((l * 37 + i * 13 + 5) % 101) as f64) / 10.1 - 5.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn streaming_exact_matches_batch_bitwise() {
        let rows = synthetic_rows(12, 5);
        let pairs = all_pairs(5);
        let mut sc = StreamingCovariance::new(5, pairs.clone(), WindowMode::Unbounded);
        for row in &rows {
            sc.ingest(row);
        }
        let batch = CenteredMeasurements::from_rows(rows).pair_covariances(&pairs);
        assert_eq!(sc.exact_covariances(), batch);
        assert_eq!(sc.len(), 12);
        assert_eq!(sc.total_ingested(), 12);
    }

    #[test]
    fn sliding_window_matches_batch_over_window() {
        let rows = synthetic_rows(20, 4);
        let pairs = all_pairs(4);
        let w = 6;
        let mut sc = StreamingCovariance::new(4, pairs.clone(), WindowMode::Sliding(w));
        for row in &rows {
            sc.ingest(row);
        }
        assert_eq!(sc.len(), w);
        let window = rows[rows.len() - w..].to_vec();
        let batch = CenteredMeasurements::from_rows(window).pair_covariances(&pairs);
        assert_eq!(sc.exact_covariances(), batch);
    }

    #[test]
    fn welford_tracks_batch_within_tolerance() {
        let rows = synthetic_rows(30, 4);
        let pairs = all_pairs(4);
        let mut sc = StreamingCovariance::new(4, pairs.clone(), WindowMode::Unbounded);
        for row in &rows {
            sc.ingest(row);
        }
        let exact = sc.exact_covariances();
        for (w, e) in sc.covariances().iter().zip(exact.iter()) {
            assert!((w - e).abs() < 1e-9, "welford {w} vs exact {e}");
        }
    }

    #[test]
    fn welford_downdate_survives_long_streams() {
        // After many evictions the running moments must still track the
        // window's true covariance.
        let rows = synthetic_rows(200, 3);
        let pairs = all_pairs(3);
        let w = 8;
        let mut sc = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(w));
        for row in &rows {
            sc.ingest(row);
        }
        let exact = sc.exact_covariances();
        for (wv, e) in sc.covariances().iter().zip(exact.iter()) {
            assert!((wv - e).abs() < 1e-6, "welford {wv} drifted from {e}");
        }
    }

    #[test]
    fn pair_budget_restricts_estimator_pair_sweep() {
        // A biting budget must shrink the augmented system (and with
        // it the tracked pair set), keep Phase 1 solvable, and keep
        // rank so the estimator still converges on clean streams.
        let red = fixtures::reduced(&fixtures::figure2());
        let full = AugmentedSystem::build(&red);
        let rank = losstomo_linalg::rank(&full.to_dense());
        let cfg = OnlineConfig {
            pair_budget: PairBudget::Rows(rank),
            ..OnlineConfig::default()
        };
        let mut est = OnlineEstimator::new(&red, cfg);
        let sel = est.pair_selection().expect("budget bites on figure2");
        assert!(est.augmented().num_rows() < full.num_rows());
        assert_eq!(est.augmented().num_rows(), sel.rows.len());
        assert_eq!(
            est.covariance().pairs().len(),
            est.augmented().num_rows(),
            "covariance sweep tracks exactly the selected pairs"
        );
        let ms = simulate(&red, 30, 3);
        for snapshot in &ms.snapshots {
            est.ingest(snapshot).unwrap();
        }
        assert!(est.refresh_count() > 0);
        assert!(est.variances().is_some());
        // Full budget (the default with the env knob unset) is the
        // identity.
        let unbudgeted = OnlineEstimator::new(&red, OnlineConfig::default());
        assert!(unbudgeted.pair_selection().is_none());
        assert_eq!(unbudgeted.augmented().num_rows(), full.num_rows());
    }

    #[test]
    fn recentre_cadence_pins_long_stream_drift() {
        // ISSUE 6 regression: 10k windowed snapshots accumulate
        // reverse-Welford rounding; the periodic exact recentre must
        // keep the running moments within 1e-10 of the exact window
        // covariance, and disabling it must still stay within the old
        // loose tolerance.
        let rows = synthetic_rows(10_000, 3);
        let pairs = all_pairs(3);
        let w = 16;
        let mut with_recentre = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(w))
            .with_recentre_every(256);
        let mut without = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(w))
            .with_recentre_every(0);
        for row in &rows {
            with_recentre.ingest(row);
            without.ingest(row);
        }
        let exact = with_recentre.exact_covariances();
        for ((&r, &n), &e) in with_recentre
            .covariances()
            .iter()
            .zip(without.covariances().iter())
            .zip(exact.iter())
        {
            assert!(
                (r - e).abs() < 1e-10,
                "recentred welford {r} drifted {:.3e} from exact {e}",
                (r - e).abs()
            );
            assert!((n - e).abs() < 1e-6, "uncentred drift blew up: {n} vs {e}");
        }
    }

    #[test]
    fn recentre_is_invisible_to_exact_refreshes() {
        // The online estimator's refreshes replay the window, so the
        // cadence must not change a single estimate bit.
        let red = fig1();
        let ms = simulate(&red, 40, 9);
        let base = OnlineConfig {
            window: WindowMode::Sliding(12),
            ..OnlineConfig::default()
        };
        let mut a = OnlineEstimator::new(&red, OnlineConfig { recentre_every: 4, ..base });
        let mut b = OnlineEstimator::new(&red, OnlineConfig { recentre_every: 0, ..base });
        for snapshot in &ms.snapshots {
            let ua = a.ingest(snapshot).unwrap();
            let ub = b.ingest(snapshot).unwrap();
            match (ua.estimate, ub.estimate) {
                (Some(ea), Some(eb)) => {
                    assert_eq!(ea.transmission, eb.transmission, "estimates diverged")
                }
                (None, None) => {}
                _ => panic!("warmup diverged"),
            }
        }
        assert!(a.refresh_count() > 0, "premise: refreshes happened");
    }

    #[test]
    fn ewma_mode_estimates_covariance_scale() {
        // Stationary noise: EWMA covariance should land near the true
        // variance for the diagonal pair, with no window retained.
        let rows = synthetic_rows(400, 2);
        let mut sc =
            StreamingCovariance::new(2, vec![(0, 0), (0, 1)], WindowMode::Exponential(0.05));
        for row in &rows {
            sc.ingest(row);
        }
        assert!(sc.rows.is_empty());
        let est = sc.covariances();
        let batch = CenteredMeasurements::from_rows(rows);
        assert!(
            (est[0] - batch.var(0)).abs() / batch.var(0) < 0.5,
            "EWMA {} vs batch {}",
            est[0],
            batch.var(0)
        );
    }

    #[test]
    #[should_panic(expected = "exact replay")]
    fn ewma_mode_has_no_exact_replay() {
        let mut sc = StreamingCovariance::new(2, vec![(0, 1)], WindowMode::Exponential(0.1));
        sc.ingest(&[1.0, 2.0]);
        sc.ingest(&[2.0, 1.0]);
        let _ = sc.exact_covariances();
    }

    #[test]
    #[should_panic(expected = "at least 2 snapshots")]
    fn covariances_need_two_snapshots() {
        let mut sc = StreamingCovariance::new(2, vec![(0, 1)], WindowMode::Unbounded);
        sc.ingest(&[1.0, 2.0]);
        let _ = sc.covariances();
    }

    #[test]
    fn online_estimator_matches_batch_pipeline_bitwise() {
        let red = fig1();
        let m = 25;
        let ms = simulate(&red, m + 1, 42);
        // Batch reference.
        let train = MeasurementSet {
            snapshots: ms.snapshots[..m].to_vec(),
        };
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::new(&train);
        let batch_v =
            estimate_variances(&red, &aug, &centered, &VarianceConfig::default()).unwrap();
        let y_eval = ms.snapshots[m].log_rates();
        let batch_p2 =
            infer_link_rates(&red, &batch_v.v, &y_eval, &LiaConfig::default()).unwrap();
        // Online, default (exact) configuration.
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        for snap in &ms.snapshots[..m] {
            online.ingest(snap).unwrap();
        }
        let online_v = online.variances().expect("warm after m snapshots");
        assert_eq!(online_v.v, batch_v.v, "Phase-1 variances drifted");
        assert_eq!(online_v.dropped_rows, batch_v.dropped_rows);
        assert_eq!(online_v.used_rows, batch_v.used_rows);
        let online_p2 = online.estimate(&y_eval).unwrap();
        assert_eq!(online_p2.transmission, batch_p2.transmission);
        assert_eq!(online_p2.kept, batch_p2.kept);
        assert_eq!(online_p2.kept_count, batch_p2.kept_count);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_alloc_per_refresh() {
        // The workspace-reuse hot path (cached Gram factor included)
        // must not change a single bit of the estimates.
        let red = fig1();
        let ms = simulate(&red, 30, 77);
        let mut reuse = OnlineEstimator::new(&red, OnlineConfig::default());
        let mut alloc = OnlineEstimator::new(
            &red,
            OnlineConfig {
                scratch: ScratchMode::AllocPerRefresh,
                ..OnlineConfig::default()
            },
        );
        for snap in &ms.snapshots {
            let ur = reuse.ingest(snap).unwrap();
            let ua = alloc.ingest(snap).unwrap();
            assert_eq!(ur.congested, ua.congested);
            match (&ur.estimate, &ua.estimate) {
                (Some(er), Some(ea)) => assert_eq!(er.transmission, ea.transmission),
                (None, None) => {}
                _ => panic!("one mode warmed up before the other"),
            }
        }
        assert_eq!(
            reuse.variances().unwrap().v,
            alloc.variances().unwrap().v,
            "Phase-1 variances drifted between scratch modes"
        );
        assert_eq!(reuse.kept_columns(), alloc.kept_columns());
    }

    #[test]
    fn refresh_cadence_skips_intermediate_refreshes() {
        let red = fig1();
        let ms = simulate(&red, 12, 7);
        let cfg = OnlineConfig {
            refresh_every: 4,
            ..OnlineConfig::default()
        };
        let mut online = OnlineEstimator::new(&red, cfg);
        let mut refreshes = 0;
        for snap in &ms.snapshots {
            if online.ingest(snap).unwrap().refreshed {
                refreshes += 1;
            }
        }
        // First refresh as soon as solvable, then every 4th ingest.
        assert!(refreshes < ms.snapshots.len() as u64 && refreshes >= 2);
        assert_eq!(refreshes, online.refresh_count());
    }

    #[test]
    fn givens_mode_agrees_with_exact_mode() {
        let red = fig1();
        let ms = simulate(&red, 30, 11);
        let exact_cfg = OnlineConfig::default();
        let givens_cfg = OnlineConfig {
            factor: FactorRefresh::GivensUpdate,
            ..OnlineConfig::default()
        };
        let mut exact = OnlineEstimator::new(&red, exact_cfg);
        let mut amended = OnlineEstimator::new(&red, givens_cfg);
        for snap in &ms.snapshots {
            exact.ingest(snap).unwrap();
            amended.ingest(snap).unwrap();
        }
        let (ve, va) = (
            &exact.variances().unwrap().v,
            &amended.variances().unwrap().v,
        );
        for (a, b) in ve.iter().zip(va.iter()) {
            assert!((a - b).abs() < 1e-8, "exact {ve:?} vs givens {va:?}");
        }
    }

    #[test]
    fn change_detection_reports_transitions() {
        let (appeared, cleared) = diff_sorted(&[1, 3, 5], &[1, 4, 5, 9]);
        assert_eq!(appeared, vec![4, 9]);
        assert_eq!(cleared, vec![3]);
        let (a2, c2) = diff_sorted(&[], &[2]);
        assert_eq!(a2, vec![2]);
        assert!(c2.is_empty());
    }

    #[test]
    fn online_update_congested_set_is_consistent() {
        let red = fig1();
        let ms = simulate(&red, 20, 3);
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        let mut current: Vec<usize> = Vec::new();
        for snap in &ms.snapshots {
            let up = online.ingest(snap).unwrap();
            // appeared/cleared must replay old → new exactly.
            let mut replayed: Vec<usize> = current
                .iter()
                .copied()
                .filter(|k| !up.cleared.contains(k))
                .chain(up.appeared.iter().copied())
                .collect();
            replayed.sort_unstable();
            assert_eq!(replayed, up.congested);
            current = up.congested.clone();
        }
        assert_eq!(current, online.congested_links());
    }

    #[test]
    fn warmup_is_graceful() {
        let red = fig1();
        let ms = simulate(&red, 3, 5);
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        let up = online.ingest(&ms.snapshots[0]).unwrap();
        assert!(!up.refreshed);
        assert!(up.estimate.is_none());
        assert!(up.congested.is_empty());
    }

    #[test]
    #[should_panic(expected = "snapshot covers")]
    fn wrong_width_snapshot_panics() {
        let red = fig1();
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        let _ = online.ingest_log_rates(&[0.0]);
    }
}
