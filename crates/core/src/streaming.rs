//! Streaming loss inference: incremental covariance tracking and an
//! online two-phase estimator.
//!
//! The paper's estimator is batch — collect `m` snapshots, form the
//! sample covariance (eq. 7), solve `Σ* = A v` — but a production
//! monitor sees snapshots arrive as a stream and wants congested-link
//! sets that update per snapshot, not per recomputation. This module
//! provides the two pieces:
//!
//! * [`StreamingCovariance`] ingests one snapshot of log measurements at
//!   a time and maintains the covariances of the augmented path pairs
//!   two ways at once: **Welford-style rank-1 running co-moments**
//!   (`O(n_p + r)` per ingest, available at any instant, optionally
//!   under a sliding or exponentially-forgetting window) and an **exact
//!   replay** over the retained window that is bit-identical to the
//!   batch [`CenteredMeasurements::pair_covariances`] sweep — same
//!   additions in the same order — so a streaming refresh can reproduce
//!   a batch recompute exactly.
//! * [`OnlineEstimator`] keeps the full Phase-1/Phase-2 pipeline warm
//!   across refreshes: the Phase-1 Gram matrix is patched incrementally
//!   through a [`GramCache`] (integer co-occurrence counts, so patched
//!   and from-scratch assemblies are exactly equal), the Cholesky factor
//!   can be amended with the Givens rank-1 updates of
//!   [`losstomo_linalg::givens`] instead of refactored
//!   ([`FactorRefresh::GivensUpdate`]), and the Phase-2 column selection
//!   and pivoted-QR factorisation are memoized on the variance *order*,
//!   which rarely changes between consecutive snapshots. Refresh cadence
//!   is configurable, and every ingest reports congested-set changes
//!   ([`OnlineUpdate::appeared`] / [`OnlineUpdate::cleared`]).
//!
//! ## Exactness contract
//!
//! With the default configuration ([`WindowMode::Unbounded`],
//! [`FactorRefresh::Exact`]), ingesting `m` snapshots and refreshing
//! produces **bit-for-bit** the Phase-1 variances and Phase-2 link rates
//! of the batch pipeline ([`estimate_variances`][crate::estimate_variances]
//! followed by [`infer_link_rates`][crate::infer_link_rates]) on the same
//! `m` snapshots: the replayed covariances are the same bits, the cached
//! Gram counts are the same integers, and the memoized Phase-2 factor is
//! built from the same reduced matrix. A sliding window is equally exact
//! over its window. [`FactorRefresh::GivensUpdate`] and
//! [`WindowMode::Exponential`] trade the last bits for lower refresh
//! cost and are tolerance-tested instead.
//!
//! ## Memory and refresh cost
//!
//! The exactness contract requires replaying the retained window, so
//! [`WindowMode::Unbounded`] (the default, matching the paper's
//! grow-forever batch regime) buffers every ingested row and its
//! refresh cost grows with the history length. A monitor that runs
//! indefinitely should bound its state with [`WindowMode::Sliding`]
//! (exact over the window, `O(w)` rows retained) or
//! [`WindowMode::Exponential`] (`O(1)` state, no row buffer at all),
//! and/or lengthen [`OnlineConfig::refresh_every`].

use crate::augmented::AugmentedSystem;
use crate::budget::{apply_budget, PairBudget, PairSelection};
use crate::covariance::CenteredMeasurements;
use crate::lia::{self, EliminationStrategy, LiaConfig, LinkRateEstimate, RankView};
use crate::variance::{
    estimate_variances_from_sigmas, estimate_variances_scratch, GramCache, Phase1Scratch,
    VarianceConfig, VarianceEstimate,
};
use bytes::Bytes;
use losstomo_linalg::simd::cast_bytes_to_f64;
use losstomo_linalg::{
    givens, lstsq, triangular, Cholesky, CsrMatrix, LinalgError, LstsqBackend, Matrix, PivotedQr,
    SparseQr,
};
use losstomo_netsim::Snapshot;
use losstomo_topology::{ChurnError, DeltaEffect, PathId, ReducedTopology, TopologyDelta};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Default sliding-window recentre cadence, in evictions: frequent
/// enough that reverse-Welford rounding stays far below any tolerance
/// in use, rare enough that the `O(window)` replay is amortised to
/// noise.
pub const DEFAULT_RECENTRE_EVERY: usize = 1024;

/// How much history the streaming accumulator retains.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WindowMode {
    /// Keep every ingested snapshot (the batch regime, grown online).
    /// Memory and exact-refresh cost grow with the stream — prefer a
    /// bounded window for monitors that run indefinitely.
    #[default]
    Unbounded,
    /// Keep only the most recent `w ≥ 2` snapshots; older ones are
    /// evicted with a reverse-Welford downdate.
    Sliding(usize),
    /// Exponential forgetting with smoothing factor `0 < α < 1`: the
    /// running mean and co-moments are EWMA estimates
    /// (`mean += α·(y − mean)`, `C = (1−α)·(C + α·δδᵀ)`). No snapshot
    /// buffer is kept, so exact batch replay is unavailable in this
    /// mode.
    Exponential(f64),
}

/// One retained window row: an owned decode, or a zero-copy window of
/// a wire receive buffer (alignment-checked little-endian `f64` bytes
/// — [`StreamingCovariance::ingest_wire`] only stores this variant
/// when the in-place `&[f64]` cast succeeds).
///
/// A `Wire` row pins its whole receive buffer (the `Bytes` handle is a
/// reference-counted window); the buffer is freed once every row cut
/// from it has been evicted or rewritten.
#[derive(Debug, Clone)]
enum StoredRow {
    Owned(Vec<f64>),
    Wire(Bytes),
}

impl StoredRow {
    #[inline]
    fn as_slice(&self) -> &[f64] {
        match self {
            StoredRow::Owned(v) => v,
            StoredRow::Wire(b) => cast_bytes_to_f64(b.as_slice())
                .expect("wire rows are stored only after the alignment check"),
        }
    }
}

/// Streaming accumulator for the covariances of a fixed pair set.
///
/// Feed it one row of log measurements per snapshot with
/// [`StreamingCovariance::ingest`]; read back either the cheap Welford
/// running estimates ([`StreamingCovariance::covariances`]) or the
/// batch-bit-identical replay
/// ([`StreamingCovariance::exact_covariances`]). The pair set is
/// typically [`AugmentedSystem::pair_indices`] — every `Σ̂_{ii'}`
/// Phase 1 needs.
#[derive(Debug, Clone)]
pub struct StreamingCovariance {
    n_paths: usize,
    pairs: Vec<(usize, usize)>,
    mode: WindowMode,
    /// Exact-recentre cadence in evictions (0 = never); see
    /// [`StreamingCovariance::with_recentre_every`].
    recentre_every: usize,
    /// Evictions since the last exact recentre.
    evictions_since_recentre: usize,
    /// Retained rows, oldest first (empty in exponential mode).
    rows: VecDeque<StoredRow>,
    /// Rows currently contributing to the running moments.
    count: usize,
    total_ingested: u64,
    /// Running (Welford or EWMA) per-path means.
    mean: Vec<f64>,
    /// Running co-moments, one per pair: `Σ (y_i − μ_i)(y_j − μ_j)` in
    /// Welford form, or the EWMA covariance itself in exponential mode.
    comoment: Vec<f64>,
    /// Scratch: per-path deviations from the pre-update mean.
    delta_old: Vec<f64>,
    /// Scratch: per-path deviations from the post-update mean.
    delta_new: Vec<f64>,
    /// Per pair: the global ingest index (count of rows ever ingested
    /// before validity) from which the pair's history describes its
    /// *current* routing. `0` for pairs never touched by churn; set to
    /// `total_ingested` when a churn event restarts the pair. Exact
    /// replays never read a pair's rows before this horizon.
    valid_from: Vec<u64>,
    /// `max(valid_from)` — `O(1)` churn-free check per refresh.
    max_valid_from: u64,
}

/// Progress of the post-churn window flush — how far the estimator is
/// from re-entering its exactness contract after a routing change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staleness {
    /// Retained snapshots that predate the most recent churn event
    /// (their rows describe old routing for at least one pair).
    pub stale_rows: usize,
    /// Pairs restarted by churn that still have fewer than two valid
    /// snapshots — their covariances read `0.0` (no signal yet) until
    /// they warm up.
    pub warming_pairs: usize,
    /// Snapshots until every retained row postdates the last churn —
    /// the flush point at which estimates become bit-identical to a
    /// fresh estimator on the new topology. `Some(0)` = churn-free
    /// now; `None` = never ([`WindowMode::Unbounded`] retains stale
    /// rows forever, and [`WindowMode::Exponential`] has no replay
    /// window to flush).
    pub snapshots_until_flush: Option<u64>,
}

impl Staleness {
    /// Whether the window is churn-free (the exactness gate holds).
    pub fn is_flushed(&self) -> bool {
        self.snapshots_until_flush == Some(0)
    }
}

impl StreamingCovariance {
    /// Creates an accumulator for `n_paths` paths tracking `pairs`.
    ///
    /// # Panics
    /// Panics on an empty path set, a sliding window shorter than 2
    /// (the sample covariance is undefined), a smoothing factor outside
    /// `(0, 1)`, or a pair index out of range.
    pub fn new(n_paths: usize, pairs: Vec<(usize, usize)>, mode: WindowMode) -> Self {
        assert!(n_paths > 0, "need at least one path");
        match mode {
            WindowMode::Sliding(w) => {
                assert!(w >= 2, "sliding window must hold at least 2 snapshots, got {w}")
            }
            WindowMode::Exponential(alpha) => {
                assert!(
                    alpha > 0.0 && alpha < 1.0,
                    "smoothing factor must lie in (0, 1), got {alpha}"
                )
            }
            WindowMode::Unbounded => {}
        }
        assert!(
            pairs.iter().all(|&(i, j)| i < n_paths && j < n_paths),
            "pair index out of range for {n_paths} paths"
        );
        let n_pairs = pairs.len();
        StreamingCovariance {
            n_paths,
            pairs,
            mode,
            recentre_every: DEFAULT_RECENTRE_EVERY,
            evictions_since_recentre: 0,
            rows: VecDeque::new(),
            count: 0,
            total_ingested: 0,
            mean: vec![0.0; n_paths],
            comoment: vec![0.0; n_pairs],
            delta_old: vec![0.0; n_paths],
            delta_new: vec![0.0; n_paths],
            valid_from: vec![0; n_pairs],
            max_valid_from: 0,
        }
    }

    /// Sets the exact-recentre cadence: after `every` sliding-window
    /// evictions the running moments are rebuilt exactly from the
    /// retained rows, bounding the rounding drift that reverse-Welford
    /// downdates accumulate over thousands of evictions (`0` disables
    /// — the pre-cadence behaviour). Default:
    /// [`DEFAULT_RECENTRE_EVERY`].
    pub fn with_recentre_every(mut self, every: usize) -> Self {
        self.recentre_every = every;
        self
    }

    /// Rebuilds the running Welford moments exactly from the retained
    /// rows — a drift reset for the incremental estimates (the exact
    /// queries replay the window anyway). `O(window · (n_p + pairs))`.
    pub fn recentre(&mut self) {
        self.evictions_since_recentre = 0;
        if matches!(self.mode, WindowMode::Exponential(_)) {
            return; // no window to replay
        }
        self.count = 0;
        self.mean.fill(0.0);
        self.comoment.fill(0.0);
        let rows = std::mem::take(&mut self.rows);
        for row in &rows {
            self.welford_add(row.as_slice());
        }
        self.rows = rows;
    }

    /// Number of paths per snapshot row.
    pub fn paths(&self) -> usize {
        self.n_paths
    }

    /// The tracked path pairs, in result order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Snapshots currently contributing (window occupancy).
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` until the first ingest.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total snapshots ever ingested (including evicted ones).
    pub fn total_ingested(&self) -> u64 {
        self.total_ingested
    }

    /// Ingests one snapshot's log measurements (`Y_i = log φ̂_i`, one
    /// entry per path): `O(n_p + r)` for `r` tracked pairs, plus an
    /// eviction of the oldest row when a sliding window overflows.
    pub fn ingest(&mut self, row: &[f64]) {
        self.ingest_stored(row, |r| StoredRow::Owned(r.to_vec()));
    }

    /// Zero-copy variant of [`StreamingCovariance::ingest`]: `row` is
    /// `n_paths × 8` little-endian `f64` bytes straight off the wire.
    /// When the buffer is 8-byte aligned (and the host little-endian)
    /// the row is read in place **and retained by reference** — the
    /// window stores an O(1) handle to the receive buffer instead of
    /// copying the row. Otherwise it decodes once and takes the owned
    /// path. Accumulation and replay are bit-identical either way.
    ///
    /// Note the retention trade-off: a wire-backed row pins its whole
    /// receive buffer until eviction (see
    /// [`WindowMode::Sliding`]) — callers batching many tenants into
    /// one buffer amortise this; callers cherry-picking one row from a
    /// huge buffer may prefer the owned path.
    ///
    /// # Panics
    /// Panics if `row` is not `n_paths × 8` bytes long.
    pub fn ingest_wire(&mut self, row: &Bytes) {
        match cast_bytes_to_f64(row.as_slice()) {
            Some(y) => self.ingest_stored(y, |_| StoredRow::Wire(row.clone())),
            None => {
                assert_eq!(
                    row.as_slice().len() % 8,
                    0,
                    "wire row length must be a multiple of 8 bytes"
                );
                let decoded: Vec<f64> = row
                    .as_slice()
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                    .collect();
                self.ingest_stored(&decoded, |r| StoredRow::Owned(r.to_vec()));
            }
        }
    }

    /// Shared ingest body: accumulate `row` and retain it via `store`
    /// (which chooses owned vs wire-backed storage).
    fn ingest_stored(&mut self, row: &[f64], store: impl FnOnce(&[f64]) -> StoredRow) {
        assert_eq!(
            row.len(),
            self.n_paths,
            "snapshot covers {} paths, accumulator tracks {}",
            row.len(),
            self.n_paths
        );
        self.total_ingested += 1;
        match self.mode {
            WindowMode::Exponential(alpha) => self.ingest_ewma(row, alpha),
            WindowMode::Unbounded => {
                self.rows.push_back(store(row));
                self.welford_add(row);
            }
            WindowMode::Sliding(w) => {
                self.rows.push_back(store(row));
                self.welford_add(row);
                if self.rows.len() > w {
                    let old = self.rows.pop_front().expect("window overflowed");
                    self.welford_remove(old.as_slice());
                    self.evictions_since_recentre += 1;
                    if self.recentre_every > 0
                        && self.evictions_since_recentre >= self.recentre_every
                    {
                        self.recentre();
                    }
                }
            }
        }
    }

    /// Welford forward update: `C += (y_i − μ_i^{old})(y_j − μ_j^{new})`.
    fn welford_add(&mut self, row: &[f64]) {
        self.count += 1;
        let n = self.count as f64;
        for (((&y, mean), d_old), d_new) in row
            .iter()
            .zip(self.mean.iter_mut())
            .zip(self.delta_old.iter_mut())
            .zip(self.delta_new.iter_mut())
        {
            let d = y - *mean;
            *d_old = d;
            *mean += d / n;
            *d_new = y - *mean;
        }
        for (c, &(i, j)) in self.comoment.iter_mut().zip(self.pairs.iter()) {
            *c += self.delta_old[i] * self.delta_new[j];
        }
    }

    /// Reverse-Welford downdate: removes a row by inverting
    /// [`StreamingCovariance::welford_add`] exactly (in exact
    /// arithmetic; floating point reintroduces rounding, which is why
    /// exact queries replay the window instead).
    fn welford_remove(&mut self, row: &[f64]) {
        self.count -= 1;
        if self.count == 0 {
            self.mean.fill(0.0);
            self.comoment.fill(0.0);
            return;
        }
        let n = self.count as f64;
        for (((&y, mean), d_old), d_new) in row
            .iter()
            .zip(self.mean.iter_mut())
            .zip(self.delta_old.iter_mut())
            .zip(self.delta_new.iter_mut())
        {
            // μ^{old} = μ^{new} + (μ^{new} − y) / n, inverting the add.
            *d_old = y - *mean; // y − μ^{post-add}
            *mean += (*mean - y) / n;
            *d_new = y - *mean; // y − μ^{pre-add}
        }
        for (c, &(i, j)) in self.comoment.iter_mut().zip(self.pairs.iter()) {
            *c -= self.delta_new[i] * self.delta_old[j];
        }
    }

    /// EWMA update: `μ += α δ`, `C = (1−α)(C + α δ_i δ_j)`.
    fn ingest_ewma(&mut self, row: &[f64], alpha: f64) {
        if self.count == 0 {
            self.count = 1;
            self.mean.copy_from_slice(row);
            return;
        }
        self.count += 1;
        for ((&y, mean), d_old) in row
            .iter()
            .zip(self.mean.iter_mut())
            .zip(self.delta_old.iter_mut())
        {
            *d_old = y - *mean;
            *mean += alpha * *d_old;
        }
        for (c, &(i, j)) in self.comoment.iter_mut().zip(self.pairs.iter()) {
            *c = (1.0 - alpha) * (*c + alpha * self.delta_old[i] * self.delta_old[j]);
        }
    }

    /// The running covariance estimates, one per tracked pair:
    /// co-moments over `n − 1` in Welford mode, the EWMA covariance in
    /// exponential mode. `O(r)` — no pass over the window.
    ///
    /// # Panics
    /// Panics with fewer than two ingested snapshots (the sample
    /// covariance is undefined).
    pub fn covariances(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.covariances_into(&mut out);
        out
    }

    /// [`StreamingCovariance::covariances`] into a reusable buffer
    /// (resized and fully overwritten; same panics).
    pub fn covariances_into(&self, out: &mut Vec<f64>) {
        assert!(
            self.count >= 2,
            "need at least 2 snapshots for covariances, have {}",
            self.count
        );
        out.clear();
        match self.mode {
            WindowMode::Exponential(_) => out.extend_from_slice(&self.comoment),
            _ => {
                let denom = (self.count - 1) as f64;
                out.extend(self.comoment.iter().map(|c| c / denom));
            }
        }
    }

    /// The running mean of each path's log measurements.
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// Centres the retained window with the exact batch arithmetic.
    ///
    /// The result is indistinguishable from
    /// `CenteredMeasurements::from_rows(window_rows)`: means accumulate
    /// over rows oldest-first (the ingestion order), deviations are the
    /// same subtractions. Unavailable under exponential forgetting
    /// (nothing is retained).
    ///
    /// # Panics
    /// Panics in [`WindowMode::Exponential`] or with fewer than two
    /// retained snapshots.
    pub fn centered(&self) -> CenteredMeasurements {
        assert!(
            !matches!(self.mode, WindowMode::Exponential(_)),
            "exact replay is unavailable under exponential forgetting"
        );
        let refs: Vec<&[f64]> = self.rows.iter().map(StoredRow::as_slice).collect();
        CenteredMeasurements::from_row_refs(&refs)
    }

    /// The exact pair covariances of the retained window — bit-identical
    /// to the batch [`CenteredMeasurements::pair_covariances`] over the
    /// same rows (same panics as [`StreamingCovariance::centered`]).
    /// While the window still holds pre-churn rows, each pair's replay
    /// is restricted to its valid suffix (see
    /// [`StreamingCovariance::apply_churn`]); pairs with fewer than two
    /// valid rows read `0.0`.
    pub fn exact_covariances(&self) -> Vec<f64> {
        if self.is_churn_free() {
            self.centered().pair_covariances(&self.pairs)
        } else {
            assert!(
                !matches!(self.mode, WindowMode::Exponential(_)),
                "exact replay is unavailable under exponential forgetting"
            );
            let mut centered = CenteredMeasurements::empty();
            let mut out = Vec::new();
            self.grouped_exact_covariances_into(&mut centered, &mut out);
            out
        }
    }

    /// Global ingest index of the oldest retained row.
    fn window_start(&self) -> u64 {
        self.total_ingested - self.rows.len() as u64
    }

    /// Whether every retained row postdates the last churn event — the
    /// gate for the exactness contract (a churn-free window replays
    /// bit-identically to a fresh accumulator fed the same rows).
    /// Always `true` before the first [`StreamingCovariance::apply_churn`].
    pub fn is_churn_free(&self) -> bool {
        self.max_valid_from <= self.window_start()
    }

    /// How far the window is from flushing its pre-churn history — see
    /// [`Staleness`].
    pub fn staleness(&self) -> Staleness {
        let ws = self.window_start();
        let stale_rows =
            (self.max_valid_from.saturating_sub(ws) as usize).min(self.rows.len());
        let warming_pairs = self
            .valid_from
            .iter()
            .filter(|&&vf| {
                vf > ws && {
                    let o = ((vf - ws) as usize).min(self.rows.len());
                    self.rows.len() - o < 2
                }
            })
            .count();
        let snapshots_until_flush = match self.mode {
            // EWMA state mixes pre- and post-churn history forever
            // (geometrically decaying, never bit-exact again).
            WindowMode::Exponential(_) => {
                if self.max_valid_from == 0 {
                    Some(0)
                } else {
                    None
                }
            }
            _ if self.max_valid_from <= ws => Some(0),
            WindowMode::Sliding(w) => {
                Some(stale_rows as u64 + (w - self.rows.len()) as u64)
            }
            // An unbounded window never evicts, so stale rows never
            // leave. Callers that need the flush should bound the
            // window before churning.
            WindowMode::Unbounded => None,
        };
        Staleness {
            stale_rows,
            warming_pairs,
            snapshots_until_flush,
        }
    }

    /// Rewires the accumulator across a routing change: retained rows
    /// are remapped to the new path numbering (columns of removed paths
    /// drop, columns of added paths read a `0.0` filler that restarted
    /// pairs never consult), surviving pairs keep their history, and
    /// pairs whose intersection row changed restart with a validity
    /// horizon of "now" — their covariances replay only post-churn
    /// rows until the window flushes.
    ///
    /// `new_pairs` is the post-churn pair set (typically
    /// [`AugmentedSystem::pair_indices`] of the patched system),
    /// `carry[k]` is the old pair slot that new pair `k` continues
    /// (`None` = restarted), and `id_map` is the old-path → new-path
    /// renumbering from the [`DeltaEffect`].
    pub fn apply_churn(
        &mut self,
        new_n_paths: usize,
        new_pairs: Vec<(usize, usize)>,
        carry: &[Option<usize>],
        id_map: &[Option<PathId>],
    ) {
        assert!(new_n_paths > 0, "need at least one path");
        assert_eq!(carry.len(), new_pairs.len(), "one carry entry per new pair");
        assert_eq!(id_map.len(), self.n_paths, "one id_map entry per old path");
        assert!(
            new_pairs
                .iter()
                .all(|&(i, j)| i < new_n_paths && j < new_n_paths),
            "pair index out of range for {new_n_paths} paths"
        );
        let now = self.total_ingested;
        // Remap retained rows to the new numbering. Wire-backed rows
        // turn into owned rows here (their receive buffer describes
        // the old path numbering and is released).
        for row in self.rows.iter_mut() {
            let mut new_row = vec![0.0; new_n_paths];
            let old_row = row.as_slice();
            for (old_i, &mapped) in id_map.iter().enumerate() {
                if let Some(new_i) = mapped {
                    new_row[new_i.index()] = old_row[old_i];
                }
            }
            *row = StoredRow::Owned(new_row);
        }
        // Carry surviving pairs' state; restart the rest at "now".
        let old_comoment = std::mem::take(&mut self.comoment);
        let old_valid_from = std::mem::take(&mut self.valid_from);
        self.comoment = Vec::with_capacity(new_pairs.len());
        self.valid_from = Vec::with_capacity(new_pairs.len());
        for &c in carry {
            match c {
                Some(old) => {
                    self.comoment.push(old_comoment[old]);
                    self.valid_from.push(old_valid_from[old]);
                }
                None => {
                    self.comoment.push(0.0);
                    self.valid_from.push(now);
                }
            }
        }
        self.max_valid_from = self.valid_from.iter().copied().max().unwrap_or(0);
        self.pairs = new_pairs;
        self.n_paths = new_n_paths;
        self.delta_old = vec![0.0; new_n_paths];
        self.delta_new = vec![0.0; new_n_paths];
        match self.mode {
            WindowMode::Exponential(_) => {
                // Remap the EWMA mean; added paths start at 0.0 and
                // converge at rate α. Carried comoments keep their
                // EWMA state, restarted ones re-learn from 0.
                let old_mean = std::mem::replace(&mut self.mean, vec![0.0; new_n_paths]);
                for (old_i, &mapped) in id_map.iter().enumerate() {
                    if let Some(new_i) = mapped {
                        self.mean[new_i.index()] = old_mean[old_i];
                    }
                }
            }
            _ => {
                // Rebuild the running Welford moments from the remapped
                // rows so forward updates and future evictions stay
                // self-consistent at the new width.
                self.mean = vec![0.0; new_n_paths];
                self.recentre();
            }
        }
    }

    /// Exact replay that honours each pair's validity horizon: pairs
    /// restarted by churn replay only the window suffix ingested after
    /// their restart, grouped by common offset so each distinct suffix
    /// is centred once. Pairs with fewer than two valid rows read
    /// `0.0`. On a churn-free window this degenerates to one group at
    /// offset 0 — the verbatim batch sweep.
    pub(crate) fn grouped_exact_covariances_into(
        &self,
        centered: &mut CenteredMeasurements,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(self.pairs.len(), 0.0);
        let ws = self.window_start();
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (slot, &vf) in self.valid_from.iter().enumerate() {
            let o = (vf.saturating_sub(ws) as usize).min(self.rows.len());
            groups.entry(o).or_default().push(slot);
        }
        let mut sub_pairs = Vec::new();
        let mut sub_out = Vec::new();
        for (&o, slots) in &groups {
            if self.rows.len() - o < 2 {
                continue; // warming: no sample covariance yet
            }
            centered.recentre_from_iter(self.rows.iter().skip(o).map(StoredRow::as_slice));
            sub_pairs.clear();
            sub_pairs.extend(slots.iter().map(|&s| self.pairs[s]));
            centered.pair_covariances_into(&sub_pairs, &mut sub_out);
            for (&s, &c) in slots.iter().zip(sub_out.iter()) {
                out[s] = c;
            }
        }
    }
}

/// How [`OnlineEstimator`] maintains the Phase-1 normal-equations
/// factorisation across refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorRefresh {
    /// Refactor the (incrementally patched) Gram matrix from scratch
    /// each refresh — bit-identical to batch Phase 1. Default.
    #[default]
    Exact,
    /// Amend the previous upper-triangular factor with one Givens
    /// rank-1 [`update`][givens::rank_one_update] /
    /// [`downdate`][givens::rank_one_downdate] per covariance row that
    /// moved between the kept and dropped sets: `O(Δ · n_c²)` instead
    /// of `O(n_c³)` when few rows change sign. Numerically equivalent
    /// (not bit-identical); falls back to a full refactor when a
    /// downdate would lose positive definiteness.
    GivensUpdate,
}

/// Whether the online estimator reuses its refresh workspace across
/// cadences.
///
/// Both modes produce **bit-identical** estimates; the knob exists so
/// the `fleet_scale` benchmark can measure exactly what the reuse is
/// worth, and as an escape hatch for memory-constrained tenants that
/// prefer to release the workspace between (slow-cadence) refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScratchMode {
    /// Keep the refresh workspace — replay buffer, covariance vector,
    /// Gram expansion, SPD permutation + Cholesky factor, Phase-2
    /// factor buffers — alive between refreshes, so a steady-state
    /// refresh allocates nothing and an unchanged kept-row mask reuses
    /// the Phase-1 factor outright. Default.
    #[default]
    Reuse,
    /// Drop and reallocate the workspace every refresh — the historical
    /// behaviour, kept as the measurable baseline.
    AllocPerRefresh,
}

/// Configuration of the online estimator.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// History retention for the covariance accumulator.
    pub window: WindowMode,
    /// Run a Phase-1 + Phase-2-structure refresh every `k ≥ 1` ingests.
    /// Between refreshes, Phase 2 reuses the cached column set and
    /// factorisation with each new snapshot's measurements (exact).
    ///
    /// `usize::MAX` is the **manual-refresh sentinel**: ingest never
    /// auto-refreshes — not even the warm-up attempts it otherwise
    /// makes while no model exists — so ingest is pure covariance
    /// accumulation until [`OnlineEstimator::refresh`] is called
    /// explicitly. High-rate feeds (the `fleet_ingest` service-edge
    /// harness) use this to keep Phase 1/2 entirely off the ingest
    /// hot path.
    pub refresh_every: usize,
    /// Phase-1 settings (the cached Gram path requires the default
    /// [`LstsqBackend::NormalEquations`] backend).
    pub variance: VarianceConfig,
    /// Phase-2 settings.
    pub lia: LiaConfig,
    /// Factorisation maintenance policy.
    pub factor: FactorRefresh,
    /// Refresh-workspace policy (reuse vs reallocate; identical bits).
    pub scratch: ScratchMode,
    /// Loss-rate threshold above which a link counts as congested for
    /// change detection (the paper's `t_l`).
    pub congestion_threshold: f64,
    /// Row budget for the augmented pair system (default: the
    /// `LOSSTOMO_PAIR_BUDGET` knob, i.e. full when unset). Applied once
    /// at construction; the selection is readable via
    /// [`OnlineEstimator::pair_selection`].
    pub pair_budget: PairBudget,
    /// Exact-recentre cadence of the sliding-window accumulator: after
    /// this many evictions the running Welford moments are rebuilt
    /// from the retained rows, bounding reverse-Welford rounding drift
    /// on long streams (`0` disables; exact refreshes are unaffected —
    /// they replay the window regardless).
    pub recentre_every: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: WindowMode::Unbounded,
            refresh_every: 1,
            variance: VarianceConfig::default(),
            lia: LiaConfig::default(),
            factor: FactorRefresh::Exact,
            scratch: ScratchMode::default(),
            congestion_threshold: losstomo_netsim::DEFAULT_LOSS_THRESHOLD,
            pair_budget: PairBudget::default(),
            recentre_every: DEFAULT_RECENTRE_EVERY,
        }
    }
}

/// The reusable refresh workspace of one [`OnlineEstimator`]: every
/// buffer the refresh hot path writes, owned by the estimator so
/// steady-state refreshes allocate nothing (see [`ScratchMode`]).
#[derive(Debug)]
struct RefreshScratch {
    /// Pair covariances of the current refresh.
    sigmas: Vec<f64>,
    /// Batch-exact replay of the retained window (empty until the
    /// first exact refresh).
    centered: CenteredMeasurements,
    /// Phase-1 assembly + SPD solver workspace (including the cached
    /// Cholesky factor reused while the kept-row mask is unchanged).
    phase1: Phase1Scratch,
    /// Dense `R*` column-selection buffer.
    rstar_dense: Matrix,
    /// Sparse `R*` column-selection buffer (recycled through
    /// [`SparseQr::refactor`]).
    rstar_csr: CsrMatrix,
}

impl Default for RefreshScratch {
    fn default() -> Self {
        RefreshScratch {
            sigmas: Vec::new(),
            centered: CenteredMeasurements::empty(),
            phase1: Phase1Scratch::default(),
            rstar_dense: Matrix::zeros(0, 0),
            rstar_csr: CsrMatrix::empty(0),
        }
    }
}

/// What one [`OnlineEstimator::ingest`] produced.
#[derive(Debug, Clone)]
pub struct OnlineUpdate {
    /// Whether this ingest triggered a Phase-1/Phase-2-structure
    /// refresh (per the configured cadence).
    pub refreshed: bool,
    /// Per-link rate estimate for the ingested snapshot (`None` while
    /// the estimator is still warming up).
    pub estimate: Option<LinkRateEstimate>,
    /// Links currently diagnosed congested (ascending).
    pub congested: Vec<usize>,
    /// Links that entered the congested set with this snapshot.
    pub appeared: Vec<usize>,
    /// Links that left the congested set with this snapshot.
    pub cleared: Vec<usize>,
}

/// Wall-clock breakdown of the last successful refresh, by phase —
/// what makes a tail-latency spike attributable: a covariance spike
/// points at the window replay, a Phase-1 spike at the moment-system
/// solve (e.g. a Givens fallback refactorisation), a Phase-2 spike at
/// a column-selection or factorisation rebuild.
#[derive(Debug, Clone, Copy, Default)]
pub struct RefreshTiming {
    /// Covariance assembly: window replay / Welford read-out into the
    /// sigma buffer.
    pub covariance: Duration,
    /// Phase 1: the moment-system solve for the link variances.
    pub phase1: Duration,
    /// Phase 2: variance ordering, column selection, and `R*`
    /// (re)factorisation.
    pub phase2: Duration,
}

/// The streaming two-phase estimator: ingest snapshots one at a time,
/// read back per-link loss rates and congested-set changes.
///
/// See the [module docs](self) for the incremental machinery and the
/// exactness contract. Typical use:
///
/// ```text
/// let mut est = OnlineEstimator::new(&red, OnlineConfig::default());
/// for snapshot in simulate_stream(&red, scenario, &probe_cfg, rng) {
///     let update = est.ingest(&snapshot)?;
///     for k in update.appeared { alert_congested(k); }
/// }
/// ```
#[derive(Debug)]
pub struct OnlineEstimator {
    cfg: OnlineConfig,
    red: ReducedTopology,
    /// The Phase-2 routing-matrix view (dense below the dispatch
    /// threshold, CSR above), materialised once for column selection
    /// and `R*` assembly.
    view: RankView,
    aug: AugmentedSystem,
    /// The pair selection the budget produced at construction (`None`
    /// when the budget didn't bite and `aug` is the full system).
    selection: Option<PairSelection>,
    cov: StreamingCovariance,
    gram: GramCache,
    /// The Givens-maintained Phase-1 factor (Givens mode only).
    factor: Option<GivensFactor>,
    variances: Option<VarianceEstimate>,
    /// Memoized Phase-2 structure: the variance order of the last
    /// refresh, its elimination cut, its kept column set, and the
    /// factorisation of `R*`.
    order: Vec<usize>,
    cut: Option<usize>,
    kept: Vec<usize>,
    p2: Option<Phase2Factor>,
    congested: Vec<usize>,
    since_refresh: usize,
    refreshes: u64,
    /// Phase breakdown of the last successful refresh.
    last_timing: Option<RefreshTiming>,
    warmup_error: Option<LinalgError>,
    /// Refresh workspace (dropped and rebuilt every refresh under
    /// [`ScratchMode::AllocPerRefresh`]).
    scratch: RefreshScratch,
    /// Reusable log-rate row for [`OnlineEstimator::ingest`], so the
    /// owned-snapshot path allocates nothing per snapshot.
    row_scratch: Vec<f64>,
}

/// The memoized factorisation of the reduced system `R*`, reused while
/// the kept column set is unchanged.
#[derive(Debug)]
enum Phase2Factor {
    /// Dense pivoted QR (the default dense-path backend).
    DenseQr(PivotedQr),
    /// Dense `R*` solved by normal equations per estimate
    /// ([`LstsqBackend::NormalEquations`]).
    DenseNormal(Matrix),
    /// Sparse Givens QR (the sparse dispatch path).
    Sparse(SparseQr),
}

/// The Givens-maintained Phase-1 factor: the upper Cholesky factor of
/// the kept-row Gram under a fill-reducing symmetric permutation
/// (columns ordered by ascending occupancy, the same heuristic as the
/// exact path's permuted SPD solve). Meshed topologies produce Grams
/// whose natural link order breaks unpivoted Cholesky numerically even
/// though the matrix is positive definite — without the permutation a
/// factor never gets built there and every "incremental" refresh
/// silently takes the exact fallback. The rank-one surgery permutes
/// its indicator vectors to match.
#[derive(Debug)]
struct GivensFactor {
    /// Upper factor `R` with `RᵀR` equal to the permuted Gram.
    r: Matrix,
    /// `order[i]` = original link column at permuted position `i`.
    order: Vec<usize>,
    /// Inverse permutation: `pos[link]` = permuted position.
    pos: Vec<usize>,
}

impl GivensFactor {
    /// Factors the symmetrised co-occurrence counts under the
    /// ascending-occupancy ordering.
    fn build(counts: &[u32], nc: usize) -> Result<GivensFactor, LinalgError> {
        let mut gram = Matrix::zeros(nc, nc);
        crate::variance::counts_to_symmetric(counts, gram.as_mut_slice(), nc);
        let nnz: Vec<usize> = (0..nc)
            .map(|j| (0..nc).filter(|&k| gram[(j, k)] != 0.0).count())
            .collect();
        let mut order: Vec<usize> = (0..nc).collect();
        order.sort_by_key(|&j| (nnz[j], j));
        let mut permuted = Matrix::zeros(nc, nc);
        for i in 0..nc {
            for j in 0..nc {
                permuted[(i, j)] = gram[(order[i], order[j])];
            }
        }
        let chol = Cholesky::new(&permuted)?;
        let mut pos = vec![0usize; nc];
        for (i, &j) in order.iter().enumerate() {
            pos[j] = i;
        }
        Ok(GivensFactor {
            r: chol.l().transpose(),
            order,
            pos,
        })
    }

    /// Scatters `links` into `scratch` as a permuted 0/1 indicator.
    fn indicator(&self, links: &[usize], scratch: &mut [f64]) {
        scratch.fill(0.0);
        for &k in links {
            scratch[self.pos[k]] = 1.0;
        }
    }

    /// Rank-one-updates the factor with the pair row on `links`.
    fn update(&mut self, links: &[usize], scratch: &mut [f64]) -> Result<(), LinalgError> {
        self.indicator(links, scratch);
        givens::rank_one_update(&mut self.r, scratch)
    }

    /// Rank-one-downdates the factor with the pair row on `links`.
    fn downdate(&mut self, links: &[usize], scratch: &mut [f64]) -> Result<(), LinalgError> {
        self.indicator(links, scratch);
        givens::rank_one_downdate(&mut self.r, scratch)
    }

    /// Solves the normal equations `G v = atb` by two triangular
    /// solves in permuted coordinates.
    fn solve(&self, atb: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let permuted: Vec<f64> = self.order.iter().map(|&j| atb[j]).collect();
        let z = triangular::solve_upper_transposed(&self.r, &permuted)?;
        let x = triangular::solve_upper_triangular(&self.r, &z)?;
        let mut v = vec![0.0; x.len()];
        for (i, &j) in self.order.iter().enumerate() {
            v[j] = x[i];
        }
        Ok(v)
    }
}

impl OnlineEstimator {
    /// Builds the estimator for a reduced topology: constructs the
    /// augmented system, its pair index, and the streaming accumulator.
    pub fn new(red: &ReducedTopology, cfg: OnlineConfig) -> Self {
        assert!(cfg.refresh_every >= 1, "refresh cadence must be ≥ 1");
        // Budget the pair set before wiring the accumulator: the
        // covariance sweep, the Gram cache and every Phase-1 solve then
        // only ever see the selected rows.
        let (aug, selection) = apply_budget(AugmentedSystem::build(red), cfg.pair_budget);
        let cov = StreamingCovariance::new(red.num_paths(), aug.pair_indices(), cfg.window)
            .with_recentre_every(cfg.recentre_every);
        OnlineEstimator {
            red: red.clone(),
            view: RankView::new(red, cfg.lia.dispatch),
            cfg,
            aug,
            selection,
            cov,
            gram: GramCache::new(),
            factor: None,
            variances: None,
            order: Vec::new(),
            cut: None,
            kept: Vec::new(),
            p2: None,
            congested: Vec::new(),
            since_refresh: 0,
            refreshes: 0,
            last_timing: None,
            warmup_error: None,
            scratch: RefreshScratch::default(),
            row_scratch: Vec::new(),
        }
    }

    /// The augmented system the estimator tracks covariances for
    /// (already budgeted when [`OnlineConfig::pair_budget`] bites).
    pub fn augmented(&self) -> &AugmentedSystem {
        &self.aug
    }

    /// The pair selection applied at construction, or `None` when the
    /// configured [`PairBudget`] kept the full pair set.
    pub fn pair_selection(&self) -> Option<&PairSelection> {
        self.selection.as_ref()
    }

    /// The streaming covariance accumulator (window occupancy, running
    /// means, Welford estimates).
    pub fn covariance(&self) -> &StreamingCovariance {
        &self.cov
    }

    /// The latest Phase-1 estimate, if any refresh has succeeded.
    pub fn variances(&self) -> Option<&VarianceEstimate> {
        self.variances.as_ref()
    }

    /// Phase breakdown of the last successful refresh (covariance
    /// assembly / Phase-1 solve / Phase-2 re-memoization), for
    /// attributing tail-latency spikes. `None` until a refresh
    /// succeeds.
    pub fn last_refresh_timing(&self) -> Option<RefreshTiming> {
        self.last_timing
    }

    /// Links currently diagnosed congested (ascending).
    pub fn congested_links(&self) -> &[usize] {
        &self.congested
    }

    /// Columns currently kept in `R*` (ascending; empty before the
    /// first successful refresh).
    pub fn kept_columns(&self) -> &[usize] {
        &self.kept
    }

    /// Successful refreshes so far.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// The error of the most recent failed warm-up refresh, if the
    /// estimator has not produced variances yet (early on, dropping
    /// negative covariance rows can leave the moment system
    /// under-determined; the estimator keeps ingesting until it becomes
    /// solvable).
    pub fn warmup_error(&self) -> Option<&LinalgError> {
        self.warmup_error.as_ref()
    }

    /// The reduced topology the estimator currently serves (reflects
    /// every delta applied so far).
    pub fn topology(&self) -> &ReducedTopology {
        &self.red
    }

    /// The configuration the estimator was built with.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Post-churn flush progress of the covariance window — see
    /// [`Staleness`].
    pub fn staleness(&self) -> Staleness {
        self.cov.staleness()
    }

    /// Ingests one simulated/measured snapshot: extracts the log rates
    /// once (into an internal scratch row reused across snapshots — no
    /// per-snapshot allocation), updates the covariance accumulator,
    /// refreshes per the cadence, and scores the snapshot against the
    /// current model.
    pub fn ingest(&mut self, snapshot: &Snapshot) -> Result<OnlineUpdate, LinalgError> {
        let mut row = std::mem::take(&mut self.row_scratch);
        snapshot.log_rates_into(&mut row);
        let result = self.ingest_log_rates(&row);
        self.row_scratch = row;
        result
    }

    /// [`OnlineEstimator::ingest`] for pre-extracted log measurements
    /// `Y_i = log φ̂_i` (one entry per path).
    ///
    /// Malformed input is rejected with a typed error **before** any
    /// state is touched: a mis-sized row returns
    /// [`LinalgError::DimensionMismatch`], a row containing NaN/±∞
    /// returns [`LinalgError::NonFinite`]. Either way the running
    /// moments are unpoisoned and the estimator keeps serving its
    /// current model.
    pub fn ingest_log_rates(&mut self, y: &[f64]) -> Result<OnlineUpdate, LinalgError> {
        self.validate_row(y)?;
        self.cov.ingest(y);
        self.finish_ingest(y)
    }

    /// Zero-copy wire ingest: `y` is `num_paths × 8` little-endian
    /// `f64` bytes straight off a receive buffer. On an aligned buffer
    /// the row is validated and accumulated **in place** and retained
    /// by reference (see [`StreamingCovariance::ingest_wire`] for the
    /// buffer-pinning trade-off); a misaligned buffer (or a big-endian
    /// host) decodes once through the internal scratch row. Results
    /// are bit-identical to [`OnlineEstimator::ingest_log_rates`] fed
    /// the decoded row, and the same typed-rejection contract holds:
    /// mis-sized or non-finite rows leave the estimator untouched.
    pub fn ingest_wire_row(&mut self, row: &Bytes) -> Result<OnlineUpdate, LinalgError> {
        let Some(y) = cast_bytes_to_f64(row.as_slice()) else {
            let mut decoded = std::mem::take(&mut self.row_scratch);
            decoded.clear();
            decoded.extend(
                row.as_slice()
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)"))),
            );
            let result = self.ingest_log_rates(&decoded);
            self.row_scratch = decoded;
            return result;
        };
        self.validate_row(y)?;
        self.cov.ingest_wire(row);
        self.finish_ingest(y)
    }

    /// The typed-rejection gate shared by every ingest entry point:
    /// runs before any state is touched.
    fn validate_row(&self, y: &[f64]) -> Result<(), LinalgError> {
        if y.len() != self.red.num_paths() {
            return Err(LinalgError::DimensionMismatch(format!(
                "snapshot covers {} paths, topology has {}",
                y.len(),
                self.red.num_paths()
            )));
        }
        if let Some(index) = y.iter().position(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite { index });
        }
        Ok(())
    }

    /// Post-accumulation half of an ingest: cadenced refresh, then
    /// score `y` against the current model.
    fn finish_ingest(&mut self, y: &[f64]) -> Result<OnlineUpdate, LinalgError> {
        self.since_refresh += 1;
        // `usize::MAX` = manual refresh only: skip the warm-up
        // attempts too, so ingest stays pure accumulation.
        let due = self.cfg.refresh_every != usize::MAX
            && (self.variances.is_none() || self.since_refresh >= self.cfg.refresh_every);
        let mut refreshed = false;
        if due && self.cov.len() >= 2 {
            match self.refresh() {
                Ok(()) => refreshed = true,
                // While warming up, an unsolvable moment system just
                // means "not enough signal yet" — keep streaming. The
                // same grace applies while the window still holds
                // pre-churn rows (warming pairs read zero covariance
                // and can leave the moment system under-determined).
                // After the first success on a churn-free window,
                // failures are real and surface.
                Err(e) if self.variances.is_none() || !self.cov.is_churn_free() => {
                    self.warmup_error = Some(e)
                }
                Err(e) => return Err(e),
            }
        }
        let estimate = if self.variances.is_some() {
            Some(self.estimate(y)?)
        } else {
            None
        };
        let congested = estimate
            .as_ref()
            .map(|e| e.congested_links(self.cfg.congestion_threshold))
            .unwrap_or_default();
        let (appeared, cleared) = diff_sorted(&self.congested, &congested);
        self.congested.clone_from(&congested);
        Ok(OnlineUpdate {
            refreshed,
            estimate,
            congested,
            appeared,
            cleared,
        })
    }

    /// Runs a Phase-1 refresh and re-memoizes the Phase-2 structure.
    /// Called automatically per the cadence; public so callers on a
    /// slow cadence can force a refresh (e.g. before reading
    /// [`OnlineEstimator::variances`] at a reporting boundary).
    pub fn refresh(&mut self) -> Result<(), LinalgError> {
        if self.cfg.scratch == ScratchMode::AllocPerRefresh {
            // The measurable baseline: pay the full allocation (and
            // factorisation) bill every refresh.
            self.scratch = RefreshScratch::default();
        }
        // Covariances into the reusable buffer. The buffer is moved out
        // for the duration of the solve (the borrow checker cannot see
        // that the Phase-1/Phase-2 body never touches it) and moved
        // back before returning.
        let cov_start = Instant::now();
        let mut sigmas = std::mem::take(&mut self.scratch.sigmas);
        match self.cfg.window {
            WindowMode::Exponential(_) => self.cov.covariances_into(&mut sigmas),
            _ if self.cov.is_churn_free() => {
                // Exact batch replay of the retained window, recentred
                // into the reusable buffers straight off the ring
                // buffer (no per-refresh allocations) — bit-identical
                // to `StreamingCovariance::exact_covariances`.
                let centered = &mut self.scratch.centered;
                centered.recentre_from_iter(self.cov.rows.iter().map(|r| r.as_slice()));
                centered.pair_covariances_into(&self.cov.pairs, &mut sigmas);
            }
            _ => {
                // The window still holds pre-churn rows: replay each
                // pair only over its valid suffix. Once the window
                // flushes, `is_churn_free` flips and refreshes return
                // to the verbatim path above — restoring bit-exactness
                // against a fresh estimator on the new topology.
                self.cov
                    .grouped_exact_covariances_into(&mut self.scratch.centered, &mut sigmas);
            }
        }
        let covariance = cov_start.elapsed();
        let result = self.refresh_from_sigmas_inner(&sigmas, covariance);
        self.scratch.sigmas = sigmas;
        result
    }

    /// The Phase-1 solve + Phase-2 re-memoization half of a refresh.
    /// `covariance` is the wall the caller already spent assembling the
    /// sigma buffer, folded into the recorded [`RefreshTiming`].
    fn refresh_from_sigmas_inner(
        &mut self,
        sigmas: &[f64],
        covariance: Duration,
    ) -> Result<(), LinalgError> {
        let phase1_start = Instant::now();
        let est = match (self.cfg.variance.backend, self.cfg.factor) {
            (LstsqBackend::NormalEquations, FactorRefresh::Exact) => {
                let mut phase1 = std::mem::take(&mut self.scratch.phase1);
                let est = estimate_variances_scratch(
                    &self.red,
                    &self.aug,
                    sigmas,
                    &self.cfg.variance,
                    &mut self.gram,
                    &mut phase1,
                );
                self.scratch.phase1 = phase1;
                est?
            }
            (LstsqBackend::NormalEquations, FactorRefresh::GivensUpdate) => {
                self.refresh_givens(sigmas)?
            }
            // The QR backend has no incremental assembly to cache.
            (LstsqBackend::HouseholderQr, _) => {
                estimate_variances_from_sigmas(&self.red, &self.aug, sigmas, &self.cfg.variance)?
            }
        };
        let phase1 = phase1_start.elapsed();
        let phase2_start = Instant::now();
        // Phase-2 structure: the kept set is a pure function of the
        // variance order, so an unchanged order skips the column
        // selection entirely; a changed order re-certifies the previous
        // elimination cut with two rank checks (falling back to the
        // full bisection only when the cut actually moved); and an
        // unchanged kept set reuses the factorisation.
        let order = lia::variance_order(&est.v);
        if order != self.order || self.p2.is_none() {
            let kept = match self.cfg.lia.elimination {
                EliminationStrategy::PaperOrder => {
                    let (kept, cut) =
                        lia::select_paper_order_hinted(&self.red, &self.view, &order, self.cut);
                    self.cut = Some(cut);
                    kept
                }
                EliminationStrategy::GreedyMatroid => lia::select_full_rank_columns_ordered(
                    &self.red,
                    &order,
                    self.cfg.lia.elimination,
                ),
            };
            if kept != self.kept || self.p2.is_none() {
                self.rebuild_phase2(&kept)?;
                self.kept = kept;
            }
            self.order = order;
        }
        self.variances = Some(est);
        self.last_timing = Some(RefreshTiming {
            covariance,
            phase1,
            phase2: phase2_start.elapsed(),
        });
        self.warmup_error = None;
        self.since_refresh = 0;
        self.refreshes += 1;
        Ok(())
    }

    /// (Re)factors `R*` for a new kept column set, reusing the previous
    /// factor's buffers through the in-place `factor_into`/`refactor`
    /// APIs when a factor of the right family already exists. On error
    /// the memoized factor is dropped (it would be invalid).
    fn rebuild_phase2(&mut self, kept: &[usize]) -> Result<(), LinalgError> {
        match &self.view {
            RankView::Dense(dense) => {
                dense.select_columns_into(kept, &mut self.scratch.rstar_dense);
                match (self.cfg.lia.backend, &mut self.p2) {
                    (LstsqBackend::HouseholderQr, Some(Phase2Factor::DenseQr(qr))) => {
                        if let Err(e) = qr.factor_into(&self.scratch.rstar_dense) {
                            self.p2 = None;
                            return Err(e);
                        }
                    }
                    (LstsqBackend::HouseholderQr, _) => {
                        self.p2 = Some(Phase2Factor::DenseQr(PivotedQr::new(
                            &self.scratch.rstar_dense,
                        )?));
                    }
                    (LstsqBackend::NormalEquations, Some(Phase2Factor::DenseNormal(rstar))) => {
                        rstar.copy_from(&self.scratch.rstar_dense);
                    }
                    (LstsqBackend::NormalEquations, _) => {
                        self.p2 = Some(Phase2Factor::DenseNormal(self.scratch.rstar_dense.clone()));
                    }
                }
            }
            RankView::Sparse(csr) => {
                csr.select_columns_into(kept, &mut self.scratch.rstar_csr);
                let rstar = std::mem::replace(&mut self.scratch.rstar_csr, CsrMatrix::empty(0));
                match &mut self.p2 {
                    Some(Phase2Factor::Sparse(qr)) => match qr.refactor(rstar) {
                        // The displaced matrix becomes the next
                        // selection buffer.
                        Ok(prev) => self.scratch.rstar_csr = prev,
                        Err(e) => {
                            self.p2 = None;
                            return Err(e);
                        }
                    },
                    _ => self.p2 = Some(Phase2Factor::Sparse(SparseQr::new(rstar)?)),
                }
            }
        }
        Ok(())
    }

    /// The exact cached Phase 1, run through the estimator's
    /// *persistent* workspace — every fallback from the Givens path
    /// funnels through here, so the all-rows fallback factor cached in
    /// `scratch.phase1` survives between refreshes. (A throwaway
    /// workspace here refactorised the fallback Gram from scratch on
    /// every singular retry — the p99 refresh-tail spike.)
    fn refresh_exact_fallback(&mut self, sigmas: &[f64]) -> Result<VarianceEstimate, LinalgError> {
        let mut phase1 = std::mem::take(&mut self.scratch.phase1);
        let est = estimate_variances_scratch(
            &self.red,
            &self.aug,
            sigmas,
            &self.cfg.variance,
            &mut self.gram,
            &mut phase1,
        );
        self.scratch.phase1 = phase1;
        est
    }

    /// Phase 1 with the Givens-amended factor: patch the Gram counts,
    /// rank-1-update/downdate the upper factor for the rows that moved
    /// between kept and dropped, and solve by two triangular solves.
    /// Any failure (under-determined kept set, lost positive
    /// definiteness, singular factor) falls back to the exact cached
    /// path and discards the factor, which is rebuilt from the patched
    /// counts at the next refresh.
    fn refresh_givens(&mut self, sigmas: &[f64]) -> Result<VarianceEstimate, LinalgError> {
        let nc = self.red.num_links();
        let cfg = &self.cfg.variance;
        let new_kept: Vec<bool> = sigmas
            .iter()
            .map(|&s| !(cfg.drop_negative_covariances && s < 0.0))
            .collect();
        let (added, dropped) = self.gram.sync(self.aug.matrix(), nc, &new_kept);
        if !added.is_empty() || !dropped.is_empty() {
            // The cache mask moved without a kept solve: the kept
            // factor in the persistent workspace is stale.
            self.scratch.phase1.invalidate_kept_factor();
        }
        let used = new_kept.iter().filter(|&&k| k).count();
        let dropped_count = self.aug.num_rows() - used;
        if used < nc {
            self.factor = None;
            return self.refresh_exact_fallback(sigmas);
        }
        // Amend or (re)build the factor.
        let mut scratch = vec![0.0; nc];
        if let Some(factor) = self.factor.as_mut() {
            let mut amended = true;
            for &r in added.iter().chain(dropped.iter()) {
                let res = if new_kept[r] {
                    factor.update(self.aug.row(r), &mut scratch)
                } else {
                    factor.downdate(self.aug.row(r), &mut scratch)
                };
                if res.is_err() {
                    amended = false;
                    break;
                }
            }
            if !amended {
                self.factor = None;
            }
        }
        if self.factor.is_none() {
            match GivensFactor::build(self.gram.counts(), nc) {
                Ok(factor) => self.factor = Some(factor),
                Err(_) => {
                    // Mirror the exact path's all-rows fallback.
                    return self.refresh_exact_fallback(sigmas);
                }
            }
        }
        let mut atb = vec![0.0; nc];
        for (((_, links), &sigma), &keep) in
            self.aug.iter().zip(sigmas.iter()).zip(new_kept.iter())
        {
            if !keep {
                continue;
            }
            for &ka in links {
                atb[ka] += sigma;
            }
        }
        let factor = self.factor.as_ref().expect("factor was just built");
        let solved = factor.solve(&atb);
        match solved {
            Ok(v) => Ok(VarianceEstimate {
                v,
                dropped_rows: dropped_count,
                used_rows: used,
            }),
            Err(_) => {
                self.factor = None;
                self.refresh_exact_fallback(sigmas)
            }
        }
    }

    /// Phase 2 for one snapshot's log measurements against the current
    /// model: reuses the memoized kept set and factorisation, so a
    /// per-snapshot estimate between refreshes costs one least-squares
    /// application instead of a rank bisection plus factorisation.
    pub fn estimate(&self, y: &[f64]) -> Result<LinkRateEstimate, LinalgError> {
        if self.variances.is_none() {
            return Err(LinalgError::DimensionMismatch(
                "no successful Phase-1 refresh yet — ingest more snapshots".to_string(),
            ));
        }
        if y.len() != self.red.num_paths() {
            return Err(LinalgError::DimensionMismatch(format!(
                "snapshot has {} paths, topology has {}",
                y.len(),
                self.red.num_paths()
            )));
        }
        let xstar = match self.p2.as_ref().expect("kept set built with variances") {
            Phase2Factor::DenseQr(qr) => qr.solve_least_squares(y)?,
            Phase2Factor::DenseNormal(rstar) => lstsq::solve_normal_equations(rstar, y)?,
            Phase2Factor::Sparse(qr) => qr.solve_least_squares(y)?,
        };
        Ok(lia::rates_from_solution(
            self.red.num_links(),
            &self.kept,
            &xstar,
        ))
    }

    /// Applies a routing delta to the **live** estimator — no drain, no
    /// rebuild. Every incremental structure is patched in place:
    ///
    /// * the reduced topology and Phase-2 rank view swap to the new
    ///   routing (an invalid delta returns the [`ChurnError`] and
    ///   leaves the estimator untouched);
    /// * the augmented pair system is patched row-by-row
    ///   ([`AugmentedSystem::apply_delta`]), carrying every pair whose
    ///   intersection row is bit-identical across the delta (under a
    ///   biting [`PairBudget`] the selection is re-run and re-matched
    ///   instead);
    /// * the Gram cache subtracts the dropped rows' co-occurrence
    ///   counts (integer arithmetic — patched equals from-scratch), and
    ///   a cached Givens factor is repaired surgically: one rank-1
    ///   **update** per recomputed pair row first, then one rank-1
    ///   **downdate** per dropped kept row — in that order, so the
    ///   factor never passes through the carried-only Gram (singular
    ///   whenever a rerouted path was the sole cover of a link); if a
    ///   downdate still loses positive definiteness the estimator falls
    ///   back to a clean rebuild, recorded in
    ///   [`ChurnReport::fallback`] — the degraded path is never silent;
    /// * the covariance window remaps its retained rows and restarts
    ///   the recomputed pairs with a fresh validity horizon
    ///   ([`StreamingCovariance::apply_churn`]): interim refreshes
    ///   replay each pair over its valid suffix, and once the window
    ///   flushes ([`Staleness::is_flushed`]) estimates are again
    ///   **bit-identical** to a fresh estimator built on the new
    ///   topology and fed the same post-churn snapshots.
    ///
    /// A refresh is attempted immediately; a post-churn refresh
    /// failure (e.g. every pair warming) is held as a warm-up error
    /// rather than surfaced — the estimator keeps streaming.
    pub fn apply_delta(&mut self, delta: &TopologyDelta) -> Result<ChurnReport, ChurnError> {
        let effect = self.red.apply_delta(delta)?;
        // Committed from here: `self.red` describes the new routing.
        // Phase-2 memoization is keyed on the routing matrix — drop it
        // (`cut` survives as an output-neutral bisection hint).
        self.view = RankView::new(&self.red, self.cfg.lia.dispatch);
        self.p2 = None;
        self.order.clear();
        self.kept.clear();
        let np = self.red.num_paths();
        let nc = self.red.num_links();
        // Patch (or, under a pair budget, rebuild and re-match) the
        // augmented system.
        let (new_aug, new_selection, carry) = if self.selection.is_some() {
            let (aug, sel) = apply_budget(AugmentedSystem::build(&self.red), self.cfg.pair_budget);
            let carry = carry_via_pairs(&self.aug, &aug, &effect, np);
            (aug, sel, carry)
        } else {
            let (full, carry_full) = self.aug.apply_delta(&self.red, &effect);
            let (aug, sel) = apply_budget(full, self.cfg.pair_budget);
            if sel.is_some() {
                // The budget bites only now (churn grew the pair set
                // past it): re-match pairs against the selection.
                let carry = carry_via_pairs(&self.aug, &aug, &effect, np);
                (aug, sel, carry)
            } else {
                (aug, sel, carry_full)
            }
        };
        // Patch the Gram counts while `self.aug` is still the old
        // system (the dropped rows' links are read from it), then
        // surgically downdate the Givens factor for each kept row that
        // left.
        let dropped_kept = self.gram.apply_churn(self.aug.matrix(), nc, &carry);
        let mut factor_updates = 0usize;
        let mut factor_downdates = 0usize;
        let mut fallback: Option<String> = None;
        // Update-before-downdate: pre-fold every recomputed/new pair
        // row into the counts and the factor, *then* downdate the
        // dropped old rows. Every intermediate Gram is a superset of
        // the new system's, so the surgery stays positive definite
        // even when the carried-only Gram is structurally singular (a
        // rerouted path that was the sole cover of some link — routine
        // on meshes). Updates cannot lose positive definiteness; only
        // downdates can.
        let folded = if self.factor.is_some() && self.gram.is_ready() {
            let mut pre_kept = self.gram.kept_mask().to_vec();
            for (r, c) in carry.iter().enumerate() {
                if c.is_none() {
                    pre_kept[r] = true;
                }
            }
            self.gram.sync(new_aug.matrix(), nc, &pre_kept).0
        } else {
            Vec::new()
        };
        if let Some(factor) = self.factor.as_mut() {
            let mut ind = vec![0.0; nc];
            for &r in &folded {
                factor_updates += 1;
                if factor.update(new_aug.row(r), &mut ind).is_err() {
                    fallback = Some("churn factor update failed — clean rebuild".to_string());
                    break;
                }
            }
            if fallback.is_none() {
                for &r in &dropped_kept {
                    factor_downdates += 1;
                    if factor.downdate(self.aug.row(r), &mut ind).is_err() {
                        fallback = Some(
                            "churn downdate lost positive definiteness — clean rebuild"
                                .to_string(),
                        );
                        break;
                    }
                }
            }
        }
        if fallback.is_some() {
            // Degraded path: drop every incremental structure and let
            // the next refresh reassemble from scratch.
            self.factor = None;
            self.gram = GramCache::new();
        }
        // Rewire the covariance window to the new pair set.
        self.cov
            .apply_churn(np, new_aug.pair_indices(), &carry, &effect.id_map);
        let carried_pairs = carry.iter().filter(|c| c.is_some()).count();
        let recomputed_pairs = carry.len() - carried_pairs;
        self.aug = new_aug;
        self.selection = new_selection;
        // Both cached Phase-1 factors (kept-mask and all-rows) describe
        // the old system.
        self.scratch.phase1.invalidate_for_churn();
        // The old model indexes the old pair system; `estimate` must
        // not serve it.
        let had_model = self.variances.take().is_some();
        let mut refreshed = false;
        if self.cov.len() >= 2 {
            match self.refresh() {
                Ok(()) => refreshed = true,
                Err(e) => {
                    if had_model && fallback.is_none() {
                        fallback = Some(format!("post-churn refresh failed: {e}"));
                    }
                    self.warmup_error = Some(e);
                }
            }
        }
        Ok(ChurnReport {
            added_paths: effect.added.len(),
            removed_paths: effect.removed.len(),
            rerouted_paths: effect.changed.len() - effect.added.len(),
            carried_pairs,
            recomputed_pairs,
            factor_updates,
            factor_downdates,
            fallback,
            refreshed,
            staleness: self.cov.staleness(),
        })
    }
}

/// What [`OnlineEstimator::apply_delta`] did — the per-layer cost and
/// outcome of one churn event.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Paths added by the delta.
    pub added_paths: usize,
    /// Paths removed by the delta.
    pub removed_paths: usize,
    /// Surviving paths whose link row changed (reroutes + remap hits).
    pub rerouted_paths: usize,
    /// Augmented pairs carried with their history intact.
    pub carried_pairs: usize,
    /// Augmented pairs recomputed and restarted (warming up).
    pub recomputed_pairs: usize,
    /// Givens rank-1 updates pre-folding recomputed pair rows into the
    /// cached Phase-1 factor (applied *before* the downdates so the
    /// factor never passes through the carried-only Gram, which is
    /// singular whenever a rerouted path was the sole cover of a link).
    pub factor_updates: usize,
    /// Givens rank-1 downdates applied to the cached Phase-1 factor.
    pub factor_downdates: usize,
    /// `Some(reason)` when the incremental patch had to fall back to a
    /// clean rebuild (lost positive definiteness, or the immediate
    /// post-churn refresh failed while a model was live). Never silent.
    pub fallback: Option<String>,
    /// Whether the immediate post-churn refresh succeeded.
    pub refreshed: bool,
    /// Flush progress of the covariance window at return.
    pub staleness: Staleness,
}

/// Matches the new (budgeted) pair set against the old one by pair
/// identity: a new pair carries the old slot's history iff neither
/// endpoint changed routing and the same path pair was tracked before.
fn carry_via_pairs(
    old: &AugmentedSystem,
    new: &AugmentedSystem,
    effect: &DeltaEffect,
    new_np: usize,
) -> Vec<Option<usize>> {
    let changed: std::collections::HashSet<u32> = effect.changed.iter().map(|p| p.0).collect();
    let inv = effect.inverse_id_map(new_np);
    let mut old_slots = std::collections::HashMap::new();
    for (r, ((a, b), _)) in old.iter().enumerate() {
        old_slots.insert((a.0, b.0), r);
    }
    new.iter()
        .map(|((a, b), _)| {
            if changed.contains(&a.0) || changed.contains(&b.0) {
                return None;
            }
            let oa = inv[a.index()]?;
            let ob = inv[b.index()]?;
            old_slots.get(&(oa.0, ob.0)).copied()
        })
        .collect()
}

/// Set difference of two ascending index lists, as
/// `(in_new_only, in_old_only)`.
fn diff_sorted(old: &[usize], new: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut appeared = Vec::new();
    let mut cleared = Vec::new();
    let (mut a, mut b) = (0, 0);
    while a < old.len() || b < new.len() {
        match (old.get(a), new.get(b)) {
            (Some(&x), Some(&y)) if x == y => {
                a += 1;
                b += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                cleared.push(x);
                a += 1;
            }
            (Some(_), Some(&y)) => {
                appeared.push(y);
                b += 1;
            }
            (Some(&x), None) => {
                cleared.push(x);
                a += 1;
            }
            (None, Some(&y)) => {
                appeared.push(y);
                b += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    (appeared, cleared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::estimate_variances;
    use crate::{infer_link_rates, CenteredMeasurements};
    use losstomo_netsim::{
        simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
    };
    use losstomo_topology::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure1())
    }

    fn fig2() -> ReducedTopology {
        fixtures::reduced(&fixtures::figure2())
    }

    fn simulate(red: &ReducedTopology, m: usize, seed: u64) -> MeasurementSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = CongestionScenario::draw(
            red.num_links(),
            0.3,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let cfg = ProbeConfig {
            probes_per_snapshot: 200,
            ..ProbeConfig::default()
        };
        simulate_run(red, &mut scenario, &cfg, m, &mut rng)
    }

    fn all_pairs(n: usize) -> Vec<(usize, usize)> {
        (0..n).flat_map(|i| (i..n).map(move |j| (i, j))).collect()
    }

    fn synthetic_rows(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m)
            .map(|l| {
                (0..n)
                    .map(|i| (((l * 37 + i * 13 + 5) % 101) as f64) / 10.1 - 5.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn streaming_exact_matches_batch_bitwise() {
        let rows = synthetic_rows(12, 5);
        let pairs = all_pairs(5);
        let mut sc = StreamingCovariance::new(5, pairs.clone(), WindowMode::Unbounded);
        for row in &rows {
            sc.ingest(row);
        }
        let batch = CenteredMeasurements::from_rows(rows).pair_covariances(&pairs);
        assert_eq!(sc.exact_covariances(), batch);
        assert_eq!(sc.len(), 12);
        assert_eq!(sc.total_ingested(), 12);
    }

    #[test]
    fn sliding_window_matches_batch_over_window() {
        let rows = synthetic_rows(20, 4);
        let pairs = all_pairs(4);
        let w = 6;
        let mut sc = StreamingCovariance::new(4, pairs.clone(), WindowMode::Sliding(w));
        for row in &rows {
            sc.ingest(row);
        }
        assert_eq!(sc.len(), w);
        let window = rows[rows.len() - w..].to_vec();
        let batch = CenteredMeasurements::from_rows(window).pair_covariances(&pairs);
        assert_eq!(sc.exact_covariances(), batch);
    }

    /// Encodes `rows` as contiguous little-endian `f64` bytes and
    /// returns the buffer plus one zero-copy window per row.
    fn wire_rows(rows: &[Vec<f64>]) -> Vec<Bytes> {
        let width = rows[0].len() * 8;
        let mut buf = Vec::with_capacity(rows.len() * width);
        for row in rows {
            for v in row {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let buf = Bytes::from(buf);
        (0..rows.len())
            .map(|r| buf.slice(r * width..(r + 1) * width))
            .collect()
    }

    #[test]
    fn wire_ingest_is_bit_identical_to_owned_ingest() {
        // Same rows through `ingest` (owned) and `ingest_wire`
        // (retained by reference): running moments, exact replay, and
        // sliding-window eviction must all agree bitwise.
        let rows = synthetic_rows(20, 4);
        let pairs = all_pairs(4);
        for mode in [WindowMode::Unbounded, WindowMode::Sliding(6)] {
            let mut owned = StreamingCovariance::new(4, pairs.clone(), mode);
            let mut wire = StreamingCovariance::new(4, pairs.clone(), mode);
            for (row, b) in rows.iter().zip(wire_rows(&rows)) {
                owned.ingest(row);
                wire.ingest_wire(&b);
            }
            assert_eq!(owned.len(), wire.len());
            assert_eq!(owned.covariances(), wire.covariances());
            assert_eq!(owned.exact_covariances(), wire.exact_covariances());
            assert_eq!(owned.means(), wire.means());
        }
    }

    #[test]
    fn misaligned_wire_rows_decode_to_the_same_bits() {
        // A one-byte-shifted buffer defeats the in-place cast; the
        // decode fallback must land on identical accumulator state.
        let rows = synthetic_rows(8, 3);
        let pairs = all_pairs(3);
        let width = 3 * 8;
        let mut buf = vec![0u8; 1]; // poison the alignment
        for row in &rows {
            for v in row {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let buf = Bytes::from(buf);
        let mut owned = StreamingCovariance::new(3, pairs.clone(), WindowMode::Unbounded);
        let mut wire = StreamingCovariance::new(3, pairs.clone(), WindowMode::Unbounded);
        for (r, row) in rows.iter().enumerate() {
            owned.ingest(row);
            wire.ingest_wire(&buf.slice(1 + r * width..1 + (r + 1) * width));
        }
        assert_eq!(owned.covariances(), wire.covariances());
        assert_eq!(owned.exact_covariances(), wire.exact_covariances());
    }

    #[test]
    fn churn_remap_rewrites_wire_rows() {
        // `apply_churn` remaps retained rows in place; wire-backed
        // rows must convert to owned remapped rows and keep replaying
        // identically to an accumulator that ingested owned rows.
        let rows = synthetic_rows(10, 3);
        let pairs = vec![(0, 0), (1, 1), (0, 1)];
        let mut owned = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(6));
        let mut wire = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(6));
        for (row, b) in rows.iter().zip(wire_rows(&rows)) {
            owned.ingest(row);
            wire.ingest_wire(&b);
        }
        // Drop path 1: old paths {0,2} become new paths {0,1}.
        let id_map = vec![Some(PathId(0)), None, Some(PathId(1))];
        let new_pairs = vec![(0, 0), (1, 1), (0, 1)];
        let carry = vec![Some(0), None, None];
        owned.apply_churn(2, new_pairs.clone(), &carry, &id_map);
        wire.apply_churn(2, new_pairs, &carry, &id_map);
        assert_eq!(owned.covariances(), wire.covariances());
        assert_eq!(owned.exact_covariances(), wire.exact_covariances());
        for k in 0..8 {
            let post = [k as f64 * 0.4, (k % 3) as f64 * 1.1];
            owned.ingest(&post);
            wire.ingest(&post);
        }
        assert_eq!(owned.exact_covariances(), wire.exact_covariances());
        assert!(owned.is_churn_free() && wire.is_churn_free());
    }

    #[test]
    fn estimator_wire_rows_match_owned_rows_bitwise() {
        // Full `OnlineEstimator` equivalence: wire-fed and slice-fed
        // estimators agree on variances and congested sets, and typed
        // rejection leaves the wire-fed estimator untouched.
        let red = fig2();
        let ms = simulate(&red, 40, 97);
        let rows: Vec<Vec<f64>> = ms.snapshots.iter().map(|s| s.log_rates()).collect();
        let mut by_slice = OnlineEstimator::new(&red, OnlineConfig::default());
        let mut by_wire = OnlineEstimator::new(&red, OnlineConfig::default());
        for (row, b) in rows.iter().zip(wire_rows(&rows)) {
            let a = by_slice.ingest_log_rates(row).unwrap();
            let b = by_wire.ingest_wire_row(&b).unwrap();
            assert_eq!(a.congested, b.congested);
        }
        assert_eq!(
            by_slice.variances().unwrap().v,
            by_wire.variances().unwrap().v
        );
        // Mis-sized row: typed error, state untouched.
        let before = by_wire.variances().unwrap().v.clone();
        let short = wire_rows(&[vec![1.0; 2]]).remove(0);
        assert!(matches!(
            by_wire.ingest_wire_row(&short),
            Err(LinalgError::DimensionMismatch(_))
        ));
        // Non-finite row: typed error, state untouched.
        let mut bad = rows[0].clone();
        bad[1] = f64::NAN;
        let bad = wire_rows(&[bad]).remove(0);
        assert!(matches!(
            by_wire.ingest_wire_row(&bad),
            Err(LinalgError::NonFinite { index: 1 })
        ));
        assert_eq!(by_wire.variances().unwrap().v, before);
    }

    #[test]
    fn welford_tracks_batch_within_tolerance() {
        let rows = synthetic_rows(30, 4);
        let pairs = all_pairs(4);
        let mut sc = StreamingCovariance::new(4, pairs.clone(), WindowMode::Unbounded);
        for row in &rows {
            sc.ingest(row);
        }
        let exact = sc.exact_covariances();
        for (w, e) in sc.covariances().iter().zip(exact.iter()) {
            assert!((w - e).abs() < 1e-9, "welford {w} vs exact {e}");
        }
    }

    #[test]
    fn welford_downdate_survives_long_streams() {
        // After many evictions the running moments must still track the
        // window's true covariance.
        let rows = synthetic_rows(200, 3);
        let pairs = all_pairs(3);
        let w = 8;
        let mut sc = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(w));
        for row in &rows {
            sc.ingest(row);
        }
        let exact = sc.exact_covariances();
        for (wv, e) in sc.covariances().iter().zip(exact.iter()) {
            assert!((wv - e).abs() < 1e-6, "welford {wv} drifted from {e}");
        }
    }

    #[test]
    fn pair_budget_restricts_estimator_pair_sweep() {
        // A biting budget must shrink the augmented system (and with
        // it the tracked pair set), keep Phase 1 solvable, and keep
        // rank so the estimator still converges on clean streams.
        let red = fixtures::reduced(&fixtures::figure2());
        let full = AugmentedSystem::build(&red);
        let rank = losstomo_linalg::rank(&full.to_dense());
        let cfg = OnlineConfig {
            pair_budget: PairBudget::Rows(rank),
            ..OnlineConfig::default()
        };
        let mut est = OnlineEstimator::new(&red, cfg);
        let sel = est.pair_selection().expect("budget bites on figure2");
        assert!(est.augmented().num_rows() < full.num_rows());
        assert_eq!(est.augmented().num_rows(), sel.rows.len());
        assert_eq!(
            est.covariance().pairs().len(),
            est.augmented().num_rows(),
            "covariance sweep tracks exactly the selected pairs"
        );
        let ms = simulate(&red, 30, 3);
        for snapshot in &ms.snapshots {
            est.ingest(snapshot).unwrap();
        }
        assert!(est.refresh_count() > 0);
        assert!(est.variances().is_some());
        // Full budget (the default with the env knob unset) is the
        // identity.
        let unbudgeted = OnlineEstimator::new(&red, OnlineConfig::default());
        assert!(unbudgeted.pair_selection().is_none());
        assert_eq!(unbudgeted.augmented().num_rows(), full.num_rows());
    }

    #[test]
    fn recentre_cadence_pins_long_stream_drift() {
        // ISSUE 6 regression: 10k windowed snapshots accumulate
        // reverse-Welford rounding; the periodic exact recentre must
        // keep the running moments within 1e-10 of the exact window
        // covariance, and disabling it must still stay within the old
        // loose tolerance.
        let rows = synthetic_rows(10_000, 3);
        let pairs = all_pairs(3);
        let w = 16;
        let mut with_recentre = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(w))
            .with_recentre_every(256);
        let mut without = StreamingCovariance::new(3, pairs.clone(), WindowMode::Sliding(w))
            .with_recentre_every(0);
        for row in &rows {
            with_recentre.ingest(row);
            without.ingest(row);
        }
        let exact = with_recentre.exact_covariances();
        for ((&r, &n), &e) in with_recentre
            .covariances()
            .iter()
            .zip(without.covariances().iter())
            .zip(exact.iter())
        {
            assert!(
                (r - e).abs() < 1e-10,
                "recentred welford {r} drifted {:.3e} from exact {e}",
                (r - e).abs()
            );
            assert!((n - e).abs() < 1e-6, "uncentred drift blew up: {n} vs {e}");
        }
    }

    #[test]
    fn recentre_is_invisible_to_exact_refreshes() {
        // The online estimator's refreshes replay the window, so the
        // cadence must not change a single estimate bit.
        let red = fig1();
        let ms = simulate(&red, 40, 9);
        let base = OnlineConfig {
            window: WindowMode::Sliding(12),
            ..OnlineConfig::default()
        };
        let mut a = OnlineEstimator::new(&red, OnlineConfig { recentre_every: 4, ..base });
        let mut b = OnlineEstimator::new(&red, OnlineConfig { recentre_every: 0, ..base });
        for snapshot in &ms.snapshots {
            let ua = a.ingest(snapshot).unwrap();
            let ub = b.ingest(snapshot).unwrap();
            match (ua.estimate, ub.estimate) {
                (Some(ea), Some(eb)) => {
                    assert_eq!(ea.transmission, eb.transmission, "estimates diverged")
                }
                (None, None) => {}
                _ => panic!("warmup diverged"),
            }
        }
        assert!(a.refresh_count() > 0, "premise: refreshes happened");
    }

    #[test]
    fn ewma_mode_estimates_covariance_scale() {
        // Stationary noise: EWMA covariance should land near the true
        // variance for the diagonal pair, with no window retained.
        let rows = synthetic_rows(400, 2);
        let mut sc =
            StreamingCovariance::new(2, vec![(0, 0), (0, 1)], WindowMode::Exponential(0.05));
        for row in &rows {
            sc.ingest(row);
        }
        assert!(sc.rows.is_empty());
        let est = sc.covariances();
        let batch = CenteredMeasurements::from_rows(rows);
        assert!(
            (est[0] - batch.var(0)).abs() / batch.var(0) < 0.5,
            "EWMA {} vs batch {}",
            est[0],
            batch.var(0)
        );
    }

    #[test]
    #[should_panic(expected = "exact replay")]
    fn ewma_mode_has_no_exact_replay() {
        let mut sc = StreamingCovariance::new(2, vec![(0, 1)], WindowMode::Exponential(0.1));
        sc.ingest(&[1.0, 2.0]);
        sc.ingest(&[2.0, 1.0]);
        let _ = sc.exact_covariances();
    }

    #[test]
    #[should_panic(expected = "at least 2 snapshots")]
    fn covariances_need_two_snapshots() {
        let mut sc = StreamingCovariance::new(2, vec![(0, 1)], WindowMode::Unbounded);
        sc.ingest(&[1.0, 2.0]);
        let _ = sc.covariances();
    }

    #[test]
    fn online_estimator_matches_batch_pipeline_bitwise() {
        let red = fig1();
        let m = 25;
        let ms = simulate(&red, m + 1, 42);
        // Batch reference.
        let train = MeasurementSet {
            snapshots: ms.snapshots[..m].to_vec(),
        };
        let aug = AugmentedSystem::build(&red);
        let centered = CenteredMeasurements::new(&train);
        let batch_v =
            estimate_variances(&red, &aug, &centered, &VarianceConfig::default()).unwrap();
        let y_eval = ms.snapshots[m].log_rates();
        let batch_p2 =
            infer_link_rates(&red, &batch_v.v, &y_eval, &LiaConfig::default()).unwrap();
        // Online, default (exact) configuration.
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        for snap in &ms.snapshots[..m] {
            online.ingest(snap).unwrap();
        }
        let online_v = online.variances().expect("warm after m snapshots");
        assert_eq!(online_v.v, batch_v.v, "Phase-1 variances drifted");
        assert_eq!(online_v.dropped_rows, batch_v.dropped_rows);
        assert_eq!(online_v.used_rows, batch_v.used_rows);
        let online_p2 = online.estimate(&y_eval).unwrap();
        assert_eq!(online_p2.transmission, batch_p2.transmission);
        assert_eq!(online_p2.kept, batch_p2.kept);
        assert_eq!(online_p2.kept_count, batch_p2.kept_count);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_alloc_per_refresh() {
        // The workspace-reuse hot path (cached Gram factor included)
        // must not change a single bit of the estimates.
        let red = fig1();
        let ms = simulate(&red, 30, 77);
        let mut reuse = OnlineEstimator::new(&red, OnlineConfig::default());
        let mut alloc = OnlineEstimator::new(
            &red,
            OnlineConfig {
                scratch: ScratchMode::AllocPerRefresh,
                ..OnlineConfig::default()
            },
        );
        for snap in &ms.snapshots {
            let ur = reuse.ingest(snap).unwrap();
            let ua = alloc.ingest(snap).unwrap();
            assert_eq!(ur.congested, ua.congested);
            match (&ur.estimate, &ua.estimate) {
                (Some(er), Some(ea)) => assert_eq!(er.transmission, ea.transmission),
                (None, None) => {}
                _ => panic!("one mode warmed up before the other"),
            }
        }
        assert_eq!(
            reuse.variances().unwrap().v,
            alloc.variances().unwrap().v,
            "Phase-1 variances drifted between scratch modes"
        );
        assert_eq!(reuse.kept_columns(), alloc.kept_columns());
    }

    #[test]
    fn refresh_cadence_skips_intermediate_refreshes() {
        let red = fig1();
        let ms = simulate(&red, 12, 7);
        let cfg = OnlineConfig {
            refresh_every: 4,
            ..OnlineConfig::default()
        };
        let mut online = OnlineEstimator::new(&red, cfg);
        let mut refreshes = 0;
        for snap in &ms.snapshots {
            if online.ingest(snap).unwrap().refreshed {
                refreshes += 1;
            }
        }
        // First refresh as soon as solvable, then every 4th ingest.
        assert!(refreshes < ms.snapshots.len() as u64 && refreshes >= 2);
        assert_eq!(refreshes, online.refresh_count());
    }

    #[test]
    fn givens_mode_agrees_with_exact_mode() {
        let red = fig1();
        let ms = simulate(&red, 30, 11);
        let exact_cfg = OnlineConfig::default();
        let givens_cfg = OnlineConfig {
            factor: FactorRefresh::GivensUpdate,
            ..OnlineConfig::default()
        };
        let mut exact = OnlineEstimator::new(&red, exact_cfg);
        let mut amended = OnlineEstimator::new(&red, givens_cfg);
        for snap in &ms.snapshots {
            exact.ingest(snap).unwrap();
            amended.ingest(snap).unwrap();
        }
        let (ve, va) = (
            &exact.variances().unwrap().v,
            &amended.variances().unwrap().v,
        );
        for (a, b) in ve.iter().zip(va.iter()) {
            assert!((a - b).abs() < 1e-8, "exact {ve:?} vs givens {va:?}");
        }
    }

    #[test]
    fn change_detection_reports_transitions() {
        let (appeared, cleared) = diff_sorted(&[1, 3, 5], &[1, 4, 5, 9]);
        assert_eq!(appeared, vec![4, 9]);
        assert_eq!(cleared, vec![3]);
        let (a2, c2) = diff_sorted(&[], &[2]);
        assert_eq!(a2, vec![2]);
        assert!(c2.is_empty());
    }

    #[test]
    fn online_update_congested_set_is_consistent() {
        let red = fig1();
        let ms = simulate(&red, 20, 3);
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        let mut current: Vec<usize> = Vec::new();
        for snap in &ms.snapshots {
            let up = online.ingest(snap).unwrap();
            // appeared/cleared must replay old → new exactly.
            let mut replayed: Vec<usize> = current
                .iter()
                .copied()
                .filter(|k| !up.cleared.contains(k))
                .chain(up.appeared.iter().copied())
                .collect();
            replayed.sort_unstable();
            assert_eq!(replayed, up.congested);
            current = up.congested.clone();
        }
        assert_eq!(current, online.congested_links());
    }

    #[test]
    fn warmup_is_graceful() {
        let red = fig1();
        let ms = simulate(&red, 3, 5);
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        let up = online.ingest(&ms.snapshots[0]).unwrap();
        assert!(!up.refreshed);
        assert!(up.estimate.is_none());
        assert!(up.congested.is_empty());
    }

    #[test]
    fn wrong_width_snapshot_is_typed_error_not_poison() {
        let red = fig1();
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        let err = online.ingest_log_rates(&[0.0]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch(_)));
        assert!(err.to_string().contains("snapshot covers"));
        // Nothing was ingested — the accumulator is untouched.
        assert_eq!(online.covariance().total_ingested(), 0);
    }

    #[test]
    fn non_finite_snapshot_is_rejected_and_estimator_stays_sane() {
        let red = fig1();
        let ms = simulate(&red, 40, 97);
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        for s in &ms.snapshots[..20] {
            online.ingest(s).unwrap();
        }
        let before = online.variances().expect("warm after 20 snapshots").v.clone();
        // A NaN (and an infinite) snapshot must bounce with a typed
        // error, not poison the Welford moments.
        let mut bad = ms.snapshots[20].log_rates();
        bad[2] = f64::NAN;
        assert_eq!(
            online.ingest_log_rates(&bad).unwrap_err(),
            LinalgError::NonFinite { index: 2 }
        );
        bad[2] = f64::INFINITY;
        assert_eq!(
            online.ingest_log_rates(&bad).unwrap_err(),
            LinalgError::NonFinite { index: 2 }
        );
        // The model is unchanged and further ingests behave exactly as
        // if the bad rows never arrived.
        assert_eq!(online.variances().unwrap().v, before);
        let mut control = OnlineEstimator::new(&red, OnlineConfig::default());
        for s in &ms.snapshots {
            control.ingest(s).unwrap();
        }
        for s in &ms.snapshots[20..] {
            online.ingest(s).unwrap();
        }
        assert_eq!(online.variances().unwrap().v, control.variances().unwrap().v);
    }

    /// The churn robustness gate: apply a delta mid-stream, keep
    /// ingesting until the sliding window flushes, and the estimator's
    /// variances and per-snapshot estimates are **bit-identical** to a
    /// fresh estimator built on the new topology and fed the same
    /// post-churn snapshots.
    #[test]
    fn churned_estimator_matches_fresh_after_flush() {
        let w = 8;
        let cfg = OnlineConfig {
            window: WindowMode::Sliding(w),
            ..OnlineConfig::default()
        };
        let mut red = fig2();
        let ms = simulate(&red, 30, 11);
        let mut online = OnlineEstimator::new(&red, cfg);
        for s in &ms.snapshots {
            online.ingest(s).unwrap();
        }
        // Reroute one path, drop another, add a new one.
        let nc = red.num_links();
        let delta = TopologyDelta::new()
            .reroute_path(PathId(0), vec![0, nc - 1])
            .remove_path(PathId(2))
            .add_path(vec![0, 1]);
        let effect_check = {
            let mut copy = red.clone();
            copy.apply_delta(&delta).unwrap()
        };
        assert!(!effect_check.changed.is_empty());
        let report = online.apply_delta(&delta).unwrap();
        red.apply_delta(&delta).unwrap();
        assert_eq!(online.topology().matrix, red.matrix);
        assert_eq!(report.added_paths, 1);
        assert_eq!(report.removed_paths, 1);
        assert_eq!(report.rerouted_paths, 1);
        assert!(report.carried_pairs > 0);
        assert!(report.recomputed_pairs > 0);
        let st = report.staleness;
        assert!(st.stale_rows > 0);
        let flush = st.snapshots_until_flush.expect("sliding window flushes");
        assert!(flush >= st.stale_rows as u64);
        // Stream post-churn snapshots on the new topology into both the
        // churned estimator and a fresh control.
        let ms2 = simulate(&red, flush as usize + 5, 12);
        let mut fresh = OnlineEstimator::new(&red, cfg);
        let mut fed = 0u64;
        for s in &ms2.snapshots {
            let y = s.log_rates();
            let _ = online.ingest_log_rates(&y);
            let _ = fresh.ingest_log_rates(&y);
            fed += 1;
            if fed >= flush {
                assert!(online.covariance().is_churn_free());
                assert!(online.staleness().is_flushed());
            }
        }
        // Post-flush both windows hold the same `w` rows: force a
        // refresh on each and compare bits.
        online.refresh().unwrap();
        fresh.refresh().unwrap();
        assert_eq!(online.variances().unwrap().v, fresh.variances().unwrap().v);
        let y = ms2.snapshots.last().unwrap().log_rates();
        assert_eq!(
            online.estimate(&y).unwrap().transmission,
            fresh.estimate(&y).unwrap().transmission
        );
        assert_eq!(online.kept_columns(), fresh.kept_columns());
    }

    /// Same gate under the Givens-amended factor policy: the surgically
    /// downdated factor must converge to the same estimates (within the
    /// policy's tolerance contract it already has) and never panic.
    #[test]
    fn churn_under_givens_policy_survives_and_converges() {
        let w = 8;
        let cfg = OnlineConfig {
            window: WindowMode::Sliding(w),
            factor: FactorRefresh::GivensUpdate,
            ..OnlineConfig::default()
        };
        let mut red = fig2();
        let ms = simulate(&red, 30, 21);
        let mut online = OnlineEstimator::new(&red, cfg);
        for s in &ms.snapshots {
            online.ingest(s).unwrap();
        }
        let nc = red.num_links();
        let delta = TopologyDelta::new()
            .reroute_path(PathId(1), vec![1, nc - 1])
            .add_path(vec![0, 2]);
        let report = online.apply_delta(&delta).unwrap();
        // The incremental path either amended the factor or declared
        // its fallback — never a silent rebuild.
        assert!(report.fallback.is_none() || report.factor_downdates > 0 || !report.refreshed);
        red.apply_delta(&delta).unwrap();
        let ms2 = simulate(&red, w + 4, 22);
        let exact_cfg = OnlineConfig {
            factor: FactorRefresh::Exact,
            ..cfg
        };
        let mut control = OnlineEstimator::new(&red, exact_cfg);
        for s in &ms2.snapshots {
            let y = s.log_rates();
            let _ = online.ingest_log_rates(&y);
            let _ = control.ingest_log_rates(&y);
        }
        online.refresh().unwrap();
        control.refresh().unwrap();
        let a = &online.variances().unwrap().v;
        let b = &control.variances().unwrap().v;
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() <= 1e-8 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn ewma_estimator_survives_churn() {
        let cfg = OnlineConfig {
            window: WindowMode::Exponential(0.2),
            ..OnlineConfig::default()
        };
        let mut red = fig2();
        let ms = simulate(&red, 20, 31);
        let mut online = OnlineEstimator::new(&red, cfg);
        for s in &ms.snapshots {
            online.ingest(s).unwrap();
        }
        let nc = red.num_links();
        let delta = TopologyDelta::new().reroute_path(PathId(0), vec![0, nc - 1]);
        let report = online.apply_delta(&delta).unwrap();
        assert_eq!(report.rerouted_paths, 1);
        // EWMA has no window to flush — staleness is honest about it.
        assert_eq!(report.staleness.snapshots_until_flush, None);
        red.apply_delta(&delta).unwrap();
        let ms2 = simulate(&red, 20, 32);
        for s in &ms2.snapshots {
            online.ingest(s).unwrap();
        }
        assert!(online.variances().is_some());
    }

    #[test]
    fn staleness_counts_down_to_flush() {
        let w = 6;
        let mut cov = StreamingCovariance::new(
            3,
            vec![(0, 0), (1, 1), (2, 2), (0, 1)],
            WindowMode::Sliding(w),
        );
        for k in 0..10 {
            cov.ingest(&[k as f64, 1.0, 2.0]);
        }
        assert!(cov.is_churn_free());
        assert_eq!(cov.staleness().snapshots_until_flush, Some(0));
        // Restart pair 3 and pair 1 (identity carry elsewhere).
        let id_map: Vec<Option<PathId>> = (0..3).map(|i| Some(PathId(i))).collect();
        let carry = vec![Some(0), None, Some(2), None];
        cov.apply_churn(3, vec![(0, 0), (1, 1), (2, 2), (0, 1)], &carry, &id_map);
        assert!(!cov.is_churn_free());
        let st = cov.staleness();
        assert_eq!(st.stale_rows, w);
        assert_eq!(st.snapshots_until_flush, Some(w as u64));
        assert_eq!(st.warming_pairs, 2);
        let mut last = w as u64;
        for k in 0..w {
            cov.ingest(&[k as f64 * 0.5, 3.0, 1.0]);
            let st = cov.staleness();
            let now = st.snapshots_until_flush.expect("sliding flushes");
            assert_eq!(now, last - 1);
            last = now;
        }
        assert!(cov.is_churn_free());
        assert!(cov.staleness().is_flushed());
        assert_eq!(cov.staleness().warming_pairs, 0);
    }

    #[test]
    fn grouped_replay_matches_per_pair_manual_replay() {
        let w = 8;
        let mut cov =
            StreamingCovariance::new(2, vec![(0, 0), (1, 1), (0, 1)], WindowMode::Sliding(w));
        let mut rng_rows: Vec<[f64; 2]> = Vec::new();
        for k in 0..6 {
            let r = [(k * 7 % 5) as f64 * 0.3, (k * 3 % 4) as f64 * 0.7];
            rng_rows.push(r);
            cov.ingest(&r);
        }
        let id_map = vec![Some(PathId(0)), Some(PathId(1))];
        // Restart the cross pair only.
        cov.apply_churn(2, vec![(0, 0), (1, 1), (0, 1)], &[Some(0), Some(1), None], &id_map);
        for k in 0..3 {
            let r = [k as f64 * 0.9, (3 - k) as f64 * 0.2];
            rng_rows.push(r);
            cov.ingest(&r);
        }
        let got = cov.exact_covariances();
        // Carried pairs replay the full window; the restarted pair
        // replays only its post-churn suffix.
        let window: Vec<&[f64]> = rng_rows[rng_rows.len() - cov.len()..]
            .iter()
            .map(|r| r.as_slice())
            .collect();
        let full = CenteredMeasurements::from_row_refs(&window).pair_covariances(&[(0, 0), (1, 1)]);
        assert_eq!(got[0], full[0]);
        assert_eq!(got[1], full[1]);
        let suffix: Vec<&[f64]> = rng_rows[rng_rows.len() - 3..]
            .iter()
            .map(|r| r.as_slice())
            .collect();
        let cross = CenteredMeasurements::from_row_refs(&suffix).pair_covariances(&[(0, 1)]);
        assert_eq!(got[2], cross[0]);
    }

    #[test]
    fn invalid_delta_leaves_estimator_untouched() {
        let red = fig1();
        let ms = simulate(&red, 10, 41);
        let mut online = OnlineEstimator::new(&red, OnlineConfig::default());
        for s in &ms.snapshots {
            online.ingest(s).unwrap();
        }
        let before = online.variances().unwrap().v.clone();
        let err = online
            .apply_delta(&TopologyDelta::new().remove_path(PathId(99)))
            .unwrap_err();
        assert!(matches!(err, ChurnError::PathOutOfRange { .. }));
        assert_eq!(online.variances().unwrap().v, before);
        assert_eq!(online.topology().num_paths(), red.num_paths());
        assert!(online.covariance().is_churn_free());
    }
}
