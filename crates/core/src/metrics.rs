//! Evaluation metrics from Section 6.
//!
//! * **DR** (detection rate): `|F ∩ X| / |F|` — fraction of truly
//!   congested links diagnosed congested.
//! * **FPR** (false positive rate): `|X \ F| / |X|` — fraction of
//!   diagnosed links that are actually good.
//! * **Error factor** `f_δ(q, q*) = max{q(δ)/q*(δ), q*(δ)/q(δ)}` with
//!   `q(δ) = max(δ, q)` (eq. (10), from Bu et al.), default `δ = 10⁻³`.
//! * **Absolute error** `|q − q*|`.
//! * CDF helpers for Figure 6, and max/median/min summaries for Table 2.

use serde::{Deserialize, Serialize};

/// Default error-factor margin `δ` (the paper's value).
pub const DEFAULT_DELTA: f64 = 1e-3;

/// Congested-link location accuracy (Figure 5, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationAccuracy {
    /// Detection rate `|F ∩ X| / |F|`; 1.0 when nothing is congested.
    pub detection_rate: f64,
    /// False positive rate `|X \ F| / |X|`; 0.0 when nothing is flagged.
    pub false_positive_rate: f64,
    /// Number of truly congested links `|F|`.
    pub actual_congested: usize,
    /// Number of links diagnosed congested `|X|`.
    pub diagnosed_congested: usize,
}

/// Computes DR and FPR from boolean truth/diagnosis vectors.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn location_accuracy(truth: &[bool], diagnosed: &[bool]) -> LocationAccuracy {
    assert_eq!(truth.len(), diagnosed.len(), "length mismatch");
    let f: usize = truth.iter().filter(|&&t| t).count();
    let x: usize = diagnosed.iter().filter(|&&d| d).count();
    let hit: usize = truth
        .iter()
        .zip(diagnosed.iter())
        .filter(|(&t, &d)| t && d)
        .count();
    let false_pos = x - hit;
    LocationAccuracy {
        detection_rate: if f == 0 { 1.0 } else { hit as f64 / f as f64 },
        false_positive_rate: if x == 0 {
            0.0
        } else {
            false_pos as f64 / x as f64
        },
        actual_congested: f,
        diagnosed_congested: x,
    }
}

/// The error factor `f_δ(q, q*)` of eq. (10).
pub fn error_factor(q_true: f64, q_est: f64, delta: f64) -> f64 {
    let q = q_true.max(delta);
    let qs = q_est.max(delta);
    (q / qs).max(qs / q)
}

/// Absolute error `|q − q*|`.
pub fn absolute_error(q_true: f64, q_est: f64) -> f64 {
    (q_true - q_est).abs()
}

/// Per-link error report for one snapshot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateErrors {
    /// Error factors, one per link.
    pub error_factors: Vec<f64>,
    /// Absolute errors, one per link.
    pub absolute_errors: Vec<f64>,
}

impl RateErrors {
    /// Compares inferred loss rates against true loss rates.
    pub fn compare(true_loss: &[f64], est_loss: &[f64], delta: f64) -> Self {
        assert_eq!(true_loss.len(), est_loss.len(), "length mismatch");
        let error_factors = true_loss
            .iter()
            .zip(est_loss.iter())
            .map(|(&t, &e)| error_factor(t, e, delta))
            .collect();
        let absolute_errors = true_loss
            .iter()
            .zip(est_loss.iter())
            .map(|(&t, &e)| absolute_error(t, e))
            .collect();
        RateErrors {
            error_factors,
            absolute_errors,
        }
    }

    /// Merges another report into this one (multi-run aggregation).
    pub fn extend(&mut self, other: &RateErrors) {
        self.error_factors.extend_from_slice(&other.error_factors);
        self.absolute_errors
            .extend_from_slice(&other.absolute_errors);
    }
}

/// Max / median / min summary (Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Largest value.
    pub max: f64,
    /// Median value.
    pub median: f64,
    /// Smallest value.
    pub min: f64,
}

/// Summarises a sample; returns `None` for an empty slice.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    Some(Summary {
        max: sorted[n - 1],
        median,
        min: sorted[0],
    })
}

/// Empirical CDF: returns `(sorted values, cumulative probabilities)`
/// suitable for plotting Figure 6.
pub fn empirical_cdf(values: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let probs = (1..=sorted.len()).map(|i| i as f64 / n).collect();
    (sorted, probs)
}

/// Fraction of values ≤ `x` (a point query on the empirical CDF).
pub fn cdf_at(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr_fpr_basic() {
        let truth = [true, true, false, false];
        let diag = [true, false, true, false];
        let acc = location_accuracy(&truth, &diag);
        assert_eq!(acc.detection_rate, 0.5);
        assert_eq!(acc.false_positive_rate, 0.5);
        assert_eq!(acc.actual_congested, 2);
        assert_eq!(acc.diagnosed_congested, 2);
    }

    #[test]
    fn dr_fpr_edge_cases() {
        let acc = location_accuracy(&[false, false], &[false, false]);
        assert_eq!(acc.detection_rate, 1.0);
        assert_eq!(acc.false_positive_rate, 0.0);
        let perfect = location_accuracy(&[true, false], &[true, false]);
        assert_eq!(perfect.detection_rate, 1.0);
        assert_eq!(perfect.false_positive_rate, 0.0);
    }

    #[test]
    fn error_factor_symmetric_and_floored() {
        assert_eq!(error_factor(0.1, 0.1, DEFAULT_DELTA), 1.0);
        let up = error_factor(0.2, 0.1, DEFAULT_DELTA);
        let down = error_factor(0.1, 0.2, DEFAULT_DELTA);
        assert_eq!(up, down);
        assert_eq!(up, 2.0);
        // Both below δ → treated as δ/δ = 1.
        assert_eq!(error_factor(0.0, 1e-9, DEFAULT_DELTA), 1.0);
    }

    #[test]
    fn rate_errors_compare() {
        let errs = RateErrors::compare(&[0.1, 0.0], &[0.05, 0.0], DEFAULT_DELTA);
        assert_eq!(errs.error_factors, vec![2.0, 1.0]);
        assert!((errs.absolute_errors[0] - 0.05).abs() < 1e-12);
        assert_eq!(errs.absolute_errors[1], 0.0);
    }

    #[test]
    fn summary_odd_and_even() {
        let s = summarize(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!((s.min, s.median, s.max), (1.0, 2.0, 3.0));
        let s = summarize(&[4.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn cdf_monotone() {
        let (xs, ps) = empirical_cdf(&[0.3, 0.1, 0.2]);
        assert_eq!(xs, vec![0.1, 0.2, 0.3]);
        assert_eq!(ps, vec![1.0 / 3.0, 2.0 / 3.0, 1.0]);
        assert_eq!(cdf_at(&[0.3, 0.1, 0.2], 0.15), 1.0 / 3.0);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    fn rate_errors_extend() {
        let mut a = RateErrors::compare(&[0.1], &[0.1], DEFAULT_DELTA);
        let b = RateErrors::compare(&[0.2], &[0.1], DEFAULT_DELTA);
        a.extend(&b);
        assert_eq!(a.error_factors.len(), 2);
    }
}
