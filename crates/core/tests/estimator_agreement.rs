//! Cross-estimator agreement: the zoo's backends as oracles for each
//! other.
//!
//! Three independent implementations of "which links are lossy" give
//! three chances to catch a regression no single-estimator test can
//! see:
//!
//! * **(a)** Zhu's closed-form MLE is *exact* on trees — fed exact
//!   covariances it must return the true per-link variances to 1e-10,
//!   over randomly generated tree topologies;
//! * **(b)** at the paper's loss separation (congested ≥ 5 % loss,
//!   good ≤ 0.2 %), every variance-based backend (LIA, Zhu, Deng) must
//!   flag every truly congested link — their congested sets agree on
//!   the truth even where their variance estimates differ;
//! * **(c)** the LIA backend is the pre-refactor
//!   `estimate_variances` + `infer_link_rates` pipeline *bit-for-bit*:
//!   the trait added dispatch, not arithmetic.

use losstomo_core::budget::PairBudget;
use losstomo_core::estimator::{
    closed_form_variances, DengFastEstimator, LiaEstimator, LossEstimator, ZhuMleEstimator,
};
use losstomo_core::lia::{infer_link_rates, LiaConfig};
use losstomo_core::variance::{estimate_variances, VarianceConfig};
use losstomo_core::{AugmentedSystem, CenteredMeasurements};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
    DEFAULT_LOSS_THRESHOLD,
};
use losstomo_topology::gen::tree::{self, TreeParams};
use losstomo_topology::{compute_paths, reduce, ReducedTopology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tree(nodes: usize, branching: usize, seed: u64) -> ReducedTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = tree::generate(
        TreeParams {
            nodes,
            max_branching: branching,
        },
        &mut rng,
    );
    let paths = compute_paths(&t.graph, &t.beacons, &t.destinations);
    reduce(&t.graph, &paths)
}

/// Simulates `m + 1` snapshots and returns (centred training set,
/// evaluation log rates, truth congested flags).
fn simulate(
    red: &ReducedTopology,
    p_congested: f64,
    m: usize,
    seed: u64,
) -> (CenteredMeasurements, Vec<f64>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scenario = CongestionScenario::draw(
        red.num_links(),
        p_congested,
        CongestionDynamics::Fixed,
        &mut rng,
    );
    let ms = simulate_run(red, &mut scenario, &ProbeConfig::default(), m + 1, &mut rng);
    let train = MeasurementSet {
        snapshots: ms.snapshots[..m].to_vec(),
    };
    let eval = &ms.snapshots[m];
    (
        CenteredMeasurements::new(&train),
        eval.log_rates(),
        eval.link_truth.iter().map(|t| t.congested).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) Zhu's closed form is the analytic solution on trees: exact
    /// covariances in, true variances out, to 1e-10.
    #[test]
    fn zhu_closed_form_is_exact_on_random_trees(
        nodes in 20usize..120,
        branching in 2usize..6,
        topo_seed in 0u64..10_000,
        var_seed in 0u64..10_000,
    ) {
        let red = random_tree(nodes, branching, topo_seed);
        let aug = AugmentedSystem::build(&red);
        let mut vrng = StdRng::seed_from_u64(var_seed);
        let v_true: Vec<f64> = (0..red.num_links())
            .map(|_| vrng.gen_range(1e-6..1e-2))
            .collect();
        let sigmas: Vec<f64> = (0..aug.num_rows())
            .map(|r| aug.row(r).iter().map(|&k| v_true[k]).sum())
            .collect();
        let v = closed_form_variances(&red, &aug, &sigmas).unwrap();
        for (k, (a, b)) in v.iter().zip(&v_true).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-10,
                "link {k}: closed form {a:.12e} vs truth {b:.12e} ({nodes} nodes)"
            );
        }
    }

    /// (b) At the paper's loss separation every variance-based backend
    /// flags every truly congested link.
    #[test]
    fn backends_agree_on_truly_congested_links(
        nodes in 40usize..90,
        sim_seed in 0u64..10_000,
    ) {
        let red = random_tree(nodes, 4, sim_seed.wrapping_mul(31).wrapping_add(7));
        let (centered, y, truth) = simulate(&red, 0.08, 50, sim_seed);
        prop_assume!(truth.iter().any(|&c| c)); // need something to detect
        let lia_cfg = LiaConfig::default();
        let backends: [Box<dyn LossEstimator>; 3] = [
            Box::new(LiaEstimator {
                lia: lia_cfg,
                variance: VarianceConfig::default(),
                pair_budget: PairBudget::Full,
            }),
            Box::new(ZhuMleEstimator { lia: lia_cfg }),
            Box::new(DengFastEstimator { lia: lia_cfg }),
        ];
        for backend in &backends {
            let out = backend.estimate(&red, &centered, &y).unwrap();
            let flagged = out.congested_links(DEFAULT_LOSS_THRESHOLD);
            for (k, &congested) in truth.iter().enumerate() {
                prop_assert!(
                    !congested || flagged.contains(&k),
                    "{} missed congested link {k} ({} nodes, seed {sim_seed})",
                    backend.name(),
                    nodes
                );
            }
        }
    }

    /// (c) The LIA backend is bit-identical to the pre-refactor
    /// pipeline on random trees and seeds.
    #[test]
    fn lia_backend_bit_identical_to_pre_refactor_path(
        nodes in 30usize..100,
        m in 10usize..30,
        sim_seed in 0u64..10_000,
    ) {
        let red = random_tree(nodes, 5, sim_seed.wrapping_add(101));
        let (centered, y, _) = simulate(&red, 0.1, m, sim_seed);
        let backend = LiaEstimator {
            lia: LiaConfig::default(),
            variance: VarianceConfig::default(),
            pair_budget: PairBudget::Full,
        };
        let out = backend.estimate(&red, &centered, &y).unwrap();

        // The historical path, spelled out.
        let aug = AugmentedSystem::build(&red);
        let var_est =
            estimate_variances(&red, &aug, &centered, &VarianceConfig::default()).unwrap();
        let manual = infer_link_rates(&red, &var_est.v, &y, &LiaConfig::default()).unwrap();

        prop_assert_eq!(&out.estimate.kept, &manual.kept);
        prop_assert_eq!(out.estimate.kept_count, manual.kept_count);
        for (a, b) in out.estimate.transmission.iter().zip(&manual.transmission) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in out.diagnostics.variances.iter().zip(&var_est.v) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(out.diagnostics.dropped_rows, var_est.dropped_rows);
        prop_assert_eq!(out.diagnostics.rows_used, var_est.used_rows);
    }
}

/// Deterministic pin of (b): on a fixed seed the three variance-based
/// backends flag supersets of the truth, and LIA's and Zhu's sets match
/// exactly (they share Phase 2 and their Phase-1 orders coincide on a
/// well-separated tree).
#[test]
fn fixed_seed_congested_sets_pinned() {
    let red = random_tree(60, 4, 2024);
    let (centered, y, truth) = simulate(&red, 0.08, 50, 3);
    let truth_set: Vec<usize> = truth
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(k, _)| k)
        .collect();
    assert!(!truth_set.is_empty());
    let lia_cfg = LiaConfig::default();
    let lia = LiaEstimator {
        lia: lia_cfg,
        variance: VarianceConfig::default(),
        pair_budget: PairBudget::Full,
    }
    .estimate(&red, &centered, &y)
    .unwrap()
    .congested_links(DEFAULT_LOSS_THRESHOLD);
    let zhu = ZhuMleEstimator { lia: lia_cfg }
        .estimate(&red, &centered, &y)
        .unwrap()
        .congested_links(DEFAULT_LOSS_THRESHOLD);
    let deng = DengFastEstimator { lia: lia_cfg }
        .estimate(&red, &centered, &y)
        .unwrap()
        .congested_links(DEFAULT_LOSS_THRESHOLD);
    for set in [&lia, &zhu, &deng] {
        for k in &truth_set {
            assert!(set.contains(k), "missed truly congested link {k}");
        }
    }
    assert_eq!(lia, zhu, "LIA and Zhu diverged on the pinned seed");
}

