//! Property-based tests for the evaluation metrics.

use losstomo_core::metrics::{
    absolute_error, cdf_at, empirical_cdf, error_factor, location_accuracy, summarize,
};
use proptest::prelude::*;

proptest! {
    /// The error factor is ≥ 1, symmetric in its arguments, and equals
    /// 1 when both rates sit below δ.
    #[test]
    fn error_factor_properties(q in 0.0f64..1.0, e in 0.0f64..1.0, delta in 1e-6f64..0.1) {
        let f = error_factor(q, e, delta);
        prop_assert!(f >= 1.0);
        prop_assert!((f - error_factor(e, q, delta)).abs() < 1e-12);
        let tiny = error_factor(delta / 2.0, delta / 3.0, delta);
        prop_assert_eq!(tiny, 1.0);
    }

    /// The absolute error is a metric restricted to pairs: symmetric,
    /// zero iff equal, triangle inequality.
    #[test]
    fn absolute_error_is_metric(a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0) {
        prop_assert_eq!(absolute_error(a, b), absolute_error(b, a));
        prop_assert_eq!(absolute_error(a, a), 0.0);
        prop_assert!(absolute_error(a, c) <= absolute_error(a, b) + absolute_error(b, c) + 1e-12);
    }

    /// DR and FPR always land in [0, 1], and perfect diagnosis gives
    /// (1, 0).
    #[test]
    fn location_accuracy_bounds(truth in proptest::collection::vec(any::<bool>(), 1..64),
                                flips in proptest::collection::vec(any::<bool>(), 1..64)) {
        let diagnosed: Vec<bool> = truth
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&t, &f)| t ^ f)
            .collect();
        let acc = location_accuracy(&truth, &diagnosed);
        prop_assert!((0.0..=1.0).contains(&acc.detection_rate));
        prop_assert!((0.0..=1.0).contains(&acc.false_positive_rate));
        let perfect = location_accuracy(&truth, &truth);
        prop_assert_eq!(perfect.detection_rate, 1.0);
        prop_assert_eq!(perfect.false_positive_rate, 0.0);
    }

    /// The empirical CDF is monotone, ends at 1, and agrees with the
    /// point query.
    #[test]
    fn cdf_properties(values in proptest::collection::vec(0.0f64..10.0, 1..100)) {
        let (xs, ps) = empirical_cdf(&values);
        prop_assert_eq!(xs.len(), values.len());
        prop_assert!(ps.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!((ps.last().unwrap() - 1.0).abs() < 1e-12);
        for (x, p) in xs.iter().zip(ps.iter()) {
            prop_assert!((cdf_at(&values, *x) - p).abs() < 1e-9);
        }
    }

    /// Summaries respect ordering: min ≤ median ≤ max, all drawn from
    /// the sample's range.
    #[test]
    fn summary_ordering(values in proptest::collection::vec(-5.0f64..5.0, 1..100)) {
        let s = summarize(&values).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
    }
}
