//! Property-based tests for the streaming covariance accumulator.
//!
//! The central contracts:
//!
//! * after `n` ingests with an unbounded window, the exact replay is
//!   **bit-identical** to the batch
//!   `CenteredMeasurements::pair_covariances` over the same rows;
//! * with a sliding window, the exact replay is bit-identical to a
//!   batch recompute over exactly the retained window;
//! * the Welford running estimates track the exact values within
//!   floating-point tolerance, including after many evictions.

use losstomo_core::streaming::{StreamingCovariance, WindowMode};
use losstomo_core::CenteredMeasurements;
use proptest::prelude::*;

/// Random snapshot rows: `m × n` log-rate-like values in [-8, 0].
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..12, 1usize..8).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            proptest::collection::vec(-8.0f64..0.0, n..=n),
            m..=m,
        )
    })
}

/// Every ordered pair (i ≤ j) over `n` paths — a superset of what any
/// augmented system requests.
fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n).flat_map(|i| (i..n).map(move |j| (i, j))).collect()
}

proptest! {
    /// Unbounded streaming replay ≡ batch, bit for bit.
    #[test]
    fn streaming_matches_batch_bitwise(rows in rows_strategy()) {
        let n = rows[0].len();
        let pairs = all_pairs(n);
        let mut sc = StreamingCovariance::new(n, pairs.clone(), WindowMode::Unbounded);
        for row in &rows {
            sc.ingest(row);
        }
        let batch = CenteredMeasurements::from_rows(rows).pair_covariances(&pairs);
        prop_assert_eq!(sc.exact_covariances(), batch);
    }

    /// Sliding-window streaming replay ≡ batch over the window, bit for
    /// bit, at every prefix length.
    #[test]
    fn windowed_streaming_matches_batch_over_window(
        rows in rows_strategy(),
        w in 2usize..6,
    ) {
        let n = rows[0].len();
        let pairs = all_pairs(n);
        let mut sc = StreamingCovariance::new(n, pairs.clone(), WindowMode::Sliding(w));
        for (t, row) in rows.iter().enumerate() {
            sc.ingest(row);
            let start = (t + 1).saturating_sub(w);
            let window = rows[start..=t].to_vec();
            prop_assert_eq!(sc.len(), window.len());
            if window.len() >= 2 {
                let batch = CenteredMeasurements::from_rows(window).pair_covariances(&pairs);
                prop_assert_eq!(sc.exact_covariances(), batch);
            }
        }
    }

    /// Welford running co-moments track the exact covariances within
    /// tolerance — unbounded and after sliding-window downdates.
    #[test]
    fn welford_tracks_exact_within_tolerance(
        rows in rows_strategy(),
        w in 3usize..8,
    ) {
        let n = rows[0].len();
        let pairs = all_pairs(n);
        for mode in [WindowMode::Unbounded, WindowMode::Sliding(w)] {
            let mut sc = StreamingCovariance::new(n, pairs.clone(), mode);
            for row in &rows {
                sc.ingest(row);
            }
            if sc.len() >= 2 {
                let exact = sc.exact_covariances();
                for (wv, e) in sc.covariances().iter().zip(exact.iter()) {
                    prop_assert!(
                        (wv - e).abs() < 1e-8,
                        "welford {} vs exact {} under {:?}", wv, e, mode
                    );
                }
            }
        }
    }
}
