//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a dedicated binary in
//! `src/bin/` (see the README's experiment binary reference); this
//! library holds the pieces they share: named topology builders at
//! paper or reduced scale, a tiny CLI-flag parser, and
//! table-formatting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use losstomo_core::experiment::average_location;
use losstomo_core::{run_many, ExperimentConfig, ExperimentResult, LocationAccuracy};
use losstomo_topology::gen::{
    barabasi::{self, BarabasiParams},
    dimes::{self, DimesParams},
    hierarchical::{self, HierMode, HierParams},
    planetlab::{self, PlanetLabParams},
    tree::{self, TreeParams},
    waxman::{self, WaxmanParams},
    GeneratedTopology,
};
use losstomo_topology::{compute_paths, flutter, reduce, ReducedTopology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How large to build the simulated topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (1000-node meshes, 1000-node trees).
    Paper,
    /// Reduced sizes for quick runs and CI.
    Quick,
}

impl Scale {
    /// Parses `--scale paper|quick` from the CLI (default paper).
    pub fn from_args() -> Scale {
        match flag_value("--scale").as_deref() {
            Some("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    /// The name recorded in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// The common envelope every `BENCH_*.json` report embeds as its
/// `meta` field — one schema for all perf binaries instead of the
/// per-binary ad-hoc headers they used to emit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Version of the *envelope*; per-binary payloads carry their own
    /// fields next to `meta`.
    pub schema_version: u64,
    /// The binary that produced the report.
    pub generated_by: String,
    /// `paper` or `quick`.
    pub scale: String,
}

/// Builds the standard report envelope for a perf binary.
pub fn bench_meta(generated_by: &str, scale: Scale) -> BenchMeta {
    BenchMeta {
        schema_version: 2,
        generated_by: generated_by.to_string(),
        scale: scale.name().to_string(),
    }
}

/// Serialises `report` as pretty JSON and writes it to `--out PATH`
/// (if given), else `$LOSSTOMO_BENCH_OUT/<default_name>` (if the
/// env var names an output directory — how CI and local sweeps keep
/// their artifacts away from the checked-in reports), else
/// `<repo root>/<default_name>` — the one place that knows where
/// benchmark artifacts land. Prints the written path.
pub fn write_bench_report<T: Serialize>(default_name: &str, report: &T) {
    let out_path = flag_value("--out")
        .or_else(|| {
            std::env::var("LOSSTOMO_BENCH_OUT")
                .ok()
                .filter(|dir| !dir.is_empty())
                .map(|dir| format!("{}/{default_name}", dir.trim_end_matches('/')))
        })
        .unwrap_or_else(|| {
            // Two levels above this crate's manifest = the repo root, so
            // the file lands in the same place from any working directory.
            format!("{}/../../{default_name}", env!("CARGO_MANIFEST_DIR"))
        });
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create benchmark output directory");
        }
    }
    std::fs::write(&out_path, json + "\n").expect("write benchmark report");
    println!("wrote {out_path}");
}

/// One cell of an experiment grid: a row label plus the experiment
/// configuration to average over the seed sweep.
#[derive(Debug, Clone)]
pub struct GridCase {
    /// Row label shown in the printed table.
    pub label: String,
    /// The configuration of this cell (its `seed` is the sweep base:
    /// [`run_many`] runs seeds `seed..seed + runs`).
    pub cfg: ExperimentConfig,
}

impl GridCase {
    /// Builds a cell from any displayable label.
    pub fn new(label: impl Into<String>, cfg: ExperimentConfig) -> Self {
        GridCase {
            label: label.into(),
            cfg,
        }
    }
}

/// Aggregated outcome of one grid cell across its seed sweep.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// The cell's label.
    pub label: String,
    /// Mean detection rate over the successful runs.
    pub mean_dr: f64,
    /// Mean false-positive rate over the successful runs.
    pub mean_fpr: f64,
    /// Every successful run, for bins that derive extra columns.
    pub results: Vec<ExperimentResult>,
    /// Runs that failed (singular systems etc.) and were skipped.
    pub failed: usize,
}

impl GridOutcome {
    /// Mean of `f` over the runs that carry the metric (`None`s — e.g.
    /// a baseline only some configurations request — do not dilute the
    /// mean). 0 when no run carries it (check [`GridOutcome::failed`]).
    pub fn mean_of(&self, f: impl Fn(&ExperimentResult) -> Option<f64>) -> f64 {
        let (mut sum, mut count) = (0.0, 0u32);
        for v in self.results.iter().filter_map(&f) {
            sum += v;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / f64::from(count)
        }
    }
}

/// Runs the `runs`-seed sweep and returns the averaged location
/// accuracy — the one-cell shortcut for binaries that only need DR/FPR
/// (failed runs are dropped from the average, as in [`run_grid`]).
pub fn run_many_location(
    red: &losstomo_topology::ReducedTopology,
    cfg: &ExperimentConfig,
    runs: usize,
) -> LocationAccuracy {
    average_location(&run_many(red, cfg, runs))
}

/// Runs a config grid over one topology: each case is averaged over
/// `runs` seeds via [`run_many`] (parallel, seed-ordered), failures are
/// counted, and DR/FPR means are precomputed — the seed-sweep ×
/// config-grid loop every table-style experiment binary used to
/// hand-roll.
pub fn run_grid(
    red: &losstomo_topology::ReducedTopology,
    cases: Vec<GridCase>,
    runs: usize,
) -> Vec<GridOutcome> {
    cases
        .into_iter()
        .map(|case| {
            let results = run_many(red, &case.cfg, runs);
            let mut ok = Vec::new();
            let mut failed = 0usize;
            for r in results {
                match r {
                    Ok(r) => ok.push(r),
                    Err(_) => failed += 1,
                }
            }
            // All-failed cells report 0 (not NaN); the failure count
            // is surfaced by `print_grid_dr_fpr` and `failed`.
            let (mean_dr, mean_fpr) = if ok.is_empty() {
                (0.0, 0.0)
            } else {
                let n = ok.len() as f64;
                (
                    ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n,
                    ok.iter()
                        .map(|r| r.location.false_positive_rate)
                        .sum::<f64>()
                        / n,
                )
            };
            GridOutcome {
                label: case.label,
                mean_dr,
                mean_fpr,
                results: ok,
                failed,
            }
        })
        .collect()
}

/// Aggregated outcome of one cell of a *metric* grid (see
/// [`run_grid_metric`]): a scalar per successful seed instead of a full
/// [`ExperimentResult`].
#[derive(Debug, Clone)]
pub struct MetricOutcome {
    /// The cell's label.
    pub label: String,
    /// Mean metric over the successful runs (0 when all runs failed —
    /// check [`MetricOutcome::failed`]).
    pub mean: f64,
    /// Every successful run's metric, in seed order.
    pub values: Vec<f64>,
    /// Runs that failed and were skipped.
    pub failed: usize,
}

/// [`run_grid`] for binaries whose per-seed measurement is *not*
/// [`losstomo_core::run_experiment`] — cross-validation rounds, churn
/// replays, anything that reduces one seeded run to a scalar. Each
/// cell's `runner` is called with seeds `cfg.seed .. cfg.seed + runs`
/// (in parallel across [`losstomo_core::parallel::num_threads`]
/// workers, results in seed order), failures are counted per cell, and
/// the per-cell mean is precomputed.
pub fn run_grid_metric<F>(cases: Vec<GridCase>, runs: usize, runner: F) -> Vec<MetricOutcome>
where
    F: Fn(&ExperimentConfig) -> Result<f64, losstomo_linalg::LinalgError> + Sync,
{
    cases
        .into_iter()
        .map(|case| {
            let n_threads = losstomo_core::parallel::num_threads().min(runs.max(1));
            let slots: std::sync::Mutex<Vec<Option<Result<f64, losstomo_linalg::LinalgError>>>> =
                std::sync::Mutex::new((0..runs).map(|_| None).collect());
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..n_threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        let mut run_cfg = case.cfg;
                        run_cfg.seed = case.cfg.seed + i as u64;
                        let r = runner(&run_cfg);
                        slots.lock().expect("slot lock")[i] = Some(r);
                    });
                }
            });
            let mut values = Vec::with_capacity(runs);
            let mut failed = 0usize;
            for r in slots
                .into_inner()
                .expect("slot lock")
                .into_iter()
                .map(|s| s.expect("worker filled slot"))
            {
                match r {
                    Ok(v) => values.push(v),
                    Err(_) => failed += 1,
                }
            }
            let mean = if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            MetricOutcome {
                label: case.label,
                mean,
                values,
                failed,
            }
        })
        .collect()
}

/// Prints the standard `label | DR | FPR` table for a grid's outcomes
/// (label column sized to the widest label).
pub fn print_grid_dr_fpr(label_header: &str, outcomes: &[GridOutcome]) {
    let width = outcomes
        .iter()
        .map(|o| o.label.len())
        .chain([label_header.len()])
        .max()
        .unwrap_or(8);
    let header = format!("{label_header:<width$} {:>8} {:>8}", "DR", "FPR");
    println!("{header}");
    rule(&header);
    for o in outcomes {
        if o.results.is_empty() {
            println!("{:<width$} (all {} runs failed)", o.label, o.failed);
            continue;
        }
        println!(
            "{:<width$} {:>8} {:>8}",
            o.label,
            pct(o.mean_dr),
            pct(o.mean_fpr)
        );
    }
}

/// A prepared topology: generator output plus the reduced routing
/// matrix, with fluttering paths already removed (Assumption T.2).
pub struct PreparedTopology {
    /// Short name used in table rows (e.g. "Waxman").
    pub name: &'static str,
    /// The generated graph and endpoint sets.
    pub topo: GeneratedTopology,
    /// The reduced measurement system.
    pub red: ReducedTopology,
    /// Paths removed by flutter filtering.
    pub removed_fluttering: usize,
}

/// Builds a named topology, routes all beacon→destination paths,
/// removes fluttering pairs and reduces to the routing matrix.
pub fn prepare(name: &'static str, topo: GeneratedTopology) -> PreparedTopology {
    let mut paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let removed = flutter::remove_fluttering_paths(&mut paths);
    let red = reduce(&topo.graph, &paths);
    PreparedTopology {
        name,
        topo,
        red,
        removed_fluttering: removed.len(),
    }
}

/// The Section-6.1 tree (1000 nodes, branching ≤ 10 at paper scale).
pub fn tree_topology(scale: Scale, seed: u64) -> PreparedTopology {
    let params = match scale {
        Scale::Paper => TreeParams::default(),
        Scale::Quick => TreeParams {
            nodes: 200,
            max_branching: 8,
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("Tree", tree::generate(params, &mut rng))
}

/// BRITE-like Waxman mesh (Table 2 row 2).
pub fn waxman_topology(scale: Scale, seed: u64) -> PreparedTopology {
    let params = match scale {
        Scale::Paper => WaxmanParams::default(),
        Scale::Quick => WaxmanParams {
            nodes: 150,
            hosts: 16,
            ..WaxmanParams::default()
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("Waxman", waxman::generate(params, &mut rng))
}

/// BRITE-like Waxman mesh at an explicit node count — the
/// `scale_phase2` scenario pushing past the paper's 1000-node meshes
/// (5k–10k nodes; the reduced system grows to several thousand virtual
/// links, where the sparse Phase-2 path is the only practical one).
pub fn waxman_scale_topology(nodes: usize, hosts: usize, seed: u64) -> PreparedTopology {
    let params = WaxmanParams {
        nodes,
        hosts,
        ..WaxmanParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("Waxman-scale", waxman::generate(params, &mut rng))
}

/// BRITE-like Barabási–Albert mesh at an explicit node count (the
/// alternative `scale_phase2` scenario family).
pub fn barabasi_scale_topology(nodes: usize, hosts: usize, seed: u64) -> PreparedTopology {
    let params = BarabasiParams {
        nodes,
        hosts,
        ..BarabasiParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("Barabasi-scale", barabasi::generate(params, &mut rng))
}

/// BRITE-like Barabási–Albert mesh (Table 2 row 1).
pub fn barabasi_topology(scale: Scale, seed: u64) -> PreparedTopology {
    let params = match scale {
        Scale::Paper => BarabasiParams::default(),
        Scale::Quick => BarabasiParams {
            nodes: 150,
            hosts: 16,
            ..BarabasiParams::default()
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("Barabasi-Albert", barabasi::generate(params, &mut rng))
}

/// BRITE-like hierarchical top-down mesh (Table 2 row 3).
pub fn hierarchical_td_topology(scale: Scale, seed: u64) -> PreparedTopology {
    let params = match scale {
        Scale::Paper => HierParams::default(),
        Scale::Quick => HierParams {
            as_count: 6,
            routers_per_as: 20,
            hosts: 16,
            mode: HierMode::TopDown,
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("Hierarchical (Top-Down)", hierarchical::generate(params, &mut rng))
}

/// BRITE-like hierarchical bottom-up mesh (Table 2 row 4).
pub fn hierarchical_bu_topology(scale: Scale, seed: u64) -> PreparedTopology {
    let params = match scale {
        Scale::Paper => HierParams {
            mode: HierMode::BottomUp,
            ..HierParams::default()
        },
        Scale::Quick => HierParams {
            as_count: 6,
            routers_per_as: 20,
            hosts: 16,
            mode: HierMode::BottomUp,
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("Hierarchical (Bottom-Up)", hierarchical::generate(params, &mut rng))
}

/// Synthetic PlanetLab-like mesh (Table 2 row 5, Sections 6.3 and 7).
pub fn planetlab_topology(scale: Scale, seed: u64) -> PreparedTopology {
    let params = match scale {
        Scale::Paper => PlanetLabParams {
            sites: 60,
            core_routers: 15,
            ..PlanetLabParams::default()
        },
        Scale::Quick => PlanetLabParams {
            sites: 16,
            core_routers: 6,
            ..PlanetLabParams::default()
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("PlanetLab", planetlab::generate(params, &mut rng))
}

/// Synthetic DIMES-like mesh (Table 2 row 6).
pub fn dimes_topology(scale: Scale, seed: u64) -> PreparedTopology {
    let params = match scale {
        Scale::Paper => DimesParams {
            as_count: 120,
            hosts: 60,
            ..DimesParams::default()
        },
        Scale::Quick => DimesParams {
            as_count: 30,
            hosts: 16,
            ..DimesParams::default()
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    prepare("DIMES", dimes::generate(params, &mut rng))
}

/// All six Table-2 topologies.
pub fn table2_topologies(scale: Scale, seed: u64) -> Vec<PreparedTopology> {
    vec![
        barabasi_topology(scale, seed),
        waxman_topology(scale, seed + 1),
        hierarchical_td_topology(scale, seed + 2),
        hierarchical_bu_topology(scale, seed + 3),
        planetlab_topology(scale, seed + 4),
        dimes_topology(scale, seed + 5),
    ]
}

/// The default experiment configuration of Section 6 (`p = 10 %`,
/// `m = 50`, `S = 1000`, LLRD1, Gilbert).
pub fn paper_experiment_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        ..ExperimentConfig::default()
    }
}

/// Returns the value following a `--flag` CLI argument.
pub fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses `--runs N` (defaulting to the paper's 10).
pub fn runs_from_args(default: usize) -> usize {
    flag_value("--runs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `q`-quantile of a set of timing samples, in milliseconds
/// (nearest-rank on the sorted slice; sorts in place). Shared by the
/// perf binaries so their reported p50/p99 use one definition.
pub fn percentile_ms(samples: &mut [std::time::Duration], q: f64) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
    samples[idx].as_secs_f64() * 1e3
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_topologies_build_and_reduce() {
        for prep in table2_topologies(Scale::Quick, 1) {
            assert!(prep.red.num_paths() > 0, "{} has no paths", prep.name);
            assert!(prep.red.num_links() > 0, "{} has no links", prep.name);
            assert!(
                prep.red.num_links() <= prep.topo.graph.link_count(),
                "{}: more virtual links than physical",
                prep.name
            );
        }
    }

    #[test]
    fn tree_is_single_beacon() {
        let prep = tree_topology(Scale::Quick, 2);
        assert_eq!(prep.topo.beacons.len(), 1);
        assert_eq!(prep.removed_fluttering, 0, "trees never flutter");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
    }

    #[test]
    fn run_grid_metric_sweeps_seeds_in_order() {
        let cases = vec![
            GridCase::new(
                "a",
                ExperimentConfig {
                    seed: 100,
                    ..ExperimentConfig::default()
                },
            ),
            GridCase::new(
                "b",
                ExperimentConfig {
                    seed: 200,
                    ..ExperimentConfig::default()
                },
            ),
        ];
        let outcomes = run_grid_metric(cases, 4, |cfg| Ok(cfg.seed as f64));
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].label, "a");
        assert_eq!(outcomes[0].values, vec![100.0, 101.0, 102.0, 103.0]);
        assert_eq!(outcomes[0].mean, 101.5);
        assert_eq!(outcomes[1].values, vec![200.0, 201.0, 202.0, 203.0]);
        assert_eq!(outcomes[0].failed, 0);
    }

    #[test]
    fn run_grid_metric_counts_failures_without_poisoning_mean() {
        let cases = vec![GridCase::new("c", ExperimentConfig::default())];
        let outcomes = run_grid_metric(cases, 5, |cfg| {
            if cfg.seed % 2 == 0 {
                Ok(1.0)
            } else {
                Err(losstomo_linalg::LinalgError::Empty)
            }
        });
        assert_eq!(outcomes[0].values, vec![1.0, 1.0, 1.0]);
        assert_eq!(outcomes[0].failed, 2);
        assert_eq!(outcomes[0].mean, 1.0);
        // All-failed cells report 0, not NaN.
        let all_fail = run_grid_metric(
            vec![GridCase::new("d", ExperimentConfig::default())],
            2,
            |_| Err::<f64, _>(losstomo_linalg::LinalgError::Empty),
        );
        assert_eq!(all_fail[0].mean, 0.0);
        assert_eq!(all_fail[0].failed, 2);
    }
}
