//! Section 6.4 / 7.2.1 — running times of the LIA pipeline.
//!
//! The paper reports (Matlab, 2 GHz Pentium 4): solving the first-moment
//! system in milliseconds, solving the reduced system (9) ~10× longer,
//! computing `A` up to an hour (but only once), and a total inference
//! time below a second for thousand-node networks. We time the same
//! stages: building `A`, Phase 1, column selection, and the Phase-2
//! solve. Criterion micro-benches (`cargo bench`) complement these
//! wall-clock numbers.
//!
//! Flags: `--scale quick|paper`.

use losstomo_bench::{planetlab_topology, table2_topologies, tree_topology, Scale};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{
    estimate_variances, infer_link_rates, select_full_rank_columns, EliminationStrategy,
    LiaConfig, VarianceConfig,
};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    println!("Section 6.4 — running times of the LIA stages");
    println!();
    let header = format!(
        "{:<26} {:>7} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "Topology", "paths", "links", "build A", "phase 1", "select R*", "solve (9)"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    let mut preps = vec![tree_topology(scale, 11), planetlab_topology(scale, 42)];
    preps.extend(table2_topologies(scale, 77));
    for prep in preps {
        let mut rng = StdRng::seed_from_u64(1);
        let mut scenario = CongestionScenario::draw(
            prep.red.num_links(),
            0.1,
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let ms: MeasurementSet = simulate_run(
            &prep.red,
            &mut scenario,
            &ProbeConfig::default(),
            51,
            &mut rng,
        );
        let train = MeasurementSet {
            snapshots: ms.snapshots[..50].to_vec(),
        };

        let t = Instant::now();
        let aug = AugmentedSystem::build(&prep.red);
        let t_build = t.elapsed();

        let centered = CenteredMeasurements::new(&train);
        let t = Instant::now();
        let v = estimate_variances(&prep.red, &aug, &centered, &VarianceConfig::default())
            .expect("phase 1");
        let t_phase1 = t.elapsed();

        let t = Instant::now();
        let kept = select_full_rank_columns(&prep.red, &v.v, EliminationStrategy::PaperOrder);
        let t_select = t.elapsed();
        let _ = kept;

        let eval = &ms.snapshots[50];
        let t = Instant::now();
        let _est =
            infer_link_rates(&prep.red, &v.v, &eval.log_rates(), &LiaConfig::default())
                .expect("phase 2");
        let t_solve = t.elapsed();

        println!(
            "{:<26} {:>7} {:>7} {:>12.2?} {:>12.2?} {:>12.2?} {:>12.2?}",
            prep.name,
            prep.red.num_paths(),
            prep.red.num_links(),
            t_build,
            t_phase1,
            t_select,
            t_solve
        );
    }
    println!();
    println!("Paper shape: A computed once (expensive), whole inference well under");
    println!("a second per snapshot for thousand-node networks.");
}
