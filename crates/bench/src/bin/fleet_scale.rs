//! fleet_scale — the multi-tenant fleet layer: allocation-reuse refresh
//! latency and tenant-throughput scaling.
//!
//! Two measurements, one report (`BENCH_fleet.json`):
//!
//! 1. **Refresh hot path** on the paper-scale tree: one
//!    `OnlineEstimator` running the reusable refresh workspace
//!    (`ScratchMode::Reuse` — recycled covariance replay, Gram
//!    expansion, SPD permutation + Cholesky factor, Phase-2 factor
//!    buffers) vs an identical estimator reallocating everything per
//!    refresh (`ScratchMode::AllocPerRefresh`, the historical
//!    behaviour). Both ingest the same snapshots and are asserted
//!    **bit-identical**; p50/p99 per-refresh latency, the p50 speedup
//!    (≥ 1.3× gated at paper scale, p99 < 3× p50), and the p50
//!    per-phase breakdown (covariance / Phase 1 / Phase 2) of each
//!    refresh are recorded.
//! 2. **Fleet scaling**: a fleet of independent tree tenants driven
//!    round-robin, drained with 1, 2, 4 and 8 worker threads (set per
//!    run via `FleetConfig::workers`, capped by the tenant count).
//!    Records tenants × snapshots/sec and the speedup over the serial
//!    drain; worker counts beyond the host's cores are measured and
//!    recorded as `oversubscribed`, and the ≥2× parallel-speedup gate
//!    judges only genuinely parallel points.
//!
//! Flags: `--scale quick|paper`, `--out PATH`, `--tenants N`,
//! `--snapshots M`.

use losstomo_bench::{
    bench_meta, flag_value, percentile_ms, tree_topology, write_bench_report, BenchMeta, Scale,
};
use losstomo_core::{OnlineConfig, OnlineEstimator, ScratchMode};
use losstomo_fleet::{Fleet, FleetConfig, TenantId};
use losstomo_netsim::{
    simulate_run, simulate_run_batch, CongestionDynamics, CongestionScenario, ProbeConfig,
    Snapshot,
};
use losstomo_topology::gen::tree::{self, TreeParams};
use losstomo_topology::ReducedTopology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Reuse-vs-alloc refresh comparison on the paper tree.
#[derive(Debug, Serialize, Deserialize)]
struct RefreshReport {
    topology: String,
    paths: usize,
    links: usize,
    aug_rows: usize,
    warmup_snapshots: usize,
    measured_refreshes: usize,
    /// Per-refresh latency of the reused workspace, milliseconds.
    reuse_p50_ms: f64,
    /// p99 (max of the measured refreshes at these sample counts).
    reuse_p99_ms: f64,
    /// Per-refresh latency of the reallocating baseline, ms.
    alloc_p50_ms: f64,
    /// p99 of the reallocating baseline, ms.
    alloc_p99_ms: f64,
    /// `alloc_p50_ms / reuse_p50_ms`.
    speedup_p50: f64,
    /// Reuse and alloc estimates agree bit-for-bit on every refresh.
    bitwise_identical: bool,
    /// p50 of the covariance-assembly span of each reuse refresh, ms.
    cov_p50_ms: f64,
    /// p50 of the Phase-1 (variance estimation) span, ms.
    phase1_p50_ms: f64,
    /// p50 of the Phase-2 (column elimination + solve) span, ms.
    phase2_p50_ms: f64,
}

/// One worker-count point of the throughput sweep.
#[derive(Debug, Serialize, Deserialize)]
struct ScalingPoint {
    workers: usize,
    wall_ms: f64,
    snapshots_per_sec: f64,
    /// Throughput relative to the 1-worker drain.
    speedup_vs_serial: f64,
    /// More workers than the host has cores — the point measures
    /// scheduling overhead, not parallel speedup, and is exempt from
    /// the scaling gate.
    oversubscribed: bool,
}

/// The fleet throughput sweep.
#[derive(Debug, Serialize, Deserialize)]
struct ScalingReport {
    tenants: usize,
    nodes_per_tenant: usize,
    snapshots_per_tenant: usize,
    /// Cores the host exposes (the thread policy's view) — worker
    /// counts above this are recorded honestly as oversubscribed.
    available_cores: usize,
    points: Vec<ScalingPoint>,
}

#[derive(Debug, Serialize, Deserialize)]
struct FleetBenchReport {
    meta: BenchMeta,
    /// SIMD engine active for every estimator in this run.
    simd_engine: String,
    refresh: RefreshReport,
    scaling: ScalingReport,
}

fn ms(t: Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

/// Refresh-latency comparison: both estimators ingest the same stream
/// on a huge cadence (so ingest never auto-refreshes), then each
/// measured snapshot triggers one explicitly timed `refresh()`.
fn refresh_comparison(scale: Scale) -> RefreshReport {
    let prep = tree_topology(scale, 11);
    let red = &prep.red;
    let (warmup, measured) = match scale {
        Scale::Paper => (50, 30),
        Scale::Quick => (12, 6),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let probe = ProbeConfig::default();
    let all = simulate_run_batch(red, &scenario, &probe, warmup + measured, &[1])
        .into_iter()
        .next()
        .expect("one run requested");
    let aug_rows = losstomo_core::AugmentedSystem::build(red).num_rows();
    println!(
        "refresh hot path: {} — {} paths, {} links, {} augmented rows",
        prep.name,
        red.num_paths(),
        red.num_links(),
        aug_rows
    );

    // Manual-cadence configs: identical numerics, different workspaces.
    let manual = OnlineConfig {
        refresh_every: usize::MAX,
        ..OnlineConfig::default()
    };
    let mut reuse = OnlineEstimator::new(
        red,
        OnlineConfig {
            scratch: ScratchMode::Reuse,
            ..manual
        },
    );
    let mut alloc = OnlineEstimator::new(
        red,
        OnlineConfig {
            scratch: ScratchMode::AllocPerRefresh,
            ..manual
        },
    );
    for snap in &all.snapshots[..warmup] {
        reuse.ingest(snap).expect("warmup");
        alloc.ingest(snap).expect("warmup");
    }
    // Put both on a warmed steady state before timing.
    reuse.refresh().expect("warm refresh");
    alloc.refresh().expect("warm refresh");

    let header = format!("{:<10} {:>12} {:>12} {:>9}", "snapshot", "reuse", "alloc", "speedup");
    println!("{header}");
    losstomo_bench::rule(&header);
    let mut reuse_samples = Vec::new();
    let mut alloc_samples = Vec::new();
    let mut cov_samples = Vec::new();
    let mut p1_samples = Vec::new();
    let mut p2_samples = Vec::new();
    let mut bitwise_identical = true;
    for (t, snap) in all.snapshots[warmup..].iter().enumerate() {
        reuse.ingest(snap).expect("ingest");
        alloc.ingest(snap).expect("ingest");
        let t0 = Instant::now();
        reuse.refresh().expect("reuse refresh");
        let dt_reuse = t0.elapsed();
        let spans = reuse
            .last_refresh_timing()
            .expect("successful refresh records its phase spans");
        cov_samples.push(spans.covariance);
        p1_samples.push(spans.phase1);
        p2_samples.push(spans.phase2);
        let t0 = Instant::now();
        alloc.refresh().expect("alloc refresh");
        let dt_alloc = t0.elapsed();
        bitwise_identical &= reuse.variances().expect("warm").v == alloc.variances().expect("warm").v
            && reuse.kept_columns() == alloc.kept_columns();
        println!(
            "{:<10} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            warmup + t,
            ms(dt_reuse),
            ms(dt_alloc),
            ms(dt_alloc) / ms(dt_reuse).max(1e-9)
        );
        reuse_samples.push(dt_reuse);
        alloc_samples.push(dt_alloc);
    }
    let reuse_p50 = percentile_ms(&mut reuse_samples, 0.5);
    let reuse_p99 = percentile_ms(&mut reuse_samples, 0.99);
    let alloc_p50 = percentile_ms(&mut alloc_samples, 0.5);
    let alloc_p99 = percentile_ms(&mut alloc_samples, 0.99);
    let cov_p50 = percentile_ms(&mut cov_samples, 0.5);
    let phase1_p50 = percentile_ms(&mut p1_samples, 0.5);
    let phase2_p50 = percentile_ms(&mut p2_samples, 0.5);
    let speedup = alloc_p50 / reuse_p50.max(1e-9);
    println!();
    println!(
        "per-refresh p50: reuse {reuse_p50:.2}ms vs alloc {alloc_p50:.2}ms ({speedup:.2}x), \
         p99 {reuse_p99:.2}ms vs {alloc_p99:.2}ms"
    );
    println!(
        "refresh breakdown p50: covariance {cov_p50:.2}ms, phase 1 {phase1_p50:.2}ms, \
         phase 2 {phase2_p50:.2}ms"
    );
    assert!(
        bitwise_identical,
        "scratch reuse changed the estimates — the exactness contract is broken"
    );
    if scale == Scale::Paper {
        assert!(
            speedup >= 1.3,
            "reused scratch must be ≥1.3x the allocating refresh, got {speedup:.2}x"
        );
        // Tail gate: a refresh that moves the Phase-2 elimination cut
        // used to re-run the full (0, nc) rank bisection, and a
        // singular Phase-1 retry refactorised the fallback Gram from
        // scratch — either spiked p99 to ~4x p50. With the stale-hint
        // gallop and the cached all-rows factor the tail must stay
        // within 3x of the median.
        let tail = reuse_p99 / reuse_p50.max(1e-9);
        assert!(
            tail < 3.0,
            "refresh p99 ({reuse_p99:.2}ms) must stay <3x p50 ({reuse_p50:.2}ms), got {tail:.2}x"
        );
    }
    RefreshReport {
        topology: prep.name.to_string(),
        paths: red.num_paths(),
        links: red.num_links(),
        aug_rows,
        warmup_snapshots: warmup,
        measured_refreshes: measured,
        reuse_p50_ms: reuse_p50,
        reuse_p99_ms: reuse_p99,
        alloc_p50_ms: alloc_p50,
        alloc_p99_ms: alloc_p99,
        speedup_p50: speedup,
        bitwise_identical,
        cov_p50_ms: cov_p50,
        phase1_p50_ms: phase1_p50,
        phase2_p50_ms: phase2_p50,
    }
}

/// Builds the per-tenant topologies and deterministic snapshot feeds of
/// the scaling study.
fn tenant_fleet(
    n_tenants: usize,
    nodes: usize,
    snapshots: usize,
) -> (Vec<ReducedTopology>, Vec<Vec<Snapshot>>) {
    let topologies: Vec<ReducedTopology> = (0..n_tenants)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(500 + t as u64);
            let topo = tree::generate(
                TreeParams {
                    nodes,
                    max_branching: 6,
                },
                &mut rng,
            );
            let paths = losstomo_topology::compute_paths(
                &topo.graph,
                &topo.beacons,
                &topo.destinations,
            );
            losstomo_topology::reduce(&topo.graph, &paths)
        })
        .collect();
    let feeds: Vec<Vec<Snapshot>> = topologies
        .iter()
        .enumerate()
        .map(|(t, red)| {
            let mut rng = StdRng::seed_from_u64(9000 + t as u64);
            let mut scenario = CongestionScenario::draw(
                red.num_links(),
                0.1,
                CongestionDynamics::Markov {
                    stay_congested: 0.9,
                },
                &mut rng,
            );
            let probe = ProbeConfig {
                probes_per_snapshot: 200,
                ..ProbeConfig::default()
            };
            simulate_run(red, &mut scenario, &probe, snapshots, &mut rng).snapshots
        })
        .collect();
    (topologies, feeds)
}

/// Drives one fleet (fresh estimators) through the full feed with the
/// given worker count; returns the drain wall-clock.
fn run_fleet_once(
    topologies: &[ReducedTopology],
    feeds: &[Vec<Snapshot>],
    workers: usize,
) -> Duration {
    let mut fleet = Fleet::new(FleetConfig {
        queue_capacity: feeds[0].len().max(1),
        workers: Some(workers),
        ..FleetConfig::default()
    });
    let ids: Vec<TenantId> = topologies
        .iter()
        .enumerate()
        .map(|(t, red)| fleet.add_tenant(format!("net-{t}"), red, OnlineConfig::default()))
        .collect();
    let rounds = feeds[0].len();
    let t0 = Instant::now();
    // Cadence batches: one snapshot per tenant per round, drained per
    // round — the arrival pattern of a shared collector tick.
    for round in 0..rounds {
        for (t, feed) in feeds.iter().enumerate() {
            fleet
                .enqueue(ids[t], feed[round].clone())
                .expect("queue sized to the feed");
        }
        fleet.drain();
    }
    let wall = t0.elapsed();
    for &id in &ids {
        assert_eq!(fleet.stats(id).ingested, rounds as u64);
        assert_eq!(fleet.stats(id).errors, 0, "{}", fleet.name(id));
    }
    wall
}

fn scaling_sweep(scale: Scale) -> ScalingReport {
    let (n_tenants, nodes, snapshots) = match scale {
        Scale::Paper => (64, 120, 24),
        Scale::Quick => (8, 50, 8),
    };
    let n_tenants = flag_value("--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(n_tenants);
    let snapshots = flag_value("--snapshots")
        .and_then(|v| v.parse().ok())
        .unwrap_or(snapshots);
    println!(
        "fleet scaling: {n_tenants} tenants × {snapshots} snapshots ({nodes}-node trees)"
    );
    let (topologies, feeds) = tenant_fleet(n_tenants, nodes, snapshots);

    // Fixed worker sweep 1, 2, 4, 8 (capped by the tenant count): the
    // full curve is always measured and recorded, with points beyond
    // the host's cores flagged oversubscribed rather than skipped —
    // a 1-core CI runner still produces the whole curve honestly.
    let available_cores = losstomo_linalg::parallel::num_threads();
    let sweep: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= n_tenants)
        .collect();

    let header = format!(
        "{:>8} {:>12} {:>16} {:>9} {:>8}",
        "workers", "wall", "snapshots/sec", "speedup", "oversub"
    );
    println!("{header}");
    losstomo_bench::rule(&header);
    let total_snapshots = (n_tenants * snapshots) as f64;
    let mut points = Vec::new();
    let mut serial_rate = 0.0f64;
    for &workers in &sweep {
        let wall = run_fleet_once(&topologies, &feeds, workers);
        let rate = total_snapshots / wall.as_secs_f64().max(1e-9);
        if workers == 1 {
            serial_rate = rate;
        }
        let speedup = rate / serial_rate.max(1e-9);
        let oversubscribed = workers > available_cores;
        println!(
            "{:>8} {:>10.0}ms {:>16.0} {:>8.2}x {:>8}",
            workers,
            ms(wall),
            rate,
            speedup,
            if oversubscribed { "yes" } else { "no" }
        );
        points.push(ScalingPoint {
            workers,
            wall_ms: ms(wall),
            snapshots_per_sec: rate,
            speedup_vs_serial: speedup,
            oversubscribed,
        });
    }
    if scale == Scale::Paper {
        // The parallel-speedup gate judges only worker counts the host
        // can actually run in parallel; oversubscribed points are
        // recorded but cannot fail (or vacuously pass) the gate.
        let parallel_points: Vec<&ScalingPoint> =
            points.iter().filter(|p| !p.oversubscribed).collect();
        let max_parallel = parallel_points.iter().map(|p| p.workers).max().unwrap_or(1);
        if max_parallel >= 4 {
            let best = parallel_points
                .iter()
                .map(|p| p.speedup_vs_serial)
                .fold(0.0_f64, f64::max);
            assert!(
                best >= 2.0,
                "fleet throughput must scale ≥2x with {max_parallel} workers, got {best:.2}x"
            );
        } else {
            println!(
                "scaling gate skipped: host exposes {available_cores} core(s), \
                 parallel speedup is unmeasurable"
            );
        }
    }
    ScalingReport {
        tenants: n_tenants,
        nodes_per_tenant: nodes,
        snapshots_per_tenant: snapshots,
        available_cores,
        points,
    }
}

fn main() {
    let scale = Scale::from_args();
    println!(
        "fleet_scale — allocation-reuse refresh + fleet throughput ({} scale)",
        scale.name()
    );
    println!();
    let refresh = refresh_comparison(scale);
    println!();
    let scaling = scaling_sweep(scale);
    let report = FleetBenchReport {
        meta: bench_meta("fleet_scale", scale),
        simd_engine: losstomo_linalg::simd::active().name().to_string(),
        refresh,
        scaling,
    };
    write_bench_report("BENCH_fleet.json", &report);
}
