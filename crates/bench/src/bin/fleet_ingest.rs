//! fleet_ingest — the service edge under load: snapshot wire-format
//! throughput, end-to-end ingest latency, and the wire≡enqueue
//! equivalence gate.
//!
//! Three measurements, one report (`BENCH_ingest.json`):
//!
//! 1. **Codec throughput** on the paper-scale PlanetLab mesh (the
//!    widest row shape — every site pair is a path): identical row
//!    content pushed through the three ingest codecs — binary wire
//!    **zero-copy** (rows enqueued as reference-counted windows of the
//!    receive buffer, read in place as `&[f64]`), binary wire
//!    **copying** (rows decoded to owned `Vec<f64>` at the edge), and
//!    the **JSON** fallback (text decode + owned rows). The tenants
//!    run accumulate-only — the `refresh_every = usize::MAX`
//!    manual-refresh sentinel plus a bounded pair budget — so the
//!    numbers isolate the service edge: parse → validate → queue →
//!    drain → covariance push, with Phase 1/2 off the hot path (the
//!    cadence an operator runs when estimates are refreshed on a
//!    timer, not per snapshot). Records snapshots/sec and MB/sec per
//!    codec, after an untimed warm-up pass per codec.
//! 2. **End-to-end latency** through the full service edge: a demux
//!    thread parses each round's batch off its input channel and
//!    routes rows zero-copy to the tenant queues while the main thread
//!    polls events — p50/p99 of batch-send → all congested-set events
//!    of the round drained.
//! 3. **Bit-identity**: three fleets fed the same snapshots — direct
//!    [`Fleet::enqueue`], wire zero-copy, wire copying — must land on
//!    bit-identical variances, congested sets, and kept columns
//!    (asserted in-binary, recorded in the report).
//!
//! Paper-scale gates: bit-identity holds, zero-copy ≥ 2× the JSON
//! codec and ≥ 1.2× the copying wire codec (snapshots/sec).
//!
//! Flags: `--scale quick|paper`, `--out PATH`, `--tenants N`,
//! `--batches N`.

use losstomo_bench::{
    bench_meta, flag_value, percentile_ms, planetlab_topology, tree_topology, write_bench_report,
    BenchMeta, Scale,
};
use losstomo_core::{OnlineConfig, OnlineEstimator, PairBudget};
use losstomo_fleet::{
    DemuxConfig, Fleet, FleetConfig, TenantId, WireIngestMode, WireIngestReport,
};
use losstomo_netsim::wirebridge::batch_to_wire;
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig, Snapshot,
};
use losstomo_topology::ReducedTopology;
use losstomo_wire::{JsonBatch, JsonFrame, WireBatch, WireEncodeOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One codec's throughput point.
#[derive(Debug, Serialize, Deserialize)]
struct CodecPoint {
    /// `wire-zero-copy`, `wire-copying` or `json`.
    codec: String,
    wall_ms: f64,
    /// Rows (snapshots) ingested per second, decode included.
    snapshots_per_sec: f64,
    /// Encoded payload bytes processed per second (wire bytes for the
    /// binary codecs, UTF-8 bytes for JSON).
    mb_per_sec: f64,
    /// Total encoded bytes this codec decoded.
    bytes_total: usize,
    rows_total: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct Workload {
    /// Topology the codec-throughput section runs on (widest rows).
    topology: String,
    tenants: usize,
    paths: usize,
    links: usize,
    /// Topology the latency and bit-identity sections run on.
    e2e_topology: String,
    e2e_paths: usize,
    /// Rows per tenant per batch.
    rows_per_frame: usize,
    batches: usize,
    /// Distinct simulated snapshots per tenant (cycled to fill the
    /// batches — codec cost does not depend on row novelty).
    distinct_snapshots: usize,
    /// Encoded size of one wire batch (CRC off).
    wire_batch_bytes: usize,
    /// Encoded size of one JSON batch.
    json_batch_bytes: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct LatencyReport {
    /// Rounds measured (one batch of one row per tenant each).
    rounds: usize,
    /// Send → all rows of the round drained (events emitted), p50 ms.
    p50_ms: f64,
    /// Same, p99.
    p99_ms: f64,
    /// Congested-set change events observed across the rounds.
    events_observed: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct BitIdentity {
    /// Zero-copy wire ingest matches direct enqueue bit for bit.
    zero_copy_matches_enqueue: bool,
    /// Copying wire ingest matches direct enqueue bit for bit.
    copying_matches_enqueue: bool,
    /// Snapshots the three fleets ingested per tenant.
    snapshots_per_tenant: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct IngestBenchReport {
    meta: BenchMeta,
    simd_engine: String,
    workload: Workload,
    /// Throughput per codec, zero-copy first.
    codecs: Vec<CodecPoint>,
    /// Zero-copy snapshots/sec over JSON snapshots/sec.
    speedup_vs_json: f64,
    /// Zero-copy snapshots/sec over copying-wire snapshots/sec.
    speedup_vs_copying: f64,
    latency: LatencyReport,
    bit_identity: BitIdentity,
}

fn ms(t: Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

/// Simulates `n` distinct snapshots per tenant on a shared topology
/// (independent congestion scenarios per tenant).
fn tenant_feeds(red: &ReducedTopology, tenants: usize, n: usize, probes: u32) -> Vec<Vec<Snapshot>> {
    (0..tenants)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(4200 + t as u64);
            let mut scenario = CongestionScenario::draw(
                red.num_links(),
                0.1,
                CongestionDynamics::Markov {
                    stay_congested: 0.9,
                },
                &mut rng,
            );
            let probe = ProbeConfig {
                probes_per_snapshot: probes,
                ..ProbeConfig::default()
            };
            simulate_run(red, &mut scenario, &probe, n, &mut rng).snapshots
        })
        .collect()
}

/// Builds `batches` codec-agnostic batches of `rows` rows per tenant,
/// cycling the distinct feeds, with per-tenant sequence numbers
/// continuing across batches.
fn build_batches(feeds: &[Vec<Snapshot>], batches: usize, rows: usize) -> Vec<JsonBatch> {
    let tenants = feeds.len();
    let mut next_seq = vec![0u64; tenants];
    (0..batches)
        .map(|b| {
            let frames = (0..tenants)
                .map(|t| {
                    let feed = &feeds[t];
                    let frame = JsonFrame {
                        tenant: t as u32,
                        base_seq: next_seq[t],
                        rows: (0..rows)
                            .map(|r| feed[(b * rows + r) % feed.len()].log_rates())
                            .collect(),
                    };
                    next_seq[t] += rows as u64;
                    frame
                })
                .collect();
            JsonBatch { frames }
        })
        .collect()
}

/// A fleet with Phase 1/2 off the hot path — the throughput harness
/// measures the edge (parse → validate → queue → drain → covariance
/// push), not the estimator refresh. `refresh_every = usize::MAX` is
/// the manual-refresh sentinel (accumulate only, refresh on the
/// operator's timer) and the bounded pair budget caps the per-row
/// augmented-pair accumulation the same way a high-rate deployment
/// would.
fn edge_fleet(red: &ReducedTopology, tenants: usize) -> (Fleet, Vec<TenantId>) {
    let mut fleet = Fleet::new(FleetConfig {
        queue_capacity: 256,
        workers: Some(1),
        ..FleetConfig::default()
    });
    let cfg = OnlineConfig {
        refresh_every: usize::MAX,
        pair_budget: PairBudget::Rows(256),
        ..OnlineConfig::default()
    };
    let ids = (0..tenants)
        .map(|t| fleet.add_tenant(format!("net-{t}"), red, cfg))
        .collect();
    (fleet, ids)
}

fn assert_clean(report: &WireIngestReport, want_rows: usize, codec: &str) {
    assert_eq!(
        report.accepted, want_rows,
        "{codec}: every row must be accepted"
    );
    assert!(
        report.rejections.is_empty(),
        "{codec}: unexpected rejections: {:?}",
        report.rejections
    );
}

/// Times one codec over the pre-encoded batches: decode + ingest +
/// drain per batch. A scratch fleet absorbs one full untimed warm-up
/// pass first, so the measured pass sees steady-state allocator and
/// page-cache state (the first pass otherwise bills the page faults
/// of growing a fresh multi-hundred-MB heap to whichever codec runs
/// first).
fn run_codec(
    red: &ReducedTopology,
    tenants: usize,
    rows_per_batch: usize,
    codec: &str,
    bytes_total: usize,
    mut step: impl FnMut(&mut Fleet, usize) -> WireIngestReport,
    batches: usize,
) -> CodecPoint {
    let (mut scratch, _) = edge_fleet(red, tenants);
    for b in 0..batches {
        assert_clean(&step(&mut scratch, b), rows_per_batch, codec);
    }
    drop(scratch);
    let (mut fleet, ids) = edge_fleet(red, tenants);
    let t0 = Instant::now();
    for b in 0..batches {
        let report = step(&mut fleet, b);
        assert_clean(&report, rows_per_batch, codec);
    }
    let wall = t0.elapsed();
    let rows_total = rows_per_batch * batches;
    for (t, &id) in ids.iter().enumerate() {
        assert_eq!(
            fleet.stats(id).ingested,
            (rows_total / tenants) as u64,
            "{codec}: tenant {t} lost rows"
        );
    }
    let secs = wall.as_secs_f64().max(1e-9);
    CodecPoint {
        codec: codec.to_string(),
        wall_ms: ms(wall),
        snapshots_per_sec: rows_total as f64 / secs,
        mb_per_sec: bytes_total as f64 / 1e6 / secs,
        bytes_total,
        rows_total,
    }
}

fn throughput(
    red: &ReducedTopology,
    batches_src: &[JsonBatch],
    tenants: usize,
) -> (Vec<CodecPoint>, usize, usize) {
    let opts = WireEncodeOptions { crc: false };
    let wire: Vec<bytes::Bytes> = batches_src.iter().map(|b| batch_to_wire(b, opts)).collect();
    let json: Vec<String> = batches_src
        .iter()
        .map(|b| b.encode().expect("batch encodes"))
        .collect();
    let rows_per_batch: usize = batches_src[0]
        .frames
        .iter()
        .map(|f| f.rows.len())
        .sum();
    let wire_bytes: usize = wire.iter().map(bytes::Bytes::len).sum();
    let json_bytes: usize = json.iter().map(String::len).sum();
    let batches = batches_src.len();

    let header = format!(
        "{:<16} {:>10} {:>16} {:>10}",
        "codec", "wall", "snapshots/sec", "MB/sec"
    );
    println!("{header}");
    losstomo_bench::rule(&header);
    let mut points = Vec::new();
    for (codec, mode) in [
        ("wire-zero-copy", WireIngestMode::ZeroCopy),
        ("wire-copying", WireIngestMode::Copying),
    ] {
        let point = run_codec(
            red,
            tenants,
            rows_per_batch,
            codec,
            wire_bytes,
            |fleet, b| {
                let batch = WireBatch::parse(wire[b].clone()).expect("pre-encoded batch parses");
                fleet.ingest_wire_batch(&batch, mode)
            },
            batches,
        );
        println!(
            "{:<16} {:>8.0}ms {:>16.0} {:>10.1}",
            point.codec, point.wall_ms, point.snapshots_per_sec, point.mb_per_sec
        );
        points.push(point);
    }
    let point = run_codec(
        red,
        tenants,
        rows_per_batch,
        "json",
        json_bytes,
        |fleet, b| {
            let batch = JsonBatch::decode(&json[b]).expect("pre-encoded batch decodes");
            fleet.ingest_json_batch(&batch)
        },
        batches,
    );
    println!(
        "{:<16} {:>8.0}ms {:>16.0} {:>10.1}",
        point.codec, point.wall_ms, point.snapshots_per_sec, point.mb_per_sec
    );
    points.push(point);
    (points, wire.first().map_or(0, bytes::Bytes::len), json.first().map_or(0, String::len))
}

/// End-to-end rounds through the demux thread: send one single-row
/// frame per tenant, poll events until every row of the round has been
/// drained, sample the wall clock.
fn latency(red: &ReducedTopology, feeds: &[Vec<Snapshot>], rounds: usize) -> LatencyReport {
    let tenants = feeds.len();
    let mut fleet = Fleet::new(FleetConfig {
        queue_capacity: 64,
        workers: Some(1),
        ..FleetConfig::default()
    });
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| fleet.add_tenant(format!("net-{t}"), red, OnlineConfig::default()))
        .collect();
    let demux = fleet.spawn_demux(DemuxConfig::default());
    let opts = WireEncodeOptions { crc: false };
    // Pre-encode every round so the timed span is pure service edge.
    let batches: Vec<bytes::Bytes> = (0..rounds)
        .map(|round| {
            let frames = (0..tenants)
                .map(|t| JsonFrame {
                    tenant: t as u32,
                    base_seq: round as u64,
                    rows: vec![feeds[t][round % feeds[t].len()].log_rates()],
                })
                .collect();
            batch_to_wire(&JsonBatch { frames }, opts)
        })
        .collect();
    let mut samples = Vec::with_capacity(rounds);
    let mut events = Vec::new();
    let mut events_observed = 0usize;
    for (round, batch) in batches.into_iter().enumerate() {
        let want = ((round + 1) * tenants) as u64;
        let t0 = Instant::now();
        assert!(demux.send(batch), "demux thread must be alive");
        loop {
            events.clear();
            fleet.poll_events_into(&mut events);
            events_observed += events.len();
            let ingested: u64 = ids.iter().map(|&id| fleet.stats(id).ingested).sum();
            if ingested >= want {
                break;
            }
            std::thread::yield_now();
        }
        samples.push(t0.elapsed());
    }
    let (stats, _acks) = demux.finish();
    assert_eq!(stats.rows_accepted, (rounds * tenants) as u64);
    assert_eq!(stats.rows_rejected, 0);
    assert_eq!(stats.malformed_batches, 0);
    let p50 = percentile_ms(&mut samples, 0.5);
    let p99 = percentile_ms(&mut samples, 0.99);
    println!(
        "end-to-end latency over {rounds} rounds × {tenants} tenants: \
         p50 {p50:.3}ms, p99 {p99:.3}ms ({events_observed} congestion events)"
    );
    LatencyReport {
        rounds,
        p50_ms: p50,
        p99_ms: p99,
        events_observed,
    }
}

/// Feeds identical snapshots through direct enqueue, zero-copy wire
/// and copying wire; gates bit-identity of the resulting estimators.
fn bit_identity(red: &ReducedTopology, feeds: &[Vec<Snapshot>], n: usize) -> BitIdentity {
    let tenants = feeds.len();
    let make = || {
        let mut fleet = Fleet::new(FleetConfig {
            queue_capacity: n.max(1),
            workers: Some(1),
            ..FleetConfig::default()
        });
        let ids: Vec<TenantId> = (0..tenants)
            .map(|t| fleet.add_tenant(format!("net-{t}"), red, OnlineConfig::default()))
            .collect();
        (fleet, ids)
    };
    let (mut direct, direct_ids) = make();
    for (t, feed) in feeds.iter().enumerate() {
        for snap in &feed[..n] {
            direct
                .enqueue(direct_ids[t], snap.clone())
                .expect("sized queue");
        }
    }
    direct.poll_events();

    let frames = (0..tenants)
        .map(|t| JsonFrame {
            tenant: t as u32,
            base_seq: 0,
            rows: feeds[t][..n].iter().map(Snapshot::log_rates).collect(),
        })
        .collect();
    let wire = batch_to_wire(&JsonBatch { frames }, WireEncodeOptions { crc: true });
    let mut matches = [false; 2];
    for (i, mode) in [WireIngestMode::ZeroCopy, WireIngestMode::Copying]
        .into_iter()
        .enumerate()
    {
        let batch = WireBatch::parse(wire.clone()).expect("identity batch parses");
        let (mut fleet, ids) = make();
        let report = fleet.ingest_wire_batch(&batch, mode);
        assert_clean(&report, tenants * n, "bit-identity");
        matches[i] = ids.iter().zip(&direct_ids).all(|(&id, &did)| {
            let (a, b) = (fleet.estimator(id), direct.estimator(did));
            a.variances().expect("warm").v == b.variances().expect("warm").v
                && a.congested_links() == b.congested_links()
                && a.kept_columns() == b.kept_columns()
        });
        assert!(
            matches[i],
            "{mode:?} wire ingest diverged from direct enqueue — the zero-copy \
             contract is broken"
        );
    }
    // Standalone estimator cross-check: the fleet path itself is
    // equivalent to a lone estimator fed the same stream.
    let mut solo = OnlineEstimator::new(red, OnlineConfig::default());
    for snap in &feeds[0][..n] {
        solo.ingest(snap).expect("solo ingest");
    }
    assert_eq!(
        direct.estimator(direct_ids[0]).congested_links(),
        solo.congested_links(),
        "fleet ingest diverged from a standalone estimator"
    );
    println!("bit-identity: zero-copy ≡ copying ≡ direct enqueue over {n} snapshots/tenant");
    BitIdentity {
        zero_copy_matches_enqueue: matches[0],
        copying_matches_enqueue: matches[1],
        snapshots_per_tenant: n,
    }
}

fn main() {
    let scale = Scale::from_args();
    println!(
        "fleet_ingest — service-edge codec throughput + end-to-end latency ({} scale)",
        scale.name()
    );
    let (tenants, distinct, batches, rows_per_frame, latency_rounds, identity_n) = match scale {
        Scale::Paper => (4usize, 12usize, 40usize, 25usize, 40usize, 30usize),
        Scale::Quick => (2, 8, 4, 8, 8, 10),
    };
    let tenants = flag_value("--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(tenants);
    let batches = flag_value("--batches")
        .and_then(|v| v.parse().ok())
        .unwrap_or(batches);
    // Throughput runs on the PlanetLab mesh: every site pair is a
    // path, so rows are the widest the suite produces and the copy
    // cost the codecs differ by is front and centre. Latency and
    // bit-identity run the full estimator (per-snapshot refresh) and
    // use the paper's tree.
    let thr_prep = planetlab_topology(scale, 23);
    let thr_red = &thr_prep.red;
    let e2e_prep = tree_topology(scale, 23);
    let e2e_red = &e2e_prep.red;
    println!(
        "throughput workload: {} — {} paths, {} links, {tenants} tenants, \
         {batches} batches × {rows_per_frame} rows/tenant",
        thr_prep.name,
        thr_red.num_paths(),
        thr_red.num_links()
    );
    println!(
        "latency/identity workload: {} — {} paths, {} links",
        e2e_prep.name,
        e2e_red.num_paths(),
        e2e_red.num_links()
    );
    println!();
    let thr_feeds = tenant_feeds(thr_red, tenants, distinct, 100);
    let batches_src = build_batches(&thr_feeds, batches, rows_per_frame);
    let (codecs, wire_batch_bytes, json_batch_bytes) = throughput(thr_red, &batches_src, tenants);
    drop(batches_src);
    drop(thr_feeds);
    println!();
    let e2e_feeds = tenant_feeds(e2e_red, tenants, identity_n.max(latency_rounds), 200);
    let latency = latency(e2e_red, &e2e_feeds, latency_rounds);
    println!();
    let bit_identity = bit_identity(e2e_red, &e2e_feeds, identity_n);

    let zc = codecs[0].snapshots_per_sec;
    let copying = codecs[1].snapshots_per_sec;
    let json = codecs[2].snapshots_per_sec;
    let speedup_vs_json = zc / json.max(1e-9);
    let speedup_vs_copying = zc / copying.max(1e-9);
    println!();
    println!(
        "zero-copy vs json: {speedup_vs_json:.2}x, vs copying wire: {speedup_vs_copying:.2}x"
    );
    if scale == Scale::Paper {
        assert!(
            speedup_vs_json >= 2.0,
            "zero-copy wire ingest must be ≥2x the JSON codec, got {speedup_vs_json:.2}x"
        );
        assert!(
            speedup_vs_copying >= 1.2,
            "zero-copy must beat the copying wire codec ≥1.2x, got {speedup_vs_copying:.2}x"
        );
    }
    let report = IngestBenchReport {
        meta: bench_meta("fleet_ingest", scale),
        simd_engine: losstomo_linalg::simd::active().name().to_string(),
        workload: Workload {
            topology: thr_prep.name.to_string(),
            tenants,
            paths: thr_red.num_paths(),
            links: thr_red.num_links(),
            e2e_topology: e2e_prep.name.to_string(),
            e2e_paths: e2e_red.num_paths(),
            rows_per_frame,
            batches,
            distinct_snapshots: distinct,
            wire_batch_bytes,
            json_batch_bytes,
        },
        codecs,
        speedup_vs_json,
        speedup_vs_copying,
        latency,
        bit_identity,
    };
    write_bench_report("BENCH_ingest.json", &report);
}
