//! Ablation — handling of negative sample covariances in Phase 1.
//!
//! Sampling variability makes some entries of Σ̂ negative; the paper
//! drops those rows ("we ignore equations with Σ̂ᵢᵢ′ < 0 ... (8)
//! contains many redundant covariance equations, so we can safely remove
//! those"). This study compares dropping vs keeping them.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, runs_from_args, tree_topology, Scale};
use losstomo_core::{run_many, ExperimentConfig, VarianceConfig};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    println!(
        "Ablation — negative covariance rows (tree, m=50, {} runs)",
        runs
    );
    println!();
    let header = format!(
        "{:<16} {:>8} {:>8} {:>16}",
        "rows", "DR", "FPR", "dropped rows/run"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    for (label, drop) in [("drop (paper)", true), ("keep all", false)] {
        let cfg = ExperimentConfig {
            snapshots: 50,
            variance: VarianceConfig {
                drop_negative_covariances: drop,
                ..VarianceConfig::default()
            },
            seed: 12_000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len() as f64;
        let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
        let fpr = ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n;
        let dropped = ok.iter().map(|r| r.dropped_rows as f64).sum::<f64>() / n;
        println!(
            "{:<16} {:>8} {:>8} {:>16.1}",
            label,
            pct(dr),
            pct(fpr),
            dropped
        );
    }
    println!();
    println!("Expected: negligible accuracy difference — the dropped equations are");
    println!("redundant — confirming the paper's simplification.");
}
