//! scale_estimators — the estimator zoo's accuracy×speed frontier.
//!
//! Every [`losstomo_core::EstimatorKind`] backend runs on the same
//! simulated measurements and the same evaluation snapshot, per
//! topology class (the Section-6.1 paper tree and the 2450-path Waxman
//! mesh) and per loss workload (bursty Gilbert, i.i.d. Bernoulli, and
//! the heavy-tailed flowlet-arrival traces of
//! [`losstomo_netsim::flowlet`]). For each cell it records detection
//! rate, false-positive rate, per-link loss-rate RMSE, and the
//! backend's wall-clock (the `estimate()` call: everything from
//! covariance consumption to Phase 2), so the report is a genuine
//! frontier: which backend buys how much accuracy at what cost, where.
//!
//! Backends that don't apply everywhere stay in the table with
//! `supported: false` — Zhu's closed form is exact on the tree and
//! refuses the mesh by design.
//!
//! **Gate (paper scale, Waxman mesh + Gilbert loss):** the Deng-style
//! fast backend must run ≥2× faster than LIA with detection rate
//! within 5 percentage points. The report lands in
//! `BENCH_estimators.json`.
//!
//! Flags: `--scale quick|paper`, `--out PATH`, `--runs N`.

use losstomo_bench::{
    bench_meta, pct, percentile_ms, runs_from_args, tree_topology, waxman_topology,
    write_bench_report, BenchMeta, PreparedTopology, Scale,
};
use losstomo_core::budget::PairBudget;
use losstomo_core::{
    build_estimator, location_accuracy, CenteredMeasurements, EstimatorKind, LiaConfig,
    VarianceConfig,
};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, LossProcessKind, MeasurementSet,
    ProbeConfig,
};
use losstomo_topology::ReducedTopology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One backend × topology × loss-model cell of the frontier.
#[derive(Debug, Serialize, Deserialize)]
struct FrontierCell {
    backend: String,
    topology: String,
    loss_model: String,
    paths: usize,
    links: usize,
    runs: usize,
    /// Whether the backend supports this topology (Zhu requires trees).
    supported: bool,
    /// Median wall-clock of `estimate()` across the runs, milliseconds.
    wall_ms_median: f64,
    /// Mean detection rate across the runs.
    dr: f64,
    /// Mean false-positive rate across the runs.
    fpr: f64,
    /// Mean per-link loss-rate RMSE across the runs.
    rate_rmse: f64,
}

/// The in-binary Deng-vs-LIA gate, recorded for CI's schema check.
#[derive(Debug, Serialize, Deserialize)]
struct GateReport {
    /// Topology × loss cell the gate is evaluated on.
    cell: String,
    lia_ms: f64,
    deng_ms: f64,
    speedup: f64,
    lia_dr: f64,
    deng_dr: f64,
    dr_delta_pts: f64,
    /// Whether the ≥2× / ≤5pt gate was asserted (paper scale only).
    enforced: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    meta: BenchMeta,
    snapshots: usize,
    cells: Vec<FrontierCell>,
    gate: GateReport,
}

/// One run's shared inputs: centred training measurements, evaluation
/// log rates, truth flags, and true loss rates.
struct RunInputs {
    centered: CenteredMeasurements,
    y: Vec<f64>,
    truth_flags: Vec<bool>,
    true_loss: Vec<f64>,
    threshold: f64,
}

fn simulate_inputs(
    red: &ReducedTopology,
    probe: &ProbeConfig,
    snapshots: usize,
    seed: u64,
) -> RunInputs {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let ms = simulate_run(red, &mut scenario, probe, snapshots + 1, &mut rng);
    let train = MeasurementSet {
        snapshots: ms.snapshots[..snapshots].to_vec(),
    };
    let eval = &ms.snapshots[snapshots];
    RunInputs {
        centered: CenteredMeasurements::new(&train),
        y: eval.log_rates(),
        truth_flags: eval.link_truth.iter().map(|t| t.congested).collect(),
        true_loss: eval.link_truth.iter().map(|t| t.true_loss_rate()).collect(),
        threshold: probe.loss_model.threshold(),
    }
}

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(3);
    let snapshots = match scale {
        Scale::Paper => 50,
        Scale::Quick => 30,
    };

    let topologies: Vec<PreparedTopology> =
        vec![tree_topology(scale, 42), waxman_topology(scale, 43)];
    let losses = [
        (LossProcessKind::Gilbert, "gilbert"),
        (LossProcessKind::Bernoulli, "bernoulli"),
        (LossProcessKind::Flowlet, "flowlet"),
    ];

    println!(
        "scale_estimators — estimator frontier at {} scale, m = {snapshots}, {} runs",
        scale.name(),
        runs
    );
    println!();
    let header = format!(
        "{:<8} {:<10} {:<13} {:>9} {:>8} {:>8} {:>10}",
        "topology", "loss", "backend", "wall ms", "DR", "FPR", "rate RMSE"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    let mut cells: Vec<FrontierCell> = Vec::new();
    for prep in &topologies {
        for (process, loss_name) in losses {
            let probe = ProbeConfig {
                process,
                ..ProbeConfig::default()
            };
            // One simulation per run, shared by every backend: the
            // frontier compares estimators, not sampling noise.
            let inputs: Vec<RunInputs> = (0..runs)
                .map(|run| simulate_inputs(&prep.red, &probe, snapshots, 9000 + run as u64))
                .collect();
            for kind in EstimatorKind::all() {
                let backend = build_estimator(
                    kind,
                    LiaConfig::default(),
                    VarianceConfig::default(),
                    PairBudget::Full,
                );
                let mut walls: Vec<Duration> = Vec::with_capacity(runs);
                let (mut drs, mut fprs, mut rmses) = (Vec::new(), Vec::new(), Vec::new());
                let mut supported = true;
                for input in &inputs {
                    let start = Instant::now();
                    let out = backend.estimate(&prep.red, &input.centered, &input.y);
                    let wall = start.elapsed();
                    match out {
                        Ok(out) => {
                            walls.push(wall);
                            let est_loss = out.estimate.loss_rates();
                            let est_flags: Vec<bool> =
                                est_loss.iter().map(|&l| l > input.threshold).collect();
                            let loc = location_accuracy(&input.truth_flags, &est_flags);
                            drs.push(loc.detection_rate);
                            fprs.push(loc.false_positive_rate);
                            let mse = input
                                .true_loss
                                .iter()
                                .zip(&est_loss)
                                .map(|(t, e)| (t - e) * (t - e))
                                .sum::<f64>()
                                / input.true_loss.len() as f64;
                            rmses.push(mse.sqrt());
                        }
                        Err(_) => {
                            supported = false;
                            break;
                        }
                    }
                }
                let mean = |v: &[f64]| {
                    if v.is_empty() {
                        0.0
                    } else {
                        v.iter().sum::<f64>() / v.len() as f64
                    }
                };
                let wall_ms = if walls.is_empty() {
                    0.0
                } else {
                    percentile_ms(&mut walls, 0.5)
                };
                let cell = FrontierCell {
                    backend: kind.name().to_string(),
                    topology: prep.name.to_string(),
                    loss_model: loss_name.to_string(),
                    paths: prep.red.num_paths(),
                    links: prep.red.num_links(),
                    runs,
                    supported,
                    wall_ms_median: wall_ms,
                    dr: mean(&drs),
                    fpr: mean(&fprs),
                    rate_rmse: mean(&rmses),
                };
                if supported {
                    println!(
                        "{:<8} {:<10} {:<13} {:>9.2} {:>8} {:>8} {:>10.5}",
                        cell.topology,
                        cell.loss_model,
                        cell.backend,
                        cell.wall_ms_median,
                        pct(cell.dr),
                        pct(cell.fpr),
                        cell.rate_rmse
                    );
                } else {
                    println!(
                        "{:<8} {:<10} {:<13} (unsupported on this topology)",
                        cell.topology, cell.loss_model, cell.backend
                    );
                }
                cells.push(cell);
            }
        }
    }

    // Deng-vs-LIA gate on the mesh + Gilbert cell.
    let find = |backend: &str| {
        cells
            .iter()
            .find(|c| c.backend == backend && c.topology == "Waxman" && c.loss_model == "gilbert")
            .expect("gate cell present")
    };
    let (lia, deng) = (find("lia"), find("deng-fast"));
    let speedup = lia.wall_ms_median / deng.wall_ms_median.max(1e-9);
    let dr_delta = (deng.dr - lia.dr).abs();
    let enforced = scale == Scale::Paper;
    let gate = GateReport {
        cell: "Waxman/gilbert".to_string(),
        lia_ms: lia.wall_ms_median,
        deng_ms: deng.wall_ms_median,
        speedup,
        lia_dr: lia.dr,
        deng_dr: deng.dr,
        dr_delta_pts: 100.0 * dr_delta,
        enforced,
    };
    println!();
    println!(
        "gate: deng-fast {:.2}ms vs lia {:.2}ms on the Waxman mesh — {:.2}× speedup, DR delta {:.1}pt",
        gate.deng_ms, gate.lia_ms, gate.speedup, gate.dr_delta_pts
    );
    if enforced {
        assert!(
            speedup >= 2.0,
            "GATE FAILED: deng-fast only {speedup:.2}× faster than lia (need ≥2×)"
        );
        assert!(
            dr_delta <= 0.05,
            "GATE FAILED: deng-fast DR {:.3} vs lia {:.3} ({:.1}pt apart, need ≤5pt)",
            deng.dr,
            lia.dr,
            gate.dr_delta_pts
        );
        println!("gate passed: ≥2× speedup with DR within 5pt.");
    } else {
        println!("gate recorded but not enforced at quick scale.");
    }

    let report = Report {
        meta: bench_meta("scale_estimators", scale),
        snapshots,
        cells,
        gate,
    };
    write_bench_report("BENCH_estimators.json", &report);
}
