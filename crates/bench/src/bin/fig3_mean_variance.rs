//! Figure 3 — mean vs variance of end-to-end loss rates.
//!
//! The paper plots 17 200 PlanetLab paths measured every ~5 minutes over
//! one day (250 samples of S = 1000 probes each) and observes that the
//! variance of a path's loss rate grows monotonically with its mean —
//! the empirical basis for Assumption S.3. We reproduce the experiment
//! on the synthetic PlanetLab-like topology and report the scatter plus
//! its Spearman rank correlation.
//!
//! Flags: `--scale quick|paper`, `--snapshots N` (default 250).

use losstomo_bench::{flag_value, planetlab_topology, Scale};
use losstomo_core::analysis::{mean_variance_per_path, mean_variance_spearman};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let snapshots: usize = flag_value("--snapshots")
        .and_then(|v| v.parse().ok())
        .unwrap_or(match scale {
            Scale::Paper => 250,
            Scale::Quick => 60,
        });
    let prep = planetlab_topology(scale, 42);
    println!(
        "Figure 3 — mean vs variance of path loss rates ({} paths, {} snapshots of S=1000)",
        prep.red.num_paths(),
        snapshots
    );

    let mut rng = StdRng::seed_from_u64(7);
    // Markov persistence: congestion episodes last a few snapshots, as
    // in the real Internet trace behind Figure 3.
    let mut scenario = CongestionScenario::draw(
        prep.red.num_links(),
        0.1,
        CongestionDynamics::Markov {
            stay_congested: 0.5,
        },
        &mut rng,
    );
    let ms = simulate_run(
        &prep.red,
        &mut scenario,
        &ProbeConfig::default(),
        snapshots,
        &mut rng,
    );
    let points = mean_variance_per_path(&ms);

    // Bucket the scatter for terminal display.
    let header = format!(
        "{:>18} {:>10} {:>16} {:>16}",
        "mean-loss bucket", "paths", "avg variance", "max variance"
    );
    println!();
    println!("{header}");
    losstomo_bench::rule(&header);
    let edges = [0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5];
    for w in edges.windows(2) {
        let bucket: Vec<f64> = points
            .iter()
            .filter(|p| p.mean >= w[0] && p.mean < w[1])
            .map(|p| p.variance)
            .collect();
        if bucket.is_empty() {
            continue;
        }
        let avg = bucket.iter().sum::<f64>() / bucket.len() as f64;
        let max = bucket.iter().cloned().fold(0.0_f64, f64::max);
        println!(
            "{:>18} {:>10} {:>16.6} {:>16.6}",
            format!("[{:.3},{:.3})", w[0], w[1]),
            bucket.len(),
            avg,
            max
        );
    }
    println!();
    let rho = mean_variance_spearman(&points);
    println!("Spearman rank correlation (mean vs variance): {rho:.3}");
    println!("Paper's claim (Assumption S.3): variance is a non-decreasing function of the mean.");
}
