//! Extension (Section 8) — link *delay* inference with the same
//! second-order machinery.
//!
//! The paper's first proposed extension: congested links have high delay
//! variance, so the identifiability result and the two-phase algorithm
//! carry over to delays (additive composition, no log transform). This
//! binary mirrors the loss experiments' shape for delays under two
//! congestion regimes: the paper's fixed congested set, and Markov
//! churn (which degrades delay inference exactly as it degrades loss
//! inference — see `ablation_persistence`).
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, runs_from_args, tree_topology, Scale};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::{
    estimate_delay_variances, infer_link_delays, LiaConfig, VarianceConfig,
};
use losstomo_netsim::delay::{simulate_delay_run, DelayConfig, DelayNetwork};
use losstomo_netsim::{CongestionDynamics, CongestionScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    let m = 50usize;
    println!(
        "Extension — delay tomography (tree, {} links, m={m}, {} runs)",
        prep.red.num_links(),
        runs
    );
    let aug = AugmentedSystem::build(&prep.red);
    let cfg = DelayConfig::default();

    println!();
    let header = format!(
        "{:<22} {:>10} {:>10} {:>22}",
        "dynamics", "DR", "FPR", "median rel. error"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    for (label, dynamics) in [
        ("fixed (paper-like)", CongestionDynamics::Fixed),
        (
            "markov stay=0.7",
            CongestionDynamics::Markov {
                stay_congested: 0.7,
            },
        ),
    ] {
        let mut drs = Vec::new();
        let mut fprs = Vec::new();
        let mut rel_errors = Vec::new();
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(14_000 + run as u64);
            let net = DelayNetwork::draw(&prep.red, &cfg, &mut rng);
            let mut scenario = CongestionScenario::draw(
                prep.red.num_links(),
                0.1,
                dynamics,
                &mut rng,
            );
            let snaps =
                simulate_delay_run(&prep.red, &net, &mut scenario, &cfg, m + 1, &mut rng);
            let v = match estimate_delay_variances(
                &prep.red,
                &aug,
                &snaps[..m],
                &VarianceConfig::default(),
            ) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("run {run}: {e}");
                    continue;
                }
            };
            let est = match infer_link_delays(
                &prep.red,
                &v.v,
                &snaps[..m],
                &snaps[m],
                &LiaConfig::default(),
            ) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("run {run}: {e}");
                    continue;
                }
            };
            // DR over the *detectable* congested links (congested now
            // and seen congested in ≥ m/4 window snapshots); FPs are
            // diagnosed links that are not congested now at all.
            let detectable: Vec<usize> = (0..prep.red.num_links())
                .filter(|&k| {
                    snaps[m].congested[k]
                        && snaps[..m].iter().filter(|s| s.congested[k]).count() >= m / 4
                })
                .collect();
            let diagnosed: Vec<usize> = est.congested_links(2.0);
            let hits = detectable
                .iter()
                .filter(|k| diagnosed.contains(k))
                .count();
            let false_pos = diagnosed
                .iter()
                .filter(|&&k| !snaps[m].congested[k])
                .count();
            if !detectable.is_empty() {
                drs.push(hits as f64 / detectable.len() as f64);
            }
            if !diagnosed.is_empty() {
                fprs.push(false_pos as f64 / diagnosed.len() as f64);
            }
            for (k, (&e, &t)) in est
                .queue_delay
                .iter()
                .zip(snaps[m].link_queue_delay.iter())
                .enumerate()
            {
                if est.kept[k] && t > 5.0 {
                    rel_errors.push((e - t).abs() / t);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let med = losstomo_core::metrics::summarize(&rel_errors)
            .map(|s| s.median)
            .unwrap_or(f64::NAN);
        println!(
            "{:<22} {:>10} {:>10} {:>21.1}%",
            label,
            pct(avg(&drs)),
            pct(avg(&fprs)),
            100.0 * med
        );
    }
    println!();
    println!("Expected shape: with a stable congested set the delay extension matches");
    println!("the loss results (high DR, low FPR, tight estimates); churn degrades it");
    println!("exactly as it degrades loss inference (cf. ablation_persistence).");
}
