//! scale_simd — scalar vs AVX2 microkernel wall-clock at paper scale.
//!
//! Times every SIMD-dispatched kernel family of the numeric hot path
//! under an explicitly forced engine (`Engine::Scalar` vs
//! `Engine::Avx2`, plus `avx2+fma` where the CPU has it) on
//! paper-scale inputs:
//!
//! * **blocked** — `blocked::matmul_with` (`RᵀR` of the paper tree's
//!   routing matrix) and `blocked::gram_with` (same product through the
//!   dedicated Gram kernel);
//! * **cholesky** — `Cholesky::factor_into_with` on the SPD matrix
//!   `RᵀR + εI` (the trailing-update kernel dominates);
//! * **covariance** — `CenteredMeasurements::pair_covariances_with_engine`
//!   over the tree's augmented pair list;
//! * **sparse_qr** — `SparseQr::refactor_with` on the 2450-path Waxman
//!   routing matrix. The Givens rotation is merge-bound, so dispatch
//!   keeps the single-pass scalar rotation under every engine (see
//!   `ROTATE_SPAN_MIN` in `losstomo-linalg`); this row pins the
//!   no-regression contract (≈1.0×) rather than a speedup.
//!
//! The non-FMA AVX2 engine is asserted **bit-identical** to scalar on
//! every kernel; the opt-in `avx2+fma` engine's maximum relative
//! deviation is recorded (contracted rounding, ~1e-16 per op). At paper
//! scale on AVX2 hardware the report gates in-binary: at least two of
//! the four kernel families must show a ≥1.5× SIMD speedup.
//!
//! Flags: `--scale quick|paper`, `--runs N`, `--out PATH`. Writes
//! `BENCH_simd.json`.

use losstomo_bench::{
    bench_meta, runs_from_args, tree_topology, waxman_topology, write_bench_report, BenchMeta,
    Scale,
};
use losstomo_core::{AugmentedSystem, CenteredMeasurements};
use losstomo_linalg::{blocked, Cholesky, CsrMatrix, Engine, SparseQr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::hint::black_box;
use std::time::Instant;

/// One kernel × engine-set measurement.
#[derive(Debug, Serialize, Deserialize)]
struct KernelTiming {
    /// Kernel name (`matmul`, `gram`, `cholesky`, `covariance`, `sparse_qr`).
    kernel: String,
    /// Dispatch family the kernel belongs to (the gate counts families).
    family: String,
    /// Problem dimensions, human-readable.
    dims: String,
    /// Best wall of the forced-scalar engine, milliseconds.
    scalar_ms: f64,
    /// Best wall of the forced-AVX2 (non-FMA) engine; absent off x86.
    avx2_ms: Option<f64>,
    /// Best wall of the opt-in `avx2+fma` engine, when the CPU has FMA.
    avx2_fma_ms: Option<f64>,
    /// `scalar_ms / avx2_ms`.
    speedup_avx2: Option<f64>,
    /// Non-FMA AVX2 output is bit-for-bit the scalar output.
    bitwise_identical_avx2: Option<bool>,
    /// Max relative deviation of the FMA engine from scalar.
    max_rel_dev_fma: Option<f64>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SimdBenchReport {
    meta: BenchMeta,
    /// AVX2 detected at runtime on this host.
    avx2_available: bool,
    /// FMA detected at runtime on this host.
    fma_available: bool,
    /// Engine the default `LOSSTOMO_SIMD`-driven dispatch resolves to.
    default_engine: String,
    /// Interleaved timing rounds per kernel (best-of reported).
    runs: usize,
    kernels: Vec<KernelTiming>,
    /// Families with a ≥1.5× AVX2 speedup (gated ≥2 at paper scale).
    families_at_gate: usize,
}

/// Max relative deviation between two equally-shaped value slices.
fn max_rel_dev(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let scale = x.abs().max(y.abs());
            if scale == 0.0 {
                0.0
            } else {
                (x - y).abs() / scale
            }
        })
        .fold(0.0, f64::max)
}

/// Times one kernel under every available engine.
///
/// `time_fn` runs just the kernel under a forced engine (the timed
/// region — no allocation or conversion of engine-independent cost);
/// `out_fn` runs it once more and returns the output as a flat value
/// slice (bit-compared for the non-FMA engine, tolerance-compared for
/// FMA).
fn bench_kernel<T, F>(
    kernel: &str,
    family: &str,
    dims: String,
    runs: usize,
    mut time_fn: T,
    mut out_fn: F,
) -> KernelTiming
where
    T: FnMut(Engine),
    F: FnMut(Engine) -> Vec<f64>,
{
    // Engines are timed interleaved (scalar, avx2, fma, scalar, …) and
    // the best of `runs` rounds is kept per engine: interference on a
    // shared host then hits every engine symmetrically instead of
    // biasing whichever one owned the noisy window.
    let mut engines = vec![Engine::Scalar];
    if Engine::avx2_available() {
        engines.push(Engine::Avx2 { fma: false });
    }
    if Engine::fma_available() {
        engines.push(Engine::Avx2 { fma: true });
    }
    let reference = out_fn(Engine::Scalar); // warm-up + scalar reference output
    let mut best = vec![f64::INFINITY; engines.len()];
    for _ in 0..runs {
        for (e, wall) in engines.iter().zip(best.iter_mut()) {
            let t0 = Instant::now();
            time_fn(*e);
            *wall = wall.min(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let scalar_ms = best[0];
    let (mut avx2_ms, mut speedup, mut bitwise) = (None, None, None);
    let (mut fma_ms, mut fma_dev) = (None, None);
    if Engine::avx2_available() {
        bitwise = Some(out_fn(Engine::Avx2 { fma: false }) == reference);
        speedup = Some(scalar_ms / best[1].max(1e-9));
        avx2_ms = Some(best[1]);
        if Engine::fma_available() {
            fma_dev = Some(max_rel_dev(&out_fn(Engine::Avx2 { fma: true }), &reference));
            fma_ms = Some(best[2]);
        }
    }
    let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |w| format!("{w:.2}ms"));
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}   {}",
        kernel,
        format!("{scalar_ms:.2}ms"),
        fmt(avx2_ms),
        fmt(fma_ms),
        speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
        dims
    );
    KernelTiming {
        kernel: kernel.to_string(),
        family: family.to_string(),
        dims,
        scalar_ms,
        avx2_ms,
        avx2_fma_ms: fma_ms,
        speedup_avx2: speedup,
        bitwise_identical_avx2: bitwise,
        max_rel_dev_fma: fma_dev,
    }
}

/// Deterministic centered-measurement window over `paths` paths.
fn synthetic_measurements(paths: usize, snapshots: usize) -> CenteredMeasurements {
    let mut rng = StdRng::seed_from_u64(42);
    let rows: Vec<Vec<f64>> = (0..snapshots)
        .map(|_| (0..paths).map(|_| rng.gen_range(-0.08..0.0)).collect())
        .collect();
    CenteredMeasurements::from_rows(rows)
}

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(match scale {
        Scale::Paper => 5,
        Scale::Quick => 3,
    });
    println!(
        "scale_simd — scalar vs AVX2 microkernels ({} scale, {} runs, avx2={}, fma={})",
        scale.name(),
        runs,
        Engine::avx2_available(),
        Engine::fma_available()
    );
    println!();

    let tree = tree_topology(scale, 11);
    let waxman = waxman_topology(scale, 17);
    let r = tree.red.matrix.to_dense();
    let rt = r.transpose();
    let (np, nl) = (r.rows(), r.cols());
    println!(
        "inputs: {} ({np} paths × {nl} links), {} ({} paths × {} links)",
        tree.name,
        waxman.name,
        waxman.red.num_paths(),
        waxman.red.num_links()
    );

    // SPD input for the Cholesky kernel: RᵀR plus a diagonal bump that
    // keeps the tree's rank-deficient Gram positive definite.
    let mut spd = blocked::gram_with(&r, Engine::Scalar);
    for i in 0..nl {
        spd[(i, i)] += 1.0;
    }
    let snapshots = match scale {
        Scale::Paper => 240,
        Scale::Quick => 60,
    };
    let pairs = AugmentedSystem::build(&tree.red).pair_indices();
    let meas = synthetic_measurements(np, snapshots);
    let csr: CsrMatrix = waxman.red.matrix.to_sparse();

    let header = format!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}   {}",
        "kernel", "scalar", "avx2", "avx2+fma", "speedup", "dims"
    );
    println!();
    println!("{header}");
    losstomo_bench::rule(&header);

    // Reused factorisation workspaces so the timed region is the kernel
    // itself, not constructor or conversion overhead (RefCell: the
    // timing and output closures of one kernel share the workspace).
    let chol = RefCell::new(Cholesky::new(&spd).expect("SPD by construction"));
    let qr = RefCell::new(SparseQr::new_with(csr.clone(), Engine::Scalar).expect("routing matrix"));
    let kernels = vec![
        bench_kernel(
            "matmul",
            "blocked",
            format!("{nl}x{np} * {np}x{nl}"),
            runs,
            |e| {
                black_box(blocked::matmul_with(&rt, &r, e));
            },
            |e| blocked::matmul_with(&rt, &r, e).as_slice().to_vec(),
        ),
        bench_kernel(
            "gram",
            "blocked",
            format!("gram({np}x{nl})"),
            runs,
            |e| {
                black_box(blocked::gram_with(&r, e));
            },
            |e| blocked::gram_with(&r, e).as_slice().to_vec(),
        ),
        bench_kernel(
            "cholesky",
            "cholesky",
            format!("chol({nl}x{nl})"),
            runs,
            |e| {
                let mut chol = chol.borrow_mut();
                chol.factor_into_with(&spd, e).expect("SPD by construction");
                black_box(&*chol);
            },
            |e| {
                let mut chol = chol.borrow_mut();
                chol.factor_into_with(&spd, e).expect("SPD by construction");
                chol.l().as_slice().to_vec()
            },
        ),
        bench_kernel(
            "covariance",
            "covariance",
            format!("{} pairs × {snapshots} snapshots", pairs.len()),
            runs,
            |e| {
                black_box(meas.pair_covariances_with_engine(&pairs, e));
            },
            |e| meas.pair_covariances_with_engine(&pairs, e),
        ),
        bench_kernel(
            "sparse_qr",
            "sparse_qr",
            format!("qr({}x{}, nnz={})", csr.rows(), csr.cols(), csr.nnz()),
            runs,
            |e| {
                let rfac = qr
                    .borrow_mut()
                    .refactor_with(csr.clone(), e)
                    .expect("routing matrix");
                black_box(rfac);
            },
            |e| {
                let rfac = qr
                    .borrow_mut()
                    .refactor_with(csr.clone(), e)
                    .expect("routing matrix");
                rfac.to_dense().as_slice().to_vec()
            },
        ),
    ];

    // Exactness: the default (non-FMA) AVX2 engine must reproduce the
    // scalar kernels bit-for-bit, at every scale.
    for k in &kernels {
        if let Some(identical) = k.bitwise_identical_avx2 {
            assert!(
                identical,
                "{} AVX2 kernel diverged bitwise from scalar — the exactness contract is broken",
                k.kernel
            );
        }
    }

    // Speed gate: at paper scale on AVX2 hardware, at least two of the
    // four kernel families must clear 1.5x.
    let mut families: Vec<&str> = Vec::new();
    for k in &kernels {
        if k.speedup_avx2.is_some_and(|s| s >= 1.5) && !families.contains(&k.family.as_str()) {
            families.push(&k.family);
        }
    }
    let families_at_gate = families.len();
    println!();
    println!(
        "families ≥1.5x under AVX2: {families_at_gate}/4 ({})",
        if families.is_empty() {
            "none".to_string()
        } else {
            families.join(", ")
        }
    );
    if scale == Scale::Paper && Engine::avx2_available() {
        assert!(
            families_at_gate >= 2,
            "SIMD dispatch must speed up ≥2 of 4 kernel families by ≥1.5x at paper scale, \
             got {families_at_gate}"
        );
    }

    let report = SimdBenchReport {
        meta: bench_meta("scale_simd", scale),
        avx2_available: Engine::avx2_available(),
        fma_available: Engine::fma_available(),
        default_engine: losstomo_linalg::simd::active().name().to_string(),
        runs,
        kernels,
        families_at_gate,
    };
    write_bench_report("BENCH_simd.json", &report);
}
