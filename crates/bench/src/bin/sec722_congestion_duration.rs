//! Section 7.2.2 — how long do links stay congested?
//!
//! The paper applies LIA to 100 consecutive snapshots (t_l = 0.01,
//! m = 50) and finds 99 % of congested links stay congested for exactly
//! one 5-minute snapshot, the rest for two. We reproduce the analysis
//! with Markov congestion dynamics whose persistence is deliberately
//! low (episodes averaging ~1 snapshot), then measure the *inferred*
//! episode lengths exactly like the paper does.
//!
//! Flags: `--scale quick|paper`, `--snapshots N` (default 100).

use losstomo_bench::{flag_value, planetlab_topology, Scale};
use losstomo_core::analysis::{congestion_durations, fraction_single_snapshot};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{estimate_variances, infer_link_rates, LiaConfig, VarianceConfig};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let eval_snapshots: usize = flag_value("--snapshots")
        .and_then(|v| v.parse().ok())
        .unwrap_or(match scale {
            Scale::Paper => 100,
            Scale::Quick => 30,
        });
    let m = 50usize;
    let tl = 0.01;
    let prep = planetlab_topology(scale, 42);
    println!(
        "Section 7.2.2 — congestion episode durations ({} evaluation snapshots, t_l = {tl})",
        eval_snapshots
    );

    let mut rng = StdRng::seed_from_u64(23);
    // Short-lived congestion: P(stay) = 0.05 → mean episode ≈ 1.05
    // snapshots, approximating the paper's observation.
    let mut scenario = CongestionScenario::draw(
        prep.red.num_links(),
        0.1,
        CongestionDynamics::Markov {
            stay_congested: 0.05,
        },
        &mut rng,
    );
    let total = m + eval_snapshots;
    let ms: MeasurementSet = simulate_run(
        &prep.red,
        &mut scenario,
        &ProbeConfig::default(),
        total,
        &mut rng,
    );

    let aug = AugmentedSystem::build(&prep.red);
    let mut diagnosed: Vec<Vec<bool>> = Vec::with_capacity(eval_snapshots);
    for t in m..total {
        // Sliding window: learn variances on the m snapshots before t.
        let train = MeasurementSet {
            snapshots: ms.snapshots[t - m..t].to_vec(),
        };
        let centered = CenteredMeasurements::new(&train);
        let v = match estimate_variances(&prep.red, &aug, &centered, &VarianceConfig::default())
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("t={t}: {e}");
                continue;
            }
        };
        let eval = &ms.snapshots[t];
        match infer_link_rates(&prep.red, &v.v, &eval.log_rates(), &LiaConfig::default()) {
            Ok(est) => diagnosed.push(
                est.loss_rates().iter().map(|&l| l > tl).collect(),
            ),
            Err(e) => eprintln!("t={t}: {e}"),
        }
    }

    let hist = congestion_durations(&diagnosed);
    println!();
    let header = format!("{:>22} {:>10} {:>10}", "duration (snapshots)", "episodes", "share");
    println!("{header}");
    losstomo_bench::rule(&header);
    let total_eps: usize = hist.iter().sum();
    for (d, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        println!(
            "{:>22} {:>10} {:>9.1}%",
            d + 1,
            count,
            100.0 * count as f64 / total_eps.max(1) as f64
        );
    }
    println!();
    println!(
        "Fraction of single-snapshot episodes: {:.1}% (paper: 99%)",
        100.0 * fraction_single_snapshot(&hist)
    );
}
