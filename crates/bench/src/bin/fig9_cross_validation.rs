//! Figure 9 — cross-validation on the (simulated) PlanetLab network,
//! swept across the estimator zoo.
//!
//! Ground truth is unavailable on the real Internet, so the paper splits
//! the measured paths into an inference half and a validation half, runs
//! LIA on the former and checks eq. (11) (|measured − predicted| ≤
//! ε = 0.005) on the latter, as a function of the learning window `m`.
//! More than 95 % of paths validate, flattening out beyond m ≈ 80.
//!
//! This reproduction also injects traceroute topology errors
//! (non-responding routers, unresolved interface aliases) to exercise
//! the paper's robustness claim: inference runs on the *observed*
//! topology while losses happen on the true one. Every
//! [`losstomo_core::EstimatorKind`] backend runs on the same grid — the
//! consistency check is exactly the kind of oracle-free comparison the
//! estimator zoo exists for. Zhu's closed form requires a tree, so its
//! rows report all runs failed on this mesh (by design, not by crash).
//!
//! Flags: `--scale quick|paper`, `--runs N`, `--no-traceroute-errors`.

use losstomo_bench::{
    planetlab_topology, run_grid_metric, runs_from_args, GridCase, Scale,
};
use losstomo_core::{
    cross_validate, CrossValidationConfig, EstimatorKind, ExperimentConfig,
};
use losstomo_netsim::{
    observe, simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet,
    TracerouteConfig,
};
use losstomo_topology::reduce;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let with_errors = !std::env::args().any(|a| a == "--no-traceroute-errors");
    let prep = planetlab_topology(scale, 42);

    // Observed topology: replay traceroute with the Section-7 error
    // rates. Losses are simulated on the true topology; inference sees
    // only the observed routing matrix.
    let mut trng = StdRng::seed_from_u64(17);
    let paths = losstomo_topology::compute_paths(
        &prep.topo.graph,
        &prep.topo.beacons,
        &prep.topo.destinations,
    );
    let obs_red = if with_errors {
        let obs = observe(
            &prep.topo.graph,
            &paths,
            &TracerouteConfig::default(),
            &mut trng,
        );
        reduce(&obs.graph, &obs.paths)
    } else {
        prep.red.clone()
    };

    println!(
        "Figure 9 — cross-validation, ε = 0.005 ({} paths, traceroute errors: {})",
        obs_red.num_paths(),
        with_errors
    );
    println!();

    // Section 7 measures the *real* Internet, where congestion incidence
    // is far sparser than the LLRD1 simulation's p = 10 % (the paper
    // itself finds 99 % of congested links last a single 5-minute
    // snapshot). We use p = 3 % for the Internet-experiment
    // reproduction; paths crossing no congested link validate trivially,
    // as PlanetLab's mostly-clean paths did.
    let cases: Vec<GridCase> = [20usize, 40, 60, 80, 100]
        .into_iter()
        .flat_map(|m| {
            EstimatorKind::all().into_iter().map(move |kind| {
                GridCase::new(
                    format!("m={m:<3} {}", kind.name()),
                    ExperimentConfig {
                        snapshots: m,
                        p_congested: 0.03,
                        dynamics: CongestionDynamics::Fixed,
                        estimator: kind,
                        seed: 7000,
                        ..ExperimentConfig::default()
                    },
                )
            })
        })
        .collect();

    // One seeded cross-validation round per (case, seed): simulate on
    // the TRUE topology, infer and validate on the OBSERVED one. Same
    // RNG discipline as the historical hand-rolled loop (one stream for
    // scenario, simulation, and the split).
    let outcomes = run_grid_metric(cases, runs, |cfg| {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut scenario = CongestionScenario::draw(
            prep.red.num_links(),
            cfg.p_congested,
            cfg.dynamics,
            &mut rng,
        );
        let ms: MeasurementSet = simulate_run(
            &prep.red,
            &mut scenario,
            &cfg.probe,
            cfg.snapshots + 1,
            &mut rng,
        );
        let cv = CrossValidationConfig {
            estimator: cfg.estimator,
            lia: cfg.lia,
            variance: cfg.variance,
            ..CrossValidationConfig::default()
        };
        cross_validate(&obs_red, &ms, &cv, &mut rng).map(|res| res.percent_consistent())
    });

    let header = format!("{:<20} {:>22}", "case", "% consistent paths");
    println!("{header}");
    losstomo_bench::rule(&header);
    for o in &outcomes {
        if o.values.is_empty() {
            println!(
                "{:<20} (all {} runs failed — backend unsupported here)",
                o.label, o.failed
            );
        } else {
            println!("{:<20} {:>21.1}%", o.label, o.mean);
        }
    }
    println!();
    println!("Paper shape (lia rows): > 95% of validation paths consistent,");
    println!("increasing in m and flattening out for m ≳ 80 — despite traceroute");
    println!("topology errors. zhu-mle requires a tree and reports failure on");
    println!("this mesh. Note first-moment often scores HIGHEST here: an");
    println!("under-fitting estimator that predicts near-zero loss validates");
    println!("trivially on mostly-clean paths — eq. (11) consistency is a");
    println!("necessary check, not a sufficient one (cf. its DR/FPR in");
    println!("BENCH_estimators.json).");
}
