//! Figure 9 — cross-validation of LIA on the (simulated) PlanetLab
//! network.
//!
//! Ground truth is unavailable on the real Internet, so the paper splits
//! the measured paths into an inference half and a validation half, runs
//! LIA on the former and checks eq. (11) (|measured − predicted| ≤
//! ε = 0.005) on the latter, as a function of the learning window `m`.
//! More than 95 % of paths validate, flattening out beyond m ≈ 80.
//!
//! This reproduction also injects traceroute topology errors
//! (non-responding routers, unresolved interface aliases) to exercise
//! the paper's robustness claim: inference runs on the *observed*
//! topology while losses happen on the true one.
//!
//! Flags: `--scale quick|paper`, `--runs N`, `--no-traceroute-errors`.

use losstomo_bench::{planetlab_topology, runs_from_args, Scale};
use losstomo_core::{cross_validate, CrossValidationConfig};
use losstomo_netsim::{
    observe, simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet,
    ProbeConfig, TracerouteConfig,
};
use losstomo_topology::reduce;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let with_errors = !std::env::args().any(|a| a == "--no-traceroute-errors");
    let prep = planetlab_topology(scale, 42);

    // Observed topology: replay traceroute with the Section-7 error
    // rates. Losses are simulated on the true topology; LIA sees only
    // the observed routing matrix.
    let mut trng = StdRng::seed_from_u64(17);
    let paths = losstomo_topology::compute_paths(
        &prep.topo.graph,
        &prep.topo.beacons,
        &prep.topo.destinations,
    );
    let obs_red = if with_errors {
        let obs = observe(
            &prep.topo.graph,
            &paths,
            &TracerouteConfig::default(),
            &mut trng,
        );
        reduce(&obs.graph, &obs.paths)
    } else {
        prep.red.clone()
    };

    println!(
        "Figure 9 — cross-validation, ε = 0.005 ({} paths, traceroute errors: {})",
        obs_red.num_paths(),
        with_errors
    );
    println!();
    let header = format!("{:>6} {:>22}", "m", "% consistent paths");
    println!("{header}");
    losstomo_bench::rule(&header);

    // Section 7 measures the *real* Internet, where congestion incidence
    // is far sparser than the LLRD1 simulation's p = 10 % (the paper
    // itself finds 99 % of congested links last a single 5-minute
    // snapshot). We use p = 3 % for the Internet-experiment
    // reproduction; paths crossing no congested link validate trivially,
    // as PlanetLab's mostly-clean paths did.
    for m in [20usize, 40, 60, 80, 100] {
        let mut percents = Vec::new();
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(7000 + run as u64);
            let mut scenario = CongestionScenario::draw(
                prep.red.num_links(),
                0.03,
                CongestionDynamics::Fixed,
                &mut rng,
            );
            // Simulate on the TRUE topology.
            let ms: MeasurementSet = simulate_run(
                &prep.red,
                &mut scenario,
                &ProbeConfig::default(),
                m + 1,
                &mut rng,
            );
            // Validate with the OBSERVED routing matrix.
            match cross_validate(&obs_red, &ms, &CrossValidationConfig::default(), &mut rng)
            {
                Ok(res) => percents.push(res.percent_consistent()),
                Err(e) => eprintln!("m={m} run={run}: {e}"),
            }
        }
        let avg = percents.iter().sum::<f64>() / percents.len().max(1) as f64;
        println!("{:>6} {:>21.1}%", m, avg);
    }
    println!();
    println!("Paper shape: > 95% of validation paths consistent, increasing in m");
    println!("and flattening out for m ≳ 80 — despite traceroute topology errors.");
}
