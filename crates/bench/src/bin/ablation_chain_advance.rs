//! Ablation — Gilbert chain-advance semantics.
//!
//! Section 6's wording admits two readings of when a link's loss chain
//! transitions: once per probe *round* (losses are wall-clock bursts
//! shared by all concurrent packets — makes Assumption S.1 exact) or
//! once per packet *arrival* (every flow samples its own transitions —
//! S.1 only holds in the law-of-large-numbers limit). The per-round
//! semantics is our default; this study quantifies how much the
//! per-arrival reading degrades LIA.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, runs_from_args, tree_topology, Scale};
use losstomo_core::metrics::summarize;
use losstomo_core::{run_many, ExperimentConfig, RateErrors};
use losstomo_netsim::{ChainAdvance, ProbeConfig};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    println!(
        "Ablation — chain-advance semantics (tree, m=50, {} runs)",
        runs
    );
    println!();
    let header = format!(
        "{:<22} {:>8} {:>8} {:>10} {:>10}",
        "semantics", "DR", "FPR", "EF median", "AE max"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    for (label, advance) in [
        ("per-round (default)", ChainAdvance::PerRound),
        ("per-arrival", ChainAdvance::PerArrival),
    ] {
        let cfg = ExperimentConfig {
            snapshots: 50,
            probe: ProbeConfig {
                advance,
                ..ProbeConfig::default()
            },
            seed: 13_000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len() as f64;
        let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
        let fpr = ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n;
        let mut errs = RateErrors::default();
        for r in &ok {
            errs.extend(&r.errors);
        }
        let ef = summarize(&errs.error_factors).expect("nonempty");
        let ae = summarize(&errs.absolute_errors).expect("nonempty");
        println!(
            "{:<22} {:>8} {:>8} {:>10.3} {:>10.5}",
            label,
            pct(dr),
            pct(fpr),
            ef.median,
            ae.max
        );
    }
    println!();
    println!("Expected: per-round (S.1 exact) gives tighter estimates; per-arrival");
    println!("adds independent per-path sampling noise that inflates FPR.");
}
