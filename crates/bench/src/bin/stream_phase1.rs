//! stream_phase1 — per-snapshot latency of the streaming estimator vs
//! a full batch recompute.
//!
//! Warms an `OnlineEstimator` with `m` snapshots on the paper's tree
//! topology, then times the next `k` snapshots two ways:
//!
//! * **online** — one `OnlineEstimator::ingest` call: Welford update,
//!   exact covariance replay, gram-cache-patched Phase-1 solve,
//!   order-memoized Phase-2 estimate;
//! * **batch** — the full recompute a cron-style monitor would run:
//!   re-extract every snapshot's log rates, re-centre, re-sweep the
//!   covariances, re-assemble and re-solve Phase 1, re-run the Phase-2
//!   rank bisection and factorisation.
//!
//! Both paths see identical data, share the prebuilt augmented system,
//! and are asserted to produce **bit-identical** estimates (the
//! default `OnlineEstimator` configuration is exact). Writes a
//! machine-readable report to `BENCH_stream.json` at the repo root
//! (override with `--out PATH`); CI runs `--scale quick` and
//! schema-checks the JSON.
//!
//! Flags: `--scale quick|paper`, `--out PATH`.

use losstomo_bench::{
    bench_meta, tree_topology, write_bench_report, BenchMeta, PreparedTopology, Scale,
};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{
    estimate_variances, infer_link_rates, LiaConfig, OnlineConfig, OnlineEstimator,
    VarianceConfig,
};
use losstomo_netsim::{
    simulate_run_batch, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
    Snapshot,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Debug, Serialize, Deserialize)]
struct StreamReport {
    meta: BenchMeta,
    topology: String,
    paths: usize,
    links: usize,
    aug_rows: usize,
    warmup_snapshots: usize,
    measured_snapshots: usize,
    /// Median wall-clock of one online ingest (covariance update +
    /// refresh + Phase-2 estimate), milliseconds.
    online_ingest_ms: f64,
    /// Median wall-clock of the equivalent batch recompute, ms.
    batch_recompute_ms: f64,
    /// `batch_recompute_ms / online_ingest_ms`.
    speedup: f64,
    /// Online and batch estimates agree bit-for-bit on every measured
    /// snapshot.
    bitwise_identical: bool,
}

fn ms(t: std::time::Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

fn median(samples: &mut [std::time::Duration]) -> std::time::Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The batch recompute a periodic monitor would run after snapshot `t`:
/// Phase 1 over snapshots `0..=t`, Phase 2 on snapshot `t`. Returns the
/// Phase-1 variances and the Phase-2 transmission rates.
fn batch_recompute(
    prep: &PreparedTopology,
    aug: &AugmentedSystem,
    snapshots: &[Snapshot],
    eval: &Snapshot,
) -> (Vec<f64>, Vec<f64>) {
    let train = MeasurementSet {
        snapshots: snapshots.to_vec(),
    };
    let centered = CenteredMeasurements::new(&train);
    let est_v = estimate_variances(&prep.red, aug, &centered, &VarianceConfig::default())
        .expect("batch phase 1");
    let est = infer_link_rates(&prep.red, &est_v.v, &eval.log_rates(), &LiaConfig::default())
        .expect("batch phase 2");
    (est_v.v, est.transmission)
}

fn main() {
    let scale = Scale::from_args();
    let warmup = 50;
    let measured = 10;
    println!(
        "stream_phase1 — streaming vs batch per-snapshot latency ({} scale)",
        scale.name()
    );
    println!();

    let prep = tree_topology(scale, 11);
    let red = &prep.red;
    let mut rng = StdRng::seed_from_u64(7);
    let scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let probe = ProbeConfig::default();
    let all: MeasurementSet = simulate_run_batch(red, &scenario, &probe, warmup + measured, &[1])
        .into_iter()
        .next()
        .expect("one run requested");

    let aug = AugmentedSystem::build(red);
    println!(
        "topology: {} — {} paths, {} links, {} augmented rows",
        prep.name,
        red.num_paths(),
        red.num_links(),
        aug.num_rows()
    );

    // Warm the online estimator (untimed: steady-state is what a
    // long-running monitor pays per snapshot).
    let mut online = OnlineEstimator::new(red, OnlineConfig::default());
    for snap in &all.snapshots[..warmup] {
        online.ingest(snap).expect("warmup ingest");
    }

    let header = format!(
        "{:<10} {:>14} {:>14} {:>9}",
        "snapshot", "online", "batch", "speedup"
    );
    println!();
    println!("{header}");
    losstomo_bench::rule(&header);

    let mut online_samples = Vec::new();
    let mut batch_samples = Vec::new();
    let mut bitwise_identical = true;
    for t in warmup..warmup + measured {
        let snap = &all.snapshots[t];

        let t0 = Instant::now();
        let update = online.ingest(snap).expect("online ingest");
        let online_dt = t0.elapsed();
        let online_v = online.variances().expect("warm estimator").v.clone();
        let online_tx = update
            .estimate
            .as_ref()
            .expect("warm estimator scores every snapshot")
            .transmission
            .clone();

        let t0 = Instant::now();
        let (batch_v, batch_tx) = batch_recompute(&prep, &aug, &all.snapshots[..=t], snap);
        let batch_dt = t0.elapsed();

        bitwise_identical &= online_v == batch_v && online_tx == batch_tx;
        println!(
            "{:<10} {:>12.2}ms {:>12.2}ms {:>8.2}x",
            t,
            ms(online_dt),
            ms(batch_dt),
            ms(batch_dt) / ms(online_dt).max(1e-9)
        );
        online_samples.push(online_dt);
        batch_samples.push(batch_dt);
    }

    let online_med = ms(median(&mut online_samples));
    let batch_med = ms(median(&mut batch_samples));
    let speedup = batch_med / online_med.max(1e-9);
    println!();
    println!(
        "median per snapshot: online {online_med:.2}ms, batch {batch_med:.2}ms ({speedup:.2}x)"
    );
    assert!(
        bitwise_identical,
        "online and batch estimates drifted — the exactness contract is broken"
    );
    // The strictly-faster requirement is a paper-scale claim; at quick
    // scale both paths run in ~1 ms and scheduling noise on a shared
    // runner could flip the medians, so CI only schema-checks there.
    if scale == Scale::Paper {
        assert!(
            online_med < batch_med,
            "online refresh ({online_med:.2}ms) must beat the batch recompute ({batch_med:.2}ms)"
        );
    }

    let report = StreamReport {
        meta: bench_meta("stream_phase1", scale),
        topology: prep.name.to_string(),
        paths: red.num_paths(),
        links: red.num_links(),
        aug_rows: aug.num_rows(),
        warmup_snapshots: warmup,
        measured_snapshots: measured,
        online_ingest_ms: online_med,
        batch_recompute_ms: batch_med,
        speedup,
        bitwise_identical,
    };
    write_bench_report("BENCH_stream.json", &report);
}
