//! scale_phase2 — the sparse Phase-2 dispatch vs the dense baseline,
//! and the new mesh-size ceiling.
//!
//! Two measurements, one report (`BENCH_sparse.json`):
//!
//! 1. **Dense vs sparse Phase 2** on the paper-scale Waxman mesh
//!    (1000 nodes / 50 hosts → the 2450×2570 reduced system): learn
//!    the variances once, then run the Phase-2 column elimination +
//!    reduced solve through both dispatch paths
//!    ([`Phase2Dispatch::Dense`], the PR-2 pivoted-QR baseline, vs
//!    [`Phase2Dispatch::Sparse`], the Givens sparse QR) and compare
//!    wall-clock and outputs. The congested sets must be identical.
//! 2. **Scale ceiling**: the full inference pipeline (simulate → build
//!    `A` → Phase 1 → Phase 2) on a ≥ 5000-node Waxman mesh with the
//!    auto dispatch, timed against the same pipeline on the old
//!    1000-node mesh with the dense Phase 2 — the new mesh must finish
//!    end-to-end in less time than the old ceiling did.
//!
//! At `--scale quick` (CI) the meshes shrink, the sparse path is
//! exercised by forcing the dispatch, and only the output-equality
//! assertions run — the wall-clock gates are paper-scale claims.
//!
//! Flags: `--scale quick|paper`, `--out PATH`, `--nodes N` (override
//! the scale-mesh node count).

use losstomo_bench::{
    bench_meta, flag_value, waxman_scale_topology, waxman_topology, write_bench_report, BenchMeta,
    PreparedTopology, Scale,
};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{
    infer_link_rates, LiaConfig, LinkRateEstimate, Phase2Dispatch, VarianceConfig,
};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Dense-vs-sparse Phase-2 comparison on the baseline mesh.
#[derive(Debug, Serialize, Deserialize)]
struct Phase2Report {
    topology: String,
    paths: usize,
    links: usize,
    snapshots: usize,
    /// One dense Phase-2 run (column elimination + reduced solve), ms.
    dense_ms: f64,
    /// Median of three sparse Phase-2 runs, ms.
    sparse_ms: f64,
    /// `dense_ms / sparse_ms`.
    speedup: f64,
    /// Dense and sparse kept column sets are identical.
    kept_identical: bool,
    /// Dense and sparse congested sets are identical.
    congested_identical: bool,
    /// Max |dense − sparse| over the per-link transmission rates.
    max_abs_rate_diff: f64,
}

/// End-to-end pipeline timing on the scale mesh vs the old ceiling.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleReport {
    nodes: usize,
    paths: usize,
    links: usize,
    aug_rows: usize,
    snapshots: usize,
    /// simulate + build A + Phase 1 + Phase 2 on the scale mesh, ms.
    e2e_ms: f64,
    baseline_nodes: usize,
    baseline_links: usize,
    /// The same pipeline on the old mesh with the dense Phase 2, ms.
    baseline_e2e_ms: f64,
    /// `e2e_ms < baseline_e2e_ms` — the new ceiling claim.
    faster_than_old_ceiling: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct SparseBenchReport {
    meta: BenchMeta,
    phase2: Phase2Report,
    scale: ScaleReport,
}

fn ms(t: Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Probe settings for the scale runs: the loss process is irrelevant to
/// the numerics being timed, so fewer probes keep the simulation stage
/// honest without drowning the factorisation signal.
fn probe_cfg() -> ProbeConfig {
    ProbeConfig {
        probes_per_snapshot: 200,
        ..ProbeConfig::default()
    }
}

/// Simulates `m + 1` snapshots and learns the Phase-1 variances.
/// Returns the variances, the evaluation snapshot's log rates, the
/// augmented row count, and the wall-clock of each stage.
struct PreparedRun {
    variances: Vec<f64>,
    y_eval: Vec<f64>,
    aug_rows: usize,
    upstream: Duration,
}

fn prepare_run(prep: &PreparedTopology, m: usize) -> PreparedRun {
    let red = &prep.red;
    let mut rng = StdRng::seed_from_u64(13);
    let mut scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let cfg = probe_cfg();
    let t0 = Instant::now();
    let ms_all: MeasurementSet = simulate_run(red, &mut scenario, &cfg, m + 1, &mut rng);
    let train = MeasurementSet {
        snapshots: ms_all.snapshots[..m].to_vec(),
    };
    let aug = AugmentedSystem::build(red);
    let centered = CenteredMeasurements::new(&train);
    let est = losstomo_core::estimate_variances(red, &aug, &centered, &VarianceConfig::default())
        .expect("phase 1");
    let upstream = t0.elapsed();
    PreparedRun {
        variances: est.v,
        y_eval: ms_all.snapshots[m].log_rates(),
        aug_rows: aug.num_rows(),
        upstream,
    }
}

/// Runs Phase 2 once with the given dispatch and returns the estimate
/// and its wall-clock.
fn phase2(
    prep: &PreparedTopology,
    run: &PreparedRun,
    dispatch: Phase2Dispatch,
) -> (LinkRateEstimate, Duration) {
    let cfg = LiaConfig {
        dispatch,
        ..LiaConfig::default()
    };
    let t0 = Instant::now();
    let est = infer_link_rates(&prep.red, &run.variances, &run.y_eval, &cfg).expect("phase 2");
    (est, t0.elapsed())
}

fn main() {
    let scale = Scale::from_args();
    // Baseline mesh: the paper-scale Waxman (the PR-2 ceiling).
    let (base_nodes, base_hosts, scale_nodes, scale_hosts, m) = match scale {
        Scale::Paper => (1000, 50, 5000, 50, 20),
        Scale::Quick => (150, 16, 300, 20, 6),
    };
    let scale_nodes = flag_value("--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(scale_nodes);
    println!("scale_phase2 — sparse Phase-2 dispatch vs dense baseline ({} scale)", scale.name());
    println!();

    // --- 1. dense vs sparse Phase 2 on the baseline mesh ---------------
    let base = if scale == Scale::Paper {
        // The canonical paper-scale mesh (2450 paths × ~2.5k links,
        // the PR-2 pivoted-QR ceiling); its link count sits just above
        // the dense threshold, so Auto dispatch now takes the sparse
        // path on it too.
        waxman_topology(scale, 1)
    } else {
        waxman_scale_topology(base_nodes, base_hosts, 42)
    };
    println!(
        "baseline mesh: {} nodes — {} paths × {} links",
        base_nodes,
        base.red.num_paths(),
        base.red.num_links()
    );
    let base_run = prepare_run(&base, m);
    println!(
        "  upstream (simulate + A + phase 1): {:.0} ms, {} augmented rows",
        ms(base_run.upstream),
        base_run.aug_rows
    );

    let (dense_est, dense_dt) = phase2(&base, &base_run, Phase2Dispatch::Dense);
    let mut sparse_samples = Vec::new();
    let mut sparse_est = None;
    for _ in 0..3 {
        let (est, dt) = phase2(&base, &base_run, Phase2Dispatch::Sparse);
        sparse_samples.push(dt);
        sparse_est = Some(est);
    }
    let sparse_est = sparse_est.expect("three sparse runs completed");
    let sparse_dt = median(&mut sparse_samples);

    let threshold = probe_cfg().loss_model.threshold();
    let kept_identical = dense_est.kept == sparse_est.kept;
    let congested_identical =
        dense_est.congested_links(threshold) == sparse_est.congested_links(threshold);
    let max_abs_rate_diff = dense_est
        .transmission
        .iter()
        .zip(sparse_est.transmission.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    let speedup = ms(dense_dt) / ms(sparse_dt).max(1e-9);
    println!(
        "  phase 2: dense {:.0} ms, sparse {:.0} ms ({speedup:.1}x), max rate diff {max_abs_rate_diff:.2e}",
        ms(dense_dt),
        ms(sparse_dt)
    );
    assert!(
        congested_identical,
        "dense and sparse Phase 2 disagree on the congested set"
    );
    assert!(
        kept_identical,
        "dense and sparse Phase 2 disagree on the kept column set"
    );
    if scale == Scale::Paper {
        assert!(
            speedup >= 5.0,
            "sparse Phase 2 must be ≥5x the dense baseline, got {speedup:.2}x"
        );
    }

    // --- 2. the scale ceiling ------------------------------------------
    println!();
    println!("scale mesh: {scale_nodes} nodes (generating…)");
    let big = waxman_scale_topology(scale_nodes, scale_hosts, 43);
    println!(
        "  {} paths × {} links",
        big.red.num_paths(),
        big.red.num_links()
    );
    // Old ceiling: the baseline mesh end-to-end with the dense Phase 2.
    let baseline_e2e = base_run.upstream + dense_dt;
    // New pipeline on the scale mesh: auto dispatch (sparse above the
    // threshold at paper scale; forced sparse at quick scale so CI
    // exercises the path).
    let big_dispatch = match scale {
        Scale::Paper => Phase2Dispatch::Auto,
        Scale::Quick => Phase2Dispatch::Sparse,
    };
    let t0 = Instant::now();
    let big_run = prepare_run(&big, m);
    let (_big_est, big_p2_dt) = phase2(&big, &big_run, big_dispatch);
    let big_e2e = t0.elapsed();
    println!(
        "  end-to-end {:.0} ms (phase 2: {:.0} ms) vs old {}-node ceiling {:.0} ms",
        ms(big_e2e),
        ms(big_p2_dt),
        base_nodes,
        ms(baseline_e2e)
    );
    let faster = big_e2e < baseline_e2e;
    if scale == Scale::Paper {
        assert!(
            faster,
            "the {scale_nodes}-node mesh must finish under the old {base_nodes}-node time"
        );
    }

    let report = SparseBenchReport {
        meta: bench_meta("scale_phase2", scale),
        phase2: Phase2Report {
            topology: base.name.to_string(),
            paths: base.red.num_paths(),
            links: base.red.num_links(),
            snapshots: m,
            dense_ms: ms(dense_dt),
            sparse_ms: ms(sparse_dt),
            speedup,
            kept_identical,
            congested_identical,
            max_abs_rate_diff,
        },
        scale: ScaleReport {
            nodes: scale_nodes,
            paths: big.red.num_paths(),
            links: big.red.num_links(),
            aug_rows: big_run.aug_rows,
            snapshots: m,
            e2e_ms: ms(big_e2e),
            baseline_nodes: base_nodes,
            baseline_links: base.red.num_links(),
            baseline_e2e_ms: ms(baseline_e2e),
            faster_than_old_ceiling: faster,
        },
    };
    write_bench_report("BENCH_sparse.json", &report);
}
