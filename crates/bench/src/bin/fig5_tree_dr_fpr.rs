//! Figure 5 — accuracy of LIA vs SCFS in locating congested links on
//! trees, as a function of the number of learning snapshots `m`.
//!
//! Paper setup: 1000-node trees (branching ≤ 10), beacon at the root,
//! destinations at the leaves, `p = 10 %`, LLRD1, `S = 1000`, each point
//! averaged over 10 runs. LIA's DR climbs above 0.9 and its FPR stays
//! near zero, while single-snapshot SCFS sits significantly lower.
//!
//! Flags: `--scale quick|paper`, `--runs N` (default 10),
//! `--m-values 10,20,...`.

use losstomo_bench::{flag_value, pct, runs_from_args, tree_topology, Scale};
use losstomo_core::{run_many, ExperimentConfig};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let m_values: Vec<usize> = flag_value("--m-values")
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);

    let prep = tree_topology(scale, 11);
    println!(
        "Figure 5 — LIA vs SCFS on a tree ({} nodes → {} paths, {} links), p=10%, S=1000, {} runs",
        prep.topo.graph.node_count(),
        prep.red.num_paths(),
        prep.red.num_links(),
        runs
    );
    println!();
    let header = format!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "m", "LIA DR", "LIA FPR", "SCFS DR", "SCFS FPR"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    for &m in &m_values {
        let cfg = ExperimentConfig {
            snapshots: m,
            run_scfs: true,
            seed: 1000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len() as f64;
        let lia_dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
        let lia_fpr = ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n;
        let scfs_dr = ok
            .iter()
            .filter_map(|r| r.scfs_location.map(|l| l.detection_rate))
            .sum::<f64>()
            / n;
        let scfs_fpr = ok
            .iter()
            .filter_map(|r| r.scfs_location.map(|l| l.false_positive_rate))
            .sum::<f64>()
            / n;
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12}",
            m,
            pct(lia_dr),
            pct(lia_fpr),
            pct(scfs_dr),
            pct(scfs_fpr)
        );
    }
    println!();
    println!("Paper shape: LIA DR ≳ 90% rising with m, FPR a few %;");
    println!("SCFS (one snapshot, no second-order information) well below LIA.");
}
