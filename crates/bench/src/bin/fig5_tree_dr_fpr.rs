//! Figure 5 — accuracy of LIA vs SCFS in locating congested links on
//! trees, as a function of the number of learning snapshots `m`.
//!
//! Paper setup: 1000-node trees (branching ≤ 10), beacon at the root,
//! destinations at the leaves, `p = 10 %`, LLRD1, `S = 1000`, each point
//! averaged over 10 runs. LIA's DR climbs above 0.9 and its FPR stays
//! near zero, while single-snapshot SCFS sits significantly lower.
//!
//! Flags: `--scale quick|paper`, `--runs N` (default 10),
//! `--m-values 10,20,...`.

use losstomo_bench::{
    flag_value, pct, run_grid, runs_from_args, tree_topology, GridCase, Scale,
};
use losstomo_core::ExperimentConfig;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let m_values: Vec<usize> = flag_value("--m-values")
        .map(|v| v.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);

    let prep = tree_topology(scale, 11);
    println!(
        "Figure 5 — LIA vs SCFS on a tree ({} nodes → {} paths, {} links), p=10%, S=1000, {} runs",
        prep.topo.graph.node_count(),
        prep.red.num_paths(),
        prep.red.num_links(),
        runs
    );
    println!();

    let cases: Vec<GridCase> = m_values
        .iter()
        .map(|&m| {
            GridCase::new(
                m.to_string(),
                ExperimentConfig {
                    snapshots: m,
                    run_scfs: true,
                    seed: 1000,
                    ..ExperimentConfig::default()
                },
            )
        })
        .collect();
    let outcomes = run_grid(&prep.red, cases, runs);

    // Four metric columns (LIA + the SCFS baseline), so the rows are
    // formatted here; the sweep itself is the shared grid runner.
    let header = format!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "m", "LIA DR", "LIA FPR", "SCFS DR", "SCFS FPR"
    );
    println!("{header}");
    losstomo_bench::rule(&header);
    for o in &outcomes {
        let scfs_dr = o.mean_of(|r| r.scfs_location.map(|l| l.detection_rate));
        let scfs_fpr = o.mean_of(|r| r.scfs_location.map(|l| l.false_positive_rate));
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12}",
            o.label,
            pct(o.mean_dr),
            pct(o.mean_fpr),
            pct(scfs_dr),
            pct(scfs_fpr)
        );
    }
    println!();
    println!("Paper shape: LIA DR ≳ 90% rising with m, FPR a few %;");
    println!("SCFS (one snapshot, no second-order information) well below LIA.");
}
