//! Figure 7 — ratio between the number of congested links and the
//! number of columns kept in `R*`.
//!
//! The Phase-2 approximation (removed links ≈ loss-free) is only safe if
//! every congested link survives into `R*`; a sufficient indicator is
//! that the number of congested links stays below the number of kept
//! columns. The paper shows this ratio is below 1 on every topology.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{runs_from_args, table2_topologies, tree_topology, Scale};
use losstomo_core::{run_many, ExperimentConfig};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    println!("Figure 7 — #congested links / #columns in R* (p=10%, m=50, {} runs)", runs);
    println!();
    let header = format!(
        "{:<26} {:>12} {:>12} {:>10}",
        "Topology", "congested", "kept cols", "ratio"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    let mut preps = vec![tree_topology(scale, 11)];
    preps.extend(table2_topologies(scale, 77));
    for prep in preps {
        let cfg = ExperimentConfig {
            snapshots: 50,
            seed: 4000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len() as f64;
        let congested = ok.iter().map(|r| r.congested_count as f64).sum::<f64>() / n;
        let kept = ok.iter().map(|r| r.kept_count as f64).sum::<f64>() / n;
        let ratio = ok.iter().map(|r| r.congested_to_kept_ratio()).sum::<f64>() / n;
        println!(
            "{:<26} {:>12.1} {:>12.1} {:>10.3}",
            prep.name, congested, kept, ratio
        );
    }
    println!();
    println!("Paper shape: the ratio is always below 1 — R* retains every congested link.");
}
