//! Table 3 — location of congested links: inter-AS vs intra-AS.
//!
//! The paper maps inferred congested links to RouteViews BGP ASes and
//! finds them slightly more likely to be inter-AS, with the skew
//! shrinking as the loss threshold `t_l` grows. We reproduce the
//! analysis on the AS-annotated DIMES-like topology (hosts in stub
//! ASes of a power-law AS graph), giving inter-AS links a higher
//! congestion probability than intra-AS links, as peering links are in
//! the commercial Internet.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{dimes_topology, runs_from_args, Scale};
use losstomo_core::analysis::{as_location, AsLocationStats};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{estimate_variances, infer_link_rates, LiaConfig, VarianceConfig};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = dimes_topology(scale, 42);
    println!(
        "Table 3 — inter- vs intra-AS location of congested links ({} links, {} runs)",
        prep.red.num_links(),
        runs
    );

    // Asymmetric congestion: inter-AS (peering) links congest at 2× the
    // rate of intra-AS links, averaging ~10% overall.
    let graph = &prep.topo.graph;
    let inter_prob = 0.16;
    let intra_prob = 0.08;

    let mut totals: Vec<(f64, AsLocationStats)> =
        vec![(0.04, zero()), (0.02, zero()), (0.01, zero())];

    let aug = AugmentedSystem::build(&prep.red);
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(8000 + run as u64);
        // Draw per-link congestion with AS-dependent probabilities.
        let mut scenario = CongestionScenario::draw(
            prep.red.num_links(),
            1.0, // placeholder; statuses overwritten below
            CongestionDynamics::Fixed,
            &mut rng,
        );
        let statuses: Vec<bool> = (0..prep.red.num_links())
            .map(|k| {
                let vl = &prep.red.virtual_links[k];
                let inter = vl
                    .physical
                    .iter()
                    .any(|&pl| graph.link_is_inter_as(pl) == Some(true));
                let p = if inter { inter_prob } else { intra_prob };
                rand::Rng::gen::<f64>(&mut rng) < p
            })
            .collect();
        scenario = scenario_with_statuses(scenario, &statuses);

        let ms: MeasurementSet = simulate_run(
            &prep.red,
            &mut scenario,
            &ProbeConfig::default(),
            51,
            &mut rng,
        );
        let train = MeasurementSet {
            snapshots: ms.snapshots[..50].to_vec(),
        };
        let centered = CenteredMeasurements::new(&train);
        let v = match estimate_variances(&prep.red, &aug, &centered, &VarianceConfig::default())
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("run {run}: {e}");
                continue;
            }
        };
        let eval = &ms.snapshots[50];
        let est = match infer_link_rates(&prep.red, &v.v, &eval.log_rates(), &LiaConfig::default())
        {
            Ok(e) => e,
            Err(e) => {
                eprintln!("run {run}: {e}");
                continue;
            }
        };
        let loss = est.loss_rates();
        for (tl, acc) in totals.iter_mut() {
            let s = as_location(graph, &prep.red, &loss, *tl);
            acc.inter_as += s.inter_as;
            acc.intra_as += s.intra_as;
            acc.unknown += s.unknown;
        }
    }

    println!();
    let header = format!("{:>8} {:>12} {:>12}", "t_l", "inter-AS", "intra-AS");
    println!("{header}");
    losstomo_bench::rule(&header);
    for (tl, s) in &totals {
        println!(
            "{:>8} {:>11.1}% {:>11.1}%",
            tl,
            s.percent_inter(),
            s.percent_intra()
        );
    }
    println!();
    println!("Paper shape: congested links are more likely inter-AS than intra-AS,");
    println!("with the inter-AS share growing as t_l shrinks (53.6/56.9/57.8% in the paper).");
}

fn zero() -> AsLocationStats {
    AsLocationStats {
        inter_as: 0,
        intra_as: 0,
        unknown: 0,
    }
}

/// Overwrites a scenario's statuses by drawing a fresh scenario whose
/// initial statuses are forced. `CongestionScenario` intentionally hides
/// its status vector behind `advance`; with `Fixed` dynamics we can
/// emulate arbitrary initial statuses by rebuilding per status.
fn scenario_with_statuses(
    proto: CongestionScenario,
    statuses: &[bool],
) -> CongestionScenario {
    // Deterministic trick: draw with p=1 / p=0 per link is not supported
    // directly, so re-draw links until statuses match would be wasteful.
    // Instead serialise through the public API: draw with p equal to the
    // empirical fraction and then keep redrawing only if mismatched is
    // too clever — we add a tiny shim instead.
    CongestionScenario::with_statuses(proto.p, proto.dynamics, statuses.to_vec())
}
