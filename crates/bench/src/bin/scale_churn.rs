//! scale_churn — live topology churn: delta-apply latency vs
//! rebuild-from-scratch.
//!
//! When routing changes under a running monitor there are two ways to
//! keep estimating: tear the estimator down and rebuild it on the new
//! topology (rebuild the augmented pair system, re-assemble the Gram
//! matrix, refactor Phase 1, re-ingest a window, re-solve), or patch
//! it in place with [`losstomo_core::OnlineEstimator::apply_delta`] —
//! pair rows and co-occurrence counts edited incrementally, the
//! Phase-1 factor repaired with rank-one Givens surgery, the
//! covariance window carried across with per-pair validity horizons.
//!
//! The timing arms run under [`FactorRefresh::GivensUpdate`], the
//! policy whose factor survives churn as rank-k surgery instead of an
//! `O(links³)` refactorisation (under `FactorRefresh::Exact` both
//! sides refactor and the comparison only measures the augmented-system
//! rebuild), with the kept mask pinned to all rows
//! (`drop_negative_covariances: false`) so the factor stays live on a
//! mesh Gram. The robustness contract is then checked under the default
//! exact policy: once the sliding window flushes its pre-churn
//! history, the churned estimator is **bit-identical** to a fresh one
//! built on the new topology and fed the same snapshots (the Givens
//! arms are asserted to agree to ≤1e-6 relative — factor surgery is
//! exact in exact arithmetic but not bit-stable).
//!
//! The delta is rank-preserving by construction — `k` reroutes as
//! route swaps plus an add/remove pair on one route — so the gate
//! measures the churn machinery, not a topology that happened to lose
//! Theorem-1 identifiability.
//!
//! **Gate (paper scale, 2450-node Waxman mesh):** the in-place delta
//! apply must be ≥3× faster than rebuild-from-scratch, with no
//! fallback rebuild and bitwise post-flush agreement. The report lands
//! in `BENCH_churn.json`.
//!
//! Flags: `--scale quick|paper`, `--out PATH`, `--reps N`.

use losstomo_bench::{
    bench_meta, flag_value, waxman_scale_topology, waxman_topology, write_bench_report, BenchMeta,
    PreparedTopology, Scale,
};
use losstomo_core::{
    FactorRefresh, OnlineConfig, OnlineEstimator, PairBudget, VarianceConfig, WindowMode,
};
use losstomo_netsim::{simulate_run, CongestionDynamics, CongestionScenario, ProbeConfig};
use losstomo_topology::{PathId, ReducedTopology, TopologyDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::time::Instant;

/// Sliding-window length: the history the churned estimator carries
/// and the flush horizon of the bit-identity check.
const WINDOW: usize = 32;

#[derive(Debug, Serialize, Deserialize)]
struct ChurnBenchReport {
    meta: BenchMeta,
    topology: String,
    paths: usize,
    links: usize,
    /// Augmented pair rows before the delta (full budget).
    aug_rows: usize,
    window: usize,
    reps: usize,
    /// Factor policy of the timing arms.
    timing_factor_policy: String,
    /// Delta composition.
    rerouted: usize,
    added: usize,
    removed: usize,
    /// Median in-place delta-apply latency (includes the post-churn
    /// refresh attempt), milliseconds.
    churn_apply_ms: f64,
    /// Median rebuild-from-scratch latency (construct on the new
    /// topology + re-ingest a full window + refresh), milliseconds.
    rebuild_ms: f64,
    /// `rebuild_ms / churn_apply_ms`.
    speedup: f64,
    /// Pair rows whose moments survived the delta unchanged.
    carried_pairs: usize,
    /// Pair rows recomputed because an endpoint path changed.
    recomputed_pairs: usize,
    /// Rank-one Givens updates pre-folding recomputed pair rows into
    /// the cached Phase-1 factor (applied before the downdates).
    factor_updates: usize,
    /// Rank-one Givens downdates applied to the cached Phase-1 factor.
    factor_downdates: usize,
    /// Whether any timing rep fell back to a clean factor rebuild (PD
    /// certificate failure) — must be `false` for a healthy gate.
    fallback: bool,
    /// Max relative variance difference between the Givens timing arms
    /// after the flush (surgery is exact arithmetic, not bit-stable).
    givens_rel_err: f64,
    /// The robustness contract, checked under the default exact
    /// policy: post-flush estimates bitwise equal to a fresh estimator
    /// on the new topology.
    bit_identical_after_flush: bool,
    samples: ChurnSamples,
}

#[derive(Debug, Serialize, Deserialize)]
struct ChurnSamples {
    churn_ms: Vec<f64>,
    rebuild_ms: Vec<f64>,
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

/// Simulates `n` snapshots on `red` and returns their log-rate rows.
fn log_rate_rows(red: &ReducedTopology, seed: u64, n: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let probe = ProbeConfig {
        probes_per_snapshot: 200,
        ..ProbeConfig::default()
    };
    let ms = simulate_run(red, &mut scenario, &probe, n, &mut rng);
    ms.snapshots.iter().map(|s| s.log_rates()).collect()
}

/// A warm estimator: full window ingested, model refreshed once.
fn warm(red: &ReducedTopology, cfg: OnlineConfig, rows: &[Vec<f64>]) -> OnlineEstimator {
    let mut est = OnlineEstimator::new(red, cfg);
    for row in rows {
        est.ingest_log_rates(row).expect("warm-up snapshot ingests");
    }
    est.refresh().expect("warm-up refresh solves");
    est
}

/// A mixed delta exercising every edit kind: `k` paths rerouted as
/// `k/2` route *swaps* (pairs of paths exchange routes, as when a load
/// balancer flips), plus one path added on an existing route and the
/// path that owned that route removed. Swaps and the add/remove pair
/// both preserve the multiset of routing rows, so the rank of the
/// augmented system — Theorem-1 identifiability — survives the churn
/// by construction (an arbitrary random reroute routinely destroys
/// it, which would gate on the topology rather than the machinery
/// under test).
fn churn_delta(red: &ReducedTopology, k: usize, seed: u64) -> TopologyDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let np = red.num_paths();
    let mut victims = BTreeSet::new();
    // 2 ⌈k/2⌉ + 1 distinct paths: k rerouted, one duplicated-and-removed.
    while victims.len() < (k / 2).max(1) * 2 + 1 {
        victims.insert(rng.gen_range(0..np));
    }
    let victims: Vec<usize> = victims.into_iter().collect();
    let mut delta = TopologyDelta::new();
    for pair in victims[1..].chunks_exact(2) {
        let (p, q) = (pair[0], pair[1]);
        delta = delta
            .reroute_path(PathId(p as u32), red.matrix.row(q).to_vec())
            .reroute_path(PathId(q as u32), red.matrix.row(p).to_vec());
    }
    let d = victims[0];
    delta
        .add_path(red.matrix.row(d).to_vec())
        .remove_path(PathId(d as u32))
}

fn main() {
    let scale = Scale::from_args();
    let reps: usize = flag_value("--reps").and_then(|v| v.parse().ok()).unwrap_or(3);
    println!(
        "scale_churn — delta-apply vs rebuild-from-scratch ({} scale, {reps} reps)",
        scale.name()
    );
    println!();

    let prep: PreparedTopology = match scale {
        // The 2450-node mesh of the scaling study.
        Scale::Paper => waxman_scale_topology(2450, 50, 11),
        Scale::Quick => waxman_topology(Scale::Quick, 11),
    };
    let red = &prep.red;
    let base = OnlineConfig {
        window: WindowMode::Sliding(WINDOW),
        // Refresh manually: warm-up ingests should not each pay a
        // Phase-1 solve, and both timed paths end with exactly one.
        refresh_every: 1_000_000,
        pair_budget: PairBudget::Full,
        ..OnlineConfig::default()
    };
    let givens = OnlineConfig {
        factor: FactorRefresh::GivensUpdate,
        // Pin the kept mask to all rows. On meshes the drop-negative
        // kept Gram is routinely unfactorable (the exact path ends up
        // serving its all-rows fold-back anyway); a stationary all-rows
        // mask keeps the Givens factor live across refreshes so churn
        // really is rank-k surgery against a standing factor.
        variance: VarianceConfig {
            drop_negative_covariances: false,
            ..VarianceConfig::default()
        },
        ..base
    };

    let np = red.num_paths();
    let k = (np / 100).max(4);
    let delta = churn_delta(red, k, 17);
    let mut red2 = red.clone();
    let effect = red2.apply_delta(&delta).expect("bench delta is valid");

    let warm_rows = log_rate_rows(red, 5, WINDOW);
    let post_rows = log_rate_rows(&red2, 6, WINDOW);
    println!(
        "{}: {} paths, {} links; delta reroutes {}, adds {}, removes {}",
        prep.name,
        np,
        red.num_links(),
        effect.changed.len() - effect.added.len(),
        effect.added.len(),
        effect.removed.len()
    );

    // --- In-place delta apply (Givens factor surgery), one warm
    // estimator per rep. ---
    let mut churn_ms = Vec::with_capacity(reps);
    let mut fallback = false;
    let mut aug_rows = 0;
    let mut last_report = None;
    let mut churned = None;
    for _ in 0..reps {
        let mut est = warm(red, givens, &warm_rows);
        aug_rows = est.augmented().num_rows();
        let t0 = Instant::now();
        let report = est.apply_delta(&delta).expect("estimator accepts the delta");
        churn_ms.push(ms_since(t0));
        assert!(
            est.topology().matrix == red2.matrix,
            "churned estimator tracks the new routing exactly"
        );
        fallback |= report.fallback.is_some();
        last_report = Some(report);
        churned = Some(est);
    }
    let report = last_report.expect("at least one rep");

    // --- Rebuild from scratch on the new topology. ---
    let mut rebuild_ms = Vec::with_capacity(reps);
    let mut fresh = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let est = warm(&red2, givens, &post_rows);
        rebuild_ms.push(ms_since(t0));
        fresh = Some(est);
    }
    let mut fresh = fresh.expect("at least one rep");

    // --- The Givens arms converge post-flush (exact arithmetic, not
    // bit-stable: the surviving factor carries surgery rounding). ---
    let mut churned = churned.expect("at least one rep");
    for row in &post_rows {
        churned
            .ingest_log_rates(row)
            .expect("post-churn snapshot ingests");
    }
    assert!(churned.staleness().is_flushed(), "window flushed after {WINDOW} snapshots");
    churned.refresh().expect("post-flush refresh solves");
    fresh.refresh().expect("fresh refresh solves");
    let givens_rel_err = churned
        .variances()
        .expect("churned model refreshed")
        .v
        .iter()
        .zip(fresh.variances().expect("fresh model refreshed").v.iter())
        .map(|(&a, &b)| (a - b).abs() / b.abs().max(1e-12))
        .fold(0.0f64, f64::max);
    assert!(
        givens_rel_err <= 1e-6,
        "Givens-surgery variances drifted {givens_rel_err:.3e} relative from fresh"
    );

    // --- The robustness contract under the default exact policy:
    // post-flush estimates bitwise equal to a fresh estimator. ---
    let mut exact_churned = warm(red, base, &warm_rows);
    exact_churned
        .apply_delta(&delta)
        .expect("estimator accepts the delta");
    for row in &post_rows {
        exact_churned
            .ingest_log_rates(row)
            .expect("post-churn snapshot ingests");
    }
    exact_churned.refresh().expect("post-flush refresh solves");
    let mut exact_fresh = warm(&red2, base, &post_rows);
    exact_fresh.refresh().expect("fresh refresh solves");
    let y = post_rows.last().expect("window is non-empty");
    let bit_identical = exact_churned.variances().map(|e| &e.v)
        == exact_fresh.variances().map(|e| &e.v)
        && exact_churned.kept_columns() == exact_fresh.kept_columns()
        && exact_churned.estimate(y).expect("churned Phase 2 solves").transmission
            == exact_fresh.estimate(y).expect("fresh Phase 2 solves").transmission;

    let churn_med = median(&churn_ms);
    let rebuild_med = median(&rebuild_ms);
    let speedup = rebuild_med / churn_med.max(1e-9);
    println!();
    println!(
        "delta apply  {:>10.1}ms   (carried {} pairs, recomputed {}, {} factor updates, {} downdates{})",
        churn_med,
        report.carried_pairs,
        report.recomputed_pairs,
        report.factor_updates,
        report.factor_downdates,
        if fallback { ", FELL BACK to rebuild" } else { "" }
    );
    println!("rebuild      {rebuild_med:>10.1}ms");
    println!("speedup      {speedup:>10.2}x");
    println!("givens arms post-flush rel err: {givens_rel_err:.3e}");
    println!(
        "post-flush bit-identical to fresh estimator (exact policy): {}",
        if bit_identical { "yes" } else { "NO" }
    );
    assert!(
        bit_identical,
        "post-flush estimates must be bitwise equal to a fresh estimator"
    );
    if scale == Scale::Paper {
        assert!(
            !fallback,
            "delta apply must not fall back to a clean rebuild at paper scale"
        );
        assert!(
            speedup >= 3.0,
            "delta apply must beat rebuild-from-scratch by ≥3x at paper scale, got {speedup:.2}x"
        );
    }

    let out = ChurnBenchReport {
        meta: bench_meta("scale_churn", scale),
        topology: prep.name.to_string(),
        paths: np,
        links: red.num_links(),
        aug_rows,
        window: WINDOW,
        reps,
        timing_factor_policy: "givens".to_string(),
        rerouted: effect.changed.len() - effect.added.len(),
        added: effect.added.len(),
        removed: effect.removed.len(),
        churn_apply_ms: churn_med,
        rebuild_ms: rebuild_med,
        speedup,
        carried_pairs: report.carried_pairs,
        recomputed_pairs: report.recomputed_pairs,
        factor_updates: report.factor_updates,
        factor_downdates: report.factor_downdates,
        fallback,
        givens_rel_err,
        bit_identical_after_flush: bit_identical,
        samples: ChurnSamples {
            churn_ms,
            rebuild_ms,
        },
    };
    write_bench_report("BENCH_churn.json", &out);
}
