//! Ablation — Phase-2 column-elimination strategy.
//!
//! The paper drops the globally smallest-variance column until `R*`
//! reaches full column rank; the greedy-matroid variant keeps every
//! column that is independent of the already-kept higher-variance set,
//! retaining strictly more columns (never discarding an identifiable
//! link). This study quantifies the difference in DR/FPR and in the
//! number of kept columns.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, runs_from_args, table2_topologies, tree_topology, Scale};
use losstomo_core::{run_many, EliminationStrategy, ExperimentConfig, LiaConfig};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    println!("Ablation — elimination strategy (paper order vs greedy matroid), {} runs", runs);
    println!();
    let header = format!(
        "{:<26} {:<14} {:>8} {:>8} {:>10}",
        "Topology", "strategy", "DR", "FPR", "kept cols"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    let mut preps = vec![tree_topology(scale, 11)];
    preps.extend(table2_topologies(scale, 77));
    for prep in preps {
        for (label, strategy) in [
            ("paper-order", EliminationStrategy::PaperOrder),
            ("greedy", EliminationStrategy::GreedyMatroid),
        ] {
            let cfg = ExperimentConfig {
                snapshots: 50,
                lia: LiaConfig {
                    elimination: strategy,
                    ..LiaConfig::default()
                },
                seed: 9000,
                ..ExperimentConfig::default()
            };
            let results = run_many(&prep.red, &cfg, runs);
            let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
            let n = ok.len() as f64;
            let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
            let fpr = ok
                .iter()
                .map(|r| r.location.false_positive_rate)
                .sum::<f64>()
                / n;
            let kept = ok.iter().map(|r| r.kept_count as f64).sum::<f64>() / n;
            println!(
                "{:<26} {:<14} {:>8} {:>8} {:>10.1}",
                prep.name,
                label,
                pct(dr),
                pct(fpr),
                kept
            );
        }
    }
    println!();
    println!("Expected: greedy keeps more columns (never loses a congested link to");
    println!("the dependency cascade) at the cost of more borderline false positives.");
}
