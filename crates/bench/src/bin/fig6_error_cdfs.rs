//! Figure 6 — CDFs of the absolute error and the error factor of LIA's
//! inferred link loss rates (tree topology, m = 50 snapshots).
//!
//! The paper's CDFs are extremely tight: absolute errors below ~0.0025
//! and error factors below ~1.25 for virtually all links. We print both
//! CDFs at fixed grid points.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{runs_from_args, tree_topology, Scale};
use losstomo_core::metrics::cdf_at;
use losstomo_core::{run_many, ExperimentConfig, RateErrors};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    println!(
        "Figure 6 — error CDFs on a tree ({} links), m=50, p=10%, S=1000, {} runs",
        prep.red.num_links(),
        runs
    );

    let cfg = ExperimentConfig {
        snapshots: 50,
        seed: 2000,
        ..ExperimentConfig::default()
    };
    let results = run_many(&prep.red, &cfg, runs);
    let mut all = RateErrors::default();
    for r in results.iter().filter_map(|r| r.as_ref().ok()) {
        all.extend(&r.errors);
    }

    println!();
    let header = format!("{:>16} {:>12}", "abs error ≤ x", "CDF");
    println!("{header}");
    losstomo_bench::rule(&header);
    for x in [0.0, 0.0005, 0.001, 0.0015, 0.002, 0.0025, 0.005, 0.01, 0.05] {
        println!("{:>16.4} {:>12.4}", x, cdf_at(&all.absolute_errors, x));
    }

    println!();
    let header = format!("{:>16} {:>12}", "error factor ≤ x", "CDF");
    println!("{header}");
    losstomo_bench::rule(&header);
    for x in [1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.5, 2.0, 5.0] {
        println!("{:>16.2} {:>12.4}", x, cdf_at(&all.error_factors, x));
    }
    println!();
    println!("Paper shape: both CDFs saturate fast — most links have error");
    println!("factor 1.00 and absolute error below ~0.0025.");
}
