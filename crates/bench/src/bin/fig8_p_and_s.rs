//! Figure 8 — effect of the congested fraction `p` and the probes per
//! snapshot `S` on LIA's accuracy (PlanetLab-like topology, m = 50).
//!
//! (a) sweeps p ∈ {5, 10, 15, 20, 25} % at S = 1000: accuracy degrades
//! as p grows because more congested links compete for columns of `R*`.
//! (b) sweeps S ∈ {50, 200, 400, 600, 800, 1000} at p = 10 %: sampling
//! error rises as S shrinks, but the impact is milder than (a).
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{
    pct, planetlab_topology, print_grid_dr_fpr, run_grid, runs_from_args, GridCase, Scale,
};
use losstomo_core::ExperimentConfig;
use losstomo_netsim::ProbeConfig;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = planetlab_topology(scale, 42);
    println!(
        "Figure 8 — effect of p and S (PlanetLab-like, {} paths, {} links, m=50, {} runs)",
        prep.red.num_paths(),
        prep.red.num_links(),
        runs
    );

    println!();
    println!("(a) varying the percentage of congested links p (S = 1000)");
    let p_cases: Vec<GridCase> = [0.05, 0.10, 0.15, 0.20, 0.25]
        .into_iter()
        .map(|p| {
            GridCase::new(
                pct(p),
                ExperimentConfig {
                    p_congested: p,
                    snapshots: 50,
                    seed: 5000,
                    ..ExperimentConfig::default()
                },
            )
        })
        .collect();
    print_grid_dr_fpr("p", &run_grid(&prep.red, p_cases, runs));

    println!();
    println!("(b) varying the number of probes per snapshot S (p = 10%)");
    let s_cases: Vec<GridCase> = [50u32, 200, 400, 600, 800, 1000]
        .into_iter()
        .map(|s| {
            GridCase::new(
                s.to_string(),
                ExperimentConfig {
                    snapshots: 50,
                    probe: ProbeConfig {
                        probes_per_snapshot: s,
                        ..ProbeConfig::default()
                    },
                    seed: 6000,
                    ..ExperimentConfig::default()
                },
            )
        })
        .collect();
    print_grid_dr_fpr("S", &run_grid(&prep.red, s_cases, runs));

    println!();
    println!("Paper shape: accuracy degrades as p grows; the impact of smaller S is less severe.");
}
