//! Figure 8 — effect of the congested fraction `p` and the probes per
//! snapshot `S` on LIA's accuracy (PlanetLab-like topology, m = 50).
//!
//! (a) sweeps p ∈ {5, 10, 15, 20, 25} % at S = 1000: accuracy degrades
//! as p grows because more congested links compete for columns of `R*`.
//! (b) sweeps S ∈ {50, 200, 400, 600, 800, 1000} at p = 10 %: sampling
//! error rises as S shrinks, but the impact is milder than (a).
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, planetlab_topology, runs_from_args, Scale};
use losstomo_core::{run_many, ExperimentConfig};
use losstomo_netsim::ProbeConfig;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = planetlab_topology(scale, 42);
    println!(
        "Figure 8 — effect of p and S (PlanetLab-like, {} paths, {} links, m=50, {} runs)",
        prep.red.num_paths(),
        prep.red.num_links(),
        runs
    );

    println!();
    println!("(a) varying the percentage of congested links p (S = 1000)");
    let header = format!("{:>8} {:>10} {:>10}", "p", "DR", "FPR");
    println!("{header}");
    losstomo_bench::rule(&header);
    for p in [0.05, 0.10, 0.15, 0.20, 0.25] {
        let cfg = ExperimentConfig {
            p_congested: p,
            snapshots: 50,
            seed: 5000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len() as f64;
        let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
        let fpr = ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n;
        println!("{:>8} {:>10} {:>10}", pct(p), pct(dr), pct(fpr));
    }

    println!();
    println!("(b) varying the number of probes per snapshot S (p = 10%)");
    let header = format!("{:>8} {:>10} {:>10}", "S", "DR", "FPR");
    println!("{header}");
    losstomo_bench::rule(&header);
    for s in [50u32, 200, 400, 600, 800, 1000] {
        let cfg = ExperimentConfig {
            snapshots: 50,
            probe: ProbeConfig {
                probes_per_snapshot: s,
                ..ProbeConfig::default()
            },
            seed: 6000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len() as f64;
        let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
        let fpr = ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n;
        println!("{:>8} {:>10} {:>10}", s, pct(dr), pct(fpr));
    }
    println!();
    println!("Paper shape: accuracy degrades as p grows; the impact of smaller S is less severe.");
}
