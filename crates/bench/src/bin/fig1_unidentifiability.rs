//! Figure 1 — first-order moments cannot identify link loss rates.
//!
//! Reproduces the paper's motivating example: two different link
//! transmission-rate assignments on the same 3-path tree produce
//! *identical* end-to-end transmission rates, so no algorithm using only
//! average path rates can tell them apart. The second-order moments,
//! however, are identifiable (Theorem 1): we print the rank report of
//! both `R` and the augmented matrix `A`.

use losstomo_core::check_identifiability;
use losstomo_topology::fixtures;
use losstomo_topology::routing::compute_paths;

fn main() {
    let topo = fixtures::figure1();
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = fixtures::reduced(&topo);
    let (rates_a, rates_b) = fixtures::figure1_ambiguous_rates();

    println!("Figure 1 — un-identifiability of first-order moments");
    println!();
    println!("Topology: beacon B1, destinations D1..D3, 5 links");
    println!("Assignment A (link transmission rates): {rates_a:?}");
    println!("Assignment B (link transmission rates): {rates_b:?}");
    println!();
    let header = format!(
        "{:<10} {:>18} {:>18} {:>10}",
        "path", "rate under A", "rate under B", "equal?"
    );
    println!("{header}");
    losstomo_bench::rule(&header);
    for (i, (_, p)) in paths.iter().enumerate() {
        let a: f64 = p.links.iter().map(|l| rates_a[l.index()]).product();
        let b: f64 = p.links.iter().map(|l| rates_b[l.index()]).product();
        println!(
            "{:<10} {:>18.6} {:>18.6} {:>10}",
            format!("P{}", i + 1),
            a,
            b,
            if (a - b).abs() < 1e-12 { "yes" } else { "NO" }
        );
    }
    println!();
    let report = check_identifiability(&red);
    println!(
        "rank(R) = {} over n_c = {} links  →  first moments identifiable: {}",
        report.r_rank, report.num_links, report.first_moment_identifiable
    );
    println!(
        "rank(A) = n_c                     →  link variances identifiable: {} (Theorem 1)",
        report.variances_identifiable
    );
}
