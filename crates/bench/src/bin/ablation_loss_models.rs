//! Ablation — loss process (Gilbert vs Bernoulli) and loss-rate model
//! (LLRD1 vs LLRD2).
//!
//! The paper reports "very little difference" between LLRD1 and LLRD2
//! and between Gilbert and Bernoulli losses. This study verifies both
//! claims on the tree topology.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, runs_from_args, tree_topology, Scale};
use losstomo_core::metrics::summarize;
use losstomo_core::{run_many, ExperimentConfig, RateErrors};
use losstomo_netsim::{LossModel, LossProcessKind, ProbeConfig};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    println!(
        "Ablation — loss models and processes (tree, {} links, m=50, {} runs)",
        prep.red.num_links(),
        runs
    );
    println!();
    let header = format!(
        "{:<12} {:<12} {:>8} {:>8} {:>10} {:>10}",
        "model", "process", "DR", "FPR", "EF median", "AE median"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    for model in [LossModel::Llrd1, LossModel::Llrd2] {
        for process in [LossProcessKind::Gilbert, LossProcessKind::Bernoulli] {
            let cfg = ExperimentConfig {
                snapshots: 50,
                probe: ProbeConfig {
                    loss_model: model,
                    process,
                    ..ProbeConfig::default()
                },
                seed: 10_000,
                ..ExperimentConfig::default()
            };
            let results = run_many(&prep.red, &cfg, runs);
            let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
            let n = ok.len() as f64;
            let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
            let fpr = ok
                .iter()
                .map(|r| r.location.false_positive_rate)
                .sum::<f64>()
                / n;
            let mut errs = RateErrors::default();
            for r in &ok {
                errs.extend(&r.errors);
            }
            let ef = summarize(&errs.error_factors).expect("nonempty");
            let ae = summarize(&errs.absolute_errors).expect("nonempty");
            println!(
                "{:<12} {:<12} {:>8} {:>8} {:>10.3} {:>10.5}",
                format!("{model:?}"),
                format!("{process:?}"),
                pct(dr),
                pct(fpr),
                ef.median,
                ae.median
            );
        }
    }
    println!();
    println!("Paper's claim: differences between the models/processes are insignificant.");
}
