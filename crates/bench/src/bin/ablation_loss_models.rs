//! Ablation — loss process (Gilbert vs Bernoulli) and loss-rate model
//! (LLRD1 vs LLRD2).
//!
//! The paper reports "very little difference" between LLRD1 and LLRD2
//! and between Gilbert and Bernoulli losses. This study verifies both
//! claims on the tree topology.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, run_grid, runs_from_args, tree_topology, GridCase, Scale};
use losstomo_core::metrics::summarize;
use losstomo_core::{ExperimentConfig, RateErrors};
use losstomo_netsim::{LossModel, LossProcessKind, ProbeConfig};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    println!(
        "Ablation — loss models and processes (tree, {} links, m=50, {} runs)",
        prep.red.num_links(),
        runs
    );
    println!();

    let mut cases = Vec::new();
    for model in [LossModel::Llrd1, LossModel::Llrd2] {
        for process in [LossProcessKind::Gilbert, LossProcessKind::Bernoulli] {
            cases.push(GridCase::new(
                format!("{:<12} {:<12}", format!("{model:?}"), format!("{process:?}")),
                ExperimentConfig {
                    snapshots: 50,
                    probe: ProbeConfig {
                        loss_model: model,
                        process,
                        ..ProbeConfig::default()
                    },
                    seed: 10_000,
                    ..ExperimentConfig::default()
                },
            ));
        }
    }
    let outcomes = run_grid(&prep.red, cases, runs);

    // DR/FPR come from the shared grid runner; the per-link rate-error
    // medians are this study's extra columns.
    let header = format!(
        "{:<25} {:>8} {:>8} {:>10} {:>10}",
        "model        process", "DR", "FPR", "EF median", "AE median"
    );
    println!("{header}");
    losstomo_bench::rule(&header);
    for o in &outcomes {
        let mut errs = RateErrors::default();
        for r in &o.results {
            errs.extend(&r.errors);
        }
        let ef = summarize(&errs.error_factors).expect("nonempty");
        let ae = summarize(&errs.absolute_errors).expect("nonempty");
        println!(
            "{:<25} {:>8} {:>8} {:>10.3} {:>10.5}",
            o.label,
            pct(o.mean_dr),
            pct(o.mean_fpr),
            ef.median,
            ae.median
        );
    }
    println!();
    println!("Paper's claim: differences between the models/processes are insignificant.");
}
