//! Table 2 — LIA accuracy across six topology families.
//!
//! For each of Barabási–Albert, Waxman, hierarchical top-down,
//! hierarchical bottom-up, PlanetLab-like and DIMES-like topologies:
//! congested-link location accuracy (DR / FPR) and the max / median /
//! min of the error factors and absolute errors, averaged over runs
//! (paper: 10 runs, LLRD1, p = 10 %, m = 50, S = 1000).
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, runs_from_args, table2_topologies, Scale};
use losstomo_core::metrics::summarize;
use losstomo_core::{run_many, ExperimentConfig, RateErrors};

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    println!("Table 2 — simulations with BRITE, PlanetLab and DIMES topologies");
    println!("(LLRD1, p=10%, m=50, S=1000, {} runs per topology)", runs);
    println!();
    let header = format!(
        "{:<26} {:>8} {:>8} | {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8}",
        "Topology", "DR", "FPR", "EF max", "EF med", "EF min", "AE max", "AE med", "AE min"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    for prep in table2_topologies(scale, 77) {
        let cfg = ExperimentConfig {
            snapshots: 50,
            seed: 3000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        if ok.is_empty() {
            println!("{:<26} (all runs failed)", prep.name);
            continue;
        }
        let n = ok.len() as f64;
        let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
        let fpr = ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n;
        let mut errs = RateErrors::default();
        for r in &ok {
            errs.extend(&r.errors);
        }
        let ef = summarize(&errs.error_factors).expect("nonempty");
        let ae = summarize(&errs.absolute_errors).expect("nonempty");
        println!(
            "{:<26} {:>8} {:>8} | {:>7.2} {:>7.2} {:>7.2} | {:>8.4} {:>8.4} {:>8.4}",
            prep.name,
            pct(dr),
            pct(fpr),
            ef.max,
            ef.median,
            ef.min,
            ae.max,
            ae.median,
            ae.min
        );
    }
    println!();
    println!("Paper shape: DR 86–96%, FPR 2–7%; EF median 1.00; AE median ≈ 0.001.");
}
