//! Ablation — congested-set persistence across the learning window.
//!
//! Phase 1 learns variances over m snapshots; Assumption S.3 links a
//! link's variance to its congestion level, which only discriminates if
//! the congested set is reasonably stable while learning. This study
//! degrades persistence from fixed (the paper's simulation regime)
//! through Markov episodes down to iid redraw, quantifying the drop.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{pct, runs_from_args, tree_topology, Scale};
use losstomo_core::{run_many, ExperimentConfig};
use losstomo_netsim::CongestionDynamics;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    println!(
        "Ablation — congestion persistence during learning (tree, m=50, {} runs)",
        runs
    );
    println!();
    let header = format!("{:<26} {:>8} {:>8}", "dynamics", "DR", "FPR");
    println!("{header}");
    losstomo_bench::rule(&header);

    let cases: Vec<(&str, CongestionDynamics)> = vec![
        ("fixed (paper)", CongestionDynamics::Fixed),
        (
            "markov stay=0.9",
            CongestionDynamics::Markov {
                stay_congested: 0.9,
            },
        ),
        (
            "markov stay=0.5",
            CongestionDynamics::Markov {
                stay_congested: 0.5,
            },
        ),
        ("iid redraw", CongestionDynamics::Redraw),
    ];
    for (label, dynamics) in cases {
        let cfg = ExperimentConfig {
            snapshots: 50,
            dynamics,
            seed: 11_000,
            ..ExperimentConfig::default()
        };
        let results = run_many(&prep.red, &cfg, runs);
        let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let n = ok.len() as f64;
        let dr = ok.iter().map(|r| r.location.detection_rate).sum::<f64>() / n;
        let fpr = ok
            .iter()
            .map(|r| r.location.false_positive_rate)
            .sum::<f64>()
            / n;
        println!("{:<26} {:>8} {:>8}", label, pct(dr), pct(fpr));
    }
    println!();
    println!("Expected: accuracy degrades as persistence drops — with iid redraw all");
    println!("links look alike to Phase 1 and the variance ordering stops discriminating.");
}
