//! Ablation — congested-set persistence across the learning window.
//!
//! Phase 1 learns variances over m snapshots; Assumption S.3 links a
//! link's variance to its congestion level, which only discriminates if
//! the congested set is reasonably stable while learning. This study
//! degrades persistence from fixed (the paper's simulation regime)
//! through Markov episodes down to iid redraw, quantifying the drop.
//!
//! Flags: `--scale quick|paper`, `--runs N`.

use losstomo_bench::{
    print_grid_dr_fpr, run_grid, runs_from_args, tree_topology, GridCase, Scale,
};
use losstomo_core::ExperimentConfig;
use losstomo_netsim::CongestionDynamics;

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(10);
    let prep = tree_topology(scale, 11);
    println!(
        "Ablation — congestion persistence during learning (tree, m=50, {} runs)",
        runs
    );
    println!();

    let dynamics_grid: Vec<(&str, CongestionDynamics)> = vec![
        ("fixed (paper)", CongestionDynamics::Fixed),
        (
            "markov stay=0.9",
            CongestionDynamics::Markov {
                stay_congested: 0.9,
            },
        ),
        (
            "markov stay=0.5",
            CongestionDynamics::Markov {
                stay_congested: 0.5,
            },
        ),
        ("iid redraw", CongestionDynamics::Redraw),
    ];
    let cases: Vec<GridCase> = dynamics_grid
        .into_iter()
        .map(|(label, dynamics)| {
            GridCase::new(
                label,
                ExperimentConfig {
                    snapshots: 50,
                    dynamics,
                    seed: 11_000,
                    ..ExperimentConfig::default()
                },
            )
        })
        .collect();
    print_grid_dr_fpr("dynamics", &run_grid(&prep.red, cases, runs));

    println!();
    println!("Expected: accuracy degrades as persistence drops — with iid redraw all");
    println!("links look alike to Phase 1 and the variance ordering stops discriminating.");
}
