//! scale_pairs — the augmented-pair row budget: Phase-1 runtime and
//! DR/FPR vs budget fraction.
//!
//! Phase 1 scales with the number of augmented pair rows (`O(paths²)`
//! in the worst case); the [`losstomo_core::budget`] selector caps that
//! with an information-weighted subset that keeps every covered link
//! covered and preserves the full system's rank. This binary measures
//! what the cap costs and what it buys, on two shapes:
//!
//! - the Section-6.1 **tree** (497 paths → 89,944 pair rows at paper
//!   scale — the quadratic blow-up shape), and
//! - a **2450-node Waxman mesh** (2,450 paths, ~2,600 virtual links —
//!   the wide-Gram shape where the budget also sparsifies the
//!   normal-equations assembly).
//!
//! For each budget fraction (100%, 50%, 25%, 10%) it records the
//! selected row count, the selection cost, the Phase-1 runtime (the
//! pair-covariance sweep plus `estimate_variances`, median of three
//! repetitions), and DR/FPR averaged over a seed sweep with the budget
//! threaded through `ExperimentConfig::pair_budget`.
//!
//! **Gate (paper scale, Waxman):** the ≤25% budget must run Phase 1
//! ≥3× faster than the full pair set with DR and FPR within one
//! percentage point of full. The report lands in `BENCH_pairs.json`.
//!
//! Flags: `--scale quick|paper`, `--out PATH`, `--runs N`.

use losstomo_bench::{
    bench_meta, pct, run_many_location, runs_from_args, tree_topology, waxman_scale_topology,
    waxman_topology, write_bench_report, BenchMeta, PreparedTopology, Scale,
};
use losstomo_core::budget::{apply_budget, PairBudget};
use losstomo_core::{
    estimate_variances, AugmentedSystem, CenteredMeasurements, ExperimentConfig, VarianceConfig,
};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The swept budget fractions; 1.0 is the full-pair baseline.
const BUDGETS: [f64; 4] = [1.0, 0.5, 0.25, 0.1];

/// One budget point on one topology.
#[derive(Debug, Serialize, Deserialize)]
struct BudgetPoint {
    /// Requested budget as a fraction of the full pair rows.
    budget_fraction: f64,
    /// Rows actually selected (the rank/coverage floor can exceed the
    /// request).
    rows: usize,
    /// Rows forced in by the rank-preservation floor.
    basis_rows: usize,
    /// One-off selection cost, milliseconds.
    select_ms: f64,
    /// Pair-covariance sweep + `estimate_variances`, median of three
    /// repetitions, milliseconds.
    phase1_ms: f64,
    /// `phase1_ms(full) / phase1_ms(this)`.
    speedup_vs_full: f64,
    /// Mean detection rate over the seed sweep.
    dr: f64,
    /// Mean false-positive rate over the seed sweep.
    fpr: f64,
    /// `dr − dr(full)` in percentage points.
    dr_delta_pts: f64,
    /// `fpr − fpr(full)` in percentage points.
    fpr_delta_pts: f64,
}

/// The sweep on one topology.
#[derive(Debug, Serialize, Deserialize)]
struct TopologyReport {
    topology: String,
    paths: usize,
    links: usize,
    aug_rows: usize,
    snapshots: usize,
    runs: usize,
    points: Vec<BudgetPoint>,
}

#[derive(Debug, Serialize, Deserialize)]
struct PairsBenchReport {
    meta: BenchMeta,
    topologies: Vec<TopologyReport>,
    /// The gate point: Waxman at the 25% budget.
    gate: GateReport,
}

/// The paper-scale acceptance gate, recorded even at quick scale
/// (asserted only at paper scale).
#[derive(Debug, Serialize, Deserialize)]
struct GateReport {
    topology: String,
    budget_fraction: f64,
    speedup_vs_full: f64,
    dr_delta_pts: f64,
    fpr_delta_pts: f64,
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Phase-1 runtime at one budget: the pair sweep + variance solve on a
/// fixed training window, median of `reps` repetitions.
fn time_phase1(
    red: &losstomo_topology::ReducedTopology,
    aug: &AugmentedSystem,
    centered: &CenteredMeasurements,
    reps: usize,
) -> f64 {
    let cfg = VarianceConfig::default();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let est = estimate_variances(red, aug, centered, &cfg).expect("phase 1 solves");
        samples.push(ms_since(t0));
        assert_eq!(est.v.len(), red.num_links());
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn sweep_topology(prep: &PreparedTopology, scale: Scale, runs: usize) -> TopologyReport {
    let red = &prep.red;
    let full = AugmentedSystem::build(red);
    // Paper scale uses a paper-realistic learning window (the paper's
    // §6 studies run hundreds of snapshots); the tiny CI default keeps
    // quick runs fast but leaves the sample covariances so noisy that
    // budget-vs-full accuracy deltas mostly measure sampling error.
    let snapshots = match scale {
        Scale::Paper => 200,
        Scale::Quick => ExperimentConfig::default().snapshots,
    };
    println!(
        "{}: {} paths, {} links, {} augmented pair rows",
        prep.name,
        red.num_paths(),
        red.num_links(),
        full.num_rows()
    );

    // One fixed training window for the timing comparison (the DR/FPR
    // sweep below draws its own per-seed runs).
    let mut rng = StdRng::seed_from_u64(3);
    let mut scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let ms = simulate_run(red, &mut scenario, &ProbeConfig::default(), snapshots, &mut rng);
    let train = MeasurementSet {
        snapshots: ms.snapshots,
    };
    let centered = CenteredMeasurements::new(&train);

    let header = format!(
        "{:>7} {:>8} {:>7} {:>10} {:>9} {:>8} {:>8}",
        "budget", "rows", "basis", "phase1", "speedup", "DR", "FPR"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    let mut points = Vec::new();
    let mut full_phase1_ms = 0.0_f64;
    let mut full_dr = 0.0_f64;
    let mut full_fpr = 0.0_f64;
    for &frac in &BUDGETS {
        let budget = if frac >= 1.0 {
            PairBudget::Full
        } else {
            PairBudget::Fraction(frac)
        };
        let t0 = Instant::now();
        let (aug, selection) = apply_budget(full.clone(), budget);
        let select_ms = ms_since(t0);
        let basis_rows = selection.as_ref().map_or(0, |s| s.basis_rows);
        let phase1_ms = time_phase1(red, &aug, &centered, 3);

        let cfg = ExperimentConfig {
            pair_budget: budget,
            seed: 40,
            snapshots,
            ..ExperimentConfig::default()
        };
        let loc = run_many_location(red, &cfg, runs);
        if frac >= 1.0 {
            full_phase1_ms = phase1_ms;
            full_dr = loc.detection_rate;
            full_fpr = loc.false_positive_rate;
        }
        let speedup = full_phase1_ms / phase1_ms.max(1e-9);
        println!(
            "{:>6.0}% {:>8} {:>7} {:>8.1}ms {:>8.2}x {:>8} {:>8}",
            frac * 100.0,
            aug.num_rows(),
            basis_rows,
            phase1_ms,
            speedup,
            pct(loc.detection_rate),
            pct(loc.false_positive_rate)
        );
        points.push(BudgetPoint {
            budget_fraction: frac,
            rows: aug.num_rows(),
            basis_rows,
            select_ms,
            phase1_ms,
            speedup_vs_full: speedup,
            dr: loc.detection_rate,
            fpr: loc.false_positive_rate,
            dr_delta_pts: (loc.detection_rate - full_dr) * 100.0,
            fpr_delta_pts: (loc.false_positive_rate - full_fpr) * 100.0,
        });
    }
    let _ = scale;
    TopologyReport {
        topology: prep.name.to_string(),
        paths: red.num_paths(),
        links: red.num_links(),
        aug_rows: full.num_rows(),
        snapshots,
        runs,
        points,
    }
}

fn main() {
    let scale = Scale::from_args();
    let runs = runs_from_args(match scale {
        Scale::Paper => 10,
        Scale::Quick => 3,
    });
    println!(
        "scale_pairs — Phase-1 runtime and DR/FPR vs pair budget ({} scale, {runs} runs)",
        scale.name()
    );
    println!();

    let tree = tree_topology(scale, 11);
    let waxman = match scale {
        // The 2450-node mesh of the scaling study (2,450 paths).
        Scale::Paper => waxman_scale_topology(2450, 50, 11),
        Scale::Quick => waxman_topology(Scale::Quick, 11),
    };
    let tree_report = sweep_topology(&tree, scale, runs);
    println!();
    let waxman_report = sweep_topology(&waxman, scale, runs);

    let gate_point = waxman_report
        .points
        .iter()
        .find(|p| (p.budget_fraction - 0.25).abs() < 1e-12)
        .expect("25% budget is in the sweep");
    let gate = GateReport {
        topology: waxman_report.topology.clone(),
        budget_fraction: gate_point.budget_fraction,
        speedup_vs_full: gate_point.speedup_vs_full,
        dr_delta_pts: gate_point.dr_delta_pts,
        fpr_delta_pts: gate_point.fpr_delta_pts,
    };
    println!();
    println!(
        "gate ({} @ {:.0}% budget): {:.2}x Phase-1 speedup, ΔDR {:+.2}pt, ΔFPR {:+.2}pt",
        gate.topology,
        gate.budget_fraction * 100.0,
        gate.speedup_vs_full,
        gate.dr_delta_pts,
        gate.fpr_delta_pts
    );
    if scale == Scale::Paper {
        assert!(
            gate.speedup_vs_full >= 3.0,
            "≤25% pair budget must run Phase 1 ≥3x faster than full, got {:.2}x",
            gate.speedup_vs_full
        );
        assert!(
            gate.dr_delta_pts.abs() <= 1.0,
            "budgeted DR must stay within 1 point of full, drifted {:+.2}pt",
            gate.dr_delta_pts
        );
        assert!(
            gate.fpr_delta_pts.abs() <= 1.0,
            "budgeted FPR must stay within 1 point of full, drifted {:+.2}pt",
            gate.fpr_delta_pts
        );
    }

    let report = PairsBenchReport {
        meta: bench_meta("scale_pairs", scale),
        topologies: vec![tree_report, waxman_report],
        gate,
    };
    write_bench_report("BENCH_pairs.json", &report);
}
