//! Figure 2 — a multi-beacon measurement topology and its reduced
//! routing matrix.
//!
//! Prints the fixture's routing matrix `R` (rows = paths, columns =
//! virtual links after alias reduction) together with its rank, showing
//! the rank deficiency the paper highlights (their example: 6 paths,
//! 8 links, rank 5).

use losstomo_linalg::rank;
use losstomo_topology::fixtures;
use losstomo_topology::routing::compute_paths;

fn main() {
    let topo = fixtures::figure2();
    let paths = compute_paths(&topo.graph, &topo.beacons, &topo.destinations);
    let red = fixtures::reduced(&topo);
    let dense = red.matrix.to_dense();

    println!("Figure 2 — two-beacon topology and reduced routing matrix");
    println!();
    println!(
        "paths n_p = {}, covered virtual links n_c = {}",
        red.num_paths(),
        red.num_links()
    );
    println!();
    for (i, (_, p)) in paths.iter().enumerate() {
        let row: Vec<String> = (0..red.num_links())
            .map(|j| format!("{}", dense[(i, j)] as u8))
            .collect();
        println!(
            "P{} ({:>2} → {:>2}):  [{}]",
            i + 1,
            p.src.0,
            p.dst.0,
            row.join(" ")
        );
    }
    println!();
    println!(
        "rank(R) = {}  <  min(n_p, n_c) = {}  →  system (3) is under-determined",
        rank(&dense),
        red.num_paths().min(red.num_links())
    );
}
