//! perf_phase1 — wall-clock timings of the numeric hot path, with an
//! embedded pre-optimisation baseline.
//!
//! Times every stage of the two-phase pipeline (snapshot simulation,
//! building `A`, one-pass covariance, the Phase-1 solve, Phase 2) on the
//! paper's tree topology (headline) and the PlanetLab-like mesh, and
//! re-runs the covariance + Phase-1 stage through a faithful
//! re-implementation of the pre-optimisation code path (snapshot-major
//! `Vec<Vec<f64>>` deviations, one strided covariance walk per augmented
//! row, unblocked Cholesky) so the speedup is measured inside a single
//! binary with identical compiler flags.
//!
//! Writes a machine-readable report to `BENCH_phase1.json` at the repo
//! root (override with `--out PATH`). CI runs this at `--scale quick`
//! and schema-checks the JSON; the perf trajectory across PRs is read
//! from the `--scale paper` numbers recorded in README.md.
//!
//! Flags: `--scale quick|paper`, `--out PATH`.

use losstomo_bench::{
    bench_meta, planetlab_topology, tree_topology, write_bench_report, BenchMeta,
    PreparedTopology, Scale,
};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{
    estimate_variances, infer_link_rates, LiaConfig, VarianceConfig,
};
use losstomo_linalg::{Cholesky, Matrix};
use losstomo_netsim::{
    simulate_run_batch, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-stage wall-clock timings, milliseconds.
#[derive(Debug, Serialize, Deserialize)]
struct StagesMs {
    simulate: f64,
    build_a: f64,
    covariance: f64,
    phase1_solve: f64,
    covariance_phase1_new: f64,
    covariance_phase1_baseline: f64,
    phase2: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct TopologyReport {
    name: String,
    paths: usize,
    links: usize,
    aug_rows: usize,
    snapshots: usize,
    stages_ms: StagesMs,
    speedup_covariance_phase1: f64,
    /// Max |new − baseline| over the estimated variances.
    baseline_estimate_max_abs_diff: f64,
    /// Serial and multi-threaded covariance sweeps agree bit-for-bit.
    serial_parallel_identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct Headline {
    topology: String,
    baseline_covariance_phase1_ms: f64,
    new_covariance_phase1_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    meta: BenchMeta,
    topologies: Vec<TopologyReport>,
    headline: Headline,
}

fn ms(t: std::time::Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

/// Median of a small sample of durations.
fn median(samples: &mut [std::time::Duration]) -> std::time::Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The augmented rows in the pre-optimisation memory layout: one heap
/// `Vec` per row (the flat CSR layout the system uses today is part of
/// what this PR measures, so the baseline must not benefit from it).
type LegacyRows = Vec<((usize, usize), Vec<usize>)>;

fn legacy_rows(aug: &AugmentedSystem) -> LegacyRows {
    aug.iter()
        .map(|(pair, links)| ((pair.0.index(), pair.1.index()), links.to_vec()))
        .collect()
}

/// The pre-optimisation covariance + Phase-1 path, verbatim: snapshot-
/// major deviations, one O(m) strided covariance per augmented row
/// inside the assembly loop over per-row heap allocations, normal
/// equations solved with the unblocked Cholesky, and the production
/// retry (recompute everything keeping all rows when dropping the
/// negative-covariance ones leaves a singular system). Returns the
/// variance estimates for cross-checking.
fn baseline_covariance_phase1(aug: &LegacyRows, rows: &[Vec<f64>], nc: usize) -> Vec<f64> {
    match baseline_inner(aug, rows, nc, true) {
        Some(v) => v,
        None => baseline_inner(aug, rows, nc, false)
            .expect("phase-1 normal equations are SPD with all rows kept"),
    }
}

fn baseline_inner(
    aug: &LegacyRows,
    rows: &[Vec<f64>],
    nc: usize,
    drop_negative: bool,
) -> Option<Vec<f64>> {
    let m = rows.len();
    let n_paths = rows[0].len();
    let mut means = vec![0.0; n_paths];
    for row in rows {
        for (mean, y) in means.iter_mut().zip(row.iter()) {
            *mean += y;
        }
    }
    for mean in means.iter_mut() {
        *mean /= m as f64;
    }
    let deviations: Vec<Vec<f64>> = rows
        .iter()
        .map(|row| {
            row.iter()
                .zip(means.iter())
                .map(|(y, mean)| y - mean)
                .collect()
        })
        .collect();
    let cov = |i: usize, j: usize| -> f64 {
        let sum: f64 = deviations.iter().map(|row| row[i] * row[j]).sum();
        sum / (m - 1) as f64
    };

    let mut gram = Matrix::zeros(nc, nc);
    let mut atb = vec![0.0; nc];
    let mut used = 0usize;
    for (pair, links) in aug.iter() {
        let sigma = cov(pair.0, pair.1);
        if drop_negative && sigma < 0.0 {
            continue;
        }
        used += 1;
        for (ai, &ka) in links.iter().enumerate() {
            atb[ka] += sigma;
            for &kb in &links[ai..] {
                gram[(ka, kb)] += 1.0;
            }
        }
    }
    if used < nc {
        return None;
    }
    for j in 0..nc {
        for k in (j + 1)..nc {
            gram[(k, j)] = gram[(j, k)];
        }
    }
    let chol = Cholesky::new_unblocked(&gram).ok()?;
    chol.solve(&atb).ok()
}

fn bench_topology(prep: &PreparedTopology, snapshots: usize) -> TopologyReport {
    let red = &prep.red;
    let mut rng = StdRng::seed_from_u64(7);
    let scenario =
        CongestionScenario::draw(red.num_links(), 0.1, CongestionDynamics::Fixed, &mut rng);
    let cfg = ProbeConfig::default();

    // Simulation (through the parallel batch API; one training run).
    let t = Instant::now();
    let batch = simulate_run_batch(red, &scenario, &cfg, snapshots + 1, &[1]);
    let t_sim = t.elapsed();
    let ms_all: MeasurementSet = batch.into_iter().next().expect("one run requested");
    let train = MeasurementSet {
        snapshots: ms_all.snapshots[..snapshots].to_vec(),
    };
    let eval = &ms_all.snapshots[snapshots];

    // Build A.
    let t = Instant::now();
    let aug = AugmentedSystem::build(red);
    let t_build = t.elapsed();

    // New path, end to end (centering + the production
    // `estimate_variances` call — the baseline's timed region also
    // centres its snapshots, so both contenders carry the same work),
    // timed as the median of three runs: this box is a noisy
    // single-core VM and both contenders deserve a stable clock.
    let var_cfg = VarianceConfig::default();
    let mut new_samples = Vec::new();
    let mut timed = None;
    for _ in 0..3 {
        let t = Instant::now();
        let centered = CenteredMeasurements::new(&train);
        let est = estimate_variances(red, &aug, &centered, &var_cfg).expect("phase 1");
        new_samples.push(t.elapsed());
        timed = Some((centered, est));
    }
    let (centered, est) = timed.expect("three timed runs completed");
    let t_new_total = median(&mut new_samples);

    // Stage breakdown of the new path: covariance sweep alone, then the
    // assembly + solve with the covariances in hand.
    let pairs = aug.pair_indices();
    let t = Instant::now();
    let sigmas = centered.pair_covariances(&pairs);
    let t_cov = t.elapsed();
    let t_solve = t_new_total.saturating_sub(t_cov);

    // Serial vs parallel covariance sweeps must agree bit-for-bit.
    let serial = centered.pair_covariances_with_threads(&pairs, 1);
    let parallel = centered.pair_covariances_with_threads(&pairs, 4);
    let serial_parallel_identical = serial == parallel && serial == sigmas;

    // Baseline (pre-optimisation) covariance + Phase 1, same
    // median-of-three clock, over the pre-PR per-row heap layout.
    let legacy = legacy_rows(&aug);
    let rows = train.log_rate_rows();
    let mut base_samples = Vec::new();
    let mut v_base = Vec::new();
    for _ in 0..3 {
        let t = Instant::now();
        v_base = baseline_covariance_phase1(&legacy, &rows, red.num_links());
        base_samples.push(t.elapsed());
    }
    let t_base = median(&mut base_samples);
    let baseline_estimate_max_abs_diff = est
        .v
        .iter()
        .zip(v_base.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);

    // Phase 2 on the evaluation snapshot.
    let t = Instant::now();
    let _p2 = infer_link_rates(red, &est.v, &eval.log_rates(), &LiaConfig::default())
        .expect("phase 2");
    let t_phase2 = t.elapsed();

    TopologyReport {
        name: prep.name.to_string(),
        paths: red.num_paths(),
        links: red.num_links(),
        aug_rows: aug.num_rows(),
        snapshots,
        stages_ms: StagesMs {
            simulate: ms(t_sim),
            build_a: ms(t_build),
            covariance: ms(t_cov),
            phase1_solve: ms(t_solve),
            covariance_phase1_new: ms(t_new_total),
            covariance_phase1_baseline: ms(t_base),
            phase2: ms(t_phase2),
        },
        speedup_covariance_phase1: ms(t_base) / ms(t_new_total).max(1e-9),
        baseline_estimate_max_abs_diff,
        serial_parallel_identical,
    }
}

fn main() {
    let scale = Scale::from_args();
    let snapshots = 50;
    println!("perf_phase1 — numeric hot-path timings ({} scale)", scale.name());
    println!();

    let preps = vec![tree_topology(scale, 11), planetlab_topology(scale, 42)];
    let header = format!(
        "{:<26} {:>7} {:>7} {:>9} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "Topology", "paths", "links", "rows", "cov", "phase1", "new total", "baseline", "speedup"
    );
    println!("{header}");
    losstomo_bench::rule(&header);

    let mut reports = Vec::new();
    for prep in &preps {
        let rep = bench_topology(prep, snapshots);
        println!(
            "{:<26} {:>7} {:>7} {:>9} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>8.2}x",
            rep.name,
            rep.paths,
            rep.links,
            rep.aug_rows,
            rep.stages_ms.covariance,
            rep.stages_ms.phase1_solve,
            rep.stages_ms.covariance_phase1_new,
            rep.stages_ms.covariance_phase1_baseline,
            rep.speedup_covariance_phase1,
        );
        assert!(
            rep.serial_parallel_identical,
            "{}: serial and parallel covariance sweeps drifted",
            rep.name
        );
        assert!(
            rep.baseline_estimate_max_abs_diff < 1e-8,
            "{}: baseline and optimised estimates disagree by {}",
            rep.name,
            rep.baseline_estimate_max_abs_diff
        );
        reports.push(rep);
    }

    let headline = {
        let tree = &reports[0];
        Headline {
            topology: tree.name.clone(),
            baseline_covariance_phase1_ms: tree.stages_ms.covariance_phase1_baseline,
            new_covariance_phase1_ms: tree.stages_ms.covariance_phase1_new,
            speedup: tree.speedup_covariance_phase1,
        }
    };
    println!();
    println!(
        "headline ({}): covariance+phase1 {:.2}ms -> {:.2}ms ({:.2}x)",
        headline.topology,
        headline.baseline_covariance_phase1_ms,
        headline.new_covariance_phase1_ms,
        headline.speedup
    );

    let report = BenchReport {
        meta: bench_meta("perf_phase1", scale),
        topologies: reports,
        headline,
    };
    write_bench_report("BENCH_phase1.json", &report);
}
