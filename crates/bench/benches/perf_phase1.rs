//! Criterion micro-benches for the Phase-1 hot path: the one-pass
//! covariance sweep and the full variance estimation, at quick scale.
//! The wall-clock stage report (with the embedded pre-optimisation
//! baseline) lives in the `perf_phase1` *binary*; these benches track
//! the same kernels under Criterion's repeated-sampling harness.

use criterion::{criterion_group, criterion_main, Criterion};
use losstomo_bench::{tree_topology, Scale};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{estimate_variances, VarianceConfig};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Prepared {
    red: losstomo_topology::ReducedTopology,
    aug: AugmentedSystem,
    centered: CenteredMeasurements,
    pairs: Vec<(usize, usize)>,
}

fn prepare() -> Prepared {
    let prep = tree_topology(Scale::Quick, 11);
    let mut rng = StdRng::seed_from_u64(7);
    let mut scenario = CongestionScenario::draw(
        prep.red.num_links(),
        0.1,
        CongestionDynamics::Fixed,
        &mut rng,
    );
    let ms: MeasurementSet =
        simulate_run(&prep.red, &mut scenario, &ProbeConfig::default(), 50, &mut rng);
    let aug = AugmentedSystem::build(&prep.red);
    let centered = CenteredMeasurements::new(&ms);
    let pairs = aug.pair_indices();
    Prepared {
        red: prep.red,
        aug,
        centered,
        pairs,
    }
}

fn bench_pair_covariances(c: &mut Criterion) {
    let p = prepare();
    let mut group = c.benchmark_group("phase1_pair_covariances");
    group.sample_size(20);
    group.bench_function("serial", |b| {
        b.iter(|| p.centered.pair_covariances_with_threads(&p.pairs, 1))
    });
    group.bench_function("auto_threads", |b| {
        b.iter(|| p.centered.pair_covariances(&p.pairs))
    });
    group.finish();
}

fn bench_estimate_variances(c: &mut Criterion) {
    let p = prepare();
    let mut group = c.benchmark_group("phase1_estimate_variances");
    group.sample_size(10);
    group.bench_function("quick_tree", |b| {
        b.iter(|| {
            estimate_variances(&p.red, &p.aug, &p.centered, &VarianceConfig::default())
                .expect("phase 1")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pair_covariances, bench_estimate_variances);
criterion_main!(benches);
