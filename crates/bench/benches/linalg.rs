//! Criterion benches for the linear-algebra substrate: the kernels that
//! dominate Phase 1 (Cholesky on `AᵀA`) and Phase 2 (pivoted QR rank
//! checks, Householder least squares).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use losstomo_linalg::{Cholesky, Matrix, PivotedQr, Qr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("dimensions match")
}

fn spd_matrix(n: usize, seed: u64) -> Matrix {
    let a = random_matrix(2 * n, n, seed);
    let mut g = a.gram();
    for i in 0..n {
        g[(i, i)] += 1.0;
    }
    g
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("householder_qr");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let a = random_matrix(2 * n, n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| Qr::new(a).expect("tall full-rank matrix"))
        });
    }
    group.finish();
}

fn bench_pivoted_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivoted_qr_rank");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let a = random_matrix(2 * n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| PivotedQr::new(a).expect("nonempty").rank())
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for &n in &[50usize, 100, 200, 400] {
        let g = spd_matrix(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| Cholesky::new(g).expect("SPD"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qr, bench_pivoted_qr, bench_cholesky);
criterion_main!(benches);
