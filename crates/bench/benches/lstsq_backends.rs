//! Criterion bench for the DESIGN.md ablation "least-squares backend":
//! the paper's Householder QR on the materialised augmented system vs
//! normal equations accumulated from sparse rows + Cholesky.

use criterion::{criterion_group, criterion_main, Criterion};
use losstomo_bench::{tree_topology, Scale};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{estimate_variances, VarianceConfig};
use losstomo_linalg::LstsqBackend;
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_backends(c: &mut Criterion) {
    let prep = tree_topology(Scale::Quick, 11);
    let mut rng = StdRng::seed_from_u64(5);
    let mut scenario = CongestionScenario::draw(
        prep.red.num_links(),
        0.1,
        CongestionDynamics::Fixed,
        &mut rng,
    );
    let ms = simulate_run(&prep.red, &mut scenario, &ProbeConfig::default(), 30, &mut rng);
    let train = MeasurementSet {
        snapshots: ms.snapshots.clone(),
    };
    let aug = AugmentedSystem::build(&prep.red);
    let centered = CenteredMeasurements::new(&train);

    let mut group = c.benchmark_group("phase1_backend");
    group.sample_size(10);
    for (name, backend) in [
        ("normal_equations", LstsqBackend::NormalEquations),
        ("householder_qr", LstsqBackend::HouseholderQr),
    ] {
        let cfg = VarianceConfig {
            backend,
            ..VarianceConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                estimate_variances(&prep.red, &aug, &centered, &cfg).expect("phase 1")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
