//! Criterion benches for the LIA pipeline stages (the Section-6.4
//! running-time claims): building the augmented matrix `A` (once per
//! topology), Phase 1 (variance estimation from m snapshots) and
//! Phase 2 (column selection + reduced solve, per snapshot).

use criterion::{criterion_group, criterion_main, Criterion};
use losstomo_bench::{planetlab_topology, tree_topology, PreparedTopology, Scale};
use losstomo_core::augmented::AugmentedSystem;
use losstomo_core::covariance::CenteredMeasurements;
use losstomo_core::{
    estimate_variances, infer_link_rates, LiaConfig, VarianceConfig,
};
use losstomo_netsim::{
    simulate_run, CongestionDynamics, CongestionScenario, MeasurementSet, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    prep: PreparedTopology,
    aug: AugmentedSystem,
    centered: CenteredMeasurements,
    variances: Vec<f64>,
    eval_y: Vec<f64>,
}

fn fixture(prep: PreparedTopology) -> Fixture {
    let mut rng = StdRng::seed_from_u64(5);
    let mut scenario = CongestionScenario::draw(
        prep.red.num_links(),
        0.1,
        CongestionDynamics::Fixed,
        &mut rng,
    );
    let ms = simulate_run(&prep.red, &mut scenario, &ProbeConfig::default(), 31, &mut rng);
    let train = MeasurementSet {
        snapshots: ms.snapshots[..30].to_vec(),
    };
    let aug = AugmentedSystem::build(&prep.red);
    let centered = CenteredMeasurements::new(&train);
    let variances = estimate_variances(&prep.red, &aug, &centered, &VarianceConfig::default())
        .expect("phase 1")
        .v;
    let eval_y = ms.snapshots[30].log_rates();
    Fixture {
        prep,
        aug,
        centered,
        variances,
        eval_y,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let fixtures = vec![
        ("tree", fixture(tree_topology(Scale::Quick, 11))),
        ("planetlab", fixture(planetlab_topology(Scale::Quick, 42))),
    ];
    for (name, f) in &fixtures {
        let mut group = c.benchmark_group(format!("pipeline/{name}"));
        group.sample_size(10);
        group.bench_function("build_augmented", |b| {
            b.iter(|| AugmentedSystem::build(&f.prep.red))
        });
        group.bench_function("phase1_variances", |b| {
            b.iter(|| {
                estimate_variances(&f.prep.red, &f.aug, &f.centered, &VarianceConfig::default())
                    .expect("phase 1")
            })
        });
        group.bench_function("phase2_infer", |b| {
            b.iter(|| {
                infer_link_rates(&f.prep.red, &f.variances, &f.eval_y, &LiaConfig::default())
                    .expect("phase 2")
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
