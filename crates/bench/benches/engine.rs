//! Criterion benches for the packet-level probe engine: snapshot
//! simulation throughput under both chain-advance semantics and both
//! loss-process families.

use criterion::{criterion_group, criterion_main, Criterion};
use losstomo_bench::{tree_topology, Scale};
use losstomo_netsim::{
    simulate_snapshot, ChainAdvance, CongestionDynamics, CongestionScenario,
    LossProcessKind, ProbeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_engine(c: &mut Criterion) {
    let prep = tree_topology(Scale::Quick, 11);
    let mut rng = StdRng::seed_from_u64(1);
    let scenario = CongestionScenario::draw(
        prep.red.num_links(),
        0.1,
        CongestionDynamics::Fixed,
        &mut rng,
    );
    let mut group = c.benchmark_group("engine/snapshot");
    group.sample_size(10);
    for (name, advance, process) in [
        ("per_round_gilbert", ChainAdvance::PerRound, LossProcessKind::Gilbert),
        ("per_arrival_gilbert", ChainAdvance::PerArrival, LossProcessKind::Gilbert),
        ("per_round_bernoulli", ChainAdvance::PerRound, LossProcessKind::Bernoulli),
    ] {
        let cfg = ProbeConfig {
            advance,
            process,
            ..ProbeConfig::default()
        };
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| simulate_snapshot(&prep.red, &scenario, &cfg, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
