//! Property tests pinning the AVX2 microkernels to the scalar
//! reference loops **bit-for-bit**.
//!
//! The SIMD module's whole contract is that the default (non-FMA)
//! engines are indistinguishable from the scalar kernels — not "close",
//! identical, down to NaN/∞ payloads and which entries round to exact
//! zero. Every comparison here is therefore on `f64::to_bits`, and the
//! strategies deliberately hit the awkward shapes: micro-panel
//! remainders (`% 4`, `% 8`), panel-crossing sizes, zero blocks the
//! trailing sweep skips, and non-finite values.
//!
//! One deliberate carve-out: NaN **payloads** are canonicalised before
//! comparison. When two distinct NaNs meet in an add (say a propagated
//! input NaN and the `∞·0` indefinite), IEEE-754 leaves the surviving
//! payload to the implementation, and LLVM freely commutes scalar
//! `a*b` operands — so exact payload bits are not stable even between
//! two scalar builds. What *is* pinned: NaNs appear in exactly the
//! same entries, and every non-NaN value (±∞ included) is bit-exact.
//!
//! On hosts without AVX2 the vector entry points decline (`None` /
//! `false`) and each test degrades to checking exactly that.

use losstomo_linalg::{blocked, simd, Cholesky, Engine, Matrix};
use proptest::prelude::*;

const AVX2: Engine = Engine::Avx2 { fma: false };

/// `to_bits` with NaN payloads collapsed to the canonical quiet NaN
/// (see the module doc for why payloads are not comparable).
fn canon_bits(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| canon_bits(*v)).collect()
}

/// Strategy: matrix entries including non-finite values, so NaN/∞
/// propagation is part of every pinned comparison.
fn entry() -> impl Strategy<Value = f64> {
    prop_oneof![
        20 => -10.0f64..10.0,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        2 => Just(0.0f64),
    ]
}

/// Strategy: an `r × c` matrix with awkward dimensions around the 4-
/// and 8-wide kernel boundaries.
fn matrix(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(entry(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// matmul: AVX2 micro-panel ≡ scalar blocked kernel, bitwise, for
    /// every row/column remainder combination (including NaN/∞).
    #[test]
    fn matmul_avx2_bitwise_equals_scalar(
        a in matrix(1..14, 1..14),
        bcols in 1usize..14,
        seed in proptest::collection::vec(entry(), 14 * 14),
    ) {
        let k = a.cols();
        let b = Matrix::from_vec(k, bcols, seed[..k * bcols].to_vec()).unwrap();
        let scalar = blocked::matmul_with(&a, &b, Engine::Scalar);
        let vector = blocked::matmul_with(&a, &b, AVX2);
        prop_assert_eq!(bits(&scalar), bits(&vector));
    }

    /// gram: AVX2 ≡ scalar, bitwise — the below-diagonal vector spill
    /// and the mirror pass must leave no trace.
    #[test]
    fn gram_avx2_bitwise_equals_scalar(a in matrix(1..14, 1..14)) {
        let scalar = blocked::gram_with(&a, Engine::Scalar);
        let vector = blocked::gram_with(&a, AVX2);
        prop_assert_eq!(bits(&scalar), bits(&vector));
    }

    /// pair_cov4: the 4 interleaved accumulator chains, bitwise,
    /// including `m % 4` tails continued in scalar code.
    #[test]
    fn pair_cov4_bitwise_equals_scalar_chains(
        m in 0usize..19,
        vals in proptest::collection::vec(entry(), 8 * 19),
    ) {
        let rows: Vec<&[f64]> = (0..8).map(|r| &vals[r * 19..r * 19 + m]).collect();
        let (a0, b0, a1, b1) = (rows[0], rows[1], rows[2], rows[3]);
        let (a2, b2, a3, b3) = (rows[4], rows[5], rows[6], rows[7]);
        let mut oracle = [0.0f64; 4];
        for l in 0..m {
            oracle[0] += a0[l] * b0[l];
            oracle[1] += a1[l] * b1[l];
            oracle[2] += a2[l] * b2[l];
            oracle[3] += a3[l] * b3[l];
        }
        match simd::pair_cov4(a0, b0, a1, b1, a2, b2, a3, b3, false) {
            Some(got) => {
                let ob: Vec<u64> = oracle.iter().map(|v| canon_bits(*v)).collect();
                let gb: Vec<u64> = got.iter().map(|v| canon_bits(*v)).collect();
                prop_assert_eq!(ob, gb);
            }
            None => prop_assert!(!Engine::avx2_available()),
        }
    }

    /// rotate_span: each lane performs the scalar `c·r + s·w` /
    /// `c·w − s·r` sequence, bitwise, including the tail lanes.
    #[test]
    fn rotate_span_bitwise_equals_scalar(
        len in 0usize..23,
        c in -2.0f64..2.0,
        s in -2.0f64..2.0,
        vals in proptest::collection::vec(entry(), 2 * 23),
    ) {
        let rv = &vals[..len];
        let wv = &vals[23..23 + len];
        let mut new_r = vec![0.0; len];
        let mut new_w = vec![0.0; len];
        if simd::rotate_span(c, s, rv, wv, &mut new_r, &mut new_w, false) {
            for i in 0..len {
                prop_assert_eq!(canon_bits(new_r[i]), canon_bits(c * rv[i] + s * wv[i]));
                prop_assert_eq!(canon_bits(new_w[i]), canon_bits(c * wv[i] - s * rv[i]));
            }
        } else {
            prop_assert!(!Engine::avx2_available());
        }
    }

    /// Cholesky: forced-scalar and forced-AVX2 factorisations of a
    /// random SPD matrix agree bitwise (small sizes — the panel is
    /// unblocked, pinning the dispatch plumbing).
    #[test]
    fn cholesky_small_bitwise_across_engines(
        n in 1usize..10,
        vals in proptest::collection::vec(-2.0f64..2.0, 10 * 10),
    ) {
        let a = Matrix::from_vec(n, n, vals[..n * n].to_vec()).unwrap();
        let mut spd = blocked::gram_with(&a, Engine::Scalar);
        for i in 0..n {
            spd[(i, i)] += 1.0 + n as f64;
        }
        let mut scalar = Cholesky::new(&spd).unwrap();
        scalar.factor_into_with(&spd, Engine::Scalar).unwrap();
        let mut vector = Cholesky::new(&spd).unwrap();
        vector.factor_into_with(&spd, AVX2).unwrap();
        prop_assert_eq!(bits(scalar.l()), bits(vector.l()));
    }
}

/// Cholesky at a size that crosses the blocked panel boundary, so the
/// packed trailing sweep (the AVX2 4×8 kernel) actually runs — with a
/// structurally sparse SPD matrix whose zero blocks exercise the
/// occupancy-flag skipping on both engines.
#[test]
fn cholesky_blocked_trailing_bitwise_across_engines() {
    let n = 150;
    // Arrow + band structure: dense band near the diagonal, a dense
    // final block row/column, zeros elsewhere — plenty of all-zero
    // 4-wide panel blocks for the occupancy flags to skip.
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i.saturating_sub(3)..=(i + 3).min(n - 1) {
            a[(i, j)] = 0.1 * ((i * 31 + j * 17) % 13) as f64 - 0.5;
        }
        for j in n - 5..n {
            a[(i, j)] = 0.05 * ((i * 7 + j) % 11) as f64;
        }
    }
    let mut spd = blocked::gram_with(&a, Engine::Scalar);
    for i in 0..n {
        spd[(i, i)] += 2.0 + n as f64;
    }
    let mut scalar = Cholesky::new(&spd).unwrap();
    scalar.factor_into_with(&spd, Engine::Scalar).unwrap();
    let mut vector = Cholesky::new(&spd).unwrap();
    vector.factor_into_with(&spd, Engine::Avx2 { fma: false }).unwrap();
    assert_eq!(bits(scalar.l()), bits(vector.l()));
}

/// Large-enough matmul/gram to cross the cache-blocking tile size,
/// deterministic, so the tiled loop seams are pinned too.
#[test]
fn blocked_kernels_bitwise_across_tile_seams() {
    let (m, k, n) = (70, 77, 69);
    let a = Matrix::from_vec(
        m,
        k,
        (0..m * k).map(|i| ((i * 37 + 11) % 101) as f64 / 101.0 - 0.5).collect(),
    )
    .unwrap();
    let b = Matrix::from_vec(
        k,
        n,
        (0..k * n).map(|i| ((i * 53 + 29) % 97) as f64 / 97.0 - 0.5).collect(),
    )
    .unwrap();
    let c_s = blocked::matmul_with(&a, &b, Engine::Scalar);
    let c_v = blocked::matmul_with(&a, &b, Engine::Avx2 { fma: false });
    assert_eq!(bits(&c_s), bits(&c_v));
    let g_s = blocked::gram_with(&a, Engine::Scalar);
    let g_v = blocked::gram_with(&a, Engine::Avx2 { fma: false });
    assert_eq!(bits(&g_s), bits(&g_v));
}

/// The forced-scalar policy resolves to the scalar engine everywhere,
/// and AVX2 requests degrade cleanly on hosts without the feature —
/// the portable-dispatch contract.
#[test]
fn policy_resolution_is_portable() {
    assert_eq!(simd::resolve(simd::SimdPolicy::Scalar), Engine::Scalar);
    for policy in [
        simd::SimdPolicy::Auto,
        simd::SimdPolicy::Avx2,
        simd::SimdPolicy::Avx2Fma,
    ] {
        match simd::resolve(policy) {
            Engine::Scalar => assert!(!Engine::avx2_available()),
            Engine::Avx2 { fma } => {
                assert!(Engine::avx2_available());
                if fma {
                    assert!(Engine::fma_available());
                }
            }
        }
    }
}
