//! Property-based tests for the linear-algebra substrate.

use losstomo_linalg::{
    lstsq, rank, sparse::CsrBuilder, Cholesky, Matrix, PivotedQr, Qr,
};
use proptest::prelude::*;

/// Strategy: a tall random matrix with entries in [-10, 10].
fn tall_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=5, 0usize..=4).prop_flat_map(|(cols, extra)| {
        let rows = cols + extra;
        proptest::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
    })
}

fn any_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
    })
}

proptest! {
    /// QR reproduces A: ‖QR − A‖∞ is tiny relative to ‖A‖.
    #[test]
    fn qr_reconstructs(a in tall_matrix()) {
        let qr = Qr::new(&a).unwrap();
        let prod = qr.q_thin().matmul(&qr.r()).unwrap();
        let err = prod.sub(&a).unwrap().max_abs();
        prop_assert!(err <= 1e-9 * (1.0 + a.max_abs()));
    }

    /// Q has orthonormal columns.
    #[test]
    fn qr_orthonormal(a in tall_matrix()) {
        let qr = Qr::new(&a).unwrap();
        let q = qr.q_thin();
        let qtq = q.transpose().matmul(&q).unwrap();
        let err = qtq.sub(&Matrix::identity(a.cols())).unwrap().max_abs();
        prop_assert!(err < 1e-9);
    }

    /// rank(A) = rank(Aᵀ), and rank ≤ min(m, n).
    #[test]
    fn rank_transpose_invariant(a in any_matrix()) {
        let r1 = rank(&a);
        let r2 = rank(&a.transpose());
        prop_assert_eq!(r1, r2);
        prop_assert!(r1 <= a.rows().min(a.cols()));
    }

    /// Appending a duplicated column never increases the rank.
    #[test]
    fn duplicate_column_keeps_rank(a in any_matrix(), col in 0usize..6) {
        let j = col % a.cols();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(a.rows());
        for i in 0..a.rows() {
            let mut r = a.row(i).to_vec();
            r.push(a[(i, j)]);
            rows.push(r);
        }
        let extended = Matrix::from_rows(&rows).unwrap();
        prop_assert_eq!(rank(&extended), rank(&a));
    }

    /// The least-squares solution zeroes the gradient Aᵀ(Ax−b) when A has
    /// full column rank.
    #[test]
    fn lstsq_normal_equations_hold(a in tall_matrix(),
                                   seed in proptest::collection::vec(-5.0f64..5.0, 0..16)) {
        prop_assume!(rank(&a) == a.cols());
        let mut b = vec![0.0; a.rows()];
        for (i, bi) in b.iter_mut().enumerate() {
            *bi = seed.get(i).copied().unwrap_or(1.0);
        }
        // Skip pathologically ill-conditioned draws.
        let qr = PivotedQr::new(&a).unwrap();
        prop_assume!(qr.pivot_magnitude(a.cols() - 1) > 1e-6 * qr.pivot_magnitude(0));
        let x = lstsq::solve_least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(b.iter()).map(|(p, q)| p - q).collect();
        let grad = a.matvec_transposed(&resid).unwrap();
        let scale = 1.0 + a.max_abs() * a.max_abs();
        prop_assert!(grad.iter().all(|g| g.abs() < 1e-6 * scale), "grad={grad:?}");
    }

    /// Cholesky of G = AᵀA + I reproduces G and solves correctly.
    #[test]
    fn cholesky_solve_round_trip(a in tall_matrix()) {
        let mut g = a.gram();
        for i in 0..g.rows() {
            g[(i, i)] += 1.0;
        }
        let chol = Cholesky::new(&g).unwrap();
        let x_true: Vec<f64> = (0..g.rows()).map(|i| (i as f64) - 1.5).collect();
        let b = g.matvec(&x_true).unwrap();
        let x = chol.solve(&b).unwrap();
        for (p, q) in x.iter().zip(x_true.iter()) {
            prop_assert!((p - q).abs() < 1e-6 * (1.0 + q.abs()));
        }
    }

    /// Sparse gram equals dense gram for random binary matrices.
    #[test]
    fn sparse_gram_matches_dense(
        rows in proptest::collection::vec(proptest::collection::vec(0usize..8, 0..6), 1..10)
    ) {
        let mut builder = CsrBuilder::new(8);
        for r in &rows {
            builder.push_binary_row(r).unwrap();
        }
        let sp = builder.build();
        let err = sp.gram_dense().sub(&sp.to_dense().gram()).unwrap().max_abs();
        prop_assert!(err < 1e-12);
    }
}
